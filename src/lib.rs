//! # dibella2d — a Rust reproduction of diBELLA 2D
//!
//! Parallel string graph construction and transitive reduction for de novo
//! long-read genome assembly, after Guidi et al., *"Parallel String Graph
//! Construction and Transitive Reduction for De Novo Genome Assembly"*
//! (IPDPS 2021).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`dist`] — virtual process grid, collectives, communication accounting;
//! * [`sparse`] — sparse matrices, semirings, Sparse SUMMA, 1D outer-product;
//! * [`seq`] — DNA/k-mer types, FASTA I/O, read simulation, k-mer counting;
//! * [`align`] — x-drop seed-and-extend alignment and overlap classification;
//! * [`overlap`] — overlap detection as distributed SpGEMM plus baselines;
//! * [`sketch`] — the k-min-mer candidate subsystem: homopolymer compression,
//!   density-bound minimizers and the sketch-space occurrence matrix that
//!   feeds the same SUMMA with ~density× fewer nonzeros;
//! * [`strgraph`] — transitive reduction (Algorithm 2), Myers/SORA baselines,
//!   string-graph utilities, contig extraction, POA consensus and
//!   assembly-quality metrics;
//! * [`pipeline`] — the end-to-end diBELLA 2D and 1D pipelines with stage
//!   timings and the Table I communication model.
//!
//! The repository-level documentation complements the API docs:
//! `README.md` (crate map, quick start, how to run the examples and the
//! table/figure reproduction binaries under `crates/bench/src/bin/`),
//! `DESIGN.md` (how the virtual
//! process grid and counted collectives substitute for the MPI runtime) and
//! `EXPERIMENTS.md` (the interconnect constants behind the simulated
//! distributed runtimes, and what to compare against the paper).  `PAPER.md`
//! holds the source paper's abstract.
//!
//! ## Quick start
//!
//! ```
//! use dibella2d::prelude::*;
//!
//! // Simulate a tiny long-read dataset (substitute for PacBio CLR input).
//! let dataset = DatasetSpec::Tiny.generate(1);
//!
//! // Run the diBELLA 2D pipeline on 4 virtual ranks: overlap detection,
//! // string-graph construction, contig layout and POA consensus.
//! let config = PipelineConfig::for_small_reads(13, 4);
//! let comm = CommStats::new();
//! let out = run_dibella_2d_on_reads(&dataset.reads, &config, &comm);
//!
//! assert!(out.string_matrix.nnz() > 0);
//! assert!(out.string_matrix.nnz() <= out.overlap_matrix.nnz());
//! assert_eq!(out.contigs.len(), out.consensus.len());
//! assert!(out.consensus_summary.consensus_bases > 0);
//! println!(
//!     "{} reads -> {} overlaps -> {} string-graph edges -> {} contigs ({} bp consensus)",
//!     dataset.reads.len(),
//!     out.overlap_matrix.nnz() / 2,
//!     out.string_matrix.nnz() / 2,
//!     out.consensus_summary.multi_read_contigs,
//!     out.consensus_summary.consensus_bases,
//! );
//! ```

#![warn(missing_docs)]

pub use dibella_align as align;
pub use dibella_dist as dist;
pub use dibella_overlap as overlap;
pub use dibella_pipeline as pipeline;
pub use dibella_seq as seq;
pub use dibella_sketch as sketch;
pub use dibella_sparse as sparse;
pub use dibella_strgraph as strgraph;

/// The most commonly used types and entry points, in one import.
pub mod prelude {
    pub use dibella_align::{AlignmentConfig, BidirectedDir, OverlapClass, ScoringScheme};
    pub use dibella_dist::{CommPhase, CommStats, ProcessGrid};
    pub use dibella_overlap::{
        minimizer_overlaps, run_overlap_1d, run_overlap_2d, MinimizerConfig, OverlapConfig,
        OverlapEdge,
    };
    pub use dibella_pipeline::{
        run_dibella_1d, run_dibella_2d, run_dibella_2d_fastq, run_dibella_2d_on_reads,
        run_scenario, run_scenario_matrix, CandidateSource, CommModel, ModelParams,
        PipelineConfig, ScenarioReport, ScenarioSpec, StageTimings,
    };
    pub use dibella_seq::{
        parse_fasta, parse_fasta_file, parse_fastq, parse_fastq_file, parse_fastq_filtered,
        write_fasta, DatasetSpec, DnaSeq, Kmer, KmerSelection, ReadSet, ScenarioKind,
        ScenarioParams, Strand, Topology,
    };
    pub use dibella_sketch::{build_sketch_matrix, sketch_read, SketchConfig, SketchStats};
    pub use dibella_sparse::{CsrMatrix, DistMat2D, Semiring, Triples};
    pub use dibella_strgraph::{
        banded_identity, consensus_contig, consensus_contigs, evaluate_assembly,
        evaluate_assembly_truth, extract_contigs, myers_transitive_reduction,
        sora_transitive_reduction, transitive_reduction, AssemblyMetrics, BidirectedGraph,
        ConsensusConfig, GroundTruth, TransitiveReductionConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let ds = DatasetSpec::Tiny.generate(3);
        let cfg = PipelineConfig::for_small_reads(13, 1);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &cfg, &comm);
        let graph = BidirectedGraph::from_dist_matrix(&out.string_matrix);
        assert_eq!(graph.num_vertices(), ds.reads.len());
    }
}

//! Quickstart: simulate a small long-read dataset, run the diBELLA 2D
//! pipeline, and inspect the resulting string graph, contig layouts and
//! consensus sequences.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dibella2d::prelude::*;

fn main() {
    // 1. Input.  The paper runs on PacBio CLR FASTA files; here we simulate a
    //    small dataset with the same statistics (depth, read length, error
    //    rate) so the example runs in seconds.
    let dataset = DatasetSpec::EColiLike.generate_with_length(40_000, 7);
    println!(
        "simulated {}: {} reads, mean length {:.0} bp, depth {:.1}x, genome {} bp",
        dataset.label,
        dataset.num_reads(),
        dataset.mean_read_length(),
        dataset.achieved_depth(),
        dataset.genome.len()
    );

    // 2. Configure the pipeline.  `for_benchmark` mirrors the paper's settings
    //    (k = 17, BELLA-style reliable k-mer bounds) adapted to the scaled
    //    read length; `nprocs` is the number of virtual MPI ranks.
    let config = PipelineConfig::for_benchmark(17, dataset.config.error_rate, 16);

    // 3. Run Algorithm 1 plus the consensus stage: k-mer counting, C = A·Aᵀ,
    //    alignment, pruning, the transitive reduction of Algorithm 2, contig
    //    layout and POA consensus.
    let comm = CommStats::new();
    let out = run_dibella_2d_on_reads(&dataset.reads, &config, &comm);

    println!("\n== pipeline summary ==");
    println!("reliable k-mers (m):        {}", out.dims.kmers);
    println!("candidate pairs:            {}", out.overlap_stats.candidate_pairs);
    println!("aligned pairs:              {}", out.overlap_stats.aligned_pairs);
    println!("accepted overlaps:          {}", out.overlap_stats.dovetail);
    println!("contained reads removed:    {}", out.overlap_stats.contained_reads);
    println!("overlap matrix nnz (R):     {}", out.overlap_matrix.nnz());
    println!("string matrix nnz (S):      {}", out.string_matrix.nnz());
    println!("transitive edges removed:   {}", out.tr_summary.removed_edges);
    println!("TR iterations:              {}", out.tr_summary.iterations);

    println!("\n== stage timings (s) ==");
    for (label, value) in StageTimings::LABELS.iter().zip(out.timings.values()) {
        println!("{label:>14}: {value:8.3}");
    }
    println!("{:>14}: {:8.3}", "Total", out.timings.total());

    println!("\n== communication (virtual {} ranks) ==", out.grid.nprocs());
    for (phase, counters) in &out.comm.phases {
        println!(
            "{phase:>22}: {:>12} words, {:>8} messages",
            counters.words, counters.messages
        );
    }

    // 4. The pipeline already extracted the contig layouts and polished one
    //    POA consensus per layout — the full OLC loop.
    println!("\n== contigs & consensus ==");
    println!("contig layouts:             {}", out.contigs.len());
    println!("multi-read contigs:         {}", out.consensus_summary.multi_read_contigs);
    println!("POA graph nodes:            {}", out.consensus_summary.poa_nodes);
    if let Some((largest, cons)) = out.contigs.iter().zip(&out.consensus).next() {
        println!(
            "largest contig:             {} reads, {} bp consensus (genome is {} bp)",
            largest.reads.len(),
            cons.consensus.len(),
            dataset.genome.len()
        );
    }

    // 5. Score the assembly against the simulator's known reference.
    let metrics = evaluate_assembly(
        &out.contigs,
        &out.consensus,
        &dataset.origins,
        &dataset.genome,
        &config.consensus,
    );
    println!("NG50:                       {} bp", metrics.ng50);
    println!("consensus identity:         {:.2}%", metrics.mean_identity * 100.0);
    println!("misjoins:                   {}", metrics.misjoins);
}

//! Quickstart: simulate a small long-read dataset, run the diBELLA 2D
//! pipeline, and inspect the resulting string graph and contig layouts.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dibella2d::prelude::*;

fn main() {
    // 1. Input.  The paper runs on PacBio CLR FASTA files; here we simulate a
    //    small dataset with the same statistics (depth, read length, error
    //    rate) so the example runs in seconds.
    let dataset = DatasetSpec::EColiLike.generate_with_length(40_000, 7);
    println!(
        "simulated {}: {} reads, mean length {:.0} bp, depth {:.1}x, genome {} bp",
        dataset.label,
        dataset.num_reads(),
        dataset.mean_read_length(),
        dataset.achieved_depth(),
        dataset.genome.len()
    );

    // 2. Configure the pipeline.  `for_benchmark` mirrors the paper's settings
    //    (k = 17, BELLA-style reliable k-mer bounds) adapted to the scaled
    //    read length; `nprocs` is the number of virtual MPI ranks.
    let config = PipelineConfig::for_benchmark(17, dataset.config.error_rate, 16);

    // 3. Run Algorithm 1: k-mer counting, C = A·Aᵀ, alignment, pruning, and
    //    the transitive reduction of Algorithm 2.
    let comm = CommStats::new();
    let out = run_dibella_2d_on_reads(&dataset.reads, &config, &comm);

    println!("\n== pipeline summary ==");
    println!("reliable k-mers (m):        {}", out.dims.kmers);
    println!("candidate pairs:            {}", out.overlap_stats.candidate_pairs);
    println!("aligned pairs:              {}", out.overlap_stats.aligned_pairs);
    println!("accepted overlaps:          {}", out.overlap_stats.dovetail);
    println!("contained reads removed:    {}", out.overlap_stats.contained_reads);
    println!("overlap matrix nnz (R):     {}", out.overlap_matrix.nnz());
    println!("string matrix nnz (S):      {}", out.string_matrix.nnz());
    println!("transitive edges removed:   {}", out.tr_summary.removed_edges);
    println!("TR iterations:              {}", out.tr_summary.iterations);

    println!("\n== stage timings (s) ==");
    for (label, value) in StageTimings::LABELS.iter().zip(out.timings.values()) {
        println!("{label:>14}: {value:8.3}");
    }
    println!("{:>14}: {:8.3}", "Total", out.timings.total());

    println!("\n== communication (virtual {} ranks) ==", out.grid.nprocs());
    for (phase, counters) in &out.comm.phases {
        println!(
            "{phase:>22}: {:>12} words, {:>8} messages",
            counters.words, counters.messages
        );
    }

    // 4. Extract contig layouts from the string graph (the hand-off to the
    //    consensus step of OLC).
    let lengths: Vec<usize> = (0..dataset.reads.len()).map(|i| dataset.reads.seq(i).len()).collect();
    let contigs = extract_contigs(&out.string_matrix.to_local_csr(), &lengths);
    let multi_read = contigs.iter().filter(|c| c.reads.len() > 1).count();
    println!("\n== contigs ==");
    println!("contig layouts:             {}", contigs.len());
    println!("multi-read contigs:         {multi_read}");
    if let Some(largest) = contigs.first() {
        println!(
            "largest contig:             {} reads, ~{} bp (genome is {} bp)",
            largest.reads.len(),
            largest.estimated_length,
            dataset.genome.len()
        );
    }
}

//! Compare the three overlap-detection strategies the paper discusses on one
//! simulated dataset: diBELLA 2D (SpGEMM + alignment), diBELLA 1D (outer
//! product + alignment) and a minimap2-style minimizer overlapper (no
//! alignment).
//!
//! ```bash
//! cargo run --release --example compare_overlappers
//! ```

use dibella2d::prelude::*;
use dibella2d::seq::count_kmers_distributed;
use std::time::Instant;

fn main() {
    let dataset = DatasetSpec::EColiLike.generate_with_length(30_000, 21);
    println!(
        "dataset: {} reads, {:.1}x depth, {:.0} bp mean read length\n",
        dataset.num_reads(),
        dataset.achieved_depth(),
        dataset.mean_read_length()
    );
    let nprocs = 16;
    let config = PipelineConfig::for_benchmark(17, dataset.config.error_rate, nprocs);

    // Ground truth from the simulator: pairs of reads whose genomic intervals
    // overlap by at least the pipeline's minimum overlap.
    let min_overlap = config.overlap.alignment.min_overlap;
    let mut truth = std::collections::HashSet::new();
    for i in 0..dataset.num_reads() {
        for j in (i + 1)..dataset.num_reads() {
            if dataset.true_overlap(i, j) >= min_overlap {
                truth.insert((i, j));
            }
        }
    }
    println!("ground-truth overlapping pairs (>= {min_overlap} bp): {}\n", truth.len());

    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "method", "pairs", "recall%", "prec.%", "time (s)", "comm words"
    );

    // diBELLA 2D.
    {
        let comm = CommStats::new();
        let table = count_kmers_distributed(&dataset.reads, &config.kmer, nprocs, &comm);
        let start = Instant::now();
        let out = run_overlap_2d(
            &dataset.reads,
            &table,
            &config.overlap,
            ProcessGrid::square_at_most(nprocs),
            &comm,
        );
        let elapsed = start.elapsed().as_secs_f64();
        report("diBELLA 2D (SpGEMM)", pairs_of(&out.overlaps), &truth, elapsed, comm.snapshot().total_words());
    }

    // diBELLA 1D.
    {
        let comm = CommStats::new();
        let table = count_kmers_distributed(&dataset.reads, &config.kmer, nprocs, &comm);
        let start = Instant::now();
        let out = run_overlap_1d(&dataset.reads, &table, &config.overlap, nprocs, &comm);
        let elapsed = start.elapsed().as_secs_f64();
        report("diBELLA 1D (hash)", pairs_of(&out.overlaps), &truth, elapsed, comm.snapshot().total_words());
    }

    // Minimizer overlapper (shared-memory, no alignment — like minimap2).
    {
        let start = Instant::now();
        let cfg = MinimizerConfig { min_span: min_overlap, ..MinimizerConfig::default() };
        let found = minimizer_overlaps(&dataset.reads, &cfg);
        let elapsed = start.elapsed().as_secs_f64();
        let pairs: std::collections::HashSet<(usize, usize)> =
            found.iter().map(|o| (o.read_a, o.read_b)).collect();
        report("minimizer (no align)", pairs, &truth, elapsed, 0);
    }

    println!(
        "\nNote: the minimizer overlapper skips base-level alignment, which is why it is fast\n\
         but reports approximate overlaps; the paper makes the same observation about minimap2."
    );
}

fn pairs_of(
    overlaps: &dibella2d::sparse::DistMat2D<OverlapEdge>,
) -> std::collections::HashSet<(usize, usize)> {
    overlaps
        .to_triples()
        .iter()
        .filter(|(i, j, _)| i < j)
        .map(|(i, j, _)| (i, j))
        .collect()
}

fn report(
    name: &str,
    found: std::collections::HashSet<(usize, usize)>,
    truth: &std::collections::HashSet<(usize, usize)>,
    elapsed: f64,
    comm_words: u64,
) {
    let true_pos = found.intersection(truth).count();
    let recall = 100.0 * true_pos as f64 / truth.len().max(1) as f64;
    let precision = 100.0 * true_pos as f64 / found.len().max(1) as f64;
    println!(
        "{name:<22} {:>9} {recall:>8.1} {precision:>8.1} {elapsed:>10.2} {comm_words:>10}",
        found.len()
    );
}

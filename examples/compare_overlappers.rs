//! Compare the overlap-detection strategies on one simulated dataset:
//! diBELLA 2D with the exact reliable-k-mer matrix (SpGEMM + alignment),
//! diBELLA 2D with the k-min-mer sketch matrix (same SpGEMM + alignment on a
//! ~density× smaller `A`), diBELLA 1D (outer product + alignment) and a
//! minimap2-style minimizer overlapper (no alignment).
//!
//! ```bash
//! cargo run --release --example compare_overlappers
//! ```

use dibella2d::overlap::{
    account_read_exchange_1d, account_read_exchange_2d, align_candidates_with, build_a_matrix,
    detect_candidates_1d, detect_candidates_2d_with, ALIGNED_CELLS_KEY,
};
use dibella2d::prelude::*;
use dibella2d::seq::count_kmers_distributed;
use dibella2d::sketch::SKETCH_NNZ_KEY;
use dibella2d::sparse::DistMat2D;
use std::time::Instant;

fn main() {
    let dataset = DatasetSpec::EColiLike.generate_with_length(30_000, 21);
    println!(
        "dataset: {} reads, {:.1}x depth, {:.0} bp mean read length\n",
        dataset.num_reads(),
        dataset.achieved_depth(),
        dataset.mean_read_length()
    );
    let nprocs = 16;
    let config = PipelineConfig::for_benchmark(17, dataset.config.error_rate, nprocs);

    // Ground truth from the simulator: pairs of reads whose genomic intervals
    // overlap by at least the pipeline's minimum overlap.
    let min_overlap = config.overlap.alignment.min_overlap;
    let mut truth = std::collections::HashSet::new();
    for i in 0..dataset.num_reads() {
        for j in (i + 1)..dataset.num_reads() {
            if dataset.true_overlap(i, j) >= min_overlap {
                truth.insert((i, j));
            }
        }
    }
    println!("ground-truth overlapping pairs (>= {min_overlap} bp): {}\n", truth.len());

    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10} {:>9}",
        "method", "pairs", "recall%", "prec.%", "time (s)", "align (s)", "Mcells/s", "comm words"
    );

    // diBELLA 2D — staged like `run_overlap_2d`, with the alignment stage
    // (the dominant cost, Figures 5-8) timed on its own.
    {
        let comm = CommStats::new();
        let table = count_kmers_distributed(&dataset.reads, &config.kmer, nprocs, &comm);
        let start = Instant::now();
        let grid = ProcessGrid::square_at_most(nprocs);
        let a = build_a_matrix(&dataset.reads, &table, config.overlap.k, grid, grid.nprocs());
        account_read_exchange_2d(&dataset.reads, grid, &comm);
        let candidates =
            detect_candidates_2d_with(&a, &comm, config.overlap.use_symmetric_summa);
        let t_align = Instant::now();
        let (overlaps, _) =
            align_candidates_with(&dataset.reads, &candidates, &config.overlap, Some(&comm));
        let align_secs = t_align.elapsed().as_secs_f64();
        let elapsed = start.elapsed().as_secs_f64();
        let snap = comm.snapshot();
        let cells = snap.extras.get(ALIGNED_CELLS_KEY).copied().unwrap_or(0);
        report(
            "diBELLA 2D (SpGEMM)",
            pairs_of(&overlaps),
            &truth,
            elapsed,
            Some((align_secs, cells)),
            snap.total_words(),
        );
    }

    // diBELLA 2D on the k-min-mer sketch matrix — same SUMMA + alignment,
    // but the occurrence matrix has one column per k-min-mer (HPC + density
    // minimizers) instead of one per reliable k-mer, so there is no k-mer
    // counting stage and far fewer nonzeros to broadcast and multiply.
    {
        let comm = CommStats::new();
        let start = Instant::now();
        let grid = ProcessGrid::square_at_most(nprocs);
        let (a, info) =
            build_sketch_matrix(&dataset.reads, &config.sketch, grid, grid.nprocs(), &comm);
        account_read_exchange_2d(&dataset.reads, grid, &comm);
        let candidates =
            detect_candidates_2d_with(&a, &comm, config.overlap.use_symmetric_summa);
        let t_align = Instant::now();
        let (overlaps, _) =
            align_candidates_with(&dataset.reads, &candidates, &config.overlap, Some(&comm));
        let align_secs = t_align.elapsed().as_secs_f64();
        let elapsed = start.elapsed().as_secs_f64();
        let snap = comm.snapshot();
        let cells = snap.extras.get(ALIGNED_CELLS_KEY).copied().unwrap_or(0);
        report(
            "diBELLA 2D (k-min-mer)",
            pairs_of(&overlaps),
            &truth,
            elapsed,
            Some((align_secs, cells)),
            snap.total_words(),
        );
        println!(
            "  \\- sketch A: {} nnz, {} k-min-mer columns, density {:.3}, HPC ratio {:.2}",
            snap.extras.get(SKETCH_NNZ_KEY).copied().unwrap_or(0),
            info.columns,
            info.achieved_density(),
            info.hpc_ratio(),
        );
    }

    // diBELLA 1D — staged like `run_overlap_1d`.
    {
        let comm = CommStats::new();
        let table = count_kmers_distributed(&dataset.reads, &config.kmer, nprocs, &comm);
        let start = Instant::now();
        let grid = ProcessGrid::square(1);
        let a = build_a_matrix(&dataset.reads, &table, config.overlap.k, grid, nprocs);
        let candidates_local = detect_candidates_1d(&a.to_local_csr(), nprocs, &comm);
        account_read_exchange_1d(&dataset.reads, &candidates_local, nprocs, &comm);
        let candidates = DistMat2D::from_triples(grid, &candidates_local.to_triples());
        let t_align = Instant::now();
        let (overlaps, _) =
            align_candidates_with(&dataset.reads, &candidates, &config.overlap, Some(&comm));
        let align_secs = t_align.elapsed().as_secs_f64();
        let elapsed = start.elapsed().as_secs_f64();
        let snap = comm.snapshot();
        let cells = snap.extras.get(ALIGNED_CELLS_KEY).copied().unwrap_or(0);
        report(
            "diBELLA 1D (hash)",
            pairs_of(&overlaps),
            &truth,
            elapsed,
            Some((align_secs, cells)),
            snap.total_words(),
        );
    }

    // Minimizer overlapper (shared-memory, no alignment — like minimap2).
    {
        let start = Instant::now();
        let cfg = MinimizerConfig { min_span: min_overlap, ..MinimizerConfig::default() };
        let found = minimizer_overlaps(&dataset.reads, &cfg);
        let elapsed = start.elapsed().as_secs_f64();
        let pairs: std::collections::HashSet<(usize, usize)> =
            found.iter().map(|o| (o.read_a, o.read_b)).collect();
        report("minimizer (no align)", pairs, &truth, elapsed, None, 0);
    }

    println!(
        "\nNote: the minimizer overlapper skips base-level alignment, which is why it is fast\n\
         but reports approximate overlaps; the paper makes the same observation about minimap2."
    );
}

fn pairs_of(
    overlaps: &dibella2d::sparse::DistMat2D<OverlapEdge>,
) -> std::collections::HashSet<(usize, usize)> {
    overlaps
        .to_triples()
        .iter()
        .filter(|(i, j, _)| i < j)
        .map(|(i, j, _)| (i, j))
        .collect()
}

fn report(
    name: &str,
    found: std::collections::HashSet<(usize, usize)>,
    truth: &std::collections::HashSet<(usize, usize)>,
    elapsed: f64,
    alignment: Option<(f64, u64)>,
    comm_words: u64,
) {
    let true_pos = found.intersection(truth).count();
    let recall = 100.0 * true_pos as f64 / truth.len().max(1) as f64;
    let precision = 100.0 * true_pos as f64 / found.len().max(1) as f64;
    // Alignment-stage wall clock and DP-cell throughput ("-" for methods
    // that skip base-level alignment entirely).
    let (align_s, rate) = match alignment {
        Some((secs, cells)) if secs > 0.0 => {
            (format!("{secs:.2}"), format!("{:.1}", cells as f64 / secs / 1e6))
        }
        Some((secs, _)) => (format!("{secs:.2}"), "-".to_string()),
        None => ("-".to_string(), "-".to_string()),
    };
    println!(
        "{name:<22} {:>9} {recall:>8.1} {precision:>8.1} {elapsed:>10.2} {align_s:>10} {rate:>10} {comm_words:>9}",
        found.len()
    );
}

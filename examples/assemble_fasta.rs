//! Assemble a FASTA file of long reads end to end: string-graph contig
//! layouts **and** their POA consensus sequences, written as FASTA.
//!
//! This is the "real input" entry point: point it at a FASTA file of long
//! reads (PacBio CLR-like) and it runs the full diBELLA 2D pipeline
//! (overlap → layout → consensus) and writes the contig layout report plus a
//! consensus FASTA next to the input.  Without an argument it first simulates
//! a dataset, writes it to a temporary FASTA file, and assembles that — so
//! the example is runnable out of the box.
//!
//! ```bash
//! cargo run --release --example assemble_fasta -- reads.fa [virtual-ranks]
//! cargo run --release --example assemble_fasta            # simulated input
//! ```

use dibella2d::prelude::*;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nprocs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    let (path, error_rate): (PathBuf, f64) = match args.get(1) {
        Some(p) => (PathBuf::from(p), 0.14),
        None => {
            // No input given: simulate a C. elegans-like dataset (scaled) and
            // write it next to the target directory.
            let ds = DatasetSpec::CElegansLike.generate_with_length(30_000, 11);
            let path = std::env::temp_dir().join("dibella2d_example_reads.fa");
            std::fs::write(&path, write_fasta(&ds.reads)).expect("writing simulated FASTA");
            println!(
                "no input given; simulated {} ({} reads) -> {}",
                ds.label,
                ds.reads.len(),
                path.display()
            );
            (path, ds.config.error_rate)
        }
    };

    let reads = parse_fasta_file(&path).expect("parsing FASTA input");
    println!(
        "assembling {} reads ({:.1} Mbp) from {} on {} virtual ranks",
        reads.len(),
        reads.total_bases() as f64 / 1e6,
        path.display(),
        nprocs
    );

    // Choose k and thresholds for the observed read length: the paper's k=17
    // works for multi-kb reads; shorter simulated reads need a smaller seed.
    let mean_len = reads.mean_read_length();
    let k = if mean_len >= 3_000.0 { 17 } else { 13 };
    let mut config = PipelineConfig::for_benchmark(k, error_rate, nprocs);
    if mean_len < 1_500.0 {
        config = PipelineConfig::for_small_reads(k, nprocs);
    }

    let comm = CommStats::new();
    let out = run_dibella_2d_on_reads(&reads, &config, &comm);

    println!("\nstage timings (s):");
    for (label, value) in StageTimings::LABELS.iter().zip(out.timings.values()) {
        println!("  {label:>13}: {value:8.3}");
    }
    println!("  {:>13}: {:8.3}", "Total", out.timings.total());
    println!(
        "\noverlaps: {} accepted, {} contained reads removed, {} internal matches rejected",
        out.overlap_stats.dovetail, out.overlap_stats.contained_reads, out.overlap_stats.internal
    );
    println!(
        "string graph: {} edges after removing {} transitive edges in {} rounds",
        out.string_matrix.nnz(),
        out.tr_summary.removed_edges,
        out.tr_summary.iterations
    );

    // Contig layouts (already extracted by the pipeline's consensus stage).
    let out_path = path.with_extension("contigs.txt");
    let mut report = String::new();
    for (i, contig) in out.contigs.iter().enumerate().filter(|(_, c)| c.reads.len() > 1) {
        report.push_str(&format!(
            "contig_{i}\t{} reads\t~{} bp\t{}\n",
            contig.reads.len(),
            contig.estimated_length,
            contig
                .reads
                .iter()
                .map(|&r| reads.name(r))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    std::fs::write(&out_path, &report).expect("writing contig report");
    let multi: Vec<usize> = out.contigs.iter().map(|c| c.reads.len()).filter(|&l| l > 1).collect();
    println!(
        "\nwrote {} multi-read contig layouts to {} (largest spans {} reads)",
        multi.len(),
        out_path.display(),
        multi.iter().max().copied().unwrap_or(0)
    );

    // Consensus FASTA: one polished sequence per multi-read contig.
    let mut consensus_reads = dibella2d::seq::ReadSet::new();
    for (i, (contig, cons)) in out.contigs.iter().zip(&out.consensus).enumerate() {
        if contig.reads.len() > 1 {
            consensus_reads.push(dibella2d::seq::ReadRecord {
                name: format!("contig_{i}_reads_{}_len_{}", contig.reads.len(), cons.consensus.len()),
                seq: cons.consensus.clone(),
            });
        }
    }
    let fasta_path = path.with_extension("consensus.fa");
    std::fs::write(&fasta_path, write_fasta(&consensus_reads)).expect("writing consensus FASTA");
    println!(
        "wrote {} consensus sequences ({} bp) to {}",
        consensus_reads.len(),
        consensus_reads.total_bases(),
        fasta_path.display()
    );
}

//! Transitive reduction close-up: run Algorithm 2 against Myers' sequential
//! algorithm and the SORA-style vertex-centric baseline on synthetic overlap
//! graphs of growing size, checking that they agree and comparing runtimes.
//!
//! ```bash
//! cargo run --release --example transitive_reduction_demo
//! ```

use dibella2d::prelude::*;
use dibella2d::strgraph::fixtures::{tiling_overlap_graph, to_dist};
use std::time::Instant;

fn main() {
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "reads", "edges", "parallel(s)", "myers(s)", "sora(s)", "reduced", "agree"
    );
    for &n in &[200usize, 1_000, 4_000, 10_000] {
        let span = 8;
        let triples = tiling_overlap_graph(n, span, true);
        let local = CsrMatrix::from_triples(&triples);
        let grid = ProcessGrid::square(16);
        let dist = to_dist(&triples, grid);
        let cfg = TransitiveReductionConfig { fuzz: 60, max_iterations: 16 };

        let comm = CommStats::new();
        let start = Instant::now();
        let parallel = transitive_reduction(&dist, &cfg, &comm);
        let t_parallel = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let (myers, _) = myers_transitive_reduction(&local, cfg.fuzz);
        let t_myers = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let (sora, sora_stats) = sora_transitive_reduction(&local, cfg.fuzz);
        let t_sora = start.elapsed().as_secs_f64();

        let parallel_local = parallel.string_matrix.to_local_csr();
        let agree = parallel_local.pattern() == myers.pattern()
            && parallel_local.pattern() == sora.pattern();

        println!(
            "{n:>8} {:>10} {t_parallel:>12.3} {t_myers:>12.3} {t_sora:>12.3} {:>10} {:>8}",
            local.nnz(),
            local.nnz() - parallel_local.nnz(),
            if agree { "yes" } else { "NO" }
        );
        if !agree {
            eprintln!("  !! the three implementations disagree at n = {n}");
        }
        if n == 10_000 {
            println!(
                "\nat n = {n}: parallel TR ran {:.1}x faster than the SORA-style baseline \
                 ({} supersteps, {} adjacency records shuffled)",
                t_sora / t_parallel,
                sora_stats.supersteps,
                sora_stats.messages
            );
            println!(
                "communication recorded for the parallel run: {} words over {} messages",
                comm.words(CommPhase::TransitiveReduction),
                comm.messages(CommPhase::TransitiveReduction)
            );
        }
    }
}

//! Vendored stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io (see `vendor/README.md`),
//! so this crate reimplements the pieces the test suites rely on:
//!
//! * the [`proptest!`] macro (with and without `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer ranges
//!   and tuples,
//! * [`arbitrary::any`] for the primitive types,
//! * [`collection::vec`] / [`collection::btree_set`] / [`collection::hash_set`],
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! The semantics are deliberately simpler than real proptest: cases are
//! generated from a fixed-seed deterministic PRNG (every `cargo test` run
//! sees the same inputs, which suits a reproduction repository), and there is
//! **no shrinking** — a failing case panics with the formatted assertion
//! message.  Swapping the real proptest back in is a one-line manifest change.

/// Strategy abstraction: a recipe for generating values of one type.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f` (proptest's `prop_map`).
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// A strategy that always yields a clone of one value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` — the default strategy of a type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a default full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Sample a value from the type's full domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The default strategy for `T` (proptest's `any`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies (`vec`, `btree_set`, `hash_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeSet, HashSet};
    use std::hash::Hash;

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum number of elements.
        pub min: usize,
        /// Maximum number of elements (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + (rng.next_u64() as usize) % (self.max - self.min + 1)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with element strategy `S`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `BTreeSet`s whose size *aims* for `size` (duplicates sampled
    /// from small domains can make the result smaller, as in real proptest).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `HashSet<T>` with element strategy `S`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `HashSet`s whose size aims for `size`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = HashSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Test-runner configuration and the deterministic PRNG behind case
/// generation.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case (no shrinking in this shim).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 stream used for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator all properties share.
        pub fn deterministic() -> Self {
            TestRng { state: 0x5DEECE66D_u64 ^ 0x9E3779B97F4A7C15 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Everything a `use proptest::prelude::*;` is expected to bring into scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Define property tests.  Supports the two forms the workspace uses:
/// with a leading `#![proptest_config(...)]` and without.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr); $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let Err(err) = result {
                    panic!("property {} failed at case {case}: {err}", stringify!($name));
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let strat = (0usize..10, 5i64..8).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((5..18).contains(&v));
        }
    }

    #[test]
    fn collections_respect_size_targets() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..100 {
            let v = crate::collection::vec(0u8..4, 3..6).generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            let s = crate::collection::hash_set(any::<u64>(), 1..50).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 50);
            let b = crate::collection::btree_set((0usize..3, 0usize..3), 0..40).generate(&mut rng);
            assert!(b.len() <= 9, "only 9 distinct pairs exist");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_form_with_config(x in 0u64..100, y in 1usize..4) {
            prop_assert!(x < 100);
            prop_assert_eq!(y * 2 / 2, y);
        }
    }

    proptest! {
        #[test]
        fn macro_form_without_config(v in crate::collection::vec(0i64..50, 0..20)) {
            prop_assert!(v.iter().all(|&x| x < 50));
            prop_assert_ne!(v.len(), usize::MAX);
        }
    }
}

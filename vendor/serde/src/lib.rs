//! Vendored stand-in for the `serde` derive macros.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the minimal surface it actually uses (see
//! `vendor/README.md`).  The diBELLA 2D crates only *annotate* types with
//! `#[derive(Serialize, Deserialize)]` so that downstream users can flip the
//! real `serde` back on; nothing in the workspace serialises at runtime.
//! These derives therefore expand to nothing, and `#[serde(...)]` field
//! attributes are accepted and ignored.
//!
//! Swapping in the real `serde` is a one-line change in the workspace
//! manifest (`serde = { version = "1", features = ["derive"] }` instead of
//! the `vendor/serde` path).

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize` (derive macro only).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize` (derive macro only).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Vendored stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io (see `vendor/README.md`).
//! The bench targets under `crates/bench/benches/` use `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input` and `Bencher::iter`.  This shim implements that surface
//! with a simple adaptive timing loop (warm-up, then iterate until a time
//! budget) and prints one `group/name ... mean ± stddev` line per benchmark.
//! There is no statistical regression analysis, HTML report, or CLI filter —
//! swapping the real criterion back in is a one-line manifest change.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark driver.
pub struct Criterion {
    /// Minimum measurement time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.measurement_time, f);
        self
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the minimum measurement time for this group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement_time = time;
        self
    }

    /// Accepted for API compatibility; this shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.criterion.measurement_time, f);
        self
    }

    /// Benchmark a closure parameterised by `input` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.criterion.measurement_time, |b| f(b, input));
        self
    }

    /// End the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: a name, optionally tagged with a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id printed as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Conversion into a printable benchmark id (strings and [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The printable form of the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// The per-benchmark timing handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    /// Run `f` repeatedly until the measurement budget is spent, recording
    /// one sample per call.
    // A bench harness is by definition a wall-clock consumer (clippy.toml
    // bans Instant::now elsewhere in the workspace).
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (not recorded).
        black_box(f());
        let started = Instant::now();
        while started.elapsed() < self.budget || self.samples.len() < 5 {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if self.samples.len() >= 1_000_000 {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, budget: Duration, mut f: F) {
    let mut bencher = Bencher { samples: Vec::new(), budget };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let n = bencher.samples.len() as f64;
    let mean = bencher.samples.iter().map(Duration::as_secs_f64).sum::<f64>() / n;
    let var = bencher
        .samples
        .iter()
        .map(|s| (s.as_secs_f64() - mean).powi(2))
        .sum::<f64>()
        / n;
    println!(
        "{label:<48} {:>12} ± {} ({} samples)",
        format_secs(mean),
        format_secs(var.sqrt()),
        bencher.samples.len()
    );
}

fn format_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_compiles_and_runs() {
        let mut c = Criterion { measurement_time: Duration::from_millis(5) };
        let mut group = c.benchmark_group("demo");
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let n = 64usize;
        group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }
}

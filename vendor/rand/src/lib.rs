//! Vendored stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io (see `vendor/README.md`).
//! The workspace needs a deterministic, seedable PRNG for read simulation and
//! test-data generation: `SmallRng::seed_from_u64`, `gen_range` over integer
//! and float ranges, `gen_bool` and `gen::<f64>()`.  This shim implements
//! exactly that on top of xoshiro256++ (the algorithm behind rand's own
//! `SmallRng` on 64-bit targets), seeded through SplitMix64.
//!
//! The sample streams differ from the real `rand` crate's, so datasets
//! simulated with a given seed are reproducible *within* this workspace but
//! not bit-identical to runs against the real crate — which is fine, because
//! everything downstream treats the simulator as the source of ground truth.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a value from the "standard" distribution of `T`
    /// (uniform over the full domain for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Sample one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits => uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `Rng::gen_range`, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Sample a value uniformly from this range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                (start as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// Small, fast generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm rand 0.8's `SmallRng` uses on 64-bit
    /// targets.  Not cryptographically secure; statistically solid for
    /// simulation and tests.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000usize), b.gen_range(0..1_000_000usize));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..64).filter(|_| a.gen_range(0..2u8) == c.gen_range(0..2u8)).count();
        assert!(same < 64, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u8);
            assert!(w <= 4);
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let s = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "observed {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_range_sampling_covers_values() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4u8) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}

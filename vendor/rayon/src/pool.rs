//! A work-stealing thread pool built on scoped threads and a chunked atomic
//! work queue.
//!
//! Work items are the indices `0..n` of a parallel loop.  All workers
//! (including the calling thread) repeatedly claim the next chunk of indices
//! from a shared [`AtomicUsize`] cursor; a worker that finishes early simply
//! claims — *steals* — the next chunk instead of idling, which gives the
//! dynamic load balance of a stealing deque without per-worker queues.
//!
//! Two properties matter to the rest of the workspace:
//!
//! * **Determinism.** Results are always written into slots addressed by the
//!   item index ([`SharedSlots`]), never appended, so the assembled output is
//!   bit-identical for every thread count and every interleaving.  Tests pin
//!   the worker count with [`with_thread_limit`] only to exercise specific
//!   schedules, not to get reproducible answers.
//! * **A global thread budget.** Parallel loops nest (per-rank SUMMA blocks
//!   on the outside, per-row SpGEMM on the inside).  Spawning
//!   `limit × limit` threads would oversubscribe the host, so workers are
//!   reserved against a process-wide budget of `available_parallelism() - 1`
//!   extra threads; a nested loop that finds the budget exhausted runs inline
//!   on its caller.  An explicit [`with_thread_limit`] pin bypasses the
//!   budget (tests rely on exact worker counts).

use std::cell::{Cell, UnsafeCell};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of *extra* worker threads currently running across the process
/// (the budget-governed kind; explicit pins bypass this).
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Explicit per-context worker-count pin, propagated into spawned workers.
    static THREAD_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of hardware threads (1 if it cannot be determined).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// The worker count parallel loops in this context will use: the innermost
/// [`with_thread_limit`] pin, or the hardware thread count.
pub fn current_thread_limit() -> usize {
    THREAD_LIMIT.with(|c| c.get()).unwrap_or_else(hardware_threads).max(1)
}

/// Run `body` with the worker count for contained parallel loops pinned to
/// `threads` (propagated into nested loops, restored afterwards).
pub fn with_thread_limit<T>(threads: usize, body: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_LIMIT.with(|c| c.set(prev));
        }
    }
    let prev = THREAD_LIMIT.with(|c| c.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    body()
}

/// Reserve up to `want` extra workers against the global budget; returns how
/// many were granted (0 means: run inline).  Pair with [`WorkerLease`]'s drop.
fn reserve_extra_workers(want: usize, explicit: bool) -> usize {
    if want == 0 {
        return 0;
    }
    if explicit {
        // An explicit pin means "use exactly this many workers" — tests use it
        // to exercise specific schedules, so honour it even when oversubscribed.
        ACTIVE_WORKERS.fetch_add(want, Ordering::Relaxed);
        return want;
    }
    let budget = hardware_threads().saturating_sub(1);
    let mut current = ACTIVE_WORKERS.load(Ordering::Relaxed);
    loop {
        let grant = want.min(budget.saturating_sub(current));
        if grant == 0 {
            return 0;
        }
        match ACTIVE_WORKERS.compare_exchange_weak(
            current,
            current + grant,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return grant,
            Err(now) => current = now,
        }
    }
}

/// RAII release of reserved workers (also on panic, so a failing test does
/// not starve the budget for the rest of the process).
struct WorkerLease(usize);

impl Drop for WorkerLease {
    fn drop(&mut self) {
        if self.0 > 0 {
            ACTIVE_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
        }
    }
}

/// Execute `body(&mut state, index)` for every index in `0..n` on the pool.
///
/// `init` creates one `state` per participating worker thread, created lazily
/// on the worker's first chunk and reused across all chunks it claims — this
/// is how SpGEMM reuses one accumulator across many rows.  Chunks are claimed
/// from a shared atomic cursor (the work-stealing queue); the calling thread
/// participates, and panics in workers propagate to the caller.
pub fn for_each_index<St>(
    n: usize,
    init: impl Fn() -> St + Sync,
    body: impl Fn(&mut St, usize) + Sync,
) {
    if n == 0 {
        return;
    }
    let limit = current_thread_limit().min(n);
    let explicit = THREAD_LIMIT.with(|c| c.get()).is_some();
    let lease = WorkerLease(reserve_extra_workers(limit - 1, explicit));

    // Chunks small enough for stealing to balance skewed rows, large enough
    // to amortise the claim; sequential fallback uses one maximal chunk.
    let workers = lease.0 + 1;
    let chunk = if workers == 1 { n } else { (n / (workers * 8)).clamp(1, 1024) };
    let cursor = AtomicUsize::new(0);

    let work = |state: &mut Option<St>| loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            break;
        }
        let end = (start + chunk).min(n);
        let st = state.get_or_insert_with(&init);
        for i in start..end {
            body(st, i);
        }
    };

    if lease.0 == 0 {
        work(&mut None);
        return;
    }
    let pin = THREAD_LIMIT.with(|c| c.get());
    std::thread::scope(|scope| {
        for _ in 0..lease.0 {
            let work = &work;
            scope.spawn(move || {
                if let Some(pin) = pin {
                    THREAD_LIMIT.with(|c| c.set(Some(pin)));
                }
                work(&mut None);
            });
        }
        work(&mut None);
    });
}

/// Evaluate `f(i)` for every `i` in `0..n` on the pool, returning the results
/// in index order.
pub fn map_indexed<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    map_indexed_with(n, || (), move |(), i| f(i))
}

/// [`map_indexed`] with per-worker state: `init` runs once per participating
/// worker and the state is reused across every index that worker claims
/// (e.g. a scatter accumulator reused across SpGEMM rows).
pub fn map_indexed_with<T: Send, St>(
    n: usize,
    init: impl Fn() -> St + Sync,
    f: impl Fn(&mut St, usize) -> T + Sync,
) -> Vec<T> {
    let out: SharedSlots<T> = SharedSlots::empty(n);
    for_each_index(n, init, |st, i| out.put(i, f(st, i)));
    out.into_options()
        .into_iter()
        .map(|slot| slot.expect("pool worker filled every slot"))
        .collect()
}

/// Apply `f(i, &mut items[i])` to every element on the pool.
pub fn for_each_mut<T: Send>(items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    for_each_mut_with(items, || (), move |(), i, item| f(i, item))
}

/// [`for_each_mut`] with per-worker state (see [`map_indexed_with`]).
pub fn for_each_mut_with<T: Send, St>(
    items: &mut [T],
    init: impl Fn() -> St + Sync,
    f: impl Fn(&mut St, usize, &mut T) + Sync,
) {
    struct Ptr<T>(*mut T);
    // SAFETY: the pointer is only dereferenced at distinct indices (each index
    // is claimed by exactly one worker chunk), so no two threads alias.
    unsafe impl<T: Send> Send for Ptr<T> {}
    unsafe impl<T: Send> Sync for Ptr<T> {}
    let base = Ptr(items.as_mut_ptr());
    let n = items.len();
    let base = &base;
    for_each_index(n, init, move |st, i| {
        debug_assert!(i < n);
        // SAFETY: `i < items.len()` and every index is visited exactly once,
        // so this is an exclusive reference to a distinct element.
        let item = unsafe { &mut *base.0.add(i) };
        f(st, i, item);
    });
}

/// Run `a` and `b` in parallel when a worker can be reserved, else
/// sequentially.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    let pin = THREAD_LIMIT.with(|c| c.get());
    // An explicit pin of 1 means "stay sequential"; larger pins reserve
    // outside the budget like every other pinned construct.
    let explicit = pin.is_some();
    if pin == Some(1) {
        return (a(), b());
    }
    let lease = WorkerLease(reserve_extra_workers(1, explicit));
    if lease.0 == 0 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let ha = scope.spawn(move || {
            if let Some(pin) = pin {
                THREAD_LIMIT.with(|c| c.set(Some(pin)));
            }
            a()
        });
        let rb = b();
        (ha.join().expect("join worker panicked"), rb)
    })
}

/// Fixed-size per-index result slots shared between workers.
///
/// Each slot is written (`put`) or consumed (`take`) by exactly one worker —
/// the chunked cursor hands every index to exactly one claimant — which makes
/// the interior mutability sound without per-slot locks.
pub struct SharedSlots<T> {
    slots: Vec<UnsafeCell<Option<T>>>,
}

// SAFETY: workers only access disjoint slots (see type-level docs), and T
// crossing threads requires T: Send.
unsafe impl<T: Send> Sync for SharedSlots<T> {}

impl<T> SharedSlots<T> {
    /// `n` empty slots.
    pub fn empty(n: usize) -> Self {
        Self { slots: (0..n).map(|_| UnsafeCell::new(None)).collect() }
    }

    /// Slots pre-filled with `items` (for consuming sources).
    pub fn new(items: Vec<T>) -> Self {
        Self { slots: items.into_iter().map(|t| UnsafeCell::new(Some(t))).collect() }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Move the value out of slot `i`.
    ///
    /// # Panics
    /// Panics if the slot is empty (already taken or never filled).
    pub fn take(&self, i: usize) -> T {
        // SAFETY: each index is claimed by exactly one worker, so no other
        // thread accesses slot `i` concurrently.
        unsafe { (*self.slots[i].get()).take().expect("slot taken twice") }
    }

    /// Store `value` into slot `i`.
    pub fn put(&self, i: usize, value: T) {
        // SAFETY: as for `take` — slot `i` is owned by the claiming worker.
        unsafe { *self.slots[i].get() = Some(value) }
    }

    /// Unwrap into the per-index options (after all workers joined).
    pub fn into_options(self) -> Vec<Option<T>> {
        self.slots.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            let calls = AtomicUsize::new(0);
            let sum = AtomicU64::new(0);
            with_thread_limit(threads, || {
                for_each_index(
                    1000,
                    || (),
                    |(), i| {
                        calls.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(i as u64, Ordering::Relaxed);
                    },
                );
            });
            assert_eq!(calls.load(Ordering::Relaxed), 1000, "threads={threads}");
            assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
        }
    }

    #[test]
    fn map_indexed_is_in_order() {
        for threads in [1usize, 2, 7] {
            let got = with_thread_limit(threads, || map_indexed(257, |i| i * i));
            let want: Vec<usize> = (0..257).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn for_each_mut_touches_every_element_once() {
        for threads in [1usize, 2, 5] {
            let mut items = vec![0usize; 123];
            with_thread_limit(threads, || {
                for_each_mut(&mut items, |i, slot| *slot += i + 1);
            });
            for (i, v) in items.iter().enumerate() {
                assert_eq!(*v, i + 1, "threads={threads}");
            }
        }
    }

    #[test]
    fn worker_state_is_reused_across_chunks() {
        // Count distinct states: must be at most the worker count.
        let states = AtomicUsize::new(0);
        with_thread_limit(4, || {
            for_each_index(
                10_000,
                || {
                    states.fetch_add(1, Ordering::Relaxed);
                    0u64
                },
                |st, _| *st += 1,
            );
        });
        assert!(states.load(Ordering::Relaxed) <= 4, "more states than workers");
    }

    #[test]
    fn thread_limit_propagates_into_workers_and_restores() {
        let observed = with_thread_limit(3, || map_indexed(8, |_| current_thread_limit()));
        assert_eq!(observed, vec![3; 8]);
        let outer = with_thread_limit(3, || {
            let inner = with_thread_limit(1, current_thread_limit);
            assert_eq!(inner, 1);
            current_thread_limit()
        });
        assert_eq!(outer, 3);
    }

    #[test]
    fn budget_is_released_after_a_panicking_loop() {
        let before = ACTIVE_WORKERS.load(Ordering::Relaxed);
        let result = std::panic::catch_unwind(|| {
            with_thread_limit(4, || {
                for_each_index(64, || (), |(), i| {
                    if i == 13 {
                        panic!("boom");
                    }
                });
            })
        });
        assert!(result.is_err());
        assert_eq!(ACTIVE_WORKERS.load(Ordering::Relaxed), before, "leaked workers");
    }

    #[test]
    fn join_honours_and_propagates_the_thread_pin() {
        // Pinned to 1: both closures must run on the calling thread.
        let caller = std::thread::current().id();
        let (ta, tb) = with_thread_limit(1, || {
            join(|| std::thread::current().id(), || std::thread::current().id())
        });
        assert_eq!(ta, caller);
        assert_eq!(tb, caller);
        // Pinned wider: a spawned first closure must still see the pin.
        let (limit_a, limit_b) =
            with_thread_limit(3, || join(current_thread_limit, current_thread_limit));
        assert_eq!(limit_a, 3, "pin must propagate into the spawned side");
        assert_eq!(limit_b, 3);
    }

    #[test]
    fn zero_items_is_a_no_op() {
        for_each_index(0, || unreachable!("no state needed"), |_: &mut (), _| {});
        assert!(map_indexed(0, |i| i).is_empty());
        for_each_mut::<u8>(&mut [], |_, _| unreachable!());
    }

    #[test]
    fn shared_slots_roundtrip() {
        let s = SharedSlots::new(vec![1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.take(1), 2);
        s.put(1, 20);
        assert_eq!(s.into_options(), vec![Some(1), Some(20), Some(3)]);
    }
}

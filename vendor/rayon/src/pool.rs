//! A work-stealing thread pool built on scoped threads and a chunked atomic
//! work queue.
//!
//! Work items are the indices `0..n` of a parallel loop.  All workers
//! (including the calling thread) repeatedly claim the next chunk of indices
//! from a shared [`AtomicUsize`] cursor; a worker that finishes early simply
//! claims — *steals* — the next chunk instead of idling, which gives the
//! dynamic load balance of a stealing deque without per-worker queues.
//!
//! Two properties matter to the rest of the workspace:
//!
//! * **Determinism.** Results are always written into slots addressed by the
//!   item index ([`SharedSlots`]), never appended, so the assembled output is
//!   bit-identical for every thread count and every interleaving.  Tests pin
//!   the worker count with [`with_thread_limit`] only to exercise specific
//!   schedules, not to get reproducible answers.
//! * **A global thread budget.** Parallel loops nest (per-rank SUMMA blocks
//!   on the outside, per-row SpGEMM on the inside).  Spawning
//!   `limit × limit` threads would oversubscribe the host, so workers are
//!   reserved against a process-wide budget of `available_parallelism() - 1`
//!   extra threads; a nested loop that finds the budget exhausted runs inline
//!   on its caller.  An explicit [`with_thread_limit`] pin bypasses the
//!   budget (tests rely on exact worker counts).

use std::cell::{Cell, UnsafeCell};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of *extra* worker threads currently running across the process
/// (the budget-governed kind; explicit pins bypass this).
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Explicit per-context worker-count pin, propagated into spawned workers.
    static THREAD_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };

    /// Active steal-order schedule override, propagated into spawned workers.
    static STEAL_SCHEDULE: Cell<Option<StealSchedule>> = const { Cell::new(None) };
}

/// How a [`StealSchedule`] derives its chunk-claim order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealOrder {
    /// Ascending chunk order — the production claim order, but at the
    /// schedule's fixed chunk count.
    Natural,
    /// The `index`-th permutation of the chunk order in lexicographic
    /// (Lehmer-code) enumeration; indices wrap modulo `chunks!`, so
    /// `0..chunks!` enumerates every permutation exactly once.
    Permutation(u64),
    /// A seeded Fisher–Yates shuffle of the chunk order (for randomized
    /// exploration at chunk counts too large to enumerate).
    Shuffled(u64),
}

/// A deterministic adversarial schedule for the pool's chunk-claim order.
///
/// Production runs split `0..n` into heuristic-sized chunks claimed in
/// ascending order; which *worker* claims which chunk is decided by the OS
/// scheduler, and the pool's determinism claim is that the output is
/// bit-identical regardless.  A `StealSchedule` makes that claim testable by
/// pinning everything the OS normally decides implicitly: the loop is split
/// into **exactly** `min(n, chunks)` near-equal chunks and workers claim them
/// in a chosen permutation of the natural order, optionally yielding before
/// every claim so the OS is invited to interleave workers adversarially.
/// Because the permutation is data-independent, an explorer can enumerate all
/// `chunks!` orders exhaustively at small chunk counts and sample seeded
/// shuffles at large ones (see `dibella-testutil`'s schedule explorer).
///
/// Activate with [`with_steal_schedule`]; the schedule propagates into nested
/// parallel loops and spawned workers like the thread-limit pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealSchedule {
    /// Split every parallel loop into exactly `min(n, chunks)` chunks.
    pub chunks: usize,
    /// The chunk-claim order.
    pub order: StealOrder,
    /// Call `std::thread::yield_now()` before every chunk claim, inviting the
    /// OS to reorder workers between claims.
    pub yield_before_claim: bool,
}

impl StealSchedule {
    /// The `permutation`-th of the `chunks!` exhaustive claim orders, with
    /// yield injection on.
    pub fn exhaustive(chunks: usize, permutation: u64) -> Self {
        StealSchedule { chunks, order: StealOrder::Permutation(permutation), yield_before_claim: true }
    }

    /// A seeded random claim order at `chunks` chunks, with yield injection on.
    pub fn randomized(chunks: usize, seed: u64) -> Self {
        StealSchedule { chunks, order: StealOrder::Shuffled(seed), yield_before_claim: true }
    }

    /// The claim order for a loop that was split into `k` chunks: a
    /// permutation of `0..k` (deterministic in the schedule alone).
    fn claim_order(&self, k: usize) -> Vec<usize> {
        match self.order {
            StealOrder::Natural => (0..k).collect(),
            StealOrder::Permutation(index) => {
                // Decode the factorial-base (Lehmer) digits of `index mod k!`,
                // least-significant first, then pick from the remaining pool.
                let mut digits = vec![0usize; k];
                let mut rest = index;
                for i in 1..=k {
                    digits[k - i] = (rest % i as u64) as usize;
                    rest /= i as u64;
                }
                let mut pool: Vec<usize> = (0..k).collect();
                digits.into_iter().map(|d| pool.remove(d)).collect()
            }
            StealOrder::Shuffled(seed) => {
                let mut state = seed;
                let mut order: Vec<usize> = (0..k).collect();
                for i in (1..k).rev() {
                    let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
                    order.swap(i, j);
                }
                order
            }
        }
    }
}

/// SplitMix64 step — the classic seed-expansion generator (public domain,
/// Steele et al.); self-contained so the shim needs no `rand` dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The steal schedule parallel loops in this context will run under, if any.
pub fn current_steal_schedule() -> Option<StealSchedule> {
    STEAL_SCHEDULE.with(|c| c.get())
}

/// Run `body` with every contained parallel loop claiming chunks in
/// `schedule`'s order (propagated into nested loops and spawned workers,
/// restored afterwards — the same discipline as [`with_thread_limit`]).
pub fn with_steal_schedule<T>(schedule: StealSchedule, body: impl FnOnce() -> T) -> T {
    struct Restore(Option<StealSchedule>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            STEAL_SCHEDULE.with(|c| c.set(prev));
        }
    }
    let prev = STEAL_SCHEDULE.with(|c| c.replace(Some(schedule)));
    let _restore = Restore(prev);
    body()
}

/// Number of hardware threads (1 if it cannot be determined).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// The worker count parallel loops in this context will use: the innermost
/// [`with_thread_limit`] pin, or the hardware thread count.
pub fn current_thread_limit() -> usize {
    THREAD_LIMIT.with(|c| c.get()).unwrap_or_else(hardware_threads).max(1)
}

/// Run `body` with the worker count for contained parallel loops pinned to
/// `threads` (propagated into nested loops, restored afterwards).
pub fn with_thread_limit<T>(threads: usize, body: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_LIMIT.with(|c| c.set(prev));
        }
    }
    let prev = THREAD_LIMIT.with(|c| c.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    body()
}

/// Reserve up to `want` extra workers against the global budget; returns how
/// many were granted (0 means: run inline).  Pair with [`WorkerLease`]'s drop.
fn reserve_extra_workers(want: usize, explicit: bool) -> usize {
    if want == 0 {
        return 0;
    }
    if explicit {
        // An explicit pin means "use exactly this many workers" — tests use it
        // to exercise specific schedules, so honour it even when oversubscribed.
        ACTIVE_WORKERS.fetch_add(want, Ordering::Relaxed);
        return want;
    }
    let budget = hardware_threads().saturating_sub(1);
    let mut current = ACTIVE_WORKERS.load(Ordering::Relaxed);
    loop {
        let grant = want.min(budget.saturating_sub(current));
        if grant == 0 {
            return 0;
        }
        match ACTIVE_WORKERS.compare_exchange_weak(
            current,
            current + grant,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return grant,
            Err(now) => current = now,
        }
    }
}

/// RAII release of reserved workers (also on panic, so a failing test does
/// not starve the budget for the rest of the process).
struct WorkerLease(usize);

impl Drop for WorkerLease {
    fn drop(&mut self) {
        if self.0 > 0 {
            ACTIVE_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
        }
    }
}

/// Execute `body(&mut state, index)` for every index in `0..n` on the pool.
///
/// `init` creates one `state` per participating worker thread, created lazily
/// on the worker's first chunk and reused across all chunks it claims — this
/// is how SpGEMM reuses one accumulator across many rows.  Chunks are claimed
/// from a shared atomic cursor (the work-stealing queue); the calling thread
/// participates, and panics in workers propagate to the caller.
pub fn for_each_index<St>(
    n: usize,
    init: impl Fn() -> St + Sync,
    body: impl Fn(&mut St, usize) + Sync,
) {
    if n == 0 {
        return;
    }
    let limit = current_thread_limit().min(n);
    let explicit = THREAD_LIMIT.with(|c| c.get()).is_some();
    let lease = WorkerLease(reserve_extra_workers(limit - 1, explicit));
    let workers = lease.0 + 1;
    let schedule = current_steal_schedule();

    // Chunk geometry.  Production: chunks small enough for stealing to
    // balance skewed rows, large enough to amortise the claim (sequential
    // fallback uses one maximal chunk).  Under a steal schedule: exactly
    // `min(n, chunks)` near-equal chunks, claimed in the schedule's
    // permutation — workers grab claim *ordinals* from the cursor and the
    // permutation maps each ordinal to a chunk.
    let (nchunks, chunk, order): (usize, usize, Option<Vec<usize>>) = match schedule {
        Some(sched) => {
            let k = sched.chunks.clamp(1, n);
            (k, 0, Some(sched.claim_order(k)))
        }
        None => {
            let chunk = if workers == 1 { n } else { (n / (workers * 8)).clamp(1, 1024) };
            (n.div_ceil(chunk), chunk, None)
        }
    };
    let yield_before_claim = schedule.is_some_and(|s| s.yield_before_claim);
    let cursor = AtomicUsize::new(0);

    let work = |state: &mut Option<St>| loop {
        if yield_before_claim {
            std::thread::yield_now();
        }
        let ordinal = cursor.fetch_add(1, Ordering::Relaxed);
        if ordinal >= nchunks {
            break;
        }
        let (start, end) = match &order {
            // Scheduled: balanced split so all `nchunks` chunks are nonempty
            // (exhaustive permutation enumeration stays genuinely exhaustive).
            Some(order) => {
                let c = order[ordinal];
                (c * n / nchunks, (c + 1) * n / nchunks)
            }
            None => {
                let start = ordinal * chunk;
                (start, (start + chunk).min(n))
            }
        };
        let st = state.get_or_insert_with(&init);
        for i in start..end {
            body(st, i);
        }
    };

    if lease.0 == 0 {
        work(&mut None);
        return;
    }
    let pin = THREAD_LIMIT.with(|c| c.get());
    std::thread::scope(|scope| {
        for _ in 0..lease.0 {
            let work = &work;
            scope.spawn(move || {
                if let Some(pin) = pin {
                    THREAD_LIMIT.with(|c| c.set(Some(pin)));
                }
                if let Some(sched) = schedule {
                    STEAL_SCHEDULE.with(|c| c.set(Some(sched)));
                }
                work(&mut None);
            });
        }
        work(&mut None);
    });
}

/// Evaluate `f(i)` for every `i` in `0..n` on the pool, returning the results
/// in index order.
pub fn map_indexed<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    map_indexed_with(n, || (), move |(), i| f(i))
}

/// [`map_indexed`] with per-worker state: `init` runs once per participating
/// worker and the state is reused across every index that worker claims
/// (e.g. a scatter accumulator reused across SpGEMM rows).
pub fn map_indexed_with<T: Send, St>(
    n: usize,
    init: impl Fn() -> St + Sync,
    f: impl Fn(&mut St, usize) -> T + Sync,
) -> Vec<T> {
    let out: SharedSlots<T> = SharedSlots::empty(n);
    for_each_index(n, init, |st, i| out.put(i, f(st, i)));
    out.into_options()
        .into_iter()
        .map(|slot| slot.expect("pool worker filled every slot"))
        .collect()
}

/// Apply `f(i, &mut items[i])` to every element on the pool.
pub fn for_each_mut<T: Send>(items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    for_each_mut_with(items, || (), move |(), i, item| f(i, item))
}

/// [`for_each_mut`] with per-worker state (see [`map_indexed_with`]).
pub fn for_each_mut_with<T: Send, St>(
    items: &mut [T],
    init: impl Fn() -> St + Sync,
    f: impl Fn(&mut St, usize, &mut T) + Sync,
) {
    struct Ptr<T>(*mut T);
    // SAFETY: the pointer is only dereferenced at distinct indices (each index
    // is claimed by exactly one worker chunk), so no two threads alias.
    unsafe impl<T: Send> Send for Ptr<T> {}
    unsafe impl<T: Send> Sync for Ptr<T> {}
    let base = Ptr(items.as_mut_ptr());
    let n = items.len();
    let base = &base;
    for_each_index(n, init, move |st, i| {
        debug_assert!(i < n);
        // SAFETY: `i < items.len()` and every index is visited exactly once,
        // so this is an exclusive reference to a distinct element.
        let item = unsafe { &mut *base.0.add(i) };
        f(st, i, item);
    });
}

/// Run `a` and `b` in parallel when a worker can be reserved, else
/// sequentially.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    let pin = THREAD_LIMIT.with(|c| c.get());
    // An explicit pin of 1 means "stay sequential"; larger pins reserve
    // outside the budget like every other pinned construct.
    let explicit = pin.is_some();
    if pin == Some(1) {
        return (a(), b());
    }
    let lease = WorkerLease(reserve_extra_workers(1, explicit));
    if lease.0 == 0 {
        return (a(), b());
    }
    let schedule = current_steal_schedule();
    std::thread::scope(|scope| {
        let ha = scope.spawn(move || {
            if let Some(pin) = pin {
                THREAD_LIMIT.with(|c| c.set(Some(pin)));
            }
            if let Some(sched) = schedule {
                STEAL_SCHEDULE.with(|c| c.set(Some(sched)));
            }
            a()
        });
        let rb = b();
        (ha.join().expect("join worker panicked"), rb)
    })
}

/// Fixed-size per-index result slots shared between workers.
///
/// Each slot is written (`put`) or consumed (`take`) by exactly one worker —
/// the chunked cursor hands every index to exactly one claimant — which makes
/// the interior mutability sound without per-slot locks.
pub struct SharedSlots<T> {
    slots: Vec<UnsafeCell<Option<T>>>,
}

// SAFETY: workers only access disjoint slots (see type-level docs), and T
// crossing threads requires T: Send.
unsafe impl<T: Send> Sync for SharedSlots<T> {}

impl<T> SharedSlots<T> {
    /// `n` empty slots.
    pub fn empty(n: usize) -> Self {
        Self { slots: (0..n).map(|_| UnsafeCell::new(None)).collect() }
    }

    /// Slots pre-filled with `items` (for consuming sources).
    pub fn new(items: Vec<T>) -> Self {
        Self { slots: items.into_iter().map(|t| UnsafeCell::new(Some(t))).collect() }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Move the value out of slot `i`.
    ///
    /// # Panics
    /// Panics if the slot is empty (already taken or never filled).
    pub fn take(&self, i: usize) -> T {
        // SAFETY: each index is claimed by exactly one worker, so no other
        // thread accesses slot `i` concurrently.
        unsafe { (*self.slots[i].get()).take().expect("slot taken twice") }
    }

    /// Store `value` into slot `i`.
    pub fn put(&self, i: usize, value: T) {
        // SAFETY: as for `take` — slot `i` is owned by the claiming worker.
        unsafe { *self.slots[i].get() = Some(value) }
    }

    /// Unwrap into the per-index options (after all workers joined).
    pub fn into_options(self) -> Vec<Option<T>> {
        self.slots.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            let calls = AtomicUsize::new(0);
            let sum = AtomicU64::new(0);
            with_thread_limit(threads, || {
                for_each_index(
                    1000,
                    || (),
                    |(), i| {
                        calls.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(i as u64, Ordering::Relaxed);
                    },
                );
            });
            assert_eq!(calls.load(Ordering::Relaxed), 1000, "threads={threads}");
            assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
        }
    }

    #[test]
    fn map_indexed_is_in_order() {
        for threads in [1usize, 2, 7] {
            let got = with_thread_limit(threads, || map_indexed(257, |i| i * i));
            let want: Vec<usize> = (0..257).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn for_each_mut_touches_every_element_once() {
        for threads in [1usize, 2, 5] {
            let mut items = vec![0usize; 123];
            with_thread_limit(threads, || {
                for_each_mut(&mut items, |i, slot| *slot += i + 1);
            });
            for (i, v) in items.iter().enumerate() {
                assert_eq!(*v, i + 1, "threads={threads}");
            }
        }
    }

    #[test]
    fn worker_state_is_reused_across_chunks() {
        // Count distinct states: must be at most the worker count.
        let states = AtomicUsize::new(0);
        with_thread_limit(4, || {
            for_each_index(
                10_000,
                || {
                    states.fetch_add(1, Ordering::Relaxed);
                    0u64
                },
                |st, _| *st += 1,
            );
        });
        assert!(states.load(Ordering::Relaxed) <= 4, "more states than workers");
    }

    #[test]
    fn thread_limit_propagates_into_workers_and_restores() {
        let observed = with_thread_limit(3, || map_indexed(8, |_| current_thread_limit()));
        assert_eq!(observed, vec![3; 8]);
        let outer = with_thread_limit(3, || {
            let inner = with_thread_limit(1, current_thread_limit);
            assert_eq!(inner, 1);
            current_thread_limit()
        });
        assert_eq!(outer, 3);
    }

    #[test]
    fn budget_is_released_after_a_panicking_loop() {
        let before = ACTIVE_WORKERS.load(Ordering::Relaxed);
        let result = std::panic::catch_unwind(|| {
            with_thread_limit(4, || {
                for_each_index(64, || (), |(), i| {
                    if i == 13 {
                        panic!("boom");
                    }
                });
            })
        });
        assert!(result.is_err());
        assert_eq!(ACTIVE_WORKERS.load(Ordering::Relaxed), before, "leaked workers");
    }

    #[test]
    fn join_honours_and_propagates_the_thread_pin() {
        // Pinned to 1: both closures must run on the calling thread.
        let caller = std::thread::current().id();
        let (ta, tb) = with_thread_limit(1, || {
            join(|| std::thread::current().id(), || std::thread::current().id())
        });
        assert_eq!(ta, caller);
        assert_eq!(tb, caller);
        // Pinned wider: a spawned first closure must still see the pin.
        let (limit_a, limit_b) =
            with_thread_limit(3, || join(current_thread_limit, current_thread_limit));
        assert_eq!(limit_a, 3, "pin must propagate into the spawned side");
        assert_eq!(limit_b, 3);
    }

    #[test]
    fn zero_items_is_a_no_op() {
        for_each_index(0, || unreachable!("no state needed"), |_: &mut (), _| {});
        assert!(map_indexed(0, |i| i).is_empty());
        for_each_mut::<u8>(&mut [], |_, _| unreachable!());
    }

    #[test]
    fn lehmer_permutations_enumerate_every_order_exactly_once() {
        // 4 chunks: indices 0..24 must decode to 24 distinct permutations,
        // index 0 to the natural order, and indices wrap modulo 4!.
        let mut seen: Vec<Vec<usize>> = Vec::new();
        for index in 0..24 {
            let order = StealSchedule::exhaustive(4, index).claim_order(4);
            assert_eq!(order.len(), 4);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "index {index} is not a permutation");
            assert!(!seen.contains(&order), "index {index} repeats {order:?}");
            seen.push(order);
        }
        assert_eq!(seen[0], vec![0, 1, 2, 3]);
        assert_eq!(StealSchedule::exhaustive(4, 25).claim_order(4), seen[1]);
    }

    #[test]
    fn shuffled_orders_are_seed_deterministic_permutations() {
        let a = StealSchedule::randomized(16, 7).claim_order(16);
        let b = StealSchedule::randomized(16, 7).claim_order(16);
        let c = StealSchedule::randomized(16, 8).claim_order(16);
        assert_eq!(a, b, "same seed must give the same order");
        assert_ne!(a, c, "different seeds should give different orders");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn scheduled_loops_visit_every_index_once_in_the_permuted_order() {
        for index in 0..6 {
            // Sequential (1 worker) so the observed visit order is exactly the
            // claim order: chunk boundaries at thirds of 0..9.
            let sched = StealSchedule::exhaustive(3, index);
            let visited = std::sync::Mutex::new(Vec::new());
            with_thread_limit(1, || {
                with_steal_schedule(sched, || {
                    for_each_index(9, || (), |(), i| visited.lock().unwrap().push(i));
                });
            });
            let visited = visited.into_inner().unwrap();
            let expected: Vec<usize> = sched
                .claim_order(3)
                .into_iter()
                .flat_map(|c| (c * 3)..(c * 3 + 3))
                .collect();
            assert_eq!(visited, expected, "permutation index {index}");
        }
    }

    #[test]
    fn map_indexed_is_bit_identical_under_adversarial_schedules() {
        let want: Vec<usize> = (0..101).map(|i| i * 3 + 1).collect();
        for threads in [2usize, 4] {
            for index in 0..24 {
                let got = with_thread_limit(threads, || {
                    with_steal_schedule(StealSchedule::exhaustive(4, index), || {
                        map_indexed(101, |i| i * 3 + 1)
                    })
                });
                assert_eq!(got, want, "threads={threads} permutation={index}");
            }
            for seed in 0..8 {
                let got = with_thread_limit(threads, || {
                    with_steal_schedule(StealSchedule::randomized(16, seed), || {
                        map_indexed(101, |i| i * 3 + 1)
                    })
                });
                assert_eq!(got, want, "threads={threads} seed={seed}");
            }
        }
    }

    #[test]
    fn steal_schedule_propagates_into_workers_and_restores() {
        let sched = StealSchedule::randomized(8, 3);
        assert_eq!(current_steal_schedule(), None);
        let observed = with_steal_schedule(sched, || {
            with_thread_limit(3, || map_indexed(8, |_| current_steal_schedule()))
        });
        assert_eq!(observed, vec![Some(sched); 8]);
        assert_eq!(current_steal_schedule(), None, "schedule must restore on exit");
    }

    #[test]
    fn more_chunks_than_items_degrades_to_one_item_chunks() {
        let visited = std::sync::Mutex::new(Vec::new());
        with_thread_limit(1, || {
            with_steal_schedule(StealSchedule::exhaustive(64, 0), || {
                for_each_index(5, || (), |(), i| visited.lock().unwrap().push(i));
            });
        });
        assert_eq!(visited.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shared_slots_roundtrip() {
        let s = SharedSlots::new(vec![1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.take(1), 2);
        s.put(1, 20);
        assert_eq!(s.into_options(), vec![Some(1), Some(20), Some(3)]);
    }
}

//! Vendored stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no access to crates.io (see `vendor/README.md`),
//! so this crate provides the three `par_iter` entry-point traits with the
//! same names and method signatures as rayon's, returning **ordinary
//! sequential iterators**.  Every adapter the workspace chains after them
//! (`map`, `enumerate`, `filter_map`, `for_each`, `collect`, …) is then just a
//! std `Iterator` method, so call sites compile unchanged against either this
//! shim or the real rayon.
//!
//! Sequential execution is deterministic by construction, which is exactly
//! what the diBELLA 2D reproduction needs: results must not depend on the
//! virtual process count or the thread count.  Real multi-core parallelism
//! for the per-rank loops lives in `dibella_dist::par_ranks`, which uses
//! scoped std threads and does not go through this shim.
//!
//! Swapping in the real rayon is a one-line change in the workspace manifest.

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator,
    };
}

/// Marker alias for rayon's `ParallelIterator`.  In this sequential shim every
/// std iterator qualifies, so adapter chains type-check identically.
pub trait ParallelIterator: Iterator + Sized {}
impl<I: Iterator> ParallelIterator for I {}

/// `into_par_iter()` — by-value iteration, rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type produced by the iterator.
    type Item;
    /// Concrete iterator type (sequential in this shim).
    type Iter: Iterator<Item = Self::Item>;
    /// Convert `self` into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter()` — by-shared-reference iteration, rayon's
/// `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type produced by the iterator.
    type Item: 'data;
    /// Concrete iterator type (sequential in this shim).
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate `&self` as a (sequential) "parallel" iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter_mut()` — by-mutable-reference iteration, rayon's
/// `IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type produced by the iterator.
    type Item: 'data;
    /// Concrete iterator type (sequential in this shim).
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate `&mut self` as a (sequential) "parallel" iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_compose_like_rayon() {
        let v = vec![1i64, 2, 3, 4];
        let doubled: Vec<i64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let indexed: Vec<(usize, i64)> = v.clone().into_par_iter().enumerate().collect();
        assert_eq!(indexed[3], (3, 4));
        let mut w = v;
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![2, 3, 4, 5]);
        let r: Vec<usize> = (0..4usize).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn collect_into_result_short_circuits() {
        let v = vec![1i64, -2, 3];
        let r: Result<Vec<i64>, String> = v
            .into_par_iter()
            .map(|x| if x < 0 { Err("negative".to_string()) } else { Ok(x) })
            .collect();
        assert!(r.is_err());
    }
}

//! Vendored stand-in for the subset of `rayon` this workspace uses — now with
//! a real thread pool.
//!
//! The build environment has no access to crates.io (see `vendor/README.md`),
//! so this crate provides the three `par_iter` entry-point traits with the
//! same names and method signatures as rayon's.  Unlike the original
//! sequential shim, the adapter chains now execute on a **work-stealing
//! thread pool** ([`pool`]): items are claimed in chunks from a shared atomic
//! work queue, so a worker that finishes its chunk early steals the next
//! available chunk instead of idling.
//!
//! Determinism is preserved by construction: every item's result is written
//! into a slot addressed by its source index, so the assembled output is
//! identical for any thread count and any interleaving.  Tests can pin the
//! worker count with [`pool::with_thread_limit`].
//!
//! Swapping in the real rayon is a one-line change in the workspace manifest.

pub mod pool;

use pool::SharedSlots;

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator,
    };
}

/// Marker trait implemented by the concrete parallel iterator types of this
/// shim ([`ParSource`] and [`ParIter`]), mirroring rayon's trait of the same
/// name for `use rayon::prelude::*` compatibility.
pub trait ParallelIterator {}

/// A materialised parallel-iterator source: the items of the underlying
/// collection, ready to be fanned out over the pool.
pub struct ParSource<S> {
    items: Vec<S>,
}

impl<S> ParallelIterator for ParSource<S> {}

/// A parallel pipeline: the source items plus the composed per-item
/// transformation (`map` / `filter` / `filter_map` / `enumerate` stages fused
/// into one closure).  The transformation runs on the pool at the terminal
/// operation (`collect`, `for_each`).
pub struct ParIter<S, T, F: Fn(usize, S) -> Option<T>> {
    items: Vec<S>,
    f: F,
}

impl<S, T, F: Fn(usize, S) -> Option<T>> ParallelIterator for ParIter<S, T, F> {}

impl<S: Send> ParSource<S> {
    /// Transform every item with `g`, in parallel.
    pub fn map<U: Send>(
        self,
        g: impl Fn(S) -> U + Sync,
    ) -> ParIter<S, U, impl Fn(usize, S) -> Option<U> + Sync>
    where
        S: Send,
    {
        ParIter { items: self.items, f: move |_, s| Some(g(s)) }
    }

    /// Keep only items for which `pred` holds.
    pub fn filter(
        self,
        pred: impl Fn(&S) -> bool + Sync,
    ) -> ParIter<S, S, impl Fn(usize, S) -> Option<S> + Sync> {
        ParIter { items: self.items, f: move |_, s| pred(&s).then_some(s) }
    }

    /// Transform and filter in one step.
    pub fn filter_map<U: Send>(
        self,
        g: impl Fn(S) -> Option<U> + Sync,
    ) -> ParIter<S, U, impl Fn(usize, S) -> Option<U> + Sync> {
        ParIter { items: self.items, f: move |_, s| g(s) }
    }

    /// Pair every item with its source index.
    #[allow(clippy::type_complexity)]
    pub fn enumerate(self) -> ParIter<S, (usize, S), impl Fn(usize, S) -> Option<(usize, S)> + Sync>
    {
        ParIter { items: self.items, f: |i, s| Some((i, s)) }
    }

    /// Run `g` on every item, in parallel.
    pub fn for_each(self, g: impl Fn(S) + Sync) {
        ParIter { items: self.items, f: |_, s| Some(s) }.for_each(g)
    }

    /// Collect the items (identity pipeline) into `C`.
    pub fn collect<C: FromParallelIterator<S>>(self) -> C {
        ParIter { items: self.items, f: |_, s| Some(s) }.collect()
    }
}

impl<S: Send, T: Send, F: Fn(usize, S) -> Option<T> + Sync> ParIter<S, T, F> {
    /// Transform every surviving item with `g`, in parallel.
    pub fn map<U: Send>(
        self,
        g: impl Fn(T) -> U + Sync,
    ) -> ParIter<S, U, impl Fn(usize, S) -> Option<U> + Sync> {
        let f = self.f;
        ParIter { items: self.items, f: move |i, s| f(i, s).map(&g) }
    }

    /// Keep only items for which `pred` holds.
    pub fn filter(
        self,
        pred: impl Fn(&T) -> bool + Sync,
    ) -> ParIter<S, T, impl Fn(usize, S) -> Option<T> + Sync> {
        let f = self.f;
        ParIter { items: self.items, f: move |i, s| f(i, s).filter(&pred) }
    }

    /// Transform and filter in one step.
    pub fn filter_map<U: Send>(
        self,
        g: impl Fn(T) -> Option<U> + Sync,
    ) -> ParIter<S, U, impl Fn(usize, S) -> Option<U> + Sync> {
        let f = self.f;
        ParIter { items: self.items, f: move |i, s| f(i, s).and_then(&g) }
    }

    /// Pair every surviving item with its **source** index (valid straight
    /// after the source, matching rayon's indexed-iterator contract).
    #[allow(clippy::type_complexity)]
    pub fn enumerate(self) -> ParIter<S, (usize, T), impl Fn(usize, S) -> Option<(usize, T)> + Sync>
    {
        let f = self.f;
        ParIter { items: self.items, f: move |i, s| f(i, s).map(|t| (i, t)) }
    }

    /// Run `g` on every surviving item, in parallel on the pool.
    pub fn for_each(self, g: impl Fn(T) + Sync) {
        let slots = SharedSlots::new(self.items);
        let f = &self.f;
        let g = &g;
        pool::for_each_index(slots.len(), || (), |(), i| {
            if let Some(t) = f(i, slots.take(i)) {
                g(t);
            }
        });
    }

    /// Run the pipeline on the pool and collect into `C`, preserving source
    /// order (results are written into per-index slots, so the output is
    /// independent of the thread count).
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        let n = self.items.len();
        let slots = SharedSlots::new(self.items);
        let out: SharedSlots<T> = SharedSlots::empty(n);
        let f = &self.f;
        pool::for_each_index(n, || (), |(), i| {
            if let Some(t) = f(i, slots.take(i)) {
                out.put(i, t);
            }
        });
        C::from_ordered_slots(out.into_options())
    }
}

/// Conversion from the pipeline's per-index result slots (rayon's
/// `FromParallelIterator`).  `None` slots are items removed by
/// `filter`/`filter_map`.
pub trait FromParallelIterator<T>: Sized {
    /// Assemble the collection from the in-order result slots.
    fn from_ordered_slots(slots: Vec<Option<T>>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_slots(slots: Vec<Option<T>>) -> Self {
        slots.into_iter().flatten().collect()
    }
}

impl<U, E> FromParallelIterator<Result<U, E>> for Result<Vec<U>, E> {
    fn from_ordered_slots(slots: Vec<Option<Result<U, E>>>) -> Self {
        slots.into_iter().flatten().collect()
    }
}

/// `into_par_iter()` — by-value iteration, rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type produced by the iterator.
    type Item;
    /// Concrete parallel iterator type.
    type Iter;
    /// Convert `self` into a parallel iterator over the pool.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = ParSource<I::Item>;
    fn into_par_iter(self) -> Self::Iter {
        ParSource { items: self.into_iter().collect() }
    }
}

/// `par_iter()` — by-shared-reference iteration, rayon's
/// `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type produced by the iterator.
    type Item: 'data;
    /// Concrete parallel iterator type.
    type Iter;
    /// Iterate `&self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = ParSource<Self::Item>;
    fn par_iter(&'data self) -> Self::Iter {
        ParSource { items: self.into_iter().collect() }
    }
}

/// `par_iter_mut()` — by-mutable-reference iteration, rayon's
/// `IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type produced by the iterator.
    type Item: 'data;
    /// Concrete parallel iterator type.
    type Iter;
    /// Iterate `&mut self` as a parallel iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = ParSource<Self::Item>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        ParSource { items: self.into_iter().collect() }
    }
}

/// Run `a` and `b`, in parallel when a worker can be reserved from the pool's
/// budget, falling back to sequential execution otherwise.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    pool::join(a, b)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn adapters_compose_like_rayon() {
        let v = vec![1i64, 2, 3, 4];
        let doubled: Vec<i64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let indexed: Vec<(usize, i64)> = v.clone().into_par_iter().enumerate().collect();
        assert_eq!(indexed[3], (3, 4));
        let mut w = v;
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![2, 3, 4, 5]);
        let r: Vec<usize> = (0..4usize).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn collect_into_result_short_circuits() {
        let v = vec![1i64, -2, 3];
        let r: Result<Vec<i64>, String> = v
            .into_par_iter()
            .map(|x| if x < 0 { Err("negative".to_string()) } else { Ok(x) })
            .collect();
        assert!(r.is_err());
    }

    #[test]
    fn results_are_in_source_order_for_any_thread_count() {
        for threads in [1usize, 2, 4, 8] {
            let got: Vec<usize> = pool::with_thread_limit(threads, || {
                (0..1000usize).into_par_iter().map(|i| i * 3).collect()
            });
            let want: Vec<usize> = (0..1000).map(|i| i * 3).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn filter_map_drops_and_keeps_in_order() {
        let got: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|i| (i % 7 == 0).then_some(i))
            .collect();
        let want: Vec<usize> = (0..100).filter(|i| i % 7 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn chained_adapters_after_enumerate() {
        let v = vec![10u32, 20, 30, 40];
        let got: Vec<(usize, u32)> = v
            .into_par_iter()
            .enumerate()
            .map(|(i, x)| (i, x + 1))
            .filter(|(i, _)| i % 2 == 0)
            .collect();
        assert_eq!(got, vec![(0, 11), (2, 31)]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }
}

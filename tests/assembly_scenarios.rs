//! Adversarial-scenario floors: the per-scenario quality matrix that guards
//! every future perf PR against trading correctness on hard inputs.
//!
//! The suite (see DESIGN.md "Adversarial scenario suite") covers the classic
//! assembler traps — repeats longer than the mean read length, chimeric
//! reads, strain mixtures, circular replicons — and pins floors per scenario.
//! It also carries the **negative control** the misjoin metric has been
//! missing: a deliberately misjoined layout on a repeat-trap genome must
//! register `misjoins > 0`, proving the metric can fire at all.

use dibella2d::prelude::*;
use dibella2d::seq::simulate::{
    build_scenario, circular_slice, generate_interspersed_repeat_genome,
    interspersed_repeat_positions, ReadOrigin, ScenarioParams, Topology,
};
use dibella2d::strgraph::{Contig, ContigConsensus};

/// Baseline floors: on a well-behaved genome the suite must keep reporting
/// the solved game (near-complete single contig, polished identity, clean
/// structure) — the yardstick every trap scenario is compared against.
#[test]
fn baseline_scenario_meets_assembly_floors() {
    let report = run_scenario(&ScenarioSpec::fast(ScenarioKind::Baseline));
    assert!(
        report.ng50 >= report.genome_length / 2,
        "baseline NG50 {} below half the genome {}",
        report.ng50,
        report.genome_length
    );
    assert!(
        report.mean_identity >= 0.99,
        "baseline identity {:.4} below 0.99",
        report.mean_identity
    );
    assert_eq!(report.misjoins, 0, "baseline must assemble without misjoins");
    assert_eq!(report.chimeric_reads, 0);
}

/// Negative control: a deliberately misjoined layout — two reads interior to
/// *different* copies of an interspersed repeat, chained as if adjacent —
/// must register `misjoins > 0`.  If this fails, every "0 misjoins" the
/// matrix reports is vacuous.
#[test]
fn repeat_trap_negative_control_fires_the_misjoin_metric() {
    let genome_len = 15_000;
    let repeat_len = 2_400;
    let positions = interspersed_repeat_positions(genome_len, repeat_len, 3);
    let genome = generate_interspersed_repeat_genome(genome_len, repeat_len, 3, 4);

    // One read interior to repeat copy 0, one interior to copy 2: their
    // sequences are identical (the repeat), so an overlapper would gladly
    // chain them — but their genomic intervals are disjoint by construction.
    let span = 800;
    let r0 = ReadOrigin { start: positions[0] + 200, span, strand: Strand::Forward };
    let r1 = ReadOrigin { start: positions[2] + 200, span, strand: Strand::Forward };
    assert_eq!(r0.overlap_with(&r1), 0, "the fixture's reads must be disjoint");
    assert_eq!(
        genome.slice(r0.start, r0.end()),
        genome.slice(r1.start, r1.end()),
        "the fixture's reads must be sequence-identical (the trap)"
    );

    let origins = vec![r0, r1];
    let misjoined = Contig { reads: vec![0, 1], estimated_length: 2 * span, circular: false };
    let consensus = ContigConsensus {
        consensus: genome.slice(r0.start, r0.end()),
        reads: 2,
        poa_nodes: span,
        aligned_bases: 2 * span,
    };
    let metrics = evaluate_assembly(
        &[misjoined],
        &[consensus],
        &origins,
        &genome,
        &ConsensusConfig::default(),
    );
    assert!(metrics.misjoins > 0, "the misjoin metric failed to fire on a known misjoin");
}

/// Determinism: an identical `ScenarioSpec` must produce a bit-identical
/// `ScenarioReport` at any worker-thread count (extending the PR-2/PR-5
/// pipeline-determinism guarantees through the scenario layer — reports
/// deliberately exclude wall-clock so this equality is exact).
#[test]
fn scenario_reports_are_bit_identical_across_thread_counts() {
    let spec = ScenarioSpec::fast(ScenarioKind::InterspersedRepeat);
    let one = dibella2d::dist::with_threads(1, || run_scenario(&spec));
    let two = dibella2d::dist::with_threads(2, || run_scenario(&spec));
    let four = dibella2d::dist::with_threads(4, || run_scenario(&spec));
    assert_eq!(one, two, "report differs between 1 and 2 worker threads");
    assert_eq!(one, four, "report differs between 1 and 4 worker threads");
}

/// Chimera labels split "assembler misjoin" from "chimera propagated": the
/// same broken adjacency is a misjoin without labels and a chimera break
/// with them.
#[test]
fn chimera_labels_separate_breaks_from_misjoins() {
    let ds = build_scenario(
        ScenarioKind::Baseline,
        &ScenarioParams {
            genome_length: 6_000,
            mean_read_length: 600,
            ..ScenarioParams::default()
        },
    );
    let genome = &ds.genome;
    // A normal read and a "chimeric" read from a distant locus, chained.
    let origins = vec![
        ReadOrigin { start: 0, span: 600, strand: Strand::Forward },
        ReadOrigin { start: 4_000, span: 600, strand: Strand::Forward },
    ];
    let contig = Contig { reads: vec![0, 1], estimated_length: 1_200, circular: false };
    let cons = ContigConsensus {
        consensus: genome.slice(0, 1_200),
        reads: 2,
        poa_nodes: 1_200,
        aligned_bases: 1_200,
    };
    let unlabelled = evaluate_assembly(
        std::slice::from_ref(&contig),
        std::slice::from_ref(&cons),
        &origins,
        genome,
        &ConsensusConfig::default(),
    );
    assert_eq!(unlabelled.misjoins, 1);
    assert_eq!(unlabelled.chimera_breaks, 0);

    let truth = GroundTruth {
        origins: &origins,
        genome,
        topology: Topology::Linear,
        chimeric: &[false, true],
    };
    let labelled =
        evaluate_assembly_truth(&[contig], &[cons], &truth, &ConsensusConfig::default());
    assert_eq!(labelled.misjoins, 0, "a break at a labelled chimera is not a misjoin");
    assert_eq!(labelled.chimera_breaks, 1);
}

/// Circular-aware evaluation: a contig whose reads straddle the origin of a
/// circular genome is structurally sound and matches its wrap-around
/// reference arc; the linear interpretation would call it misjoined.
#[test]
fn circular_evaluation_does_not_penalize_origin_crossing_contigs() {
    let params = ScenarioParams {
        genome_length: 4_000,
        mean_read_length: 800,
        ..ScenarioParams::default()
    };
    let ds = build_scenario(ScenarioKind::CircularGenome, &params);
    assert_eq!(ds.topology, Topology::Circular);
    let genome = &ds.genome;
    let len = genome.len();

    // Read 0 wraps the origin ([3600, 4000) + [0, 400)); read 1 overlaps its
    // tail on the far side of the wrap.
    let origins = vec![
        ReadOrigin { start: 3_600, span: 800, strand: Strand::Forward },
        ReadOrigin { start: 200, span: 800, strand: Strand::Forward },
    ];
    assert_eq!(origins[0].overlap_with_in(&origins[1], Topology::Circular, len), 200);
    assert_eq!(origins[0].overlap_with(&origins[1]), 0);

    let contig = Contig { reads: vec![0, 1], estimated_length: 1_400, circular: false };
    let cons = ContigConsensus {
        consensus: circular_slice(genome, 3_600, 1_400),
        reads: 2,
        poa_nodes: 1_400,
        aligned_bases: 1_400,
    };
    let truth = GroundTruth {
        origins: &origins,
        genome,
        topology: Topology::Circular,
        chimeric: &[],
    };
    let circular = evaluate_assembly_truth(
        std::slice::from_ref(&contig),
        std::slice::from_ref(&cons),
        &truth,
        &ConsensusConfig::default(),
    );
    assert_eq!(circular.misjoins, 0, "a wrap-around overlap is not a misjoin");
    assert!(
        circular.mean_identity > 0.99,
        "wrap-around arc extraction failed: identity {:.4}",
        circular.mean_identity
    );
    // The linear interpretation gets the same contig wrong.
    let linear = evaluate_assembly(
        &[contig],
        &[cons],
        &origins,
        genome,
        &ConsensusConfig::default(),
    );
    assert_eq!(linear.misjoins, 1, "the linear view must miss the wrap overlap");
}

/// End-to-end circular scenario: the pipeline on wrap-around reads must stay
/// structurally clean under circular-aware evaluation.
#[test]
fn circular_scenario_assembles_cleanly_under_circular_truth() {
    let report = run_scenario(&ScenarioSpec::fast(ScenarioKind::CircularGenome));
    assert_eq!(report.misjoins, 0, "circular scenario reported false misjoins");
    assert!(
        report.mean_identity >= 0.98,
        "circular scenario identity {:.4}",
        report.mean_identity
    );
    assert!(report.ng50 >= report.genome_length / 2, "circular NG50 {}", report.ng50);
}

/// The chimeric-reads scenario must actually contain labelled chimeras, and
/// evaluation must never attribute their breaks to the assembler while still
/// assembling the clean majority of reads.
#[test]
fn chimeric_scenario_labels_chimeras_and_keeps_the_assembly_usable() {
    let report = run_scenario(&ScenarioSpec::fast(ScenarioKind::ChimericReads));
    assert!(report.chimeric_reads > 0, "chimera scenario produced no labelled chimeras");
    // Chimeras legitimately fragment the layout (that is the trap), but the
    // assembly must stay usable: a quarter-genome NG50 floor and polished
    // consensus, with no break blamed on the assembler beyond the baseline.
    assert!(
        report.ng50 >= report.genome_length / 4,
        "chimeric-reads NG50 {} collapsed below genome/4",
        report.ng50
    );
    assert!(report.mean_identity >= 0.95, "identity {:.4}", report.mean_identity);
}

/// The full fast-preset matrix: every scenario runs end to end and reports a
/// plausible row.  `#[ignore]`d in PR builds (the smoke subset above covers
/// the fast path); CI's push builds run it via `-- --ignored`.
#[test]
#[ignore = "full matrix smoke: run explicitly or in CI push builds"]
fn full_fast_scenario_matrix_runs_end_to_end() {
    let reports = run_scenario_matrix(&ScenarioSpec::fast_suite());
    assert_eq!(reports.len(), 6);
    for r in &reports {
        assert!(r.reads > 10, "{}: too few reads", r.scenario);
        assert!(r.contigs > 0, "{}: no contigs", r.scenario);
        assert!(r.assembled_bases > 0, "{}: nothing assembled", r.scenario);
        // Even the strain-collapsing metagenome mix keeps some resemblance
        // to its reference; total garbage means the runner itself broke.
        assert!(
            r.mean_identity > 0.3,
            "{}: identity {:.4} collapsed",
            r.scenario,
            r.mean_identity
        );
    }
    let by_name = |n: &str| reports.iter().find(|r| r.scenario == n).unwrap();
    // The baseline stays the solved game...
    let baseline = by_name("baseline");
    assert_eq!(baseline.misjoins, 0);
    assert!(baseline.mean_identity >= 0.99);
    // ...and each trap must leave its designed signature (all deterministic:
    // fixed seeds).  Repeats longer than the read length fragment the
    // assembly and misjoin repeat copies; the low-divergence strain mix
    // collapses strains, wrecking identity against the two-strain reference.
    let interspersed = by_name("interspersed-repeat");
    assert!(
        interspersed.misjoins > 0,
        "the interspersed-repeat trap no longer induces misjoins: {interspersed:?}"
    );
    let tandem = by_name("tandem-repeat");
    assert!(
        tandem.ng50 < baseline.ng50 || tandem.misjoins > 0,
        "the tandem-repeat trap left no trace: {tandem:?}"
    );
    let metagenome = by_name("metagenome-mix");
    assert!(
        metagenome.mean_identity < 0.9 || metagenome.misjoins > 0,
        "the metagenome mix no longer stresses the assembler: {metagenome:?}"
    );
    // The circular genome is NOT a trap once evaluation is circular-aware.
    let circular = by_name("circular-genome");
    assert_eq!(circular.misjoins, 0, "false misjoins on the circular genome");
}

//! End-to-end integration tests: the full diBELLA 2D pipeline on simulated
//! long-read datasets, validated against the simulator's ground truth.

use dibella2d::prelude::*;

fn ground_truth_pairs(ds: &dibella2d::seq::SimulatedDataset, min_overlap: usize) -> Vec<(usize, usize)> {
    let mut truth = Vec::new();
    for i in 0..ds.num_reads() {
        for j in (i + 1)..ds.num_reads() {
            if ds.true_overlap(i, j) >= min_overlap {
                truth.push((i, j));
            }
        }
    }
    truth
}

#[test]
fn pipeline_recovers_most_true_overlaps_on_tiny_dataset() {
    let ds = DatasetSpec::Tiny.generate(101);
    let cfg = PipelineConfig::for_small_reads(13, 4);
    let comm = CommStats::new();
    let out = run_dibella_2d_on_reads(&ds.reads, &cfg, &comm);

    // The pipeline removes contained (and near-contained, within the
    // classification fuzz) reads from the graph, as the paper prescribes, so
    // recall is evaluated among the reads the pipeline kept: for every pair of
    // surviving reads whose genomic intervals overlap comfortably, an edge
    // should be present in R.
    let surviving: Vec<bool> = {
        let counts = out.overlap_matrix.row_nnz_counts();
        counts.iter().map(|&c| c > 0).collect()
    };
    assert!(surviving.iter().filter(|&&s| s).count() > 10, "too few surviving reads");
    let margin = cfg.overlap.alignment.min_overlap * 3;
    let truth: Vec<(usize, usize)> = ground_truth_pairs(&ds, margin)
        .into_iter()
        .filter(|&(i, j)| surviving[i] && surviving[j])
        .collect();
    let found: std::collections::HashSet<(usize, usize)> = out
        .overlap_matrix
        .to_triples()
        .iter()
        .filter(|(i, j, _)| i < j)
        .map(|(i, j, _)| (i, j))
        .collect();
    let recovered = truth.iter().filter(|p| found.contains(p)).count();
    assert!(!truth.is_empty());
    assert!(
        recovered * 10 >= truth.len() * 6,
        "recall too low: {recovered}/{} comfortably-overlapping pairs recovered",
        truth.len()
    );
    // Precision: the accepted overlaps must overwhelmingly be genuine.
    let genuine = found
        .iter()
        .filter(|&&(i, j)| ds.true_overlap(i, j) >= cfg.overlap.alignment.min_overlap / 2)
        .count();
    assert!(
        genuine * 10 >= found.len() * 9,
        "precision too low: {genuine}/{} accepted overlaps are genuine",
        found.len()
    );
}

#[test]
fn string_graph_is_sparser_than_overlap_graph_and_fixed_point() {
    let ds = DatasetSpec::Tiny.generate(102);
    let cfg = PipelineConfig::for_small_reads(13, 9);
    let comm = CommStats::new();
    let out = run_dibella_2d_on_reads(&ds.reads, &cfg, &comm);
    assert!(out.string_matrix.nnz() > 0);
    assert!(out.string_matrix.nnz() < out.overlap_matrix.nnz());
    // Applying the reduction again must change nothing (fixed point).
    let again = transitive_reduction(&out.string_matrix, &cfg.transitive, &comm);
    assert_eq!(again.removed_edges, 0);
    assert_eq!(
        again.string_matrix.to_local_csr(),
        out.string_matrix.to_local_csr()
    );
}

#[test]
fn error_free_dataset_assembles_into_a_near_complete_contig() {
    // With no sequencing errors and generous depth, the string graph of a
    // single-chromosome genome should chain almost all non-contained reads
    // into one contig whose length approximates the genome.
    let mut ds = DatasetSpec::Tiny.generate_with_length(6_000, 103);
    // Regenerate reads error-free at higher depth for a clean layout.
    let genome = ds.genome.clone();
    let sim_cfg = dibella2d::seq::simulate::ReadSimConfig {
        depth: 15.0,
        mean_read_length: 900,
        min_read_length: 400,
        read_length_sd: 150,
        error_rate: 0.0,
        seed: 9,
        ..Default::default()
    };
    let (reads, origins) = dibella2d::seq::simulate::simulate_reads(&genome, &sim_cfg);
    ds.reads = reads;
    ds.origins = origins;

    let cfg = PipelineConfig::for_small_reads(15, 4);
    let comm = CommStats::new();
    let out = run_dibella_2d_on_reads(&ds.reads, &cfg, &comm);

    let lengths = ds.reads.lengths();
    let contigs = extract_contigs(&out.string_matrix.to_local_csr(), &lengths);
    let largest = &contigs[0];
    assert!(
        largest.reads.len() >= 8,
        "largest contig should chain many reads, got {}",
        largest.reads.len()
    );
    let ratio = largest.estimated_length as f64 / genome.len() as f64;
    assert!(
        ratio > 0.5 && ratio < 1.5,
        "largest contig length {} should approximate the genome length {}",
        largest.estimated_length,
        genome.len()
    );
}

#[test]
fn one_d_and_two_d_pipelines_agree_while_communication_differs() {
    let ds = DatasetSpec::Tiny.generate(104);
    let cfg = PipelineConfig::for_small_reads(13, 16);
    let comm2d = CommStats::new();
    let out2d = run_dibella_2d_on_reads(&ds.reads, &cfg, &comm2d);
    let comm1d = CommStats::new();
    let out1d = run_dibella_1d(&ds.reads, &cfg, &comm1d);

    assert_eq!(
        out2d.overlap_matrix.to_local_csr().pattern(),
        out1d.overlap_matrix.to_local_csr().pattern()
    );
    // Latency: the 1D overlap reduction is an all-to-all (Y = P per rank),
    // the 2D SUMMA uses broadcasts (Y = sqrt(P) per rank).
    assert!(
        comm1d.messages(CommPhase::OverlapDetection)
            > comm2d.messages(CommPhase::OverlapDetection)
    );
}

#[test]
fn fasta_roundtrip_through_the_full_pipeline() {
    let ds = DatasetSpec::Tiny.generate(105);
    let fasta = write_fasta(&ds.reads);
    let cfg = PipelineConfig::for_small_reads(13, 4);
    let from_text = run_dibella_2d(&fasta, &cfg).expect("pipeline on FASTA text");
    let comm = CommStats::new();
    let from_reads = run_dibella_2d_on_reads(&ds.reads, &cfg, &comm);
    assert_eq!(
        from_text.string_matrix.to_local_csr(),
        from_reads.string_matrix.to_local_csr()
    );
    assert!(from_text.timings.read_fastq > 0.0);
}

#[test]
fn measured_communication_matches_the_table1_model_in_shape() {
    let ds = DatasetSpec::Tiny.generate(106);
    let cfg = PipelineConfig::for_small_reads(13, 16);
    let comm = CommStats::new();
    let out = run_dibella_2d_on_reads(&ds.reads, &cfg, &comm);

    let params = ModelParams {
        n: out.dims.reads,
        m: out.dims.kmers,
        l: out.dims.mean_read_length,
        k: cfg.kmer.k,
        a: out.dims.a_density,
        c: out.overlap_stats.c_density,
        r: out.overlap_stats.r_density,
        kmer_passes: 2,
        tr_iterations: out.tr_summary.iterations,
    };
    let model = CommModel::new(params, out.grid.nprocs());

    // The model and the measurement use the same word conventions, so each
    // phase should agree within a small factor (load imbalance, block-size
    // rounding and pruning explain the gap).
    let check = |measured: u64, modelled: f64, phase: &str, factor: f64| {
        assert!(modelled > 0.0, "{phase}: model predicts zero traffic");
        let ratio = measured as f64 / modelled;
        assert!(
            ratio > 1.0 / factor && ratio < factor,
            "{phase}: measured {measured} vs model {modelled:.0} (ratio {ratio:.2})"
        );
    };
    check(
        out.comm.phase(CommPhase::KmerCounting).words,
        model.kmer_counting().aggregate_words,
        "k-mer counting",
        2.5,
    );
    check(
        out.comm.phase(CommPhase::OverlapDetection).words,
        model.overlap_2d().aggregate_words,
        "overlap detection",
        3.0,
    );
    check(
        out.comm.phase(CommPhase::ReadExchange).words,
        model.read_exchange_2d().aggregate_words,
        "read exchange",
        2.5,
    );
    check(
        out.comm.phase(CommPhase::TransitiveReduction).words,
        model.transitive_reduction_2d().aggregate_words,
        "transitive reduction",
        4.0,
    );
}

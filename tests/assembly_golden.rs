//! Golden end-to-end assembly test: simulate long reads from a known 20 kbp
//! reference, run the full OLC pipeline (overlap → layout → consensus), and
//! hold the result to assembler-grade thresholds — NG50 covering most of the
//! genome and ≥99% consensus identity.  This is the acceptance bar for the
//! consensus stage; the `assembly_quality` bench harness reports the same
//! metrics on the same dataset shape as `BENCH_assembly.json`.

use dibella2d::prelude::*;
use dibella2d::seq::simulate::{generate_genome, simulate_reads, GenomeConfig, ReadSimConfig};

/// A 20 kbp reference read at 15× by ~1.2 kb reads with a narrow length
/// distribution (uniform lengths keep containments rare, so the layouts
/// carry real depth into the POA) at a PacBio-HiFi-like 5% error rate.
fn golden_dataset() -> (dibella2d::seq::DnaSeq, ReadSet, Vec<dibella2d::seq::simulate::ReadOrigin>)
{
    let genome = generate_genome(&GenomeConfig {
        length: 20_000,
        repeat_fraction: 0.02,
        repeat_length: 300,
        seed: 71,
    });
    let sim = ReadSimConfig {
        depth: 15.0,
        mean_read_length: 1_200,
        min_read_length: 900,
        read_length_sd: 100,
        error_rate: 0.05,
        seed: 72,
        ..ReadSimConfig::default()
    };
    let (reads, origins) = simulate_reads(&genome, &sim);
    (genome, reads, origins)
}

#[test]
fn golden_20kbp_assembly_meets_ng50_and_identity_thresholds() {
    let (genome, reads, origins) = golden_dataset();
    let config = PipelineConfig::for_small_reads(15, 4);
    let comm = CommStats::new();
    let out = run_dibella_2d_on_reads(&reads, &config, &comm);

    assert!(!out.contigs.is_empty());
    assert_eq!(out.contigs.len(), out.consensus.len());

    let metrics =
        evaluate_assembly(&out.contigs, &out.consensus, &origins, &genome, &config.consensus);

    // Contiguity: half the genome must be covered by large contigs.  (The
    // current pipeline assembles this dataset into a single near-full-length
    // contig; the threshold leaves room for seed-dependent fragmentation.)
    assert!(
        metrics.ng50 >= genome.len() / 2,
        "NG50 {} below half the genome ({})",
        metrics.ng50,
        genome.len()
    );
    assert!(
        metrics.assembled_bases >= genome.len() * 8 / 10,
        "assembled {} bases of a {} base genome",
        metrics.assembled_bases,
        genome.len()
    );

    // Accuracy: the consensus must polish 5%-error reads to >=99% identity.
    assert!(
        metrics.mean_identity >= 0.99,
        "mean identity {:.4} below 0.99",
        metrics.mean_identity
    );
    assert!(
        metrics.largest_identity >= 0.99,
        "largest-contig identity {:.4} below 0.99",
        metrics.largest_identity
    );

    // Structural correctness: adjacent layout reads must truly overlap on
    // the reference.
    assert_eq!(metrics.misjoins, 0, "misjoined layouts: {:?}", metrics.per_contig);

    // The consensus stage was timed and accounted.
    assert!(out.timings.consensus > 0.0);
    assert!(out.comm.extras.get("poa_graph_nodes").copied().unwrap_or(0) > 0);

    // Determinism: the pipeline's pool-parallel per-contig consensus must be
    // bit-identical to a serial recomputation, pinned to one worker thread.
    let s_local = out.string_matrix.to_local_csr();
    let serial = dibella2d::dist::with_threads(1, || {
        consensus_contigs(&out.contigs, &s_local, &reads, &config.consensus)
    });
    assert_eq!(out.consensus, serial, "consensus must not depend on the thread count");
}

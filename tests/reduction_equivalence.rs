//! Cross-crate equivalence: the parallel transitive reduction (Algorithm 2),
//! Myers' sequential algorithm and the SORA-style vertex-centric baseline must
//! produce the same string graph — on hand-built fixtures and on overlap
//! matrices produced by the real pipeline.

use dibella2d::prelude::*;
use dibella2d::strgraph::fixtures::{forked_overlap_graph, tiling_overlap_graph, to_dist};
use dibella2d::strgraph::transitive::remaining_transitive_edges;

#[test]
fn all_three_reductions_agree_on_fixture_graphs() {
    for (n, span, alt) in [(20usize, 3usize, false), (25, 5, true), (16, 2, true)] {
        let triples = tiling_overlap_graph(n, span, alt);
        let local = CsrMatrix::from_triples(&triples);
        let dist = to_dist(&triples, ProcessGrid::square(4));
        let cfg = TransitiveReductionConfig { fuzz: 60, max_iterations: 16 };
        let comm = CommStats::new();

        let parallel = transitive_reduction(&dist, &cfg, &comm).string_matrix.to_local_csr();
        let (myers, _) = myers_transitive_reduction(&local, cfg.fuzz);
        let (sora, _) = sora_transitive_reduction(&local, cfg.fuzz);

        assert_eq!(parallel.pattern(), myers.pattern(), "n={n} span={span} alt={alt}");
        assert_eq!(parallel.pattern(), sora.pattern(), "n={n} span={span} alt={alt}");
        // Surviving values are untouched originals.
        for (i, j, e) in parallel.iter() {
            assert_eq!(local.get(i, j), Some(e));
        }
    }
}

#[test]
fn all_three_reductions_agree_on_forked_graphs() {
    let triples = forked_overlap_graph(6, 4, 3);
    let local = CsrMatrix::from_triples(&triples);
    let dist = to_dist(&triples, ProcessGrid::square(9));
    let cfg = TransitiveReductionConfig { fuzz: 60, max_iterations: 16 };
    let comm = CommStats::new();
    let parallel = transitive_reduction(&dist, &cfg, &comm).string_matrix.to_local_csr();
    let (myers, _) = myers_transitive_reduction(&local, cfg.fuzz);
    let (sora, _) = sora_transitive_reduction(&local, cfg.fuzz);
    assert_eq!(parallel.pattern(), myers.pattern());
    assert_eq!(parallel.pattern(), sora.pattern());
}

#[test]
fn reductions_agree_on_a_pipeline_produced_overlap_matrix() {
    // The overlap matrix coming out of the real pipeline has noisy suffixes,
    // all four edge directions and removed contained reads — a much harsher
    // input than the fixtures.
    let ds = DatasetSpec::Tiny.generate(201);
    let cfg = PipelineConfig::for_small_reads(13, 4);
    let comm = CommStats::new();
    let out = run_dibella_2d_on_reads(&ds.reads, &cfg, &comm);
    let r_local = out.overlap_matrix.to_local_csr();
    assert!(r_local.nnz() > 0);

    let fuzz = cfg.transitive.fuzz;
    let (myers, _) = myers_transitive_reduction(&r_local, fuzz);
    let (sora, _) = sora_transitive_reduction(&r_local, fuzz);
    let parallel = out.string_matrix.to_local_csr();

    // Myers' single pass and the iterated matrix formulation can differ on
    // pathological chains, but on real overlap graphs they should coincide;
    // the SORA-style baseline implements the same rule as Algorithm 2 and must
    // match exactly.
    assert_eq!(parallel.pattern(), sora.pattern());
    let myers_set: std::collections::HashSet<(usize, usize)> = myers.pattern().into_iter().collect();
    let parallel_set: std::collections::HashSet<(usize, usize)> =
        parallel.pattern().into_iter().collect();
    let sym_diff = myers_set.symmetric_difference(&parallel_set).count();
    assert!(
        sym_diff * 20 <= parallel_set.len(),
        "Myers and Algorithm 2 differ on {sym_diff} of {} edges",
        parallel_set.len()
    );
}

#[test]
fn no_implementation_leaves_transitive_edges_behind() {
    let ds = DatasetSpec::Tiny.generate(202);
    let cfg = PipelineConfig::for_small_reads(13, 4);
    let comm = CommStats::new();
    let out = run_dibella_2d_on_reads(&ds.reads, &cfg, &comm);
    let fuzz = cfg.transitive.fuzz;

    assert!(remaining_transitive_edges(&out.string_matrix, fuzz).is_empty());

    let r_local = out.overlap_matrix.to_local_csr();
    let (sora, _) = sora_transitive_reduction(&r_local, fuzz);
    let sora_dist = DistMat2D::from_triples(ProcessGrid::square(1), &sora.to_triples());
    assert!(remaining_transitive_edges(&sora_dist, fuzz).is_empty());
}

#[test]
fn grid_and_thread_count_do_not_change_the_string_graph() {
    let ds = DatasetSpec::Tiny.generate(203);
    let reference = {
        let cfg = PipelineConfig::for_small_reads(13, 1);
        let comm = CommStats::new();
        run_dibella_2d_on_reads(&ds.reads, &cfg, &comm).string_matrix.to_local_csr()
    };
    for nprocs in [4usize, 9, 25] {
        let cfg = PipelineConfig::for_small_reads(13, nprocs);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &cfg, &comm);
        assert_eq!(out.string_matrix.to_local_csr(), reference, "P={nprocs}");
    }
    // And across rayon thread counts.
    for threads in [1usize, 2, 8] {
        let cfg = PipelineConfig::for_small_reads(13, 4);
        let got = dibella2d::dist::with_threads(threads, || {
            let comm = CommStats::new();
            run_dibella_2d_on_reads(&ds.reads, &cfg, &comm).string_matrix.to_local_csr()
        });
        assert_eq!(got, reference, "threads={threads}");
    }
}

//! The MinPlus semiring with orientation checks (Algorithm 3).
//!
//! Squaring the overlap matrix with this semiring produces, for every ordered
//! read pair `(i, j)`, the length of the shortest valid two-hop walk
//! `i → k → j` — separately for each of the four possible bidirected
//! directions of the implied edge.  Keeping the minimum per direction (rather
//! than one global minimum) is what lets the element-wise transitivity test of
//! Algorithm 2 enforce rules (b) and (c) of Section II: the two-hop walk only
//! disqualifies a direct edge whose heads have the same orientations.
//!
//! The `ISDIROK` check of Algorithm 3 — "whether the two heads next to the
//! intermediate node have opposite directions" in the paper's phrasing, i.e.
//! whether the walk may pass through the middle read consistently — is the
//! [`BidirectedDir::chains_with`] predicate: multiplication returns the
//! semiring identity (here: `None`) when the two edges cannot be chained.

use dibella_align::BidirectedDir;
use dibella_overlap::OverlapEdge;
use dibella_sparse::Semiring;
use serde::{Deserialize, Serialize};

/// Entry of the two-hop matrix `N = R²`: the minimum two-hop suffix sum for
/// each of the four implied bidirected directions (`u32::MAX` = no valid walk
/// with that direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoHop {
    /// Minimum suffix-sum per implied direction (indexed by `BidirectedDir` bits).
    pub min_suffix: [u32; 4],
}

impl Default for TwoHop {
    fn default() -> Self {
        Self { min_suffix: [u32::MAX; 4] }
    }
}

impl TwoHop {
    /// A two-hop entry with a single known walk.
    pub fn single(dir: BidirectedDir, suffix_sum: u32) -> Self {
        let mut out = Self::default();
        out.min_suffix[dir.bits() as usize] = suffix_sum;
        out
    }

    /// The minimum suffix-sum of a walk whose implied direction matches `dir`.
    pub fn for_dir(&self, dir: BidirectedDir) -> Option<u32> {
        let v = self.min_suffix[dir.bits() as usize];
        (v != u32::MAX).then_some(v)
    }

    /// Whether any valid two-hop walk was found.
    pub fn any(&self) -> bool {
        self.min_suffix.iter().any(|&v| v != u32::MAX)
    }
}

/// Algorithm 3: MinPlus with the bidirected-walk validity check.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrMinPlus;

impl Semiring for TrMinPlus {
    type Left = OverlapEdge;
    type Right = OverlapEdge;
    type Out = TwoHop;

    fn multiply(a: &OverlapEdge, b: &OverlapEdge) -> Option<TwoHop> {
        let d1 = a.direction();
        let d2 = b.direction();
        // ISDIROK: the walk must traverse the intermediate read consistently.
        if !d1.chains_with(d2) {
            return None;
        }
        let implied = d1.compose(d2);
        Some(TwoHop::single(implied, a.suffix.saturating_add(b.suffix)))
    }

    fn add(acc: &mut TwoHop, x: TwoHop) {
        for dir in 0..4 {
            if x.min_suffix[dir] < acc.min_suffix[dir] {
                acc.min_suffix[dir] = x.min_suffix[dir];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(dir: u8, suffix: u32) -> OverlapEdge {
        OverlapEdge { dir, suffix, score: 100, overlap_len: 500 }
    }

    #[test]
    fn multiply_requires_consistent_middle_orientation() {
        // i -> k entering k forward (bit0 = 1) chains with k -> j leaving k forward.
        let ik = edge(0b11, 100);
        let kj = edge(0b11, 200);
        let n = TrMinPlus::multiply(&ik, &kj).expect("valid walk");
        assert_eq!(n.for_dir(BidirectedDir(0b11)), Some(300));
        // i -> k entering k forward does NOT chain with k -> j leaving k reversed.
        let kj_bad = edge(0b01, 200);
        assert!(TrMinPlus::multiply(&ik, &kj_bad).is_none());
    }

    #[test]
    fn multiply_composes_outer_orientations() {
        // i -> k (i forward, k reversed) then k -> j (k reversed, j forward):
        // valid, and the implied edge is (i forward, j forward).
        let ik = edge(0b10, 50);
        let kj = edge(0b01, 70);
        let n = TrMinPlus::multiply(&ik, &kj).unwrap();
        assert_eq!(n.for_dir(BidirectedDir(0b11)), Some(120));
        assert_eq!(n.for_dir(BidirectedDir(0b10)), None);
    }

    #[test]
    fn add_keeps_per_direction_minimum() {
        let mut acc = TwoHop::single(BidirectedDir(0b11), 300);
        TrMinPlus::add(&mut acc, TwoHop::single(BidirectedDir(0b11), 250));
        TrMinPlus::add(&mut acc, TwoHop::single(BidirectedDir(0b11), 400));
        TrMinPlus::add(&mut acc, TwoHop::single(BidirectedDir(0b10), 100));
        assert_eq!(acc.for_dir(BidirectedDir(0b11)), Some(250));
        assert_eq!(acc.for_dir(BidirectedDir(0b10)), Some(100));
        assert_eq!(acc.for_dir(BidirectedDir(0b00)), None);
        assert!(acc.any());
    }

    #[test]
    fn suffix_sums_saturate_instead_of_overflowing() {
        // Absurdly long suffixes saturate to u32::MAX, which is the "no walk"
        // sentinel — a saturated walk can never disqualify a real edge, which
        // is the safe direction to fail in.
        let ik = edge(0b11, u32::MAX - 5);
        let kj = edge(0b11, 100);
        let n = TrMinPlus::multiply(&ik, &kj).unwrap();
        assert_eq!(n.for_dir(BidirectedDir(0b11)), None);
        assert_eq!(n.min_suffix[0b11], u32::MAX);
    }

    #[test]
    fn default_two_hop_has_no_walks() {
        let t = TwoHop::default();
        assert!(!t.any());
        for bits in 0..4u8 {
            assert_eq!(t.for_dir(BidirectedDir(bits)), None);
        }
    }
}

//! A graph-level view of overlap and string matrices.
//!
//! The matrices of the pipeline *are* the graph (Section II: "A string graph
//! (or matrix) is a graph G = (V, E)"), but walks, degrees and path validity
//! are easier to reason about — and to test against the paper's Figures 2
//! and 3 — through an adjacency-list view.

use dibella_align::BidirectedDir;
use dibella_overlap::OverlapEdge;
use dibella_sparse::{CsrMatrix, DistMat2D};
use serde::{Deserialize, Serialize};

/// An adjacency-list view of a bidirected overlap/string graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BidirectedGraph {
    adjacency: Vec<Vec<(usize, OverlapEdge)>>,
}

impl BidirectedGraph {
    /// Build from a local overlap/string matrix.
    pub fn from_matrix(m: &CsrMatrix<OverlapEdge>) -> Self {
        assert_eq!(m.nrows(), m.ncols(), "overlap matrices are square");
        let adjacency = (0..m.nrows())
            .map(|v| m.row(v).map(|(w, e)| (w, *e)).collect())
            .collect();
        Self { adjacency }
    }

    /// Build from a distributed matrix (gathers the blocks).
    pub fn from_dist_matrix(m: &DistMat2D<OverlapEdge>) -> Self {
        Self::from_matrix(&m.to_local_csr())
    }

    /// Number of vertices (reads).
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of directed edge entries (each overlap contributes two).
    pub fn num_directed_edges(&self) -> usize {
        self.adjacency.iter().map(|a| a.len()).sum()
    }

    /// Number of undirected overlaps.
    pub fn num_overlaps(&self) -> usize {
        self.num_directed_edges() / 2
    }

    /// Degree (number of overlap partners) of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// The edge from `v` to `w`, if present.
    pub fn edge(&self, v: usize, w: usize) -> Option<&OverlapEdge> {
        self.adjacency[v].iter().find(|(x, _)| *x == w).map(|(_, e)| e)
    }

    /// Neighbours of `v` with their edges.
    pub fn neighbors(&self, v: usize) -> &[(usize, OverlapEdge)] {
        &self.adjacency[v]
    }

    /// Whether the vertex sequence is a **valid walk** in the bidirected graph
    /// (Figure 2): consecutive edges must exist and each intermediate vertex
    /// must be left in the same orientation it was entered in.
    pub fn is_valid_walk(&self, path: &[usize]) -> bool {
        if path.len() < 2 {
            return true;
        }
        let mut prev_dir: Option<BidirectedDir> = None;
        for pair in path.windows(2) {
            let Some(edge) = self.edge(pair[0], pair[1]) else { return false };
            let dir = edge.direction();
            if let Some(prev) = prev_dir {
                if !prev.chains_with(dir) {
                    return false;
                }
            }
            prev_dir = Some(dir);
        }
        true
    }

    /// Histogram of vertex degrees (index = degree).
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max_deg = self.adjacency.iter().map(|a| a.len()).max().unwrap_or(0);
        let mut hist = vec![0usize; max_deg + 1];
        for a in &self.adjacency {
            hist[a.len()] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{chain_overlap_graph, tiling_overlap_graph};
    use dibella_sparse::Triples;

    fn edge(dir: u8, suffix: u32) -> OverlapEdge {
        OverlapEdge { dir, suffix, score: 10, overlap_len: 100 }
    }

    /// Build the small graphs of Figure 2 by hand: a chain A-B-C-D whose heads
    /// are consistent, and a chain E-F-G-H where the F-G step flips
    /// orientation so that E→F→G is invalid while F→G→H is valid.
    fn figure2_graphs() -> (BidirectedGraph, BidirectedGraph) {
        // Consistent chain: every edge forward/forward.
        let mut upper = Triples::new(4, 4);
        for i in 0..3usize {
            upper.push(i, i + 1, edge(0b11, 100));
            upper.push(i + 1, i, edge(0b00, 100));
        }
        // Lower chain: E-F forward/forward, F-G enters G reversed, G-H must
        // then leave G reversed for F→G→H to be valid.
        let mut lower = Triples::new(4, 4);
        lower.push(0, 1, edge(0b11, 100)); // E -> F (enter F forward)
        lower.push(1, 0, edge(0b00, 100));
        lower.push(1, 2, edge(0b00, 100)); // F -> G leaves F reversed, enters G reversed
        lower.push(2, 1, edge(0b11, 100));
        lower.push(2, 3, edge(0b01, 100)); // G -> H leaves G reversed, enters H forward
        lower.push(3, 2, edge(0b01, 100));
        (
            BidirectedGraph::from_matrix(&CsrMatrix::from_triples(&upper)),
            BidirectedGraph::from_matrix(&CsrMatrix::from_triples(&lower)),
        )
    }

    #[test]
    fn figure2_abcd_is_a_valid_walk() {
        let (upper, _) = figure2_graphs();
        assert!(upper.is_valid_walk(&[0, 1, 2, 3]));
        assert!(upper.is_valid_walk(&[0, 1]));
        assert!(upper.is_valid_walk(&[2]));
    }

    #[test]
    fn figure2_efg_is_invalid_but_fgh_is_valid() {
        let (_, lower) = figure2_graphs();
        // E → F enters F forward, but F → G leaves F reversed: invalid.
        assert!(!lower.is_valid_walk(&[0, 1, 2]));
        // F → G enters G reversed and G → H leaves G reversed: valid.
        assert!(lower.is_valid_walk(&[1, 2, 3]));
    }

    #[test]
    fn missing_edges_invalidate_walks() {
        let g = BidirectedGraph::from_matrix(&CsrMatrix::from_triples(&chain_overlap_graph(5, 1)));
        assert!(g.is_valid_walk(&[0, 1, 2, 3, 4]));
        assert!(!g.is_valid_walk(&[0, 2]), "non-adjacent reads share no edge");
        assert!(!g.is_valid_walk(&[0, 1, 4]));
    }

    #[test]
    fn reverse_strand_tiling_walks_are_valid() {
        let g = BidirectedGraph::from_matrix(&CsrMatrix::from_triples(&tiling_overlap_graph(
            6, 1, true,
        )));
        assert!(g.is_valid_walk(&[0, 1, 2, 3, 4, 5]));
        assert!(g.is_valid_walk(&[5, 4, 3, 2, 1, 0]));
    }

    #[test]
    fn counts_and_degrees() {
        let g = BidirectedGraph::from_matrix(&CsrMatrix::from_triples(&chain_overlap_graph(6, 2)));
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_overlaps(), 5 + 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 4);
        let hist = g.degree_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 6);
        assert_eq!(hist[2], 2, "the two chain ends have degree 2");
    }

    #[test]
    fn edge_lookup_matches_matrix() {
        let m = CsrMatrix::from_triples(&chain_overlap_graph(4, 2));
        let g = BidirectedGraph::from_matrix(&m);
        for (i, j, e) in m.iter() {
            assert_eq!(g.edge(i, j), Some(e));
        }
        assert_eq!(g.edge(0, 3), None);
    }
}

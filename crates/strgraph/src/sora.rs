//! A SORA-style vertex-centric transitive reduction (comparison baseline).
//!
//! SORA (Paul et al., BIBM 2018) computes the same overlap-graph-to-string-
//! graph reduction on Apache Spark with GraphX.  Its execution model is
//! vertex-centric: in every superstep each vertex ships its adjacency list to
//! its neighbours (GraphX `aggregateMessages`), each vertex then decides which
//! of its incident edges are transitive, and a new graph is materialised
//! before the next superstep.  That structure — per-superstep message
//! materialisation of `Σ deg²` adjacency copies and a full graph rebuild,
//! with no semiring fusion — is what diBELLA 2D's sparse-matrix formulation
//! avoids, and it is the source of the 10–29× gap in Table VI.  This module
//! reproduces the execution structure faithfully (including the memory
//! traffic), while the transitivity rule itself matches Algorithm 2 so both
//! implementations compute the same string graph.

use dibella_overlap::OverlapEdge;
use dibella_sparse::CsrMatrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Execution counters of a SORA-style run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoraStats {
    /// Number of supersteps executed (including the final no-change step).
    pub supersteps: usize,
    /// Total adjacency records materialised as messages across all supersteps.
    pub messages: u64,
    /// Directed entries removed in total.
    pub removed: usize,
}

/// Run the vertex-centric reduction until no edge is removed.
pub fn sora_transitive_reduction(
    r: &CsrMatrix<OverlapEdge>,
    fuzz: u32,
) -> (CsrMatrix<OverlapEdge>, SoraStats) {
    assert_eq!(r.nrows(), r.ncols(), "the overlap matrix must be square");
    let n = r.nrows();
    let mut current = r.clone();
    let mut stats = SoraStats::default();

    loop {
        stats.supersteps += 1;

        // Superstep phase 1: every vertex materialises its adjacency list and
        // sends a copy to each neighbour (the aggregateMessages shuffle).
        let adjacency: Vec<Vec<(usize, OverlapEdge)>> = (0..n)
            .map(|v| current.row(v).map(|(w, e)| (w, *e)).collect())
            .collect();
        let mut inbox: Vec<HashMap<usize, Vec<(usize, OverlapEdge)>>> = vec![HashMap::new(); n];
        for (v, adj) in adjacency.iter().enumerate() {
            for (w, _) in adj {
                // Vertex v sends its full adjacency to neighbour w.
                inbox[*w].insert(v, adj.clone());
                stats.messages += adj.len() as u64;
            }
        }

        // Superstep phase 2: every vertex flags its transitive out-edges using
        // the received neighbour adjacencies (same rule as Algorithm 2).
        let mut flagged: Vec<(usize, usize)> = Vec::new();
        for (u, received) in inbox.iter().enumerate() {
            let own: Vec<(usize, OverlapEdge)> = adjacency[u].clone();
            if own.is_empty() {
                continue;
            }
            let bound =
                own.iter().map(|(_, e)| e.suffix).max().unwrap_or(0).saturating_add(fuzz);
            for (x, e_ux) in &own {
                let mut transitive = false;
                for (v, e_uv) in &own {
                    if v == x {
                        continue;
                    }
                    let Some(v_adj) = received.get(v) else { continue };
                    if let Some((_, e_vx)) = v_adj.iter().find(|(t, _)| t == x) {
                        if e_uv.direction().chains_with(e_vx.direction())
                            && e_uv.direction().compose(e_vx.direction()) == e_ux.direction()
                            && e_uv.suffix.saturating_add(e_vx.suffix) <= bound
                        {
                            transitive = true;
                            break;
                        }
                    }
                }
                if transitive {
                    flagged.push((u, *x));
                }
            }
        }

        if flagged.is_empty() {
            break;
        }
        // Keep the graph pattern-symmetric, as the matrix formulation does.
        let mut to_remove: std::collections::HashSet<(usize, usize)> =
            flagged.iter().copied().collect();
        for (u, x) in flagged {
            to_remove.insert((x, u));
        }
        // Superstep phase 3: materialise the new graph.
        let next = current.filter(|i, j, _| !to_remove.contains(&(i, j)));
        stats.removed += current.nnz() - next.nnz();
        current = next;
    }

    (current, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{chain_overlap_graph, tiling_overlap_graph};
    use crate::transitive::{transitive_reduction, TransitiveReductionConfig};
    use dibella_dist::{CommStats, ProcessGrid};
    use dibella_sparse::DistMat2D;

    #[test]
    fn sora_reduces_the_chain_like_algorithm_2() {
        let triples = chain_overlap_graph(10, 3);
        let local = CsrMatrix::from_triples(&triples);
        let (sora, stats) = sora_transitive_reduction(&local, 60);
        assert_eq!(sora.nnz(), 2 * 9);
        assert!(stats.removed > 0);
        assert!(stats.supersteps >= 2, "needs at least one working step plus the fixed-point step");
        assert!(stats.messages > 0);
    }

    #[test]
    fn sora_matches_the_parallel_reduction_on_tilings() {
        for (n, span, alt) in [(8usize, 2usize, false), (10, 3, true)] {
            let triples = tiling_overlap_graph(n, span, alt);
            let local = CsrMatrix::from_triples(&triples);
            let (sora, _) = sora_transitive_reduction(&local, 60);
            let dist = DistMat2D::from_triples(ProcessGrid::square(4), &triples);
            let comm = CommStats::new();
            let parallel =
                transitive_reduction(&dist, &TransitiveReductionConfig::for_tests(), &comm);
            assert_eq!(sora.pattern(), parallel.string_matrix.to_local_csr().pattern());
        }
    }

    #[test]
    fn message_volume_scales_with_degree_squared() {
        // Doubling the span (degree) should roughly quadruple the per-superstep
        // message volume — the structural cost of the vertex-centric model.
        let small = CsrMatrix::from_triples(&chain_overlap_graph(30, 2));
        let big = CsrMatrix::from_triples(&chain_overlap_graph(30, 4));
        let (_, s_small) = sora_transitive_reduction(&small, 60);
        let (_, s_big) = sora_transitive_reduction(&big, 60);
        let per_step_small = s_small.messages as f64 / s_small.supersteps as f64;
        let per_step_big = s_big.messages as f64 / s_big.supersteps as f64;
        assert!(
            per_step_big > per_step_small * 2.5,
            "message volume should grow superlinearly with degree: {per_step_small} -> {per_step_big}"
        );
    }

    #[test]
    fn already_reduced_graph_terminates_in_one_superstep() {
        let triples = chain_overlap_graph(6, 1);
        let local = CsrMatrix::from_triples(&triples);
        let (out, stats) = sora_transitive_reduction(&local, 60);
        assert_eq!(out.nnz(), local.nnz());
        assert_eq!(stats.supersteps, 1);
        assert_eq!(stats.removed, 0);
    }
}

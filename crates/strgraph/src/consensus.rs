//! Banded partial-order-alignment (POA) consensus over contig layouts.
//!
//! The paper's pipeline stops at the string graph — "overlap" and "layout" of
//! OLC — and leaves consensus to downstream tools.  This module closes the
//! loop: every [`Contig`] layout produced by
//! [`extract_contigs`](crate::contigs::extract_contigs) is turned into one
//! consensus [`DnaSeq`].
//!
//! The algorithm is the POA scheme long-read assemblers use per window:
//!
//! 1. the layout's first read seeds a **backbone** — a chain of POA nodes;
//! 2. every subsequent read is placed on the backbone with the overlap
//!    coordinates already stored in its [`OverlapEdge`] (`overlap_len` gives
//!    the expected placement, `suffix` the expected extension), oriented by
//!    the edge's bidirected direction;
//! 3. the read is aligned to its backbone window with a **banded**
//!    dynamic program (the same linear-gap [`ScoringScheme`] the x-drop
//!    aligner uses; the band absorbs the indel drift of noisy reads) and the
//!    resulting operations are threaded into the graph: matches bump node
//!    weights, substitutions branch into *alternative* nodes, insertions
//!    create (or re-weight) *insert* nodes between columns, deletions simply
//!    skip columns — the edge weights record every traversal;
//! 4. the consensus is the **heaviest path** through the resulting DAG,
//!    found by one dynamic-programming sweep over a topological order.
//!
//! Because reads are threaded in layout order and each read overlaps its
//! predecessor, the graph stays connected and the band stays narrow: the
//! whole consensus costs `O(read_len · band)` per read.

use crate::contigs::Contig;
use dibella_align::ScoringScheme;
use dibella_overlap::OverlapEdge;
use dibella_seq::{DnaSeq, ReadSet};
use dibella_sparse::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Tuning knobs of the consensus stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsensusConfig {
    /// Minimum half-width of the alignment band, in bases.
    pub min_band: usize,
    /// The band half-width grows to this fraction of the read length (noisy
    /// long reads accumulate indel drift proportional to their length).
    pub band_fraction: f64,
    /// Base-level scoring used by the banded aligner (the x-drop scheme).
    pub scoring: ScoringScheme,
}

impl Default for ConsensusConfig {
    fn default() -> Self {
        Self { min_band: 32, band_fraction: 0.2, scoring: ScoringScheme::default() }
    }
}

impl ConsensusConfig {
    fn band_for(&self, read_len: usize) -> usize {
        self.min_band.max((read_len as f64 * self.band_fraction) as usize)
    }
}

/// The consensus of one contig, with the counters the pipeline reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContigConsensus {
    /// The consensus sequence (the heaviest path through the POA graph).
    pub consensus: DnaSeq,
    /// Number of reads threaded into the POA graph.
    pub reads: usize,
    /// Number of nodes in the final POA graph.
    pub poa_nodes: usize,
    /// Total read bases aligned into the graph (backbone included).
    pub aligned_bases: usize,
}

// ---------------------------------------------------------------------------
// The POA graph
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct PoaNode {
    base: u8,
    weight: u32,
    /// Outgoing edges `(target node, traversal count)`.
    edges: Vec<(usize, u32)>,
    /// Whether this node is an insertion node (no backbone column of its own).
    is_insert: bool,
}

/// A partial-order alignment graph: a DAG of 2-bit bases whose heaviest path
/// is the consensus.  Nodes are created by threading reads; the **backbone**
/// is the anchor path reads are banded-aligned against.
#[derive(Debug, Clone, Default)]
pub struct PoaGraph {
    nodes: Vec<PoaNode>,
    /// Anchor column node ids, in contig order.
    backbone: Vec<usize>,
    /// Per backbone column: alternative (substitution) nodes.
    alts: Vec<Vec<usize>>,
}

/// One traceback operation of the banded aligner, in window coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AlnOp {
    /// Read base equals window column `col`.
    Match(usize),
    /// Read base substitutes window column `col`.
    Sub(usize, u8),
    /// Read base inserted between window columns.
    Ins(u8),
    /// Window column `col` deleted from the read.
    Del(usize),
}

impl PoaGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current backbone length in columns.
    pub fn backbone_len(&self) -> usize {
        self.backbone.len()
    }

    fn add_node(&mut self, base: u8, is_insert: bool) -> usize {
        self.nodes.push(PoaNode { base, weight: 0, edges: Vec::new(), is_insert });
        self.nodes.len() - 1
    }

    fn push_backbone(&mut self, base: u8) -> usize {
        let id = self.add_node(base, false);
        self.backbone.push(id);
        self.alts.push(Vec::new());
        id
    }

    fn bump_edge(&mut self, from: usize, to: usize) {
        let edges = &mut self.nodes[from].edges;
        match edges.iter_mut().find(|(t, _)| *t == to) {
            Some((_, w)) => *w += 1,
            None => edges.push((to, 1)),
        }
    }

    /// Visit `node` while threading: bump its weight and the edge from the
    /// previously visited node.
    fn visit(&mut self, prev: &mut Option<usize>, node: usize) {
        self.nodes[node].weight += 1;
        if let Some(p) = *prev {
            self.bump_edge(p, node);
        }
        *prev = Some(node);
    }

    /// Seed the graph with the backbone read (the layout's first read).
    fn thread_backbone(&mut self, codes: &[u8]) {
        debug_assert!(self.backbone.is_empty(), "backbone must be threaded first");
        let mut prev = None;
        for &b in codes {
            let id = self.push_backbone(b);
            self.visit(&mut prev, id);
        }
    }

    /// Thread one aligned read into the graph.  `ops` are window-relative;
    /// `wstart` maps window column 0 to a backbone column.  `tail` holds read
    /// bases that extend past the current backbone end and become new
    /// backbone columns.
    fn thread_ops(&mut self, wstart: usize, ops: &[AlnOp], tail: &[u8]) {
        let mut prev: Option<usize> = None;
        for op in ops {
            match *op {
                AlnOp::Match(col) => {
                    let node = self.backbone[wstart + col];
                    self.visit(&mut prev, node);
                }
                AlnOp::Sub(col, base) => {
                    let column = wstart + col;
                    let node = match self.alts[column].iter().find(|&&n| self.nodes[n].base == base)
                    {
                        Some(&n) => n,
                        None => {
                            let n = self.add_node(base, false);
                            self.alts[column].push(n);
                            n
                        }
                    };
                    self.visit(&mut prev, node);
                }
                AlnOp::Ins(base) => {
                    // Re-use an existing insert node reachable from `prev`
                    // with the same base, so identical insertions accumulate
                    // weight; otherwise create a fresh one.
                    let existing = prev.and_then(|p| {
                        self.nodes[p]
                            .edges
                            .iter()
                            .map(|&(t, _)| t)
                            .find(|&t| self.nodes[t].is_insert && self.nodes[t].base == base)
                    });
                    let node = existing.unwrap_or_else(|| self.add_node(base, true));
                    self.visit(&mut prev, node);
                }
                AlnOp::Del(_) => {
                    // The deleted column is simply not visited; the edge from
                    // `prev` to the next visited node records the skip.
                }
            }
        }
        for &b in tail {
            let id = self.push_backbone(b);
            self.visit(&mut prev, id);
        }
    }

    /// The heaviest path through the DAG: one DP sweep over a topological
    /// order maximising coverage-adjusted traversal weights (see the scoring
    /// note inside), then a traceback.
    pub fn heaviest_path(&self) -> DnaSeq {
        let n = self.nodes.len();
        if n == 0 {
            return DnaSeq::new();
        }
        // Kahn topological order (node ids are NOT topological: substitution
        // branches link forward to older backbone nodes).
        let mut indeg = vec![0usize; n];
        for node in &self.nodes {
            for &(t, _) in &node.edges {
                indeg[t] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &(t, _) in &self.nodes[v].edges {
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(t);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "POA graph must be acyclic");

        // score[v] = best path score ending at v (0 = the path starts at v).
        // An edge u→v contributes `2·w(u,v) − outw(u)`: its traversal count
        // against half the local coverage leaving `u`.  A raw heaviest path
        // (summing traversals alone) keeps any sufficiently long minority
        // detour; the coverage penalty makes a detour win only when roughly
        // half the reads took it — a majority vote expressed as a path DP.
        let outw: Vec<i64> = self
            .nodes
            .iter()
            .map(|node| node.edges.iter().map(|&(_, w)| w as i64).sum())
            .collect();
        let mut score = vec![0i64; n];
        let mut pred = vec![usize::MAX; n];
        for &v in &order {
            for &(t, w) in &self.nodes[v].edges {
                let cand = score[v] + 2 * w as i64 - outw[v];
                if cand > score[t] {
                    score[t] = cand;
                    pred[t] = v;
                }
            }
        }
        let mut best = 0;
        for v in 1..n {
            if score[v] > score[best] {
                best = v;
            }
        }
        let mut path = Vec::new();
        let mut v = best;
        loop {
            path.push(self.nodes[v].base);
            if pred[v] == usize::MAX {
                break;
            }
            v = pred[v];
        }
        path.reverse();
        DnaSeq::from_codes(path)
    }
}

// ---------------------------------------------------------------------------
// The banded aligner
// ---------------------------------------------------------------------------

const NEG: i32 = i32::MIN / 4;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    Stop,
    Diag,
    Up,
    Left,
}

/// Result of a banded fit alignment of a read against a backbone window.
struct BandedFit {
    /// Operations in read order covering read bases `0..read_consumed`.
    ops: Vec<AlnOp>,
    /// Read bases consumed by `ops` (the rest extend past the window).
    read_consumed: usize,
    /// Window columns spanned by `ops` (leading/trailing window columns the
    /// alignment never reached are *not* included).
    window_consumed: usize,
    /// Matches and total aligned columns, for identity computations.
    matches: usize,
    columns: usize,
}

/// Banded "fit" alignment of `read` against `window`: the read may start at
/// any window column near the expected `offset` (free leading window gap) and
/// may either end inside the window or consume the window entirely (the
/// remaining read bases are returned as the unconsumed tail).
fn banded_fit(
    read: &[u8],
    window: &[u8],
    offset: usize,
    band: usize,
    scoring: ScoringScheme,
) -> BandedFit {
    let rn = read.len();
    let wn = window.len();
    if rn == 0 || wn == 0 {
        return BandedFit { ops: Vec::new(), read_consumed: 0, window_consumed: 0, matches: 0, columns: 0 };
    }

    // Row i spans window columns [lo[i], hi[i]] around the expected diagonal.
    let lo_of = |i: usize| (offset + i).saturating_sub(band).min(wn);
    let hi_of = |i: usize| (offset + i + band).min(wn);
    let width = |i: usize| hi_of(i) + 1 - lo_of(i);

    // Scores of the current and previous row; direction of every banded cell.
    let mut dirs: Vec<Vec<Dir>> = Vec::with_capacity(rn + 1);
    let mut prev_row: Vec<i32> = (0..width(0)).map(|_| 0).collect(); // free start
    dirs.push(vec![Dir::Stop; width(0)]);

    // Best "free end" cell: either the window is consumed (column `wn`, the
    // rest of the read becomes the tail the caller appends to the backbone)
    // or the read is (last row, the read ends inside the window).
    let (mut best_i, mut best_j, mut best) = (0usize, 0usize, NEG);
    if wn <= hi_of(0) {
        // Degenerate: the window can be skipped entirely (score 0); only wins
        // when no real alignment scores positive.
        best = 0;
        best_j = wn;
    }

    for i in 1..=rn {
        let lo = lo_of(i);
        let hi = hi_of(i);
        let plo = lo_of(i - 1);
        let phi = hi_of(i - 1);
        let mut row = vec![NEG; hi + 1 - lo];
        let mut dir_row = vec![Dir::Stop; hi + 1 - lo];
        for j in lo..=hi {
            let mut best = NEG;
            let mut dir = Dir::Stop;
            // Diagonal: consume one read and one window base.
            if j >= 1 && (plo..=phi).contains(&(j - 1)) {
                let d = prev_row[j - 1 - plo];
                if d > NEG {
                    let sub = if read[i - 1] == window[j - 1] {
                        scoring.match_score
                    } else {
                        scoring.mismatch
                    };
                    if d + sub > best {
                        best = d + sub;
                        dir = Dir::Diag;
                    }
                }
            }
            // Up: consume a read base only (insertion into the window).
            if (plo..=phi).contains(&j) {
                let u = prev_row[j - plo];
                if u > NEG && u + scoring.gap > best {
                    best = u + scoring.gap;
                    dir = Dir::Up;
                }
            }
            // Left: consume a window base only (deletion from the read).
            if j > lo {
                let l = row[j - 1 - lo];
                if l > NEG && l + scoring.gap > best {
                    best = l + scoring.gap;
                    dir = Dir::Left;
                }
            }
            row[j - lo] = best;
            dir_row[j - lo] = dir;
        }
        if (lo..=hi).contains(&wn) {
            let v = row[wn - lo];
            if v > best {
                best = v;
                best_i = i;
                best_j = wn;
            }
        }
        if i == rn {
            for j in lo..=hi {
                let v = row[j - lo];
                if v > best {
                    best = v;
                    best_i = rn;
                    best_j = j;
                }
            }
        }
        prev_row = row;
        dirs.push(dir_row);
        if prev_row.iter().all(|&v| v <= NEG) {
            // The whole band died (pathological placement); fall back to an
            // empty alignment so the caller treats the read as unplaced.
            return BandedFit { ops: Vec::new(), read_consumed: 0, window_consumed: 0, matches: 0, columns: 0 };
        }
    }

    // Traceback from the best boundary cell; read bases past `best_i` are
    // the unconsumed tail (an extension of the backbone, when the window was
    // consumed to its end).
    let mut ops_rev: Vec<AlnOp> = Vec::new();
    let (mut i, mut j) = (best_i, best_j);
    let mut matches = 0usize;
    let mut columns = 0usize;
    loop {
        let lo = lo_of(i);
        let d = dirs[i][j - lo];
        match d {
            Dir::Stop => break,
            Dir::Diag => {
                columns += 1;
                if read[i - 1] == window[j - 1] {
                    matches += 1;
                    ops_rev.push(AlnOp::Match(j - 1));
                } else {
                    ops_rev.push(AlnOp::Sub(j - 1, read[i - 1]));
                }
                i -= 1;
                j -= 1;
            }
            Dir::Up => {
                columns += 1;
                ops_rev.push(AlnOp::Ins(read[i - 1]));
                i -= 1;
            }
            Dir::Left => {
                columns += 1;
                ops_rev.push(AlnOp::Del(j - 1));
                j -= 1;
            }
        }
    }
    ops_rev.reverse();
    // `j` now sits at the traceback's start column, so the alignment spanned
    // window columns `j..best_j`.
    BandedFit { ops: ops_rev, read_consumed: best_i, window_consumed: best_j - j, matches, columns }
}

/// Percent identity (matches / aligned columns) of a banded global-ish
/// alignment of `a` against `b`.  Used by the assembly-quality metrics to
/// compare a consensus sequence against the reference it should reproduce.
pub fn banded_identity(a: &DnaSeq, b: &DnaSeq, config: &ConsensusConfig) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // Unlike read threading there is no placement uncertainty here — the two
    // sequences start together — so the band only needs the length difference
    // plus a small allowance for indel drift (2% of the longer sequence),
    // keeping whole-contig identity linear-ish in the contig length.
    let len = a.len().max(b.len());
    let band = config.min_band.max(a.len().abs_diff(b.len()) + len / 50);
    let fit = banded_fit(a.codes(), b.codes(), 0, band, config.scoring);
    if fit.columns == 0 {
        return 0.0;
    }
    // Bases on either side that the alignment never covered — `a` bases past
    // its end, `b` bases before its start or after its end — count as
    // unaligned columns, so a truncated or prefix-only alignment cannot
    // report 100%.
    let overhang_a = a.len() - fit.read_consumed;
    let overhang_b = b.len() - fit.window_consumed;
    fit.matches as f64 / (fit.columns + overhang_a + overhang_b) as f64
}

// ---------------------------------------------------------------------------
// Layout-driven consensus
// ---------------------------------------------------------------------------

/// Walk orientation of every read in a contig layout, reconstructed from the
/// bidirected directions stored on the layout's edges (`true` = the walk
/// traverses the read in its stored orientation).
fn walk_orientations(contig: &Contig, s: &CsrMatrix<OverlapEdge>) -> Vec<bool> {
    let reads = &contig.reads;
    let mut orientations = Vec::with_capacity(reads.len());
    if reads.len() == 1 {
        orientations.push(true);
        return orientations;
    }
    for pair in reads.windows(2) {
        let edge = s
            .get(pair[0], pair[1])
            // lint: allow(unwrap) — extract_contigs only emits edges present in S
            .expect("contig layouts walk existing string-graph edges");
        let dir = edge.direction();
        if orientations.is_empty() {
            orientations.push(dir.source_forward());
        }
        orientations.push(dir.dest_forward());
    }
    orientations
}

/// Build the consensus of one contig layout.
///
/// `s` is the string matrix the layout was extracted from (its edges provide
/// the placement coordinates), `reads` the read set the layout indexes into.
pub fn consensus_contig(
    contig: &Contig,
    s: &CsrMatrix<OverlapEdge>,
    reads: &ReadSet,
    config: &ConsensusConfig,
) -> ContigConsensus {
    assert!(!contig.is_empty(), "cannot build a consensus of an empty layout");
    let orientations = walk_orientations(contig, s);
    let mut graph = PoaGraph::new();
    let mut aligned_bases = 0usize;

    let oriented = |idx: usize, forward: bool| -> DnaSeq {
        let seq = reads.seq(contig.reads[idx]);
        if forward {
            seq.clone()
        } else {
            seq.reverse_complement()
        }
    };

    // Backbone: the first read of the layout.
    let first = oriented(0, orientations[0]);
    aligned_bases += first.len();
    graph.thread_backbone(first.codes());

    for (step, &orientation) in orientations.iter().enumerate().skip(1) {
        let edge = s
            .get(contig.reads[step - 1], contig.reads[step])
            // lint: allow(unwrap) — extract_contigs only emits edges present in S
            .expect("contig layouts walk existing string-graph edges");
        let seq = oriented(step, orientation);
        aligned_bases += seq.len();
        let band = config.band_for(seq.len());

        // Expected placement: the read overlaps the current backbone end by
        // `overlap_len` bases, padded by the band to absorb indel drift.
        let backbone_len = graph.backbone_len();
        let expected_start = backbone_len.saturating_sub(edge.overlap_len as usize);
        let wstart = expected_start.saturating_sub(band);
        let offset = expected_start - wstart;
        let window: Vec<u8> =
            graph.backbone[wstart..].iter().map(|&id| graph.nodes[id].base).collect();

        let fit = banded_fit(seq.codes(), &window, offset, band, config.scoring);
        let tail = &seq.codes()[fit.read_consumed..];
        graph.thread_ops(wstart, &fit.ops, tail);
    }

    ContigConsensus {
        consensus: graph.heaviest_path(),
        reads: contig.reads.len(),
        poa_nodes: graph.num_nodes(),
        aligned_bases,
    }
}

/// Build the consensus of every contig layout, in layout order.
///
/// This is the serial kernel; the pipeline parallelises the loop per contig
/// on the work-stealing pool (see `dibella_pipeline::run2d`).
pub fn consensus_contigs(
    contigs: &[Contig],
    s: &CsrMatrix<OverlapEdge>,
    reads: &ReadSet,
    config: &ConsensusConfig,
) -> Vec<ContigConsensus> {
    contigs.iter().map(|c| consensus_contig(c, s, reads, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_seq::simulate::apply_errors;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, seed: u64) -> DnaSeq {
        let mut rng = SmallRng::seed_from_u64(seed);
        DnaSeq::from_codes((0..len).map(|_| rng.gen_range(0..4u8)).collect())
    }

    /// Build a synthetic layout of `n` reads tiling `genome` at `step` with
    /// `span` bases of overlap, returning the contig, the matrix and reads.
    fn tiling_layout(
        genome: &DnaSeq,
        read_len: usize,
        step: usize,
        error: f64,
        seed: u64,
    ) -> (Contig, CsrMatrix<OverlapEdge>, ReadSet) {
        use dibella_seq::fasta::ReadRecord;
        let n = (genome.len() - read_len) / step + 1;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut reads = ReadSet::new();
        for i in 0..n {
            let template = genome.slice(i * step, i * step + read_len);
            let seq = apply_errors(&template, error, &mut rng);
            reads.push(ReadRecord { name: format!("r{i}"), seq });
        }
        let mut triples = dibella_sparse::Triples::new(n, n);
        for i in 0..n - 1 {
            let overlap = (read_len - step) as u32;
            let edge = OverlapEdge {
                dir: 0b11,
                suffix: step as u32,
                score: overlap as i32,
                overlap_len: overlap,
            };
            let back = OverlapEdge { dir: 0b00, ..edge };
            triples.push(i, i + 1, edge);
            triples.push(i + 1, i, back);
        }
        let contig = Contig {
            reads: (0..n).collect(),
            estimated_length: read_len + (n - 1) * step,
            circular: false,
        };
        (contig, CsrMatrix::from_triples(&triples), reads)
    }

    #[test]
    fn single_read_contig_consensus_is_the_read() {
        use dibella_seq::fasta::ReadRecord;
        let seq = random_seq(300, 1);
        let mut reads = ReadSet::new();
        reads.push(ReadRecord { name: "only".into(), seq: seq.clone() });
        let s = CsrMatrix::zero(1, 1);
        let contig = Contig { reads: vec![0], estimated_length: 300, circular: false };
        let out = consensus_contig(&contig, &s, &reads, &ConsensusConfig::default());
        assert_eq!(out.consensus, seq);
        assert_eq!(out.reads, 1);
        assert_eq!(out.poa_nodes, 300);
        assert_eq!(out.aligned_bases, 300);
    }

    #[test]
    fn error_free_tiling_reconstructs_the_genome_exactly() {
        let genome = random_seq(2_000, 2);
        let (contig, s, reads) = tiling_layout(&genome, 500, 250, 0.0, 3);
        let out = consensus_contig(&contig, &s, &reads, &ConsensusConfig::default());
        assert_eq!(out.consensus, genome, "error-free layout must reproduce the genome");
        assert_eq!(out.reads, contig.reads.len());
        assert!(out.poa_nodes >= genome.len());
    }

    #[test]
    fn noisy_tiling_consensus_beats_every_single_read() {
        let genome = random_seq(3_000, 4);
        let (contig, s, reads) = tiling_layout(&genome, 600, 60, 0.05, 5);
        let cfg = ConsensusConfig::default();
        let out = consensus_contig(&contig, &s, &reads, &cfg);
        let identity = banded_identity(&out.consensus, &genome, &cfg);
        assert!(
            identity > 0.99,
            "deep noisy pileup should polish to >99% identity, got {identity:.4}"
        );
        // Any single read has ~6% error; the consensus must be far better.
        let read_identity = banded_identity(
            reads.seq(0),
            &genome.slice(0, reads.seq(0).len() + 60),
            &cfg,
        );
        assert!(identity > read_identity, "{identity} vs raw read {read_identity}");
        let len_ratio = out.consensus.len() as f64 / genome.len() as f64;
        assert!((0.97..1.03).contains(&len_ratio), "length ratio {len_ratio}");
    }

    #[test]
    fn reverse_strand_reads_are_oriented_by_the_edge_direction() {
        use dibella_seq::fasta::ReadRecord;
        let genome = random_seq(900, 6);
        // Read 0 forward [0, 600), read 1 stored reverse-complemented [300, 900).
        let r0 = genome.slice(0, 600);
        let r1 = genome.slice(300, 900).reverse_complement();
        let mut reads = ReadSet::new();
        reads.push(ReadRecord { name: "f".into(), seq: r0 });
        reads.push(ReadRecord { name: "r".into(), seq: r1 });
        let mut t = dibella_sparse::Triples::new(2, 2);
        // Walking 0 -> 1 leaves 0 forward and traverses 1 reversed.
        t.push(0, 1, OverlapEdge { dir: 0b10, suffix: 300, score: 300, overlap_len: 300 });
        t.push(1, 0, OverlapEdge { dir: 0b10, suffix: 300, score: 300, overlap_len: 300 });
        let s = CsrMatrix::from_triples(&t);
        let contig = Contig { reads: vec![0, 1], estimated_length: 900, circular: false };
        let out = consensus_contig(&contig, &s, &reads, &ConsensusConfig::default());
        assert_eq!(out.consensus, genome, "reverse-strand read must be flipped before threading");
    }

    #[test]
    fn consensus_contigs_covers_every_layout() {
        let genome = random_seq(1_200, 7);
        let (contig, s, reads) = tiling_layout(&genome, 400, 200, 0.0, 8);
        let outs = consensus_contigs(&[contig.clone(), contig], &s, &reads, &ConsensusConfig::default());
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0], outs[1], "same layout must give the same consensus");
    }

    #[test]
    fn banded_identity_of_identical_and_disjoint_sequences() {
        let cfg = ConsensusConfig::default();
        let a = random_seq(500, 9);
        assert!((banded_identity(&a, &a, &cfg) - 1.0).abs() < 1e-12);
        let all_a = DnaSeq::from_codes(vec![0; 500]);
        let all_t = DnaSeq::from_codes(vec![3; 500]);
        assert!(banded_identity(&all_a, &all_t, &cfg) < 0.5);
        assert_eq!(banded_identity(&DnaSeq::new(), &a, &cfg), 0.0);
    }

    #[test]
    fn banded_identity_penalises_truncation() {
        let cfg = ConsensusConfig::default();
        let a = random_seq(800, 10);
        let half = a.slice(0, 400);
        let id = banded_identity(&a, &half, &cfg);
        assert!(id < 0.6, "aligning a sequence to its half cannot be near-identical: {id}");
        // The reverse direction too: a consensus that reproduces only a
        // prefix of the reference region must be penalised for the reference
        // bases it never reached, not scored on the prefix alone.
        let id_rev = banded_identity(&half, &a, &cfg);
        assert!(
            (0.4..0.6).contains(&id_rev),
            "a perfect half-prefix covers half the reference: {id_rev}"
        );
    }

    #[test]
    fn heaviest_path_prefers_the_majority_base() {
        // Three reads vote A at one position, one votes C: consensus takes A.
        use dibella_seq::fasta::ReadRecord;
        let base = random_seq(400, 11);
        let mut dissent_codes = base.codes().to_vec();
        dissent_codes[200] = (dissent_codes[200] + 1) % 4;
        let mut reads = ReadSet::new();
        for i in 0..3 {
            reads.push(ReadRecord { name: format!("m{i}"), seq: base.clone() });
        }
        reads.push(ReadRecord { name: "d".into(), seq: DnaSeq::from_codes(dissent_codes) });
        let mut t = dibella_sparse::Triples::new(4, 4);
        for i in 0..3usize {
            // Full-length overlaps: suffix 0 keeps the layout aligned.
            let e = OverlapEdge { dir: 0b11, suffix: 0, score: 400, overlap_len: 400 };
            t.push(i, i + 1, e);
            t.push(i + 1, i, OverlapEdge { dir: 0b00, ..e });
        }
        let s = CsrMatrix::from_triples(&t);
        let contig = Contig { reads: vec![0, 1, 2, 3], estimated_length: 400, circular: false };
        let out = consensus_contig(&contig, &s, &reads, &ConsensusConfig::default());
        assert_eq!(out.consensus, base, "majority vote must win the branch");
    }
}

//! Block-wise element-wise operations on 2D-distributed matrices.
//!
//! Algorithm 2's element-wise steps (`M ≥ N`, `R ∘ ¬I`) are "executed in-place
//! so that they do not contribute to communication time" (Section V-D): every
//! grid rank already holds the co-located blocks of both operands, so these
//! kernels simply map over the blocks in parallel.

use dibella_dist::par_ranks;
use dibella_sparse::elementwise::{ewise_intersect, set_difference};
use dibella_sparse::{CsrMatrix, DistMat2D};

/// Element-wise operation over the intersection of two identically-distributed
/// matrices.  `f` receives **global** coordinates.
pub fn ewise_intersect_dist<A, B, C>(
    a: &DistMat2D<A>,
    b: &DistMat2D<B>,
    f: impl Fn(usize, usize, &A, &B) -> Option<C> + Sync,
) -> DistMat2D<C>
where
    A: Clone + Send + Sync,
    B: Clone + Send + Sync,
    C: Clone + Send + Sync,
{
    assert_eq!(a.grid(), b.grid(), "operands must share a process grid");
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let grid = a.grid();
    let row_dist = a.row_dist();
    let col_dist = a.col_dist();
    let blocks: Vec<CsrMatrix<C>> = par_ranks(grid.nprocs(), |rank| {
        let (bi, bj) = grid.coords(rank);
        let roff = row_dist.start(bi);
        let coff = col_dist.start(bj);
        ewise_intersect(a.block(bi, bj), b.block(bi, bj), |r, c, x, y| {
            f(roff + r, coff + c, x, y)
        })
    });
    DistMat2D::from_blocks(grid, a.nrows(), a.ncols(), blocks)
}

/// The set difference `nonzeros(a) \ nonzeros(mask)` on identically-distributed
/// matrices (line 9 of Algorithm 2).
pub fn set_difference_dist<A, M>(a: &DistMat2D<A>, mask: &DistMat2D<M>) -> DistMat2D<A>
where
    A: Clone + Send + Sync,
    M: Clone + Send + Sync,
{
    assert_eq!(a.grid(), mask.grid(), "operands must share a process grid");
    assert_eq!(a.nrows(), mask.nrows());
    assert_eq!(a.ncols(), mask.ncols());
    let grid = a.grid();
    let blocks: Vec<CsrMatrix<A>> = par_ranks(grid.nprocs(), |rank| {
        let (bi, bj) = grid.coords(rank);
        set_difference(a.block(bi, bj), mask.block(bi, bj))
    });
    DistMat2D::from_blocks(grid, a.nrows(), a.ncols(), blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_dist::ProcessGrid;
    use dibella_sparse::Triples;

    fn dist(entries: Vec<(usize, usize, i64)>, n: usize, p: usize) -> DistMat2D<i64> {
        DistMat2D::from_triples(ProcessGrid::square(p), &Triples::from_entries(n, n, entries))
    }

    #[test]
    fn dist_intersect_matches_local_intersect() {
        let a = dist(vec![(0, 1, 10), (2, 3, 20), (5, 5, 30), (7, 0, 40)], 8, 4);
        let b = dist(vec![(0, 1, 1), (5, 5, 2), (6, 6, 3)], 8, 4);
        let c = ewise_intersect_dist(&a, &b, |_, _, x, y| Some(x + y));
        let local = ewise_intersect(&a.to_local_csr(), &b.to_local_csr(), |_, _, x, y| Some(x + y));
        assert_eq!(c.to_local_csr(), local);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn dist_intersect_passes_global_coordinates() {
        let a = dist(vec![(6, 7, 1)], 8, 4);
        let b = dist(vec![(6, 7, 2)], 8, 4);
        let c = ewise_intersect_dist(&a, &b, |r, col, _, _| Some((r * 10 + col) as i64));
        assert_eq!(c.get(6, 7), Some(&67));
    }

    #[test]
    fn dist_set_difference_matches_local() {
        let a = dist(vec![(0, 0, 1), (1, 2, 2), (3, 3, 3), (7, 7, 4)], 8, 4);
        let mask = dist(vec![(1, 2, 99), (7, 7, 99)], 8, 4);
        let d = set_difference_dist(&a, &mask);
        let local = set_difference(&a.to_local_csr(), &mask.to_local_csr());
        assert_eq!(d.to_local_csr(), local);
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.get(0, 0), Some(&1));
        assert_eq!(d.get(1, 2), None);
    }

    #[test]
    #[should_panic(expected = "share a process grid")]
    fn mismatched_grids_are_rejected() {
        let a = dist(vec![(0, 0, 1)], 8, 4);
        let b = dist(vec![(0, 0, 1)], 8, 1);
        let _ = set_difference_dist(&a, &b);
    }
}

//! Assembly-quality metrics: contiguity, consensus accuracy, misjoins.
//!
//! Once the consensus stage emits sequence (closing the OLC loop), the usual
//! assembly-evaluation vocabulary applies.  This module computes it:
//!
//! * **contiguity** — N50 (half the *assembled* bases live in contigs at
//!   least this long) and NG50 (half the *genome* does), total assembled
//!   bases, largest contig;
//! * **accuracy** — per-contig percent identity of the consensus against the
//!   region of the reference its reads came from (available whenever the
//!   simulator's ground-truth [`ReadOrigin`]s are known), reported per
//!   contig and as a length-weighted mean;
//! * **structural correctness** — misjoin count: adjacent reads in a layout
//!   whose genomic intervals do not actually overlap.
//!
//! The `assembly_quality` harness in `dibella-bench` serialises an
//! [`AssemblyMetrics`] to `BENCH_assembly.json`; the golden end-to-end test
//! asserts NG50 and identity thresholds on a known 20 kbp reference.

use crate::consensus::{banded_identity, ConsensusConfig, ContigConsensus};
use crate::contigs::Contig;
use dibella_seq::simulate::ReadOrigin;
use dibella_seq::DnaSeq;
use serde::{Deserialize, Serialize};

/// N50 of a set of contig lengths: the largest length `L` such that contigs
/// of length ≥ `L` together cover at least half the assembled bases.
pub fn n50(lengths: &[usize]) -> usize {
    nx50(lengths, lengths.iter().sum())
}

/// NG50: like [`n50`], but against half the *genome* length, so a fragmented
/// or incomplete assembly cannot inflate the statistic.  Returns 0 when the
/// assembly covers less than half the genome.
pub fn ng50(lengths: &[usize], genome_length: usize) -> usize {
    nx50(lengths, genome_length)
}

fn nx50(lengths: &[usize], denominator_bases: usize) -> usize {
    if denominator_bases == 0 {
        return 0;
    }
    let mut sorted: Vec<usize> = lengths.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let half = denominator_bases.div_ceil(2);
    let mut cum = 0usize;
    for len in sorted {
        cum += len;
        if cum >= half {
            return len;
        }
    }
    0
}

/// Quality of one contig's consensus against the reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContigQuality {
    /// Number of reads in the layout.
    pub reads: usize,
    /// Consensus length in bases.
    pub length: usize,
    /// Start of the genomic region the contig's reads were sampled from.
    pub ref_start: usize,
    /// End (exclusive) of that region.
    pub ref_end: usize,
    /// Percent identity (0..=1) of the consensus against that region, taking
    /// the better of the two strands.
    pub identity: f64,
    /// Adjacent layout reads whose genomic intervals do not overlap.
    pub misjoins: usize,
}

/// Aggregate assembly-quality metrics for one run.
///
/// The headline statistics (`assembled_bases`, `largest_contig`, `n50`,
/// `ng50`, the identities) are computed over **multi-read** contigs: a
/// singleton layout is a contained or isolated read the layout stage set
/// aside, and a real assembler would not emit it as a contig (counting them
/// would double-cover the genome).  When *no* layout chains two reads, the
/// headline falls back to all contigs so a degenerate run still reports
/// something.  `per_contig` always covers everything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssemblyMetrics {
    /// Number of contigs (consensus sequences), singletons included.
    pub contigs: usize,
    /// Contigs whose layout has at least two reads.
    pub multi_read_contigs: usize,
    /// Total consensus bases of the scored (multi-read) contigs.
    pub assembled_bases: usize,
    /// Largest scored consensus length.
    pub largest_contig: usize,
    /// N50 over scored consensus lengths.
    pub n50: usize,
    /// NG50 over scored consensus lengths against the reference length.
    pub ng50: usize,
    /// Reference (genome) length the NG50 is computed against.
    pub genome_length: usize,
    /// Length-weighted mean identity of scored contigs vs the reference.
    pub mean_identity: f64,
    /// Identity of the largest scored contig vs the reference.
    pub largest_identity: f64,
    /// Total misjoins across all contigs.
    pub misjoins: usize,
    /// Per-contig detail for every contig, in the contig order given.
    pub per_contig: Vec<ContigQuality>,
}

/// Evaluate an assembly against the simulator's ground truth.
///
/// `contigs` and `consensi` must be parallel (one consensus per layout);
/// `origins` is indexed by read id, `genome` is the reference the reads were
/// sampled from.
pub fn evaluate_assembly(
    contigs: &[Contig],
    consensi: &[ContigConsensus],
    origins: &[ReadOrigin],
    genome: &DnaSeq,
    config: &ConsensusConfig,
) -> AssemblyMetrics {
    assert_eq!(contigs.len(), consensi.len(), "one consensus per contig required");
    let mut per_contig = Vec::with_capacity(contigs.len());
    for (contig, cons) in contigs.iter().zip(consensi) {
        per_contig.push(contig_quality(contig, cons, origins, genome, config));
    }

    let multi_read_contigs = per_contig.iter().filter(|q| q.reads > 1).count();
    // Score multi-read contigs; fall back to everything if nothing chained.
    let scored: Vec<&ContigQuality> = if multi_read_contigs > 0 {
        per_contig.iter().filter(|q| q.reads > 1).collect()
    } else {
        per_contig.iter().collect()
    };
    let lengths: Vec<usize> = scored.iter().map(|q| q.length).collect();
    let assembled_bases: usize = lengths.iter().sum();
    let mean_identity = if assembled_bases > 0 {
        scored.iter().map(|q| q.identity * q.length as f64).sum::<f64>() / assembled_bases as f64
    } else {
        0.0
    };
    let largest_identity = scored
        .iter()
        .max_by_key(|q| q.length)
        .map_or(0.0, |q| q.identity);

    AssemblyMetrics {
        contigs: contigs.len(),
        multi_read_contigs,
        assembled_bases,
        largest_contig: lengths.iter().copied().max().unwrap_or(0),
        n50: n50(&lengths),
        ng50: ng50(&lengths, genome.len()),
        genome_length: genome.len(),
        mean_identity,
        largest_identity,
        misjoins: per_contig.iter().map(|q| q.misjoins).sum(),
        per_contig,
    }
}

fn contig_quality(
    contig: &Contig,
    cons: &ContigConsensus,
    origins: &[ReadOrigin],
    genome: &DnaSeq,
    config: &ConsensusConfig,
) -> ContigQuality {
    let ref_start = contig.reads.iter().map(|&r| origins[r].start).min().unwrap_or(0);
    let ref_end = contig.reads.iter().map(|&r| origins[r].end()).max().unwrap_or(0);
    let region = genome.slice(ref_start, ref_end);

    // The layout's orientation relative to the reference is arbitrary, so
    // score both strands and keep the better.
    let fwd = banded_identity(&cons.consensus, &region, config);
    let rev = banded_identity(&cons.consensus.reverse_complement(), &region, config);
    let identity = fwd.max(rev);

    let misjoins = contig
        .reads
        .windows(2)
        .filter(|pair| origins[pair[0]].overlap_with(&origins[pair[1]]) == 0)
        .count();

    ContigQuality {
        reads: contig.reads.len(),
        length: cons.consensus.len(),
        ref_start,
        ref_end,
        identity,
        misjoins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_seq::Strand;

    fn origin(start: usize, span: usize) -> ReadOrigin {
        ReadOrigin { start, span, strand: Strand::Forward }
    }

    #[test]
    fn n50_matches_the_textbook_definition() {
        // Lengths 80, 70, 50, 40, 30, 20: total 290, half 145; 80+70 = 150 >= 145.
        assert_eq!(n50(&[50, 80, 20, 30, 70, 40]), 70);
        assert_eq!(n50(&[100]), 100);
        assert_eq!(n50(&[]), 0);
        // All equal lengths: N50 is that length.
        assert_eq!(n50(&[25, 25, 25, 25]), 25);
    }

    #[test]
    fn ng50_uses_the_genome_length_as_denominator() {
        // Assembly of 150 bases over a 400-base genome: cumulative 80+70 = 150
        // never reaches 200, so NG50 is 0 (assembly too incomplete).
        assert_eq!(ng50(&[80, 70], 400), 0);
        // Over a 200-base genome, the cumulative sum crosses 100 at the
        // second contig: NG50 = 70.
        assert_eq!(ng50(&[80, 70], 200), 70);
        // A perfect single-contig assembly: NG50 = genome length.
        assert_eq!(ng50(&[400], 400), 400);
        assert_eq!(ng50(&[10, 10], 0), 0);
    }

    #[test]
    fn misjoined_layouts_are_counted() {
        let genome = DnaSeq::from_codes(vec![0; 1_000]);
        let origins = vec![origin(0, 300), origin(200, 300), origin(700, 300)];
        // Reads 0-1 overlap on the genome; 1-2 do not: one misjoin.
        let contig = Contig { reads: vec![0, 1, 2], estimated_length: 900 };
        let cons = ContigConsensus {
            consensus: genome.slice(0, 900),
            reads: 3,
            poa_nodes: 900,
            aligned_bases: 900,
        };
        let metrics = evaluate_assembly(
            &[contig],
            &[cons],
            &origins,
            &genome,
            &ConsensusConfig::default(),
        );
        assert_eq!(metrics.misjoins, 1);
        assert_eq!(metrics.per_contig[0].ref_start, 0);
        assert_eq!(metrics.per_contig[0].ref_end, 1_000);
    }

    #[test]
    fn perfect_single_contig_assembly_scores_full_identity() {
        let genome: DnaSeq = "ACGTTGCAACGTACGTTGCAACGGACGTTGCAACGTAAGTC"
            .parse()
            .unwrap();
        let origins = vec![origin(0, genome.len())];
        let contig = Contig { reads: vec![0], estimated_length: genome.len() };
        let cons = ContigConsensus {
            consensus: genome.clone(),
            reads: 1,
            poa_nodes: genome.len(),
            aligned_bases: genome.len(),
        };
        let m = evaluate_assembly(
            &[contig],
            &[cons],
            &origins,
            &genome,
            &ConsensusConfig::default(),
        );
        assert_eq!(m.contigs, 1);
        assert_eq!(m.multi_read_contigs, 0);
        assert_eq!(m.assembled_bases, genome.len());
        assert_eq!(m.n50, genome.len());
        assert_eq!(m.ng50, genome.len());
        assert!((m.largest_identity - 1.0).abs() < 1e-12);
        assert_eq!(m.misjoins, 0);
    }

    #[test]
    fn reverse_oriented_contigs_still_match_the_reference() {
        let mut codes = Vec::new();
        let mut state = 12345u64;
        for _ in 0..600 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            codes.push(((state >> 33) % 4) as u8);
        }
        let genome = DnaSeq::from_codes(codes);
        let origins = vec![origin(100, 400)];
        let contig = Contig { reads: vec![0], estimated_length: 400 };
        // The consensus came out reverse-complemented relative to the genome.
        let cons = ContigConsensus {
            consensus: genome.slice(100, 500).reverse_complement(),
            reads: 1,
            poa_nodes: 400,
            aligned_bases: 400,
        };
        let m = evaluate_assembly(
            &[contig],
            &[cons],
            &origins,
            &genome,
            &ConsensusConfig::default(),
        );
        assert!(m.per_contig[0].identity > 0.99, "identity {}", m.per_contig[0].identity);
    }

    #[test]
    fn mean_identity_is_length_weighted_over_multi_read_contigs() {
        let genome = DnaSeq::from_codes((0..400).map(|i| (i % 4) as u8).collect());
        let origins = vec![origin(0, 200), origin(100, 200), origin(200, 100)];
        let good = ContigConsensus {
            consensus: genome.slice(0, 300),
            reads: 2,
            poa_nodes: 300,
            aligned_bases: 400,
        };
        // A singleton contig with garbage consensus must not drag the mean.
        let noise = ContigConsensus {
            consensus: DnaSeq::from_codes(vec![0; 100]),
            reads: 1,
            poa_nodes: 100,
            aligned_bases: 100,
        };
        let contigs = vec![
            Contig { reads: vec![0, 1], estimated_length: 300 },
            Contig { reads: vec![2], estimated_length: 100 },
        ];
        let m = evaluate_assembly(
            &contigs,
            &[good, noise],
            &origins,
            &genome,
            &ConsensusConfig::default(),
        );
        assert_eq!(m.multi_read_contigs, 1);
        assert!(m.mean_identity > 0.99, "mean identity {}", m.mean_identity);
    }
}

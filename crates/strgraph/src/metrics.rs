//! Assembly-quality metrics: contiguity, consensus accuracy, misjoins.
//!
//! Once the consensus stage emits sequence (closing the OLC loop), the usual
//! assembly-evaluation vocabulary applies.  This module computes it:
//!
//! * **contiguity** — N50 (half the *assembled* bases live in contigs at
//!   least this long) and NG50 (half the *genome* does), total assembled
//!   bases, largest contig;
//! * **accuracy** — per-contig percent identity of the consensus against the
//!   region of the reference its reads came from (available whenever the
//!   simulator's ground-truth [`ReadOrigin`]s are known), reported per
//!   contig and as a length-weighted mean;
//! * **structural correctness** — misjoin count: adjacent reads in a layout
//!   whose genomic intervals do not actually overlap.  When the ground truth
//!   carries chimera labels ([`GroundTruth::chimeric`]), a break at a
//!   labelled chimeric read is reported separately as a *chimera break*
//!   (library artefact propagated) rather than an assembler misjoin.
//!
//! Evaluation is topology-aware: on a [`Topology::Circular`] reference,
//! wrap-around reads overlap across the origin, the reference region of an
//! origin-crossing contig is extracted as a circular arc
//! ([`dibella_seq::simulate::circular_slice`]), and a full-circle contig —
//! whose consensus is a rotation of the genome at an arbitrary cut — is
//! scored against rotations anchored at its terminal reads.
//!
//! The `assembly_quality` harness in `dibella-bench` serialises an
//! [`AssemblyMetrics`] to `BENCH_assembly.json`; the golden end-to-end test
//! asserts NG50 and identity thresholds on a known 20 kbp reference, and
//! `tests/assembly_scenarios.rs` pins per-scenario floors on the adversarial
//! suite.

use crate::consensus::{banded_identity, ConsensusConfig, ContigConsensus};
use crate::contigs::Contig;
use dibella_seq::simulate::{circular_slice, ReadOrigin, SimulatedDataset, Topology};
use dibella_seq::DnaSeq;
use serde::{Deserialize, Serialize};

/// N50 of a set of contig lengths: the largest length `L` such that contigs
/// of length ≥ `L` together cover at least half the assembled bases.
pub fn n50(lengths: &[usize]) -> usize {
    nx50(lengths, lengths.iter().sum())
}

/// NG50: like [`n50`], but against half the *genome* length, so a fragmented
/// or incomplete assembly cannot inflate the statistic.  Returns 0 when the
/// assembly covers less than half the genome.
pub fn ng50(lengths: &[usize], genome_length: usize) -> usize {
    nx50(lengths, genome_length)
}

fn nx50(lengths: &[usize], denominator_bases: usize) -> usize {
    if denominator_bases == 0 {
        return 0;
    }
    let mut sorted: Vec<usize> = lengths.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let half = denominator_bases.div_ceil(2);
    let mut cum = 0usize;
    for len in sorted {
        cum += len;
        if cum >= half {
            return len;
        }
    }
    0
}

/// The simulator's ground truth, bundled for evaluation: read origins, the
/// reference, its topology, and (optionally) per-read chimera labels.
#[derive(Debug, Clone, Copy)]
pub struct GroundTruth<'a> {
    /// Ground-truth origin of every read, indexed by read id.
    pub origins: &'a [ReadOrigin],
    /// The reference genome the reads were sampled from.
    pub genome: &'a DnaSeq,
    /// Topology of the reference replicon.
    pub topology: Topology,
    /// Per-read chimera labels (empty slice = no labels; every read is then
    /// treated as non-chimeric and every broken adjacency as a misjoin).
    pub chimeric: &'a [bool],
}

impl<'a> GroundTruth<'a> {
    /// Ground truth for a linear reference without chimera labels — the
    /// classic [`evaluate_assembly`] interface.
    pub fn linear(origins: &'a [ReadOrigin], genome: &'a DnaSeq) -> Self {
        Self { origins, genome, topology: Topology::Linear, chimeric: &[] }
    }

    /// Ground truth straight from a [`SimulatedDataset`] (topology and
    /// chimera labels included).
    pub fn from_dataset(ds: &'a SimulatedDataset) -> Self {
        Self {
            origins: &ds.origins,
            genome: &ds.genome,
            topology: ds.topology,
            chimeric: &ds.chimeric,
        }
    }

    fn is_chimeric(&self, read: usize) -> bool {
        self.chimeric.get(read).copied().unwrap_or(false)
    }
}

/// Quality of one contig's consensus against the reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContigQuality {
    /// Number of reads in the layout.
    pub reads: usize,
    /// Consensus length in bases.
    pub length: usize,
    /// Start of the genomic region the contig's reads were sampled from.
    pub ref_start: usize,
    /// End (exclusive) of that region.  On a circular reference this may
    /// exceed the genome length: the region wraps around the origin.
    pub ref_end: usize,
    /// Percent identity (0..=1) of the consensus against that region, taking
    /// the better of the two strands.
    pub identity: f64,
    /// Adjacent layout reads whose genomic intervals do not overlap, neither
    /// read being a labelled chimera — assembler errors.
    pub misjoins: usize,
    /// Broken adjacencies where at least one read is a labelled chimera —
    /// library artefacts the assembler propagated rather than created.
    pub chimera_breaks: usize,
}

/// Aggregate assembly-quality metrics for one run.
///
/// The headline statistics (`assembled_bases`, `largest_contig`, `n50`,
/// `ng50`, the identities) are computed over **multi-read** contigs: a
/// singleton layout is a contained or isolated read the layout stage set
/// aside, and a real assembler would not emit it as a contig (counting them
/// would double-cover the genome).  When *no* layout chains two reads, the
/// headline falls back to all contigs so a degenerate run still reports
/// something.  `per_contig` always covers everything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssemblyMetrics {
    /// Number of contigs (consensus sequences), singletons included.
    pub contigs: usize,
    /// Contigs whose layout has at least two reads.
    pub multi_read_contigs: usize,
    /// Contigs whose layout closed into a cycle (circular replicons).
    pub circular_contigs: usize,
    /// Total consensus bases of the scored (multi-read) contigs.
    pub assembled_bases: usize,
    /// Largest scored consensus length.
    pub largest_contig: usize,
    /// N50 over scored consensus lengths.
    pub n50: usize,
    /// NG50 over scored consensus lengths against the reference length.
    pub ng50: usize,
    /// Reference (genome) length the NG50 is computed against.
    pub genome_length: usize,
    /// Length-weighted mean identity of scored contigs vs the reference.
    pub mean_identity: f64,
    /// Identity of the largest scored contig vs the reference.
    pub largest_identity: f64,
    /// Total assembler misjoins across all contigs.
    pub misjoins: usize,
    /// Total chimera breaks (see [`ContigQuality::chimera_breaks`]).
    pub chimera_breaks: usize,
    /// Per-contig detail for every contig, in the contig order given.
    pub per_contig: Vec<ContigQuality>,
}

/// Evaluate an assembly against linear-topology ground truth without chimera
/// labels (the classic interface; see [`evaluate_assembly_truth`] for the
/// topology- and chimera-aware version).
pub fn evaluate_assembly(
    contigs: &[Contig],
    consensi: &[ContigConsensus],
    origins: &[ReadOrigin],
    genome: &DnaSeq,
    config: &ConsensusConfig,
) -> AssemblyMetrics {
    evaluate_assembly_truth(contigs, consensi, &GroundTruth::linear(origins, genome), config)
}

/// Evaluate an assembly against the simulator's full ground truth.
///
/// `contigs` and `consensi` must be parallel (one consensus per layout).
/// With [`Topology::Circular`] truth, adjacency checks and region extraction
/// wrap around the origin; with chimera labels, broken adjacencies at
/// labelled reads are counted as chimera breaks rather than misjoins.
pub fn evaluate_assembly_truth(
    contigs: &[Contig],
    consensi: &[ContigConsensus],
    truth: &GroundTruth<'_>,
    config: &ConsensusConfig,
) -> AssemblyMetrics {
    assert_eq!(contigs.len(), consensi.len(), "one consensus per contig required");
    let mut per_contig = Vec::with_capacity(contigs.len());
    for (contig, cons) in contigs.iter().zip(consensi) {
        per_contig.push(contig_quality(contig, cons, truth, config));
    }

    let multi_read_contigs = per_contig.iter().filter(|q| q.reads > 1).count();
    // Score multi-read contigs; fall back to everything if nothing chained.
    let scored: Vec<&ContigQuality> = if multi_read_contigs > 0 {
        per_contig.iter().filter(|q| q.reads > 1).collect()
    } else {
        per_contig.iter().collect()
    };
    let lengths: Vec<usize> = scored.iter().map(|q| q.length).collect();
    let assembled_bases: usize = lengths.iter().sum();
    let mean_identity = if assembled_bases > 0 {
        scored.iter().map(|q| q.identity * q.length as f64).sum::<f64>() / assembled_bases as f64
    } else {
        0.0
    };
    let largest_identity = scored
        .iter()
        .max_by_key(|q| q.length)
        .map_or(0.0, |q| q.identity);

    AssemblyMetrics {
        contigs: contigs.len(),
        multi_read_contigs,
        circular_contigs: contigs.iter().filter(|c| c.circular).count(),
        assembled_bases,
        largest_contig: lengths.iter().copied().max().unwrap_or(0),
        n50: n50(&lengths),
        ng50: ng50(&lengths, truth.genome.len()),
        genome_length: truth.genome.len(),
        mean_identity,
        largest_identity,
        misjoins: per_contig.iter().map(|q| q.misjoins).sum(),
        chimera_breaks: per_contig.iter().map(|q| q.chimera_breaks).sum(),
        per_contig,
    }
}

fn contig_quality(
    contig: &Contig,
    cons: &ContigConsensus,
    truth: &GroundTruth<'_>,
    config: &ConsensusConfig,
) -> ContigQuality {
    let origins = truth.origins;
    let genome_len = truth.genome.len();

    let mut misjoins = 0usize;
    let mut chimera_breaks = 0usize;
    let mut adjacencies: Vec<(usize, usize)> =
        contig.reads.windows(2).map(|p| (p[0], p[1])).collect();
    if contig.circular && contig.reads.len() > 2 {
        // The cut point of a linearised circular walk is a true adjacency too.
        // lint: allow(unwrap) — reads.len() > 2 is checked just above
        adjacencies.push((*contig.reads.last().unwrap(), contig.reads[0]));
    }
    for (a, b) in adjacencies {
        if origins[a].overlap_with_in(&origins[b], truth.topology, genome_len) == 0 {
            if truth.is_chimeric(a) || truth.is_chimeric(b) {
                chimera_breaks += 1;
            } else {
                misjoins += 1;
            }
        }
    }

    let (ref_start, ref_end, regions) = reference_regions(contig, cons, truth);
    // The layout's orientation relative to the reference is arbitrary, so
    // score both strands of every candidate region and keep the best.
    let identity = regions
        .iter()
        .flat_map(|region| {
            [
                banded_identity(&cons.consensus, region, config),
                banded_identity(&cons.consensus.reverse_complement(), region, config),
            ]
        })
        .fold(0.0f64, f64::max);

    ContigQuality {
        reads: contig.reads.len(),
        length: cons.consensus.len(),
        ref_start,
        ref_end,
        identity,
        misjoins,
        chimera_breaks,
    }
}

/// The reference region(s) a contig's consensus should be scored against:
/// `(ref_start, ref_end, candidate regions)`.
fn reference_regions(
    contig: &Contig,
    cons: &ContigConsensus,
    truth: &GroundTruth<'_>,
) -> (usize, usize, Vec<DnaSeq>) {
    let origins = truth.origins;
    let genome = truth.genome;
    match truth.topology {
        Topology::Linear => {
            let ref_start = contig.reads.iter().map(|&r| origins[r].start).min().unwrap_or(0);
            let ref_end = contig.reads.iter().map(|&r| origins[r].end()).max().unwrap_or(0);
            (ref_start, ref_end, vec![genome.slice(ref_start, ref_end)])
        }
        Topology::Circular => {
            let len = genome.len();
            match minimal_covering_arc(contig, origins, len) {
                Some((arc_start, arc_len)) => (
                    arc_start,
                    arc_start + arc_len,
                    vec![circular_slice(genome, arc_start, arc_len)],
                ),
                None => {
                    // The reads cover the whole circle: the consensus is a
                    // rotation of the genome at an arbitrary cut.  The walk
                    // starts (in either direction) at one of the terminal
                    // reads, so rotations anchored there are the candidates.
                    let span = cons.consensus.len().clamp(len, 2 * len);
                    let first = origins[contig.reads[0]].start % len.max(1);
                    // lint: allow(unwrap) — contigs hold at least one read
                    let last = origins[*contig.reads.last().unwrap()].start % len.max(1);
                    let regions = [first, last]
                        .iter()
                        .map(|&anchor| circular_slice(genome, anchor, span))
                        .collect();
                    (first, first + len, regions)
                }
            }
        }
    }
}

/// The minimal circular arc covering every read of the contig, as
/// `(start, length)` — or `None` when the reads cover the entire circle.
///
/// Uses the largest-gap method: merge the reads' footprint arcs; the minimal
/// covering arc is the complement of the largest uncovered gap.
fn minimal_covering_arc(
    contig: &Contig,
    origins: &[ReadOrigin],
    genome_len: usize,
) -> Option<(usize, usize)> {
    if genome_len == 0 {
        return Some((0, 0));
    }
    // Split each read's footprint into non-wrapping intervals on [0, len).
    let mut intervals: Vec<(usize, usize)> = Vec::new();
    for &r in &contig.reads {
        let span = origins[r].span;
        if span >= genome_len {
            return None;
        }
        let start = origins[r].start % genome_len;
        let end = start + span;
        if end <= genome_len {
            intervals.push((start, end));
        } else {
            intervals.push((start, genome_len));
            intervals.push((0, end - genome_len));
        }
    }
    intervals.sort_unstable();
    // Merge.
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (s, e) in intervals {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    // Gaps between consecutive merged intervals, plus the wrap gap.
    let mut best_gap: Option<(usize, usize)> = None; // (gap_start, gap_len)
    for w in merged.windows(2) {
        let gap = (w[0].1, w[1].0 - w[0].1);
        if gap.1 > best_gap.map_or(0, |g| g.1) {
            best_gap = Some(gap);
        }
    }
    let first = merged.first().copied().unwrap_or((0, 0));
    let last = merged.last().copied().unwrap_or((0, 0));
    let wrap_gap_len = (genome_len - last.1) + first.0;
    if wrap_gap_len > best_gap.map_or(0, |g| g.1) {
        best_gap = Some((last.1 % genome_len, wrap_gap_len));
    }
    best_gap.filter(|g| g.1 > 0).map(|(gap_start, gap_len)| {
        let arc_start = (gap_start + gap_len) % genome_len;
        (arc_start, genome_len - gap_len)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_seq::Strand;
    use proptest::prelude::*;

    fn origin(start: usize, span: usize) -> ReadOrigin {
        ReadOrigin { start, span, strand: Strand::Forward }
    }

    fn consensus_of(seq: DnaSeq, reads: usize) -> ContigConsensus {
        let len = seq.len();
        ContigConsensus { consensus: seq, reads, poa_nodes: len, aligned_bases: len }
    }

    #[test]
    fn n50_matches_the_textbook_definition() {
        // Lengths 80, 70, 50, 40, 30, 20: total 290, half 145; 80+70 = 150 >= 145.
        assert_eq!(n50(&[50, 80, 20, 30, 70, 40]), 70);
        assert_eq!(n50(&[100]), 100);
        assert_eq!(n50(&[]), 0);
        // All equal lengths: N50 is that length.
        assert_eq!(n50(&[25, 25, 25, 25]), 25);
    }

    #[test]
    fn ng50_uses_the_genome_length_as_denominator() {
        // Assembly of 150 bases over a 400-base genome: cumulative 80+70 = 150
        // never reaches 200, so NG50 is 0 (assembly too incomplete).
        assert_eq!(ng50(&[80, 70], 400), 0);
        // Over a 200-base genome, the cumulative sum crosses 100 at the
        // second contig: NG50 = 70.
        assert_eq!(ng50(&[80, 70], 200), 70);
        // A perfect single-contig assembly: NG50 = genome length.
        assert_eq!(ng50(&[400], 400), 400);
        assert_eq!(ng50(&[10, 10], 0), 0);
    }

    #[test]
    fn nx50_degenerate_inputs() {
        // All-zero lengths: total 0, so both statistics are 0.
        assert_eq!(n50(&[0, 0, 0]), 0);
        assert_eq!(ng50(&[0, 0], 100), 0);
        assert_eq!(ng50(&[], 100), 0);
        // A zero mixed with real lengths never becomes the answer.
        assert_eq!(n50(&[0, 100]), 100);
        // Exactly covering half the genome counts.
        assert_eq!(ng50(&[50], 100), 50);
    }

    proptest! {
        #[test]
        fn prop_n50_and_ng50_are_permutation_invariant(
            lengths in proptest::collection::vec(0usize..10_000, 0..40),
            genome in 0usize..200_000,
        ) {
            let n = n50(&lengths);
            let ng = ng50(&lengths, genome);
            let mut permuted = lengths.clone();
            permuted.sort_unstable();
            prop_assert_eq!(n50(&permuted), n);
            prop_assert_eq!(ng50(&permuted, genome), ng);
            permuted.reverse();
            prop_assert_eq!(n50(&permuted), n);
            prop_assert_eq!(ng50(&permuted, genome), ng);
        }

        #[test]
        fn prop_ng50_never_exceeds_n50_when_assembly_fits_the_genome(
            lengths in proptest::collection::vec(0usize..10_000, 0..40),
            slack in 0usize..50_000,
        ) {
            // assembled <= genome ⇒ the NG50 threshold is at least the N50
            // threshold, so NG50 ≤ N50.
            let genome = lengths.iter().sum::<usize>() + slack;
            prop_assert!(ng50(&lengths, genome) <= n50(&lengths));
        }

        #[test]
        fn prop_n50_is_an_achieved_length_covering_half_the_bases(
            lengths in proptest::collection::vec(1usize..10_000, 1..40),
        ) {
            let l = n50(&lengths);
            prop_assert!(lengths.contains(&l), "N50 {l} not one of the lengths");
            let total: usize = lengths.iter().sum();
            let covered: usize = lengths.iter().filter(|&&x| x >= l).sum();
            prop_assert!(2 * covered >= total, "contigs >= N50 cover {covered} of {total}");
        }
    }

    #[test]
    fn misjoined_layouts_are_counted() {
        let genome = DnaSeq::from_codes(vec![0; 1_000]);
        let origins = vec![origin(0, 300), origin(200, 300), origin(700, 300)];
        // Reads 0-1 overlap on the genome; 1-2 do not: one misjoin.
        let contig = Contig { reads: vec![0, 1, 2], estimated_length: 900, circular: false };
        let cons = consensus_of(genome.slice(0, 900), 3);
        let metrics = evaluate_assembly(
            &[contig],
            &[cons],
            &origins,
            &genome,
            &ConsensusConfig::default(),
        );
        assert_eq!(metrics.misjoins, 1);
        assert_eq!(metrics.chimera_breaks, 0);
        assert_eq!(metrics.per_contig[0].ref_start, 0);
        assert_eq!(metrics.per_contig[0].ref_end, 1_000);
    }

    #[test]
    fn chimera_labels_reclassify_breaks_at_chimeric_reads() {
        let genome = DnaSeq::from_codes((0..1_000).map(|i| (i % 4) as u8).collect());
        let origins = vec![origin(0, 300), origin(700, 300)];
        let contig = Contig { reads: vec![0, 1], estimated_length: 600, circular: false };
        let cons = consensus_of(genome.slice(0, 600), 2);
        // Without labels the broken adjacency is an assembler misjoin...
        let unlabelled = evaluate_assembly(
            std::slice::from_ref(&contig),
            std::slice::from_ref(&cons),
            &origins,
            &genome,
            &ConsensusConfig::default(),
        );
        assert_eq!(unlabelled.misjoins, 1);
        assert_eq!(unlabelled.chimera_breaks, 0);
        // ...with read 1 labelled chimeric it is a propagated library artefact.
        let truth = GroundTruth {
            origins: &origins,
            genome: &genome,
            topology: Topology::Linear,
            chimeric: &[false, true],
        };
        let labelled = evaluate_assembly_truth(
            &[contig],
            &[cons],
            &truth,
            &ConsensusConfig::default(),
        );
        assert_eq!(labelled.misjoins, 0);
        assert_eq!(labelled.chimera_breaks, 1);
    }

    /// A deterministic pseudo-random genome for identity tests.
    fn lcg_genome(len: usize, mut state: u64) -> DnaSeq {
        let mut codes = Vec::with_capacity(len);
        for _ in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            codes.push(((state >> 33) % 4) as u8);
        }
        DnaSeq::from_codes(codes)
    }

    #[test]
    fn circular_truth_scores_wraparound_contigs_without_false_misjoins() {
        let genome = lcg_genome(400, 99);
        // Read 0 wraps the origin: [350, 400) + [0, 50); read 1 covers
        // [30, 130).  They truly overlap by 20 bases across the origin.
        let origins = vec![origin(350, 100), origin(30, 100)];
        let contig = Contig { reads: vec![0, 1], estimated_length: 180, circular: false };
        let cons = consensus_of(circular_slice(&genome, 350, 180), 2);
        let truth = GroundTruth {
            origins: &origins,
            genome: &genome,
            topology: Topology::Circular,
            chimeric: &[],
        };
        let m = evaluate_assembly_truth(
            std::slice::from_ref(&contig),
            std::slice::from_ref(&cons),
            &truth,
            &ConsensusConfig::default(),
        );
        assert_eq!(m.misjoins, 0, "a wrap-around overlap is not a misjoin");
        assert!(m.mean_identity > 0.99, "identity {} on the extracted arc", m.mean_identity);
        assert_eq!(m.per_contig[0].ref_start, 350);
        assert_eq!(m.per_contig[0].ref_end, 350 + 180);
        // The linear interpretation gets both wrong: no overlap, and the
        // naive [30, 450)-clamped region does not match the consensus.
        let linear = evaluate_assembly(
            &[contig],
            &[cons],
            &origins,
            &genome,
            &ConsensusConfig::default(),
        );
        assert_eq!(linear.misjoins, 1);
    }

    #[test]
    fn full_circle_contig_is_scored_against_genome_rotations() {
        let genome = lcg_genome(300, 5);
        // Four reads tiling the whole circle, closing back on read 0.
        let origins =
            vec![origin(0, 100), origin(75, 100), origin(150, 100), origin(225, 100)];
        let contig =
            Contig { reads: vec![0, 1, 2, 3], estimated_length: 300, circular: true };
        // The consensus is the genome rotated to the first read's start.
        let cons = consensus_of(circular_slice(&genome, 0, 300), 4);
        let truth = GroundTruth {
            origins: &origins,
            genome: &genome,
            topology: Topology::Circular,
            chimeric: &[],
        };
        let m = evaluate_assembly_truth(&[contig], &[cons], &truth, &ConsensusConfig::default());
        assert_eq!(m.circular_contigs, 1);
        assert_eq!(m.misjoins, 0, "the wrap adjacency 3->0 truly overlaps");
        assert!(m.mean_identity > 0.99, "identity {}", m.mean_identity);
    }

    #[test]
    fn minimal_covering_arc_handles_wrap_and_full_coverage() {
        let origins = vec![origin(350, 100), origin(30, 100), origin(100, 150)];
        let contig = Contig { reads: vec![0, 1], estimated_length: 0, circular: false };
        assert_eq!(minimal_covering_arc(&contig, &origins, 400), Some((350, 180)));
        // A single non-wrapping read.
        let one = Contig { reads: vec![1], estimated_length: 0, circular: false };
        assert_eq!(minimal_covering_arc(&one, &origins, 400), Some((30, 100)));
        // All three reads leave only the gap [250, 350).
        let all = Contig { reads: vec![0, 1, 2], estimated_length: 0, circular: false };
        assert_eq!(minimal_covering_arc(&all, &origins, 400), Some((350, 300)));
        // A read spanning the full circle covers everything.
        let full = vec![origin(17, 400)];
        let c = Contig { reads: vec![0], estimated_length: 0, circular: false };
        assert_eq!(minimal_covering_arc(&c, &full, 400), None);
    }

    #[test]
    fn perfect_single_contig_assembly_scores_full_identity() {
        let genome: DnaSeq = "ACGTTGCAACGTACGTTGCAACGGACGTTGCAACGTAAGTC"
            .parse()
            .unwrap();
        let origins = vec![origin(0, genome.len())];
        let contig =
            Contig { reads: vec![0], estimated_length: genome.len(), circular: false };
        let cons = consensus_of(genome.clone(), 1);
        let m = evaluate_assembly(
            &[contig],
            &[cons],
            &origins,
            &genome,
            &ConsensusConfig::default(),
        );
        assert_eq!(m.contigs, 1);
        assert_eq!(m.multi_read_contigs, 0);
        assert_eq!(m.circular_contigs, 0);
        assert_eq!(m.assembled_bases, genome.len());
        assert_eq!(m.n50, genome.len());
        assert_eq!(m.ng50, genome.len());
        assert!((m.largest_identity - 1.0).abs() < 1e-12);
        assert_eq!(m.misjoins, 0);
    }

    #[test]
    fn reverse_oriented_contigs_still_match_the_reference() {
        let genome = lcg_genome(600, 12345);
        let origins = vec![origin(100, 400)];
        let contig = Contig { reads: vec![0], estimated_length: 400, circular: false };
        // The consensus came out reverse-complemented relative to the genome.
        let cons = consensus_of(genome.slice(100, 500).reverse_complement(), 1);
        let m = evaluate_assembly(
            &[contig],
            &[cons],
            &origins,
            &genome,
            &ConsensusConfig::default(),
        );
        assert!(m.per_contig[0].identity > 0.99, "identity {}", m.per_contig[0].identity);
    }

    #[test]
    fn mean_identity_is_length_weighted_over_multi_read_contigs() {
        let genome = DnaSeq::from_codes((0..400).map(|i| (i % 4) as u8).collect());
        let origins = vec![origin(0, 200), origin(100, 200), origin(200, 100)];
        let good = consensus_of(genome.slice(0, 300), 2);
        // A singleton contig with garbage consensus must not drag the mean.
        let noise = consensus_of(DnaSeq::from_codes(vec![0; 100]), 1);
        let contigs = vec![
            Contig { reads: vec![0, 1], estimated_length: 300, circular: false },
            Contig { reads: vec![2], estimated_length: 100, circular: false },
        ];
        let m = evaluate_assembly(
            &contigs,
            &[good, noise],
            &origins,
            &genome,
            &ConsensusConfig::default(),
        );
        assert_eq!(m.multi_read_contigs, 1);
        assert!(m.mean_identity > 0.99, "mean identity {}", m.mean_identity);
    }
}

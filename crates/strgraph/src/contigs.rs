//! Contig layout extraction from the string graph.
//!
//! The paper stops at the string graph ("This conversion makes it easier to
//! cluster sections of the graph into contigs").  This module provides the
//! layout step: maximal unbranched, orientation-consistent walks of the
//! string graph, each of which is the layout of one contig.  The
//! [`consensus`](crate::consensus) module turns those layouts into sequence,
//! closing the OLC loop.  The examples and integration tests use it to show
//! that an error-free tiling of a genome collapses to a single contig whose
//! estimated length matches the genome.

use crate::bidirected::BidirectedGraph;
use dibella_overlap::OverlapEdge;
use dibella_sparse::CsrMatrix;
use serde::{Deserialize, Serialize};

/// One contig layout: an ordered list of reads and an estimated length.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contig {
    /// Read indices in walk order.
    pub reads: Vec<usize>,
    /// Estimated contig length: the first read's length plus the suffixes of
    /// every subsequent edge (the definition of the string-graph walk).
    pub estimated_length: usize,
    /// Whether the walk closes back on its first read — the layout of a
    /// circular replicon (plasmid, bacterial chromosome).  The linearised
    /// layout is where the circle was cut; evaluation on circular references
    /// must not count the cut as a misjoin.
    pub circular: bool,
}

impl Contig {
    /// Number of reads in the layout.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// Whether the contig has no reads.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }
}

/// Extract maximal unbranched walks from the string matrix.
///
/// `read_lengths[i]` is the length of read `i` (used for the length
/// estimates); singleton reads (no surviving edges) become single-read
/// contigs.
pub fn extract_contigs(s: &CsrMatrix<OverlapEdge>, read_lengths: &[usize]) -> Vec<Contig> {
    assert_eq!(s.nrows(), read_lengths.len(), "one length per read required");
    let graph = BidirectedGraph::from_matrix(s);
    let n = graph.num_vertices();
    let mut visited = vec![false; n];
    let mut contigs = Vec::new();

    // Start walks at non-branching path ends (degree != 2), then sweep up any
    // untouched simple cycles.
    let mut starts: Vec<usize> = (0..n).filter(|&v| graph.degree(v) != 2).collect();
    starts.extend(0..n);

    for start in starts {
        if visited[start] {
            continue;
        }
        if graph.degree(start) > 2 {
            // Branching vertices are emitted as their own (unresolved) contig
            // seed; a full assembler would resolve them with read depth.
            visited[start] = true;
            contigs.push(Contig {
                reads: vec![start],
                estimated_length: read_lengths[start],
                circular: false,
            });
            continue;
        }
        visited[start] = true;
        let mut reads = vec![start];
        let mut length = read_lengths[start];
        let mut prev_dir = None;
        let mut current = start;
        loop {
            // Choose the unique unvisited continuation that keeps the walk valid.
            let mut next = None;
            for (w, e) in graph.neighbors(current) {
                if visited[*w] || graph.degree(*w) > 2 {
                    continue;
                }
                let dir = e.direction();
                if prev_dir.is_none_or(|p: dibella_align::BidirectedDir| p.chains_with(dir)) {
                    next = Some((*w, *e));
                    break;
                }
            }
            let Some((w, e)) = next else { break };
            visited[w] = true;
            reads.push(w);
            length += e.suffix as usize;
            prev_dir = Some(e.direction());
            current = w;
        }
        // The walk is circular if its last read chains back onto its first:
        // the cycle sweep linearised a closed loop at an arbitrary cut point.
        let circular = reads.len() > 2
            && prev_dir.is_some_and(|p: dibella_align::BidirectedDir| {
                graph
                    .neighbors(current)
                    .iter()
                    .any(|(w, e)| *w == start && p.chains_with(e.direction()))
            });
        contigs.push(Contig { reads, estimated_length: length, circular });
    }
    contigs.sort_by_key(|c| std::cmp::Reverse(c.reads.len()));
    contigs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{chain_overlap_graph, forked_overlap_graph, tiling_overlap_graph, TILING_STEP};
    use crate::myers::myers_transitive_reduction;

    fn lengths(n: usize, span: usize) -> Vec<usize> {
        vec![span * TILING_STEP + 2 * TILING_STEP; n]
    }

    #[test]
    fn reduced_chain_yields_one_contig_covering_all_reads() {
        let n = 10;
        let r = CsrMatrix::from_triples(&chain_overlap_graph(n, 3));
        let (s, _) = myers_transitive_reduction(&r, 60);
        let contigs = extract_contigs(&s, &lengths(n, 3));
        assert_eq!(contigs[0].reads.len(), n, "the tiling should collapse into one contig");
        assert!(!contigs[0].circular, "a linear chain must not be flagged circular");
        // Reads must appear in tiling order (or its reverse).
        let mut reads = contigs[0].reads.clone();
        if reads[0] > *reads.last().unwrap() {
            reads.reverse();
        }
        assert_eq!(reads, (0..n).collect::<Vec<_>>());
        // Estimated length: first read + (n-1) adjacent suffixes.
        let expected = lengths(n, 3)[0] + (n - 1) * TILING_STEP;
        assert_eq!(contigs[0].estimated_length, expected);
    }

    #[test]
    fn reverse_strand_tiling_still_forms_one_contig() {
        let n = 8;
        let r = CsrMatrix::from_triples(&tiling_overlap_graph(n, 2, true));
        let (s, _) = myers_transitive_reduction(&r, 60);
        let contigs = extract_contigs(&s, &lengths(n, 2));
        assert_eq!(contigs[0].reads.len(), n);
    }

    #[test]
    fn forked_graph_produces_multiple_contigs() {
        let r = CsrMatrix::from_triples(&forked_overlap_graph(4, 3, 1));
        let (s, _) = myers_transitive_reduction(&r, 60);
        let n = s.nrows();
        let contigs = extract_contigs(&s, &vec![600; n]);
        assert!(contigs.len() >= 2, "a fork cannot be a single walk: {contigs:?}");
        // Every read appears in exactly one contig.
        let mut seen = vec![false; n];
        for c in &contigs {
            for &r in &c.reads {
                assert!(!seen[r], "read {r} appears twice");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    /// A circular tiling: every read overlaps the next and the last wraps to
    /// the first (a plasmid / circular chromosome).
    fn circular_overlap_graph(n: usize) -> CsrMatrix<OverlapEdge> {
        let mut t = dibella_sparse::Triples::new(n, n);
        let edge = |dir: u8| OverlapEdge {
            dir,
            suffix: TILING_STEP as u32,
            score: 100,
            overlap_len: (2 * TILING_STEP) as u32,
        };
        for i in 0..n {
            let j = (i + 1) % n;
            t.push(i, j, edge(0b11));
            t.push(j, i, edge(0b00));
        }
        CsrMatrix::from_triples(&t)
    }

    #[test]
    fn circular_layout_is_swept_into_one_contig() {
        // Every vertex has degree 2, so no walk end exists: the cycle sweep
        // must still pick the component up exactly once.
        let n = 9;
        let s = circular_overlap_graph(n);
        let contigs = extract_contigs(&s, &vec![3 * TILING_STEP; n]);
        assert_eq!(contigs.len(), 1, "a simple cycle is one contig: {contigs:?}");
        assert_eq!(contigs[0].reads.len(), n);
        assert!(contigs[0].circular, "the closed walk must be flagged circular");
        // The walk linearises the circle: first read plus n-1 suffixes (the
        // wrap-around edge is where the circle was cut).
        assert_eq!(contigs[0].estimated_length, 3 * TILING_STEP + (n - 1) * TILING_STEP);
        let mut seen = vec![false; n];
        for &r in &contigs[0].reads {
            assert!(!seen[r]);
            seen[r] = true;
        }
    }

    #[test]
    fn single_read_matrix_yields_one_singleton_contig() {
        let s = CsrMatrix::<OverlapEdge>::zero(1, 1);
        let contigs = extract_contigs(&s, &[741]);
        assert_eq!(contigs.len(), 1);
        assert_eq!(contigs[0].reads, vec![0]);
        assert_eq!(contigs[0].estimated_length, 741);
        assert_eq!(contigs[0].len(), 1);
        assert!(!contigs[0].is_empty());
    }

    #[test]
    fn dead_end_branch_splits_the_walk_at_the_branching_vertex() {
        // A chain 0-1-2-3-4 with a dead-end spur 2-5: vertex 2 branches
        // (degree 3) and must be emitted alone; the spur read and the two
        // chain arms become their own contigs.
        let mut t = chain_overlap_graph(5, 1);
        let spur = OverlapEdge { dir: 0b11, suffix: 100, score: 50, overlap_len: 200 };
        let mut entries = t.entries().to_vec();
        entries.push((2, 5, spur));
        entries.push((5, 2, OverlapEdge { dir: 0b00, ..spur }));
        t = dibella_sparse::Triples::from_entries(6, 6, entries);
        let s = CsrMatrix::from_triples(&t);
        let contigs = extract_contigs(&s, &[600; 6]);

        // Every read exactly once.
        let mut seen = [false; 6];
        for c in &contigs {
            for &r in &c.reads {
                assert!(!seen[r], "read {r} in two contigs: {contigs:?}");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        // The branching vertex is a singleton, and no contig walks across it.
        let of_2 = contigs.iter().find(|c| c.reads.contains(&2)).unwrap();
        assert_eq!(of_2.reads, vec![2], "branching vertices are unresolved singletons");
        let of_5 = contigs.iter().find(|c| c.reads.contains(&5)).unwrap();
        assert_eq!(of_5.reads, vec![5], "the dead-end spur cannot chain through the branch");
        for c in &contigs {
            assert!(
                c.reads.len() <= 2,
                "no walk may cross the degree-3 vertex: {contigs:?}"
            );
        }
    }

    #[test]
    fn isolated_reads_become_singleton_contigs() {
        let mut triples = chain_overlap_graph(4, 1);
        // Add two isolated reads (5 and 6) with no edges by enlarging the matrix.
        let entries = triples.entries().to_vec();
        triples = dibella_sparse::Triples::from_entries(7, 7, entries);
        let s = CsrMatrix::from_triples(&triples);
        let contigs = extract_contigs(&s, &[500; 7]);
        let singleton_count = contigs.iter().filter(|c| c.reads.len() == 1).count();
        assert!(singleton_count >= 2);
        assert_eq!(contigs.iter().map(|c| c.reads.len()).sum::<usize>(), 7);
    }
}

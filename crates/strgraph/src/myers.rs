//! Myers' sequential transitive reduction (Bioinformatics 2005).
//!
//! "Myers' transitive reduction algorithm consists of iterating over each node
//! v in the source graph and examining nodes up to two edges away from v to
//! identify all transitive edges that leave or enter v.  These edges are then
//! marked for removal, and they are removed after all nodes have been
//! considered."  (Section III.)  The algorithm is linear in the number of
//! edges for bounded-degree graphs but inherently sequential — it is the
//! baseline the paper's parallel formulation replaces, and the reference we
//! test the parallel algorithm against.

use dibella_overlap::OverlapEdge;
use dibella_sparse::CsrMatrix;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mark {
    Vacant,
    InPlay,
    Eliminated,
}

/// Run Myers' transitive reduction on a (pattern-symmetric) overlap matrix,
/// returning the reduced matrix and the number of directed entries removed.
pub fn myers_transitive_reduction(
    r: &CsrMatrix<OverlapEdge>,
    fuzz: u32,
) -> (CsrMatrix<OverlapEdge>, usize) {
    assert_eq!(r.nrows(), r.ncols(), "the overlap matrix must be square");
    let n = r.nrows();
    let mut mark = vec![Mark::Vacant; n];
    let mut removed: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();

    for v in 0..n {
        let mut neighbors: Vec<(usize, &OverlapEdge)> = r.row(v).collect();
        if neighbors.is_empty() {
            continue;
        }
        neighbors.sort_by_key(|(_, e)| e.suffix);
        // lint: allow(unwrap) — guarded by the is_empty() continue above
        let longest = neighbors.last().unwrap().1.suffix.saturating_add(fuzz);
        for (w, _) in &neighbors {
            mark[*w] = Mark::InPlay;
        }

        // Examine two-hop walks v -> w -> x in order of increasing first-hop
        // suffix, eliminating x when the walk stays within the bound and the
        // bidirected orientations chain and reproduce the direct edge's.
        for (w, e_vw) in &neighbors {
            if mark[*w] != Mark::InPlay {
                continue;
            }
            for (x, e_wx) in r.row(*w) {
                if x == v || mark[x] != Mark::InPlay {
                    continue;
                }
                let total = e_vw.suffix.saturating_add(e_wx.suffix);
                if total > longest {
                    continue;
                }
                if !e_vw.direction().chains_with(e_wx.direction()) {
                    continue;
                }
                if let Some(e_vx) = r.get(v, x) {
                    if e_vw.direction().compose(e_wx.direction()) == e_vx.direction() {
                        mark[x] = Mark::Eliminated;
                    }
                }
            }
        }

        for (w, _) in &neighbors {
            if mark[*w] == Mark::Eliminated {
                removed.insert((v, *w));
                removed.insert((*w, v));
            }
            mark[*w] = Mark::Vacant;
        }
    }

    let reduced = r.filter(|i, j, _| !removed.contains(&(i, j)));
    let count = r.nnz() - reduced.nnz();
    (reduced, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{chain_overlap_graph, forked_overlap_graph, tiling_overlap_graph};
    use crate::transitive::{remaining_transitive_edges, transitive_reduction, TransitiveReductionConfig};
    use dibella_dist::{CommStats, ProcessGrid};
    use dibella_sparse::DistMat2D;

    #[test]
    fn chain_reduces_to_adjacent_edges() {
        let r = CsrMatrix::from_triples(&chain_overlap_graph(8, 3));
        let (s, removed) = myers_transitive_reduction(&r, 60);
        assert_eq!(s.nnz(), 2 * 7);
        assert_eq!(removed, r.nnz() - s.nnz());
        for i in 0..7usize {
            assert!(s.get(i, i + 1).is_some());
            assert!(s.get(i + 1, i).is_some());
        }
    }

    #[test]
    fn myers_and_parallel_reduction_agree_on_tilings() {
        for (n, span, alt) in [(10usize, 2usize, false), (9, 3, false), (12, 2, true), (11, 4, true)] {
            let triples = tiling_overlap_graph(n, span, alt);
            let local = CsrMatrix::from_triples(&triples);
            let (myers, _) = myers_transitive_reduction(&local, 60);
            let dist = DistMat2D::from_triples(ProcessGrid::square(4), &triples);
            let comm = CommStats::new();
            let parallel =
                transitive_reduction(&dist, &TransitiveReductionConfig::for_tests(), &comm);
            assert_eq!(
                myers.pattern(),
                parallel.string_matrix.to_local_csr().pattern(),
                "n={n} span={span} alt={alt}"
            );
        }
    }

    #[test]
    fn myers_and_parallel_reduction_agree_on_forked_graphs() {
        let triples = forked_overlap_graph(4, 3, 2);
        let local = CsrMatrix::from_triples(&triples);
        let (myers, _) = myers_transitive_reduction(&local, 60);
        let dist = DistMat2D::from_triples(ProcessGrid::square(4), &triples);
        let comm = CommStats::new();
        let parallel = transitive_reduction(&dist, &TransitiveReductionConfig::for_tests(), &comm);
        assert_eq!(myers.pattern(), parallel.string_matrix.to_local_csr().pattern());
    }

    #[test]
    fn myers_output_has_no_remaining_transitive_edges() {
        let triples = chain_overlap_graph(15, 4);
        let local = CsrMatrix::from_triples(&triples);
        let (myers, _) = myers_transitive_reduction(&local, 60);
        let dist = DistMat2D::from_triples(ProcessGrid::square(1), &myers.to_triples());
        assert!(remaining_transitive_edges(&dist, 60).is_empty());
    }

    #[test]
    fn empty_and_single_edge_graphs_are_untouched() {
        let empty = CsrMatrix::<OverlapEdge>::zero(5, 5);
        let (s, removed) = myers_transitive_reduction(&empty, 100);
        assert_eq!(s.nnz(), 0);
        assert_eq!(removed, 0);

        let single = CsrMatrix::from_triples(&chain_overlap_graph(2, 1));
        let (s2, removed2) = myers_transitive_reduction(&single, 100);
        assert_eq!(s2.nnz(), 2);
        assert_eq!(removed2, 0);
    }
}

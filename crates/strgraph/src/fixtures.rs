//! Synthetic overlap graphs used by tests, benches and examples.
//!
//! The fixtures model the canonical long-read layout: `n` reads of equal
//! length tiling a genome at a fixed stride, so that reads within `span`
//! positions of each other overlap.  Adjacent overlaps are the edges a string
//! graph should keep; the longer "skip" overlaps are exactly the transitive
//! edges Algorithm 2 must remove.  A variant samples alternating reads from
//! the reverse strand to exercise the bidirected orientation rules.

use dibella_align::BidirectedDir;
use dibella_dist::ProcessGrid;
use dibella_overlap::OverlapEdge;
use dibella_seq::Strand;
use dibella_sparse::{DistMat2D, Triples};

/// Stride between consecutive reads in the synthetic tiling (bases).
pub const TILING_STEP: usize = 200;

/// Build the overlap matrix of `n` same-strand reads tiling a genome, with
/// overlap edges between reads up to `span` positions apart.
pub fn chain_overlap_graph(n: usize, span: usize) -> Triples<OverlapEdge> {
    tiling_overlap_graph(n, span, false)
}

/// Build the overlap matrix of `n` reads tiling a genome; when
/// `alternate_strands` is true, odd-indexed reads are stored reverse-
/// complemented, which flips the bidirected head orientations of their edges.
pub fn tiling_overlap_graph(n: usize, span: usize, alternate_strands: bool) -> Triples<OverlapEdge> {
    assert!(span >= 1);
    let read_len = span * TILING_STEP + 2 * TILING_STEP;
    let strand_of = |i: usize| {
        if alternate_strands && i % 2 == 1 {
            Strand::Reverse
        } else {
            Strand::Forward
        }
    };
    let mut t = Triples::new(n, n);
    for i in 0..n {
        for j in (i + 1)..n.min(i + span + 1) {
            let hops = j - i;
            let overlap = read_len - hops * TILING_STEP;
            let suffix = (hops * TILING_STEP) as u32;
            let si = strand_of(i) == Strand::Forward;
            let sj = strand_of(j) == Strand::Forward;
            // Walking i -> j follows the genome left to right: each read is
            // traversed "forward" iff it is stored in genome orientation.
            let dir_ij = BidirectedDir::new(si, sj);
            let dir_ji = dir_ij.reversed();
            let score = overlap as i32;
            t.push(i, j, OverlapEdge { dir: dir_ij.bits(), suffix, score, overlap_len: overlap as u32 });
            t.push(j, i, OverlapEdge { dir: dir_ji.bits(), suffix, score, overlap_len: overlap as u32 });
        }
    }
    t
}

/// A branching overlap graph: two tiling chains that share their first
/// `shared` reads (a simple model of a repeat boundary / haplotype fork).
pub fn forked_overlap_graph(arm_len: usize, shared: usize, span: usize) -> Triples<OverlapEdge> {
    assert!(shared >= 1 && arm_len >= 1);
    let n = shared + 2 * arm_len;
    let read_len = span * TILING_STEP + 2 * TILING_STEP;
    // Positions: reads 0..shared are the common prefix; reads
    // shared..shared+arm_len continue arm A; the rest continue arm B from the
    // same fork point.
    let position = |idx: usize| -> (usize, usize) {
        // (arm id, tile index along that arm's coordinate system)
        if idx < shared {
            (0, idx)
        } else if idx < shared + arm_len {
            (1, shared + (idx - shared))
        } else {
            (2, shared + (idx - shared - arm_len))
        }
    };
    let overlaps = |a: usize, b: usize| -> Option<usize> {
        let (arm_a, pos_a) = position(a);
        let (arm_b, pos_b) = position(b);
        // Reads on different private arms never overlap.
        if arm_a != 0 && arm_b != 0 && arm_a != arm_b {
            return None;
        }
        let d = pos_a.abs_diff(pos_b);
        (d <= span && d > 0).then(|| read_len - d * TILING_STEP)
    };
    let mut t = Triples::new(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(overlap) = overlaps(i, j) {
                let (_, pi) = position(i);
                let (_, pj) = position(j);
                let hops = pi.abs_diff(pj);
                let suffix = (hops * TILING_STEP) as u32;
                // Order along the genome follows the tile index.
                let (first_fwd, second_fwd) = (true, true);
                let dir = if pi < pj {
                    BidirectedDir::new(first_fwd, second_fwd)
                } else {
                    BidirectedDir::new(false, false)
                };
                t.push(i, j, OverlapEdge { dir: dir.bits(), suffix, score: overlap as i32, overlap_len: overlap as u32 });
                t.push(j, i, OverlapEdge { dir: dir.reversed().bits(), suffix, score: overlap as i32, overlap_len: overlap as u32 });
            }
        }
    }
    t
}

/// Distribute a fixture over a process grid.
pub fn to_dist(triples: &Triples<OverlapEdge>, grid: ProcessGrid) -> DistMat2D<OverlapEdge> {
    DistMat2D::from_triples(grid, triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_graph_has_expected_edge_count() {
        // n=6, span=2: pairs (i, i+1) x5 and (i, i+2) x4, both directions.
        let t = chain_overlap_graph(6, 2);
        assert_eq!(t.nnz(), 2 * (5 + 4));
        assert_eq!(t.nrows(), 6);
    }

    #[test]
    fn chain_graph_is_pattern_symmetric_with_reversed_dirs() {
        let t = chain_overlap_graph(5, 3);
        let m = dibella_sparse::CsrMatrix::from_triples(&t);
        for (i, j, e) in m.iter() {
            let back = m.get(j, i).expect("mirror entry");
            assert_eq!(BidirectedDir(e.dir).reversed().bits(), back.dir);
            assert_eq!(e.suffix, back.suffix);
        }
    }

    #[test]
    fn skip_edges_have_longer_suffixes_than_adjacent_edges() {
        let t = chain_overlap_graph(4, 3);
        let m = dibella_sparse::CsrMatrix::from_triples(&t);
        let adj = m.get(0, 1).unwrap().suffix;
        let skip2 = m.get(0, 2).unwrap().suffix;
        let skip3 = m.get(0, 3).unwrap().suffix;
        assert!(adj < skip2 && skip2 < skip3);
        assert_eq!(skip2, 2 * adj);
        assert_eq!(skip3, 3 * adj);
    }

    #[test]
    fn alternate_strand_graph_uses_all_four_directions() {
        let t = tiling_overlap_graph(6, 2, true);
        let dirs: std::collections::BTreeSet<u8> = t.iter().map(|(_, _, e)| e.dir).collect();
        assert_eq!(dirs.len(), 4, "alternating strands must produce all four edge types");
    }

    #[test]
    fn forked_graph_keeps_arms_disconnected() {
        let t = forked_overlap_graph(3, 2, 2);
        let m = dibella_sparse::CsrMatrix::from_triples(&t);
        // Reads 2..5 are arm A, reads 5..8 are arm B (with shared = 2, arm_len = 3).
        let arm_a: Vec<usize> = (2..5).collect();
        let arm_b: Vec<usize> = (5..8).collect();
        for &a in &arm_a {
            for &b in &arm_b {
                assert!(m.get(a, b).is_none(), "arm reads {a} and {b} must not overlap");
            }
        }
        // But both arms connect to the shared prefix.
        assert!(m.get(1, 2).is_some());
        assert!(m.get(1, 5).is_some());
    }
}

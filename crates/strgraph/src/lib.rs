//! # dibella-strgraph — string graphs and parallel transitive reduction
//!
//! The paper's central contribution (Section IV-E, Algorithms 2 and 3): turn
//! the overlap matrix `R` into a string graph `S` by removing transitive
//! edges, entirely with sparse-matrix operations over custom semirings.
//!
//! * [`trsemiring`] — the MinPlus semiring with bidirected-orientation checks
//!   used for the squaring `N = R²` (Algorithm 3).
//! * [`transitive`] — the iterated reduction loop of Algorithm 2 on
//!   2D-distributed matrices, with communication accounting.
//! * [`myers`] — Myers' sequential transitive-reduction algorithm
//!   (Bioinformatics 2005), the linear-time but inherently sequential
//!   baseline the paper contrasts with.
//! * [`sora`] — a vertex-centric, superstep-materialising reduction in the
//!   style of SORA (Spark/GraphX), the distributed baseline of Table VI.
//! * [`bidirected`] — a graph-level view of the overlap/string matrices:
//!   valid bidirected walks (Figure 2), degree statistics, edge queries.
//! * [`contigs`] — extraction of unbranched paths (contig layouts) from the
//!   string graph.
//! * [`consensus`] — banded partial-order-alignment (POA) consensus over each
//!   contig layout, closing the OLC loop the paper leaves to downstream
//!   tools: layouts become sequence.
//! * [`metrics`] — assembly-quality metrics over the consensus output
//!   (N50/NG50, identity against a known reference, misjoin counts).
//! * [`fixtures`] — hand-built and genome-tiling overlap graphs used by the
//!   tests, benches and examples.

#![warn(missing_docs)]

pub mod bidirected;
pub mod consensus;
pub mod contigs;
pub mod fixtures;
pub mod metrics;
pub mod matrix_ops;
pub mod myers;
pub mod sora;
pub mod transitive;
pub mod trsemiring;

pub use bidirected::BidirectedGraph;
pub use consensus::{
    banded_identity, consensus_contig, consensus_contigs, ConsensusConfig, ContigConsensus,
    PoaGraph,
};
pub use contigs::{extract_contigs, Contig};
pub use metrics::{
    evaluate_assembly, evaluate_assembly_truth, n50, ng50, AssemblyMetrics, ContigQuality,
    GroundTruth,
};
pub use myers::myers_transitive_reduction;
pub use sora::{sora_transitive_reduction, SoraStats};
pub use transitive::{transitive_reduction, TransitiveReductionConfig, TrOutcome};
pub use trsemiring::{TrMinPlus, TwoHop};

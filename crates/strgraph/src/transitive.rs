//! Algorithm 2: parallel transitive reduction on the overlap matrix.
//!
//! ```text
//! procedure TransitiveReduction(R)
//!   do
//!     prev ← R.nnz
//!     N ← R²                      (MinPlus semiring with orientation checks)
//!     v ← R.Reduce(Row, max)      (longest suffix per row)
//!     v ← v.Apply(+x)             (fuzz for error-shifted endpoints)
//!     M ← R.DimApply(Row, v)      (each nonzero replaced by its row's bound)
//!     I ← M ≥ N                   (on the intersection, with rules (b), (c))
//!     R ← R ∘ ¬I                  (remove the transitive edges)
//!   while nnz ≠ prev
//!   return R as S
//! ```
//!
//! The loop repeats because removing a transitive edge can expose longer
//! chains ("we need to consider neighbors that are three, four, etc. hops
//! away"); the iteration count is a small constant in practice and the
//! geometrically shrinking density makes the total communication essentially
//! that of the first squaring (Section V-D).

use crate::matrix_ops::{ewise_intersect_dist, set_difference_dist};
use crate::trsemiring::{TrMinPlus, TwoHop};
use dibella_dist::extras::TR_ITERATIONS_KEY;
use dibella_dist::{CommPhase, CommStats};
use dibella_overlap::OverlapEdge;
use dibella_sparse::{summa_with_words, DistMat2D};
use serde::{Deserialize, Serialize};

/// Parameters of the transitive reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitiveReductionConfig {
    /// The scalar `x` added to the per-row maximum suffix to absorb
    /// error-shifted overlap endpoints (Section IV-E).  The diBELLA 2D release
    /// uses 1000 bases for PacBio CLR data.
    pub fuzz: u32,
    /// Safety bound on the number of reduction rounds.
    pub max_iterations: usize,
}

impl Default for TransitiveReductionConfig {
    fn default() -> Self {
        Self { fuzz: 1000, max_iterations: 16 }
    }
}

impl TransitiveReductionConfig {
    /// Settings for the short synthetic reads used in tests.
    pub fn for_tests() -> Self {
        Self { fuzz: 60, max_iterations: 16 }
    }
}

/// The result of a transitive reduction run.
#[derive(Debug, Clone)]
pub struct TrOutcome {
    /// The string matrix `S` (the reduced overlap matrix).
    pub string_matrix: DistMat2D<OverlapEdge>,
    /// Number of do/while rounds executed (the `t` of Table I).
    pub iterations: usize,
    /// Directed entries removed in total.
    pub removed_edges: usize,
    /// Nonzero count after each round (for convergence diagnostics).
    pub nnz_per_round: Vec<usize>,
}

/// Run Algorithm 2 on the overlap matrix `R`, recording the squaring traffic
/// under [`CommPhase::TransitiveReduction`].
pub fn transitive_reduction(
    r: &DistMat2D<OverlapEdge>,
    config: &TransitiveReductionConfig,
    comm: &CommStats,
) -> TrOutcome {
    let mut r = r.clone();
    let mut iterations = 0usize;
    let mut removed = 0usize;
    let mut nnz_per_round = Vec::new();

    loop {
        let prev = r.nnz();
        if prev == 0 || iterations >= config.max_iterations {
            break;
        }
        iterations += 1;

        // N ← R²: shortest valid two-hop walk per direction.
        let n: DistMat2D<TwoHop> = summa_with_words::<TrMinPlus>(
            &r,
            &r,
            comm,
            CommPhase::TransitiveReduction,
            2,
            2,
        );

        // v ← R.Reduce(Row, max) then v ← v + x.
        let row_bound: Vec<Option<u32>> = r
            .reduce_rows(|_, _, e| e.suffix, u32::max)
            .into_iter()
            .map(|m| m.map(|v| v.saturating_add(config.fuzz)))
            .collect();

        // I ← M ≥ N over the intersection of R and N, honouring rules (b) and
        // (c): only a two-hop walk whose implied direction equals the direct
        // edge's direction can make it transitive.
        let transitive_mask = ewise_intersect_dist(&r, &n, |row, _col, edge, two_hop| {
            let bound = row_bound[row]?;
            let best = two_hop.for_dir(edge.direction())?;
            (bound >= best).then_some(true)
        });

        // Removing (i, j) must also remove (j, i) to keep R pattern-symmetric;
        // the reverse walk exists with mirrored directions, but its suffix sums
        // are measured from the other end and can straddle the fuzz boundary,
        // so symmetrise the mask explicitly.
        let mask_sym = symmetrize_mask(&transitive_mask);

        // R ← R ∘ ¬I.
        let reduced = set_difference_dist(&r, &mask_sym);
        removed += prev - reduced.nnz();
        nnz_per_round.push(reduced.nnz());
        let converged = reduced.nnz() == prev;
        r = reduced;
        if converged {
            break;
        }
    }
    comm.bump_extra(TR_ITERATIONS_KEY, iterations as u64);

    TrOutcome { string_matrix: r, iterations, removed_edges: removed, nnz_per_round }
}

/// Make a boolean mask pattern-symmetric: the result contains `(i, j)` iff the
/// input contains `(i, j)` or `(j, i)`.
fn symmetrize_mask(mask: &DistMat2D<bool>) -> DistMat2D<bool> {
    let transposed = mask.transpose();
    let mut triples = mask.to_triples();
    for (i, j, v) in transposed.to_triples().into_entries() {
        triples.push(i, j, v);
    }
    triples.merge_duplicates(|a, b| *a = *a || b);
    DistMat2D::from_triples(mask.grid(), &triples)
}

/// Check that no transitive edge remains: for every edge `(i, j)` of `s`,
/// there is no valid two-hop walk `i → k → j` with a matching direction whose
/// suffix sum is within the row bound.  Returns the offending edges (empty
/// means the matrix is a fixed point of Algorithm 2).
pub fn remaining_transitive_edges(
    s: &DistMat2D<OverlapEdge>,
    fuzz: u32,
) -> Vec<(usize, usize)> {
    let local = s.to_local_csr();
    let row_bound: Vec<Option<u32>> = local
        .reduce_rows(|_, _, e| e.suffix, u32::max)
        .into_iter()
        .map(|m| m.map(|v| v.saturating_add(fuzz)))
        .collect();
    let mut offending = Vec::new();
    for (i, j, edge) in local.iter() {
        let Some(bound) = row_bound[i] else { continue };
        for (k, e_ik) in local.row(i) {
            if k == j {
                continue;
            }
            if let Some(e_kj) = local.get(k, j) {
                if e_ik.direction().chains_with(e_kj.direction())
                    && e_ik.direction().compose(e_kj.direction()) == edge.direction()
                {
                    let sum = e_ik.suffix.saturating_add(e_kj.suffix);
                    if sum <= bound {
                        offending.push((i, j));
                        break;
                    }
                }
            }
        }
    }
    offending
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{chain_overlap_graph, tiling_overlap_graph, to_dist};
    use dibella_dist::ProcessGrid;

    #[test]
    fn chain_with_skip_edges_reduces_to_the_chain() {
        // Reads 0..5 tile a genome; edges connect neighbours (kept) and
        // neighbours-of-neighbours (transitive, removed).
        let r = chain_overlap_graph(6, 2);
        let dist = to_dist(&r, ProcessGrid::square(4));
        let comm = CommStats::new();
        let out = transitive_reduction(&dist, &TransitiveReductionConfig::for_tests(), &comm);
        // The chain keeps exactly the 5 adjacent overlaps (10 directed entries).
        assert_eq!(out.string_matrix.nnz(), 10, "only adjacent edges should remain");
        for i in 0..5usize {
            assert!(out.string_matrix.get(i, i + 1).is_some(), "chain edge ({i},{}) lost", i + 1);
            assert!(out.string_matrix.get(i + 1, i).is_some());
        }
        assert!(out.removed_edges > 0);
        assert!(comm.words(CommPhase::TransitiveReduction) > 0);
    }

    #[test]
    fn squarings_record_flops_under_the_tr_phase() {
        let r = chain_overlap_graph(8, 2);
        let dist = to_dist(&r, ProcessGrid::square(4));
        let comm = CommStats::new();
        let out = transitive_reduction(&dist, &TransitiveReductionConfig::for_tests(), &comm);
        assert!(out.iterations >= 1);
        let flops =
            comm.extra(&dibella_sparse::summa::flops_key(CommPhase::TransitiveReduction));
        assert!(flops > 0, "R² squarings must tally useful flops");
        assert_eq!(flops % 2, 0, "flops come in multiply-add pairs");
        assert!(
            comm.extra(&dibella_sparse::summa::peak_row_width_key(
                CommPhase::TransitiveReduction
            )) > 0
        );
    }

    #[test]
    fn reduction_is_idempotent() {
        let r = chain_overlap_graph(8, 3);
        let dist = to_dist(&r, ProcessGrid::square(4));
        let comm = CommStats::new();
        let cfg = TransitiveReductionConfig::for_tests();
        let once = transitive_reduction(&dist, &cfg, &comm);
        let twice = transitive_reduction(&once.string_matrix, &cfg, &comm);
        assert_eq!(once.string_matrix.to_local_csr(), twice.string_matrix.to_local_csr());
        assert_eq!(twice.removed_edges, 0);
    }

    #[test]
    fn no_transitive_edges_remain_after_reduction() {
        for span in [2usize, 3, 4] {
            let r = chain_overlap_graph(12, span);
            let dist = to_dist(&r, ProcessGrid::square(4));
            let comm = CommStats::new();
            let out = transitive_reduction(&dist, &TransitiveReductionConfig::for_tests(), &comm);
            let leftovers = remaining_transitive_edges(&out.string_matrix, 60);
            assert!(leftovers.is_empty(), "span {span}: transitive edges remain: {leftovers:?}");
        }
    }

    #[test]
    fn result_is_independent_of_grid_size() {
        let r = chain_overlap_graph(10, 3);
        let cfg = TransitiveReductionConfig::for_tests();
        let mut results = Vec::new();
        for p in [1usize, 4, 9] {
            let dist = to_dist(&r, ProcessGrid::square(p));
            let comm = CommStats::new();
            let out = transitive_reduction(&dist, &cfg, &comm);
            results.push(out.string_matrix.to_local_csr());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn multi_hop_chains_need_multiple_iterations() {
        // With skip edges spanning up to 4 neighbours, one round cannot remove
        // everything: removing the 2-hop skips exposes the 3- and 4-hop skips.
        let r = chain_overlap_graph(14, 4);
        let dist = to_dist(&r, ProcessGrid::square(1));
        let comm = CommStats::new();
        let out = transitive_reduction(&dist, &TransitiveReductionConfig::for_tests(), &comm);
        assert!(out.iterations >= 2, "expected at least two rounds, got {}", out.iterations);
        assert_eq!(out.string_matrix.nnz(), 2 * 13, "only the adjacent edges should survive");
    }

    #[test]
    fn reverse_strand_tiling_is_reduced_correctly() {
        // A tiling where alternating reads are sampled from the reverse strand
        // exercises the orientation rules: the reduced graph must still be the
        // simple chain.
        let n = 8;
        let r = tiling_overlap_graph(n, 2, true);
        let dist = to_dist(&r, ProcessGrid::square(4));
        let comm = CommStats::new();
        let out = transitive_reduction(&dist, &TransitiveReductionConfig::for_tests(), &comm);
        assert_eq!(out.string_matrix.nnz(), 2 * (n - 1));
        for i in 0..n - 1 {
            assert!(out.string_matrix.get(i, i + 1).is_some());
        }
        assert!(remaining_transitive_edges(&out.string_matrix, 60).is_empty());
    }

    #[test]
    fn fuzz_zero_keeps_borderline_edges() {
        // With fuzz = 0 an edge is only transitive if a two-hop walk is at
        // least as short as the row's longest suffix; build a case where the
        // two-hop sum exceeds every direct suffix so nothing is removed.
        let r = chain_overlap_graph(4, 2);
        let dist = to_dist(&r, ProcessGrid::square(1));
        let comm = CommStats::new();
        let strict = TransitiveReductionConfig { fuzz: 0, max_iterations: 8 };
        let out = transitive_reduction(&dist, &strict, &comm);
        // chain_overlap_graph gives skip edges a suffix equal to the sum of the
        // two hops, so even fuzz 0 removes them; the adjacent edges survive.
        assert!(out.string_matrix.nnz() >= 2 * 3);
        for i in 0..3usize {
            assert!(out.string_matrix.get(i, i + 1).is_some());
        }
    }

    #[test]
    fn empty_matrix_is_a_fixed_point() {
        let empty: DistMat2D<OverlapEdge> =
            DistMat2D::zero(ProcessGrid::square(4), 16, 16);
        let comm = CommStats::new();
        let out = transitive_reduction(&empty, &TransitiveReductionConfig::default(), &comm);
        assert_eq!(out.string_matrix.nnz(), 0);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.removed_edges, 0);
    }

    #[test]
    fn triangle_of_mutual_overlaps_keeps_the_two_shortest_edges() {
        // Paper Section II example: v1 -> v2 -> v3 plus the direct v1 -> v3;
        // the direct edge has the longer suffix and must be removed.
        let r = chain_overlap_graph(3, 2);
        let dist = to_dist(&r, ProcessGrid::square(1));
        let comm = CommStats::new();
        let out = transitive_reduction(&dist, &TransitiveReductionConfig::for_tests(), &comm);
        assert!(out.string_matrix.get(0, 1).is_some());
        assert!(out.string_matrix.get(1, 2).is_some());
        assert!(out.string_matrix.get(0, 2).is_none(), "the transitive edge e13 must be removed");
        assert!(out.string_matrix.get(2, 0).is_none());
    }
}

//! Criterion micro-benchmarks for the transitive reduction implementations:
//! Algorithm 2 (parallel, matrix-based), Myers' sequential algorithm, and the
//! SORA-style vertex-centric baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dibella_dist::{CommStats, ProcessGrid};
use dibella_sparse::CsrMatrix;
use dibella_strgraph::fixtures::{tiling_overlap_graph, to_dist};
use dibella_strgraph::{
    myers_transitive_reduction, sora_transitive_reduction, transitive_reduction,
    TransitiveReductionConfig,
};

fn bench_transitive_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("transitive_reduction");
    group.sample_size(10);

    for &n in &[1_000usize, 5_000] {
        let span = 8;
        let triples = tiling_overlap_graph(n, span, true);
        let local = CsrMatrix::from_triples(&triples);
        let cfg = TransitiveReductionConfig { fuzz: 60, max_iterations: 16 };

        group.bench_with_input(BenchmarkId::new("algorithm2_parallel", n), &n, |bencher, _| {
            let dist = to_dist(&triples, ProcessGrid::square(16));
            bencher.iter(|| {
                let comm = CommStats::new();
                transitive_reduction(&dist, &cfg, &comm)
            })
        });
        group.bench_with_input(BenchmarkId::new("myers_sequential", n), &n, |bencher, _| {
            bencher.iter(|| myers_transitive_reduction(&local, cfg.fuzz))
        });
        group.bench_with_input(BenchmarkId::new("sora_vertex_centric", n), &n, |bencher, _| {
            bencher.iter(|| sora_transitive_reduction(&local, cfg.fuzz))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transitive_reduction);
criterion_main!(benches);

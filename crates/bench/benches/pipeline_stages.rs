//! Criterion benchmark for the end-to-end diBELLA 2D pipeline and its 1D
//! counterpart on a small simulated dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dibella_dist::CommStats;
use dibella_pipeline::{run_dibella_1d, run_dibella_2d_on_reads, PipelineConfig};
use dibella_seq::DatasetSpec;

fn bench_pipeline(c: &mut Criterion) {
    let ds = DatasetSpec::Tiny.generate_with_length(6_000, 17);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    for p in [1usize, 16] {
        let cfg = PipelineConfig::for_small_reads(13, p);
        group.bench_with_input(BenchmarkId::new("dibella_2d", p), &p, |bencher, _| {
            bencher.iter(|| {
                let comm = CommStats::new();
                run_dibella_2d_on_reads(&ds.reads, &cfg, &comm)
            })
        });
        group.bench_with_input(BenchmarkId::new("dibella_1d", p), &p, |bencher, _| {
            bencher.iter(|| {
                let comm = CommStats::new();
                run_dibella_1d(&ds.reads, &cfg, &comm)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

//! Criterion micro-benchmarks for the two-pass distributed k-mer counter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dibella_dist::CommStats;
use dibella_seq::{count_kmers_distributed, count_kmers_serial, DatasetSpec, KmerSelection};

fn bench_kmer_counting(c: &mut Criterion) {
    let ds = DatasetSpec::EColiLike.generate_with_length(20_000, 3);
    let selection = KmerSelection::with_bella_bound(17, ds.achieved_depth(), ds.config.error_rate);

    let mut group = c.benchmark_group("kmer_counting");
    group.sample_size(10);

    group.bench_function("serial", |bencher| {
        bencher.iter(|| count_kmers_serial(&ds.reads, &selection))
    });
    for p in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("distributed", p), &p, |bencher, &p| {
            bencher.iter(|| {
                let stats = CommStats::new();
                count_kmers_distributed(&ds.reads, &selection, p, &stats)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmer_counting);
criterion_main!(benches);

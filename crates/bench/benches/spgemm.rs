//! Criterion micro-benchmarks for the SpGEMM kernels — local Gustavson,
//! 2D Sparse SUMMA and the 1D outer-product algorithm — plus the
//! kernel-regression comparison that writes `BENCH_spgemm.json`.
//!
//! The JSON artifact pits the current accumulator-based kernels against the
//! pre-refactor per-row-`HashMap` kernel (`local_spgemm_baseline`) on the
//! `DatasetSpec::Small` overlap workload (`C = A·Aᵀ` over the shared-k-mer
//! semiring) and on a uniform random `PlusTimes` product, recording the
//! speedups, the useful-flop rate, accumulator probes and peak row width.
//! The `sym_2d_*` fields compare the symmetric grid-diagonal SUMMA
//! (`summa_aat_sym`) against the general `summa_abt` on the same workload —
//! the expected shape is a >1 speedup from roughly half the useful flops.
//! CI runs this bench at every push to maintain the perf trajectory
//! (`DIBELLA_BENCH_OUT` overrides the artifact path).

// The bench crate is the sanctioned home of wall-clock reads (see
// clippy.toml); opt back in to Instant::now here.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, BenchmarkId, Criterion};
use dibella_dist::{CommPhase, CommStats, ProcessGrid};
use dibella_overlap::{build_a_matrix, OverlapSemiring};
use dibella_seq::{count_kmers_serial, DatasetSpec, KmerSelection};
use dibella_sparse::accum::FlopCounter;
use dibella_sparse::outer1d::outer1d_abt;
use dibella_sparse::spgemm::{
    local_spgemm_aat_counted, local_spgemm_abt_counted, local_spgemm_counted,
};
use dibella_sparse::{
    local_spgemm, local_spgemm_baseline, summa, summa_aat_sym, summa_abt, CsrMatrix, DistMat2D,
    PlusTimes, Triples,
};
use std::time::{Duration, Instant};

fn random_matrix(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix<i64> {
    let mut t = Triples::new(nrows, ncols);
    let mut seen = std::collections::BTreeSet::new();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    while seen.len() < nnz.min(nrows * ncols / 2) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let r = (state >> 33) as usize % nrows;
        let c = (state >> 13) as usize % ncols;
        if seen.insert((r, c)) {
            t.push(r, c, ((state % 19) as i64) - 9);
        }
    }
    CsrMatrix::from_triples(&t)
}

/// Mean wall-clock seconds of `f`: one warm-up call, then samples until the
/// time budget and at least `min_samples` calls are spent.
fn measure<T>(budget: Duration, min_samples: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut samples = Vec::new();
    let started = Instant::now();
    while started.elapsed() < budget || samples.len() < min_samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn bench_spgemm(c: &mut Criterion) {
    let n = 2_000;
    let a = random_matrix(n, n, 20 * n, 7);
    let b = random_matrix(n, n, 20 * n, 8);

    let mut group = c.benchmark_group("spgemm");
    group.sample_size(10);

    group.bench_function("local_gustavson_2k_x_20nnz", |bencher| {
        bencher.iter(|| local_spgemm::<PlusTimes<i64>>(&a, &b))
    });
    group.bench_function("local_baseline_hashmap_2k_x_20nnz", |bencher| {
        bencher.iter(|| local_spgemm_baseline::<PlusTimes<i64>>(&a, &b))
    });

    for p in [4usize, 16] {
        let grid = ProcessGrid::square(p);
        let da = DistMat2D::from_triples(grid, &a.to_triples());
        let db = DistMat2D::from_triples(grid, &b.to_triples());
        group.bench_with_input(BenchmarkId::new("summa_2d", p), &p, |bencher, _| {
            bencher.iter(|| {
                let stats = CommStats::new();
                summa::<PlusTimes<i64>>(&da, &db, &stats, CommPhase::OverlapDetection)
            })
        });
        group.bench_with_input(BenchmarkId::new("summa_2d_aat", p), &p, |bencher, _| {
            bencher.iter(|| {
                let stats = CommStats::new();
                summa_abt::<PlusTimes<i64>>(&da, &da, &stats, CommPhase::OverlapDetection)
            })
        });
        group.bench_with_input(BenchmarkId::new("summa_2d_aat_sym", p), &p, |bencher, _| {
            bencher.iter(|| {
                let stats = CommStats::new();
                summa_aat_sym::<PlusTimes<i64>>(&da, &stats, CommPhase::OverlapDetection)
            })
        });
        group.bench_with_input(BenchmarkId::new("outer_product_1d_aat", p), &p, |bencher, _| {
            bencher.iter(|| {
                let stats = CommStats::new();
                outer1d_abt::<PlusTimes<i64>>(&a, &a, p, &stats, CommPhase::OverlapDetection)
            })
        });
    }
    group.finish();
}

/// A faithful reconstruction of the **pre-refactor** `C = A·Aᵀ` SpGEMM path
/// (what `detect_candidates_2d` executed before the accumulator refactor):
/// materialise the distributed transpose, then per SUMMA stage run a
/// per-row-`HashMap` Gustavson multiply and fold it into the partial rows
/// with a sorted two-way merge, finally cloning the blocks into the result.
fn prerefactor_summa_aat(
    a: &DistMat2D<dibella_overlap::KmerOccurrence>,
) -> DistMat2D<dibella_overlap::CommonKmers> {
    use dibella_overlap::CommonKmers;
    use dibella_sparse::spgemm::{merge_rows, rows_to_csr};
    use dibella_sparse::Semiring;
    use std::collections::HashMap;

    let at = a.transpose();
    let grid = a.grid();
    let stages = grid.cols();
    let row_dist = a.row_dist();
    let col_dist = at.col_dist();
    let blocks: Vec<CsrMatrix<CommonKmers>> =
        dibella_dist::par_ranks(grid.nprocs(), |rank| {
            let (i, j) = grid.coords(rank);
            let out_rows = row_dist.size(i);
            let mut partial: Vec<Vec<(usize, CommonKmers)>> = vec![Vec::new(); out_rows];
            for k in 0..stages {
                let a_block = a.block(i, k);
                let b_block = at.block(k, j);
                if a_block.is_empty() || b_block.is_empty() {
                    continue;
                }
                for (r, slot) in partial.iter_mut().enumerate() {
                    let mut acc: HashMap<usize, CommonKmers> = HashMap::new();
                    for (kk, aval) in a_block.row(r) {
                        for (jj, bval) in b_block.row(kk) {
                            if let Some(prod) =
                                <OverlapSemiring as Semiring>::multiply(aval, bval)
                            {
                                match acc.entry(jj) {
                                    std::collections::hash_map::Entry::Occupied(mut e) => {
                                        <OverlapSemiring as Semiring>::add(e.get_mut(), prod);
                                    }
                                    std::collections::hash_map::Entry::Vacant(e) => {
                                        e.insert(prod);
                                    }
                                }
                            }
                        }
                    }
                    let mut new_row: Vec<(usize, CommonKmers)> = acc.into_iter().collect();
                    new_row.sort_unstable_by_key(|(c, _)| *c);
                    if new_row.is_empty() {
                        continue;
                    }
                    if slot.is_empty() {
                        *slot = new_row;
                    } else {
                        *slot = merge_rows::<OverlapSemiring>(std::mem::take(slot), new_row);
                    }
                }
            }
            rows_to_csr(out_rows, col_dist.size(j), partial)
        });
    DistMat2D::from_block_fn(grid, a.nrows(), at.ncols(), |i, j| {
        blocks[grid.rank_of(i, j)].clone()
    })
}

/// The kernel-regression comparison recorded as `BENCH_spgemm.json`.
fn baseline_comparison() {
    let budget = Duration::from_millis(400);

    // The real workload: C = A·Aᵀ over the shared-k-mer semiring on the
    // Small benchmark dataset (what `detect_candidates_2d` computes).
    let ds = dibella_bench::benchmark_dataset(DatasetSpec::Small, 77);
    let k = 15;
    let sel = KmerSelection { k, min_count: 2, max_count: 120 };
    let table = count_kmers_serial(&ds.reads, &sel);
    let a = build_a_matrix(&ds.reads, &table, k, ProcessGrid::square(1), 1);
    let a_local = a.to_local_csr();

    let grid = ProcessGrid::square(4);
    let da = DistMat2D::from_triples(grid, &a_local.to_triples());
    // Pre-refactor SpGEMM path at P=4: distributed transpose + per-stage
    // HashMap multiplies folded in with sorted merges + block clones.
    let baseline_secs = measure(budget, 3, || prerefactor_summa_aat(&da));
    // Current path at P=4: transpose-free summa_abt on reusable accumulators,
    // all stages accumulated in place.
    let new_secs = measure(budget, 3, || {
        let stats = CommStats::new();
        summa_abt::<OverlapSemiring>(&da, &da, &stats, CommPhase::OverlapDetection)
    });
    // Symmetric grid-diagonal path at P=4: only the blocks on or above the
    // grid diagonal are multiplied, the rest are mirrored across it.
    let sym_2d_secs = measure(budget, 3, || {
        let stats = CommStats::new();
        summa_aat_sym::<OverlapSemiring>(&da, &stats, CommPhase::OverlapDetection)
    });
    // One counted run of each distributed kernel for the useful-flops ratio.
    let flops_key = dibella_sparse::summa::flops_key(CommPhase::OverlapDetection);
    let sym_stats = CommStats::new();
    let _ = summa_aat_sym::<OverlapSemiring>(&da, &sym_stats, CommPhase::OverlapDetection);
    let sym_2d_flops = sym_stats.extra(&flops_key);
    let gen_stats = CommStats::new();
    let _ = summa_abt::<OverlapSemiring>(&da, &da, &gen_stats, CommPhase::OverlapDetection);
    let general_2d_flops = gen_stats.extra(&flops_key);
    // Local (single-block) kernels, for the finer-grained trajectory.
    let local_baseline_secs = measure(budget, 3, || {
        local_spgemm_baseline::<OverlapSemiring>(&a_local, &a_local.transpose())
    });
    let local_sym_secs = measure(budget, 3, || {
        local_spgemm_aat_counted::<OverlapSemiring>(&a_local, &FlopCounter::new())
    });
    let abt_secs = measure(budget, 3, || {
        local_spgemm_abt_counted::<OverlapSemiring>(&a_local, &a_local, &FlopCounter::new())
    });

    // One counted run for the arithmetic tallies and the output size.
    let flops = FlopCounter::new();
    let c_mat = local_spgemm_aat_counted::<OverlapSemiring>(&a_local, &flops);

    // A uniform random PlusTimes product exercises the dense-SPA fast path.
    let n = 2_000;
    let ra = random_matrix(n, n, 20 * n, 7);
    let rb = random_matrix(n, n, 20 * n, 8);
    let random_baseline_secs =
        measure(budget, 3, || local_spgemm_baseline::<PlusTimes<i64>>(&ra, &rb));
    let random_new_secs = measure(budget, 3, || {
        local_spgemm_counted::<PlusTimes<i64>>(&ra, &rb, &FlopCounter::new())
    });

    let speedup = baseline_secs / new_secs;
    let sym_2d_speedup = new_secs / sym_2d_secs;
    let local_speedup = local_baseline_secs / local_sym_secs;
    let random_speedup = random_baseline_secs / random_new_secs;
    let mflops = flops.flops() as f64 / local_sym_secs / 1e6;

    println!("\nspgemm kernel regression (DatasetSpec::Small, C = A·Aᵀ, overlap semiring)");
    println!("  reads={} kmers={} nnz(A)={} nnz(C)={}", a_local.nrows(), a_local.ncols(), a_local.nnz(), c_mat.nnz());
    println!("  pre-refactor SUMMA path, P=4:       {:>10.3} ms   (transpose + HashMap/row + stage merges)", baseline_secs * 1e3);
    println!("  summa_abt, P=4:                     {:>10.3} ms  ({speedup:.2}x)", new_secs * 1e3);
    println!(
        "  summa_aat_sym, P=4:                 {:>10.3} ms  ({sym_2d_speedup:.2}x vs summa_abt, \
         {sym_2d_flops} vs {general_2d_flops} useful flops)",
        sym_2d_secs * 1e3
    );
    println!("  local baseline (HashMap + Aᵀ):      {:>10.3} ms", local_baseline_secs * 1e3);
    println!("  local symmetric (upper + mirror):   {:>10.3} ms  ({local_speedup:.2}x)", local_sym_secs * 1e3);
    println!("  local general A·Bᵀ (CSC view):      {:>10.3} ms", abt_secs * 1e3);
    println!("  useful flops: {} ({mflops:.1} Mflop/s), probes: {}, peak row width: {}",
        flops.flops(), flops.probes(), flops.peak_row_width());
    println!("  random 2k PlusTimes: baseline {:.3} ms vs {:.3} ms ({random_speedup:.2}x)",
        random_baseline_secs * 1e3, random_new_secs * 1e3);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"spgemm\",\n",
            "  \"dataset\": \"{dataset}\",\n",
            "  \"threads\": {threads},\n",
            "  \"reads\": {reads},\n",
            "  \"kmers\": {kmers},\n",
            "  \"a_nnz\": {a_nnz},\n",
            "  \"c_nnz\": {c_nnz},\n",
            "  \"baseline_secs\": {baseline:.6},\n",
            "  \"new_secs\": {new:.6},\n",
            "  \"baseline_speedup\": {speedup:.3},\n",
            "  \"sym_2d_secs\": {sym_secs:.6},\n",
            "  \"sym_2d_speedup\": {sym_speedup:.3},\n",
            "  \"sym_2d_flops\": {sym_flops},\n",
            "  \"general_2d_flops\": {gen_flops},\n",
            "  \"local_baseline_secs\": {lbase:.6},\n",
            "  \"local_sym_secs\": {lsym:.6},\n",
            "  \"local_speedup\": {lspeed:.3},\n",
            "  \"general_abt_secs\": {abt:.6},\n",
            "  \"useful_flops\": {flops},\n",
            "  \"mflops_per_sec\": {mflops:.2},\n",
            "  \"accumulator_probes\": {probes},\n",
            "  \"peak_row_width\": {peak},\n",
            "  \"random_2k_baseline_secs\": {rb:.6},\n",
            "  \"random_2k_new_secs\": {rn:.6},\n",
            "  \"random_2k_speedup\": {rs:.3}\n",
            "}}\n"
        ),
        dataset = DatasetSpec::Small.label(),
        threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        reads = a_local.nrows(),
        kmers = a_local.ncols(),
        a_nnz = a_local.nnz(),
        c_nnz = c_mat.nnz(),
        baseline = baseline_secs,
        new = new_secs,
        speedup = speedup,
        sym_secs = sym_2d_secs,
        sym_speedup = sym_2d_speedup,
        sym_flops = sym_2d_flops,
        gen_flops = general_2d_flops,
        lbase = local_baseline_secs,
        lsym = local_sym_secs,
        lspeed = local_speedup,
        abt = abt_secs,
        flops = flops.flops(),
        mflops = mflops,
        probes = flops.probes(),
        peak = flops.peak_row_width(),
        rb = random_baseline_secs,
        rn = random_new_secs,
        rs = random_speedup,
    );
    // Default to the workspace root (cargo bench runs with the package dir
    // as cwd); DIBELLA_BENCH_OUT overrides.
    let out_path = std::env::var("DIBELLA_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spgemm.json").to_string()
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("  wrote {out_path}"),
        Err(e) => eprintln!("  could not write {out_path}: {e}"),
    }
}

criterion_group!(benches, bench_spgemm);

fn main() {
    benches();
    baseline_comparison();
}

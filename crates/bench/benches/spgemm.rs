//! Criterion micro-benchmarks for the SpGEMM kernels: local Gustavson,
//! 2D Sparse SUMMA and the 1D outer-product algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dibella_dist::{CommPhase, CommStats, ProcessGrid};
use dibella_sparse::outer1d::outer1d_spgemm;
use dibella_sparse::{local_spgemm, summa, CsrMatrix, DistMat2D, PlusTimes, Triples};

fn random_matrix(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix<i64> {
    let mut t = Triples::new(nrows, ncols);
    let mut seen = std::collections::BTreeSet::new();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    while seen.len() < nnz.min(nrows * ncols / 2) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let r = (state >> 33) as usize % nrows;
        let c = (state >> 13) as usize % ncols;
        if seen.insert((r, c)) {
            t.push(r, c, ((state % 19) as i64) - 9);
        }
    }
    CsrMatrix::from_triples(&t)
}

fn bench_spgemm(c: &mut Criterion) {
    let n = 2_000;
    let a = random_matrix(n, n, 20 * n, 7);
    let b = random_matrix(n, n, 20 * n, 8);

    let mut group = c.benchmark_group("spgemm");
    group.sample_size(10);

    group.bench_function("local_gustavson_2k_x_20nnz", |bencher| {
        bencher.iter(|| local_spgemm::<PlusTimes<i64>>(&a, &b))
    });

    for p in [4usize, 16] {
        let grid = ProcessGrid::square(p);
        let da = DistMat2D::from_triples(grid, &a.to_triples());
        let db = DistMat2D::from_triples(grid, &b.to_triples());
        group.bench_with_input(BenchmarkId::new("summa_2d", p), &p, |bencher, _| {
            bencher.iter(|| {
                let stats = CommStats::new();
                summa::<PlusTimes<i64>>(&da, &db, &stats, CommPhase::OverlapDetection)
            })
        });
        group.bench_with_input(BenchmarkId::new("outer_product_1d", p), &p, |bencher, _| {
            bencher.iter(|| {
                let stats = CommStats::new();
                outer1d_spgemm::<PlusTimes<i64>>(&a, &b, p, &stats, CommPhase::OverlapDetection)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spgemm);
criterion_main!(benches);

//! Criterion micro-benchmarks for the x-drop seed-and-extend aligner, plus
//! the engine-regression comparison that writes `BENCH_align.json`.
//!
//! The JSON artifact pits the batched alignment stage
//! (`align_candidates_exec`, flat (pair, seed) work queue, per-worker
//! scratch, lane-packed vector kernel — SSE2 on x86-64, u64 SWAR elsewhere —
//! under `ExtendEngine::Auto`) against a faithful reconstruction of the
//! **pre-batching** stage — a per-pair loop that clones / reverse complements
//! `h` for *every* seed and extends with the preserved
//! `xdrop_extend_baseline` (per-row `Vec` churn) — on the
//! `DatasetSpec::Small` overlap workload.  To keep the bench inside a CI
//! budget the candidate set is subsampled (every `PAIR_STRIDE`-th
//! upper-triangle pair, recorded honestly in the JSON); every path aligns
//! the **same** subsample, so the speedups are apples-to-apples.  It records
//! wall-clock, aligned-cells/sec for each path and the batched/baseline
//! speedup.  CI runs this bench at every push to maintain the perf
//! trajectory (`DIBELLA_BENCH_OUT` overrides the path).

// The bench crate is the sanctioned home of wall-clock reads (see
// clippy.toml); opt back in to Instant::now here.
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, BenchmarkId, Criterion};
use dibella_align::{
    align_seed_pair, xdrop_extend, xdrop_extend_auto, xdrop_extend_baseline, AlignScratch,
    AlignmentConfig, ExtendEngine, PairAlignment, ScoringScheme,
};
use dibella_dist::{CommStats, ProcessGrid};
use dibella_overlap::{
    align_candidates_exec, build_a_matrix, detect_candidates_2d, CommonKmers, OverlapConfig,
};
use dibella_seq::simulate::apply_errors;
use dibella_seq::{count_kmers_serial, DatasetSpec, DnaSeq, KmerSelection, ReadSet, Strand};
use dibella_sparse::{DistMat2D, Triples};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::time::{Duration, Instant};

fn overlapping_pair(len: usize, overlap: usize, error: f64, seed: u64) -> (DnaSeq, DnaSeq) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let genome =
        DnaSeq::from_codes((0..2 * len - overlap).map(|_| rng.gen_range(0..4u8)).collect());
    let v = apply_errors(&genome.slice(0, len), error, &mut rng);
    let h = apply_errors(&genome.slice(len - overlap, 2 * len - overlap), error, &mut rng);
    (v, h)
}

fn bench_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("alignment");
    group.sample_size(20);

    for &(len, error) in &[(2_000usize, 0.0f64), (2_000, 0.15), (8_000, 0.15)] {
        let (v, h) = overlapping_pair(len, len / 2, error, 11);
        let cfg = AlignmentConfig::for_error_rate(error.max(0.01));
        // Locate an exact shared 17-mer once, outside the measured loop.
        let h_ascii = h.to_ascii();
        let mut seed = None;
        for start in (len - len / 4..len - 20).step_by(3) {
            let window = v.slice(start, start + 17).to_ascii();
            if let Some(pos) = h_ascii.find(&window) {
                seed = Some((start, pos));
                break;
            }
        }
        let Some((sv, sh)) = seed else { continue };
        let id = format!("len{len}_err{error}");
        group.bench_with_input(BenchmarkId::new("align_seed_pair", id), &len, |bencher, _| {
            bencher.iter(|| align_seed_pair(&v, &h, sv, sh, 17, Strand::Forward, &cfg));
        });
    }

    // Raw extension throughput on identical sequences (upper bound), for the
    // scalar oracle, the preserved pre-refactor baseline and the vector
    // kernel (SSE2 on x86-64, SWAR elsewhere).
    let mut rng = SmallRng::seed_from_u64(5);
    let s = DnaSeq::from_codes((0..10_000).map(|_| rng.gen_range(0..4u8)).collect());
    group.bench_function("xdrop_extend_identical_10k", |bencher| {
        bencher.iter(|| xdrop_extend(s.codes(), s.codes(), ScoringScheme::default(), 49))
    });
    group.bench_function("xdrop_extend_baseline_identical_10k", |bencher| {
        bencher.iter(|| xdrop_extend_baseline(s.codes(), s.codes(), ScoringScheme::default(), 49))
    });
    let mut scratch = AlignScratch::new();
    group.bench_function("xdrop_extend_simd_identical_10k", |bencher| {
        bencher.iter(|| {
            xdrop_extend_auto(
                s.codes(),
                s.codes(),
                ScoringScheme::default(),
                49,
                ExtendEngine::Auto,
                &mut scratch,
            )
        })
    });
    group.finish();
}

/// Mean wall-clock seconds of `f`: one warm-up call, then samples until the
/// time budget and at least `min_samples` calls are spent.
fn measure<T>(budget: Duration, min_samples: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut samples = Vec::new();
    let started = Instant::now();
    while started.elapsed() < budget || samples.len() < min_samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// A faithful reconstruction of the **pre-batching** seed-pair alignment
/// (what `align_seed_pair` executed before the scratch refactor): fresh
/// reversed-prefix `Vec`s per call and the preserved mid-row-update
/// `xdrop_extend_baseline` with its per-row `Vec` churn.
fn baseline_align_seed_pair(
    v: &DnaSeq,
    h_oriented: &DnaSeq,
    seed_v: usize,
    seed_h: usize,
    k: usize,
    strand: Strand,
    config: &AlignmentConfig,
) -> PairAlignment {
    let scoring = config.scoring;
    let right = xdrop_extend_baseline(
        &v.codes()[seed_v + k..],
        &h_oriented.codes()[seed_h + k..],
        scoring,
        config.xdrop,
    );
    let v_prefix: Vec<u8> = v.codes()[..seed_v].iter().rev().copied().collect();
    let h_prefix: Vec<u8> = h_oriented.codes()[..seed_h].iter().rev().copied().collect();
    let left = xdrop_extend_baseline(&v_prefix, &h_prefix, scoring, config.xdrop);
    let score = left.score + right.score + (k as i32) * scoring.match_score;
    PairAlignment {
        score,
        beg_v: seed_v - left.ext_a,
        end_v: seed_v + k + right.ext_a,
        beg_h: seed_h - left.ext_b,
        end_h: seed_h + k + right.ext_b,
        strand,
    }
}

/// A faithful reconstruction of the **pre-batching** alignment stage (what
/// `align_candidates` executed before the flat work queue): one parallel task
/// per candidate pair, `h` cloned or reverse-complemented anew for *every*
/// seed, best-scoring alignment kept per pair.
fn baseline_align_candidates(
    reads: &ReadSet,
    candidates: &DistMat2D<CommonKmers>,
    config: &OverlapConfig,
) -> Vec<Option<PairAlignment>> {
    let pairs: Vec<(usize, usize, CommonKmers)> = candidates
        .to_triples()
        .into_entries()
        .into_iter()
        .filter(|(i, j, _)| i < j)
        .collect();
    pairs
        .into_par_iter()
        .map(|(i, j, common)| {
            if common.count < config.min_shared_kmers {
                return None;
            }
            let v = reads.seq(i);
            let h = reads.seq(j);
            let mut best: Option<PairAlignment> = None;
            for seed in &common.seeds {
                let (h_oriented, strand, seed_h) = if seed.same_strand {
                    (h.clone(), Strand::Forward, seed.pos_h as usize)
                } else {
                    (
                        h.reverse_complement(),
                        Strand::Reverse,
                        h.len() - config.k - seed.pos_h as usize,
                    )
                };
                if seed.pos_v as usize + config.k > v.len()
                    || seed_h + config.k > h_oriented.len()
                {
                    continue;
                }
                let aln = baseline_align_seed_pair(
                    v,
                    &h_oriented,
                    seed.pos_v as usize,
                    seed_h,
                    config.k,
                    strand,
                    &config.alignment,
                );
                if best.as_ref().is_none_or(|b| aln.score > b.score) {
                    best = Some(aln);
                }
            }
            best
        })
        .collect()
}

/// Every `PAIR_STRIDE`-th upper-triangle candidate pair enters the timed
/// subsample (mirrored back to a symmetric matrix, like the real candidate
/// output).  Stride 1 would time the full Small workload (~10 Gcells): fine
/// interactively, far past a CI budget.
const PAIR_STRIDE: usize = 32;

/// Which lane-packed kernel `ExtendEngine::Auto` dispatches to on this
/// target.
#[cfg(target_arch = "x86_64")]
const VECTOR_KERNEL: &str = "sse2";
/// Which lane-packed kernel `ExtendEngine::Auto` dispatches to on this
/// target.
#[cfg(not(target_arch = "x86_64"))]
const VECTOR_KERNEL: &str = "swar";

/// The engine-regression comparison recorded as `BENCH_align.json`.
fn baseline_comparison() {
    let budget = Duration::from_millis(600);

    // The real workload: the candidate pairs of the Small benchmark dataset
    // (the same candidates the pipeline's alignment stage receives),
    // subsampled by PAIR_STRIDE to fit the CI budget.
    let ds = dibella_bench::benchmark_dataset(DatasetSpec::Small, 77);
    let k = 17;
    let sel = KmerSelection { k, min_count: 2, max_count: 120 };
    let table = count_kmers_serial(&ds.reads, &sel);
    let a = build_a_matrix(&ds.reads, &table, k, ProcessGrid::square(1), 1);
    let stats = CommStats::new();
    let all_candidates = detect_candidates_2d(&a, &stats);
    let mut total_pairs = 0usize;
    let mut t = Triples::new(all_candidates.nrows(), all_candidates.ncols());
    for (idx, (i, j, c)) in all_candidates
        .to_triples()
        .into_entries()
        .into_iter()
        .filter(|(i, j, _)| i < j)
        .enumerate()
    {
        total_pairs += 1;
        if idx % PAIR_STRIDE == 0 {
            t.push(i, j, c);
            t.push(j, i, c);
        }
    }
    let candidates: DistMat2D<CommonKmers> = DistMat2D::from_triples(ProcessGrid::square(1), &t);
    let config = OverlapConfig {
        k,
        alignment: AlignmentConfig::for_error_rate(ds.config.error_rate),
        ..OverlapConfig::default()
    };

    // Pre-batching path: per-pair tasks, per-seed clone / reverse complement,
    // per-row-allocating baseline kernel.
    let baseline_secs =
        measure(budget, 3, || baseline_align_candidates(&ds.reads, &candidates, &config));
    // Batched path, scalar oracle: flat (pair, seed) queue + per-worker
    // scratch, but the same scalar DP inner loop.
    let scalar_secs = measure(budget, 3, || {
        align_candidates_exec(&ds.reads, &candidates, &config, ExtendEngine::Scalar)
    });
    // Batched path, vector kernel.
    let batched_secs = measure(budget, 3, || {
        align_candidates_exec(&ds.reads, &candidates, &config, ExtendEngine::Auto)
    });

    // One counted run for the cell tallies (engine- and thread-deterministic;
    // all engines walk identical bands, so one cell count rates all paths).
    let (_, ostats, exec) =
        align_candidates_exec(&ds.reads, &candidates, &config, ExtendEngine::Auto);
    let cells = exec.aligned_cells;
    let rate = |secs: f64| if secs > 0.0 { cells as f64 / secs / 1e6 } else { 0.0 };
    let baseline_rate = rate(baseline_secs);
    let scalar_rate = rate(scalar_secs);
    let batched_rate = rate(batched_secs);
    let speedup = baseline_secs / batched_secs;
    let scalar_speedup = baseline_secs / scalar_secs;

    println!(
        "\nalignment engine regression (DatasetSpec::Small, every {PAIR_STRIDE}th of \
         {total_pairs} candidate pairs)"
    );
    println!(
        "  reads={} sampled_pairs={} aligned_pairs={} extensions={} ({} {VECTOR_KERNEL} / {} scalar)",
        ds.reads.len(),
        ostats.candidate_pairs,
        ostats.aligned_pairs,
        exec.extend_calls,
        exec.simd_calls,
        exec.scalar_calls
    );
    println!(
        "  DP cells: {cells}; peak band width {}; x-drop early stops {}",
        exec.band_width_peak, exec.xdrop_terminations
    );
    println!(
        "  pre-batching baseline:   {:>10.3} ms  ({baseline_rate:.1} Mcells/s)  (per-seed clone/rc + per-row Vec churn)",
        baseline_secs * 1e3
    );
    println!(
        "  batched, scalar oracle:  {:>10.3} ms  ({scalar_rate:.1} Mcells/s, {scalar_speedup:.2}x)",
        scalar_secs * 1e3
    );
    println!(
        "  batched, {VECTOR_KERNEL} (Auto):     {:>10.3} ms  ({batched_rate:.1} Mcells/s, {speedup:.2}x)",
        batched_secs * 1e3
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"alignment\",\n",
            "  \"dataset\": \"{dataset}\",\n",
            "  \"threads\": {threads},\n",
            "  \"vector_kernel\": \"{kernel}\",\n",
            "  \"reads\": {reads},\n",
            "  \"total_candidate_pairs\": {total},\n",
            "  \"pair_stride\": {stride},\n",
            "  \"sampled_pairs\": {pairs},\n",
            "  \"aligned_pairs\": {aligned},\n",
            "  \"extend_calls\": {calls},\n",
            "  \"simd_calls\": {simd},\n",
            "  \"scalar_calls\": {scalar},\n",
            "  \"aligned_cells\": {cells},\n",
            "  \"band_width_peak\": {band},\n",
            "  \"xdrop_terminations\": {stops},\n",
            "  \"baseline_secs\": {base:.6},\n",
            "  \"batched_scalar_secs\": {scal:.6},\n",
            "  \"batched_simd_secs\": {simdsecs:.6},\n",
            "  \"baseline_mcells_per_sec\": {baserate:.2},\n",
            "  \"batched_scalar_mcells_per_sec\": {scalrate:.2},\n",
            "  \"batched_simd_mcells_per_sec\": {simdrate:.2},\n",
            "  \"batched_scalar_speedup\": {scalspeed:.3},\n",
            "  \"batched_simd_speedup\": {speedup:.3}\n",
            "}}\n"
        ),
        dataset = DatasetSpec::Small.label(),
        threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        kernel = VECTOR_KERNEL,
        reads = ds.reads.len(),
        total = total_pairs,
        stride = PAIR_STRIDE,
        pairs = ostats.candidate_pairs,
        aligned = ostats.aligned_pairs,
        calls = exec.extend_calls,
        simd = exec.simd_calls,
        scalar = exec.scalar_calls,
        cells = cells,
        band = exec.band_width_peak,
        stops = exec.xdrop_terminations,
        base = baseline_secs,
        scal = scalar_secs,
        simdsecs = batched_secs,
        baserate = baseline_rate,
        scalrate = scalar_rate,
        simdrate = batched_rate,
        scalspeed = scalar_speedup,
        speedup = speedup,
    );
    // Default to the workspace root (cargo bench runs with the package dir
    // as cwd); DIBELLA_BENCH_OUT overrides.
    let out_path = std::env::var("DIBELLA_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_align.json").to_string()
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("  wrote {out_path}"),
        Err(e) => eprintln!("  could not write {out_path}: {e}"),
    }
}

criterion_group!(benches, bench_alignment);

fn main() {
    benches();
    baseline_comparison();
}

//! Criterion micro-benchmarks for the x-drop seed-and-extend aligner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dibella_align::{align_seed_pair, xdrop_extend, AlignmentConfig, ScoringScheme};
use dibella_seq::simulate::apply_errors;
use dibella_seq::{DnaSeq, Strand};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn overlapping_pair(len: usize, overlap: usize, error: f64, seed: u64) -> (DnaSeq, DnaSeq) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let genome =
        DnaSeq::from_codes((0..2 * len - overlap).map(|_| rng.gen_range(0..4u8)).collect());
    let v = apply_errors(&genome.slice(0, len), error, &mut rng);
    let h = apply_errors(&genome.slice(len - overlap, 2 * len - overlap), error, &mut rng);
    (v, h)
}

fn bench_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("alignment");
    group.sample_size(20);

    for &(len, error) in &[(2_000usize, 0.0f64), (2_000, 0.15), (8_000, 0.15)] {
        let (v, h) = overlapping_pair(len, len / 2, error, 11);
        let cfg = AlignmentConfig::for_error_rate(error.max(0.01));
        // Locate an exact shared 17-mer once, outside the measured loop.
        let h_ascii = h.to_ascii();
        let mut seed = None;
        for start in (len - len / 4..len - 20).step_by(3) {
            let window = v.slice(start, start + 17).to_ascii();
            if let Some(pos) = h_ascii.find(&window) {
                seed = Some((start, pos));
                break;
            }
        }
        let Some((sv, sh)) = seed else { continue };
        let id = format!("len{len}_err{error}");
        group.bench_with_input(BenchmarkId::new("align_seed_pair", id), &len, |bencher, _| {
            bencher.iter(|| align_seed_pair(&v, &h, sv, sh, 17, Strand::Forward, &cfg));
        });
    }

    // Raw extension throughput on identical sequences (upper bound).
    let mut rng = SmallRng::seed_from_u64(5);
    let s = DnaSeq::from_codes((0..10_000).map(|_| rng.gen_range(0..4u8)).collect());
    group.bench_function("xdrop_extend_identical_10k", |bencher| {
        bencher.iter(|| xdrop_extend(s.codes(), s.codes(), ScoringScheme::default(), 49))
    });
    group.finish();
}

criterion_group!(benches, bench_alignment);
criterion_main!(benches);

//! Ingest-scale harness — peak resident bytes vs dataset size.
//!
//! The paper's datasets (C. elegans 40x, H. sapiens 10x) are far larger than
//! any rank's memory; Section IV's streaming ingest exists so memory is
//! bounded by the *superstep*, not the input.  This harness pins that
//! contract with the [`PeakAlloc`] counting allocator: it sweeps simulated
//! datasets over two orders of magnitude of read count at a **fixed genome**
//! (so the k-mer table — the output — stays constant while the input grows),
//! streams each one from a FASTA file under a fixed [`IngestBudget`], and
//! records the real allocator-measured peak next to the monolithic path's
//! peak on the sizes where the monolithic path is still affordable.
//!
//! The committed `BENCH_ingest.json` holds the `full` preset: the largest
//! dataset (>= 100k reads, ~100x the repo's usual test scale) completes
//! under a budget the monolithic path already exceeds at a fraction of that
//! size.
//!
//! ```bash
//! cargo run --release -p dibella-bench --bin ingest_scale
//! DIBELLA_INGEST_PRESET=fast cargo run --release -p dibella-bench --bin ingest_scale
//! DIBELLA_INGEST_OUT=/tmp/out.json cargo run --release -p dibella-bench --bin ingest_scale
//! ```

// The bench crate is the sanctioned home of wall-clock reads (see
// clippy.toml); opt back in to Instant::now here.
#![allow(clippy::disallowed_methods)]

use dibella_bench::{print_header, print_row};
use dibella_dist::extras::{
    INGEST_BATCH_BYTES_PEAK_KEY, INGEST_RESIDENT_BYTES_PEAK_KEY, INGEST_SUPERSTEPS_KEY,
};
use dibella_dist::CommStats;
use dibella_seq::simulate::{generate_genome, simulate_reads, GenomeConfig, ReadSimConfig};
use dibella_seq::{
    count_kmers_distributed, count_kmers_streaming, fasta_batches_file, parse_fasta, write_fasta,
    IngestBudget, KmerSelection, KmerTable,
};
use dibella_testutil::PeakAlloc;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

/// I/O chunk size of the streaming reader.
const CHUNK_BYTES: usize = 64 << 10;

/// Virtual ranks, matching the other medium-scale harnesses.
const NPROCS: usize = 16;

/// One preset of the sweep.
struct Preset {
    name: &'static str,
    genome_length: usize,
    /// Read counts to sweep (approximate; the simulator draws until the
    /// target depth `n*l/g` is covered).
    read_counts: &'static [usize],
    /// The fixed ingest budget every size must survive.
    budget_bytes: usize,
    /// Largest FASTA size (bytes) at which the monolithic negative control
    /// is still run; beyond it the monolithic peak (~16 bytes per input
    /// base, both exchange sides resident) is measured no further.
    monolithic_cutoff_bytes: usize,
}

const FAST: Preset = Preset {
    name: "fast",
    genome_length: 20_000,
    read_counts: &[500, 2_000, 8_000],
    budget_bytes: 16 << 20,
    monolithic_cutoff_bytes: 4 << 20,
};

/// `full`: the largest size is >= 100k reads (~100x the repo's usual Tiny
/// datasets) and ~36 MB of FASTA.
const FULL: Preset = Preset {
    name: "full",
    genome_length: 50_000,
    read_counts: &[2_500, 10_000, 40_000, 120_000],
    budget_bytes: 24 << 20,
    monolithic_cutoff_bytes: 4 << 20,
};

const MEAN_READ_LENGTH: usize = 300;

struct SizeResult {
    reads: usize,
    input_bytes: u64,
    supersteps: u64,
    batch_bytes_peak: u64,
    resident_estimate_peak: u64,
    streaming_peak: u64,
    streaming_secs: f64,
    kmers: usize,
    monolithic_peak: Option<u64>,
    monolithic_secs: Option<f64>,
}

fn main() {
    let preset_name =
        std::env::var("DIBELLA_INGEST_PRESET").unwrap_or_else(|_| "full".to_string());
    let preset = match preset_name.as_str() {
        "fast" => &FAST,
        _ => &FULL,
    };
    let budget = IngestBudget {
        max_batch_reads: 256,
        max_batch_bytes: 256 << 10,
        max_resident_bytes: preset.budget_bytes,
    };
    println!(
        "Ingest scale — streaming superstep ingest vs monolithic, {} preset\n\
         fixed genome {} bp, mean read length {} bp, budget {} MiB, P={}\n",
        preset.name,
        preset.genome_length,
        MEAN_READ_LENGTH,
        preset.budget_bytes >> 20,
        NPROCS,
    );

    // Error-free reads: this is a memory harness, and sequencing errors only
    // add Bloom-filter noise (novel singleton k-mers) without changing what
    // the ingest paths keep resident.
    let genome = generate_genome(&GenomeConfig {
        length: preset.genome_length,
        repeat_fraction: 0.0,
        repeat_length: 100,
        seed: 91,
    });
    let sel = KmerSelection { k: 17, min_count: 2, max_count: u32::MAX };
    let fasta_path = std::env::temp_dir().join("dibella_ingest_scale.fa");

    print_header(&["reads", "input MiB", "steps", "stream MiB", "secs", "mono MiB", "kmers"]);
    let mut results: Vec<SizeResult> = Vec::new();
    for &target_reads in preset.read_counts {
        let depth =
            target_reads as f64 * MEAN_READ_LENGTH as f64 / preset.genome_length as f64;
        let sim = ReadSimConfig {
            depth,
            mean_read_length: MEAN_READ_LENGTH,
            min_read_length: MEAN_READ_LENGTH / 2,
            read_length_sd: MEAN_READ_LENGTH / 6,
            error_rate: 0.0,
            seed: 92,
            ..ReadSimConfig::default()
        };
        let (reads, _) = simulate_reads(&genome, &sim);
        let nreads = reads.len();
        std::fs::write(&fasta_path, write_fasta(&reads)).expect("writing sweep FASTA");
        drop(reads);
        let input_bytes = std::fs::metadata(&fasta_path).expect("stat sweep FASTA").len();

        // Streaming: chunked file reads, bounded batches, one superstep per
        // batch per pass — the file is re-streamed for the counting pass, so
        // the reads are never resident as a whole.
        let stats = CommStats::new();
        let started = std::time::Instant::now();
        let scope = ALLOC.scope();
        let streamed = count_kmers_streaming(
            || fasta_batches_file(&fasta_path, CHUNK_BYTES, budget),
            &sel,
            NPROCS,
            &budget,
            &stats,
        )
        .expect("streaming ingest failed");
        let streaming_peak = scope.peak_resident();
        let streaming_secs = started.elapsed().as_secs_f64();
        assert!(
            streaming_peak <= preset.budget_bytes as u64,
            "streaming ingest of {nreads} reads peaked at {streaming_peak} real bytes, \
             over the {}-byte budget",
            preset.budget_bytes
        );

        // Monolithic negative control on the affordable sizes: whole file in
        // memory, whole read set, whole-input exchanges.
        let (monolithic_peak, monolithic_secs) = if input_bytes
            <= preset.monolithic_cutoff_bytes as u64
        {
            let mono_stats = CommStats::new();
            let started = std::time::Instant::now();
            let scope = ALLOC.scope();
            let text = std::fs::read_to_string(&fasta_path).expect("reading sweep FASTA");
            let mono_reads = parse_fasta(&text).expect("parsing sweep FASTA");
            let mono = count_kmers_distributed(&mono_reads, &sel, NPROCS, &mono_stats);
            let peak = scope.peak_resident();
            let secs = started.elapsed().as_secs_f64();
            assert_tables_identical(&streamed, &mono);
            (Some(peak), Some(secs))
        } else {
            (None, None)
        };

        let r = SizeResult {
            reads: nreads,
            input_bytes,
            supersteps: stats.extra(INGEST_SUPERSTEPS_KEY),
            batch_bytes_peak: stats.extra(INGEST_BATCH_BYTES_PEAK_KEY),
            resident_estimate_peak: stats.extra(INGEST_RESIDENT_BYTES_PEAK_KEY),
            streaming_peak,
            streaming_secs,
            kmers: streamed.len(),
            monolithic_peak,
            monolithic_secs,
        };
        print_row(&[
            r.reads.to_string(),
            format!("{:.1}", r.input_bytes as f64 / (1 << 20) as f64),
            r.supersteps.to_string(),
            format!("{:.1}", r.streaming_peak as f64 / (1 << 20) as f64),
            format!("{:.2}", r.streaming_secs),
            r.monolithic_peak
                .map(|p| format!("{:.1}", p as f64 / (1 << 20) as f64))
                .unwrap_or_else(|| "-".to_string()),
            r.kmers.to_string(),
        ]);
        results.push(r);
    }
    std::fs::remove_file(&fasta_path).ok();

    // The budget must be *binding*: at least one measured monolithic run has
    // to exceed it, and the largest streamed dataset has to be bigger than
    // every dataset the monolithic path survived under the budget.
    let worst_mono = results.iter().filter_map(|r| r.monolithic_peak).max().unwrap_or(0);
    assert!(
        worst_mono > preset.budget_bytes as u64,
        "no monolithic run exceeded the {}-byte budget (max was {worst_mono}); \
         the budget is not discriminating",
        preset.budget_bytes
    );
    let largest = results.last().expect("at least one sweep size");
    println!(
        "\nlargest dataset: {} reads ({:.1} MiB) streamed under the {} MiB budget \
         (peak {:.1} MiB); monolithic already needed {:.1} MiB at {} reads",
        largest.reads,
        largest.input_bytes as f64 / (1 << 20) as f64,
        preset.budget_bytes >> 20,
        largest.streaming_peak as f64 / (1 << 20) as f64,
        worst_mono as f64 / (1 << 20) as f64,
        results
            .iter()
            .filter(|r| r.monolithic_peak.is_some())
            .map(|r| r.reads)
            .max()
            .unwrap_or(0),
    );

    let sizes_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"reads\": {reads},\n",
                    "      \"input_bytes\": {input},\n",
                    "      \"supersteps\": {steps},\n",
                    "      \"batch_bytes_peak\": {batch_peak},\n",
                    "      \"resident_estimate_peak\": {estimate},\n",
                    "      \"streaming_peak_bytes\": {stream_peak},\n",
                    "      \"streaming_secs\": {stream_secs:.4},\n",
                    "      \"kmers\": {kmers},\n",
                    "      \"monolithic_peak_bytes\": {mono_peak},\n",
                    "      \"monolithic_secs\": {mono_secs}\n",
                    "    }}"
                ),
                reads = r.reads,
                input = r.input_bytes,
                steps = r.supersteps,
                batch_peak = r.batch_bytes_peak,
                estimate = r.resident_estimate_peak,
                stream_peak = r.streaming_peak,
                stream_secs = r.streaming_secs,
                kmers = r.kmers,
                mono_peak =
                    r.monolithic_peak.map(|p| p.to_string()).unwrap_or_else(|| "null".into()),
                mono_secs = r
                    .monolithic_secs
                    .map(|s| format!("{s:.4}"))
                    .unwrap_or_else(|| "null".into()),
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"preset\": \"{preset}\",\n",
            "  \"genome_length\": {genome_length},\n",
            "  \"mean_read_length\": {mean_len},\n",
            "  \"nprocs\": {nprocs},\n",
            "  \"k\": {k},\n",
            "  \"chunk_bytes\": {chunk},\n",
            "  \"max_batch_reads\": {max_batch_reads},\n",
            "  \"max_batch_bytes\": {max_batch_bytes},\n",
            "  \"budget_bytes\": {budget},\n",
            "  \"monolithic_worst_peak_bytes\": {worst_mono},\n",
            "  \"sizes\": [\n{sizes}\n  ]\n",
            "}}\n"
        ),
        preset = preset.name,
        genome_length = preset.genome_length,
        mean_len = MEAN_READ_LENGTH,
        nprocs = NPROCS,
        k = sel.k,
        chunk = CHUNK_BYTES,
        max_batch_reads = budget.max_batch_reads,
        max_batch_bytes = budget.max_batch_bytes,
        budget = preset.budget_bytes,
        worst_mono = worst_mono,
        sizes = sizes_json.join(",\n"),
    );
    // Default to the workspace root; DIBELLA_INGEST_OUT overrides.
    let out_path = std::env::var("DIBELLA_INGEST_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json").to_string()
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\ncould not write {out_path}: {e}"),
    }
}

fn assert_tables_identical(a: &KmerTable, b: &KmerTable) {
    assert_eq!(a.len(), b.len(), "streaming and monolithic table sizes differ");
    for ((ca, ka, na), (cb, kb, nb)) in a.iter().zip(b.iter()) {
        assert_eq!((ca, ka, na), (cb, kb, nb), "tables diverge at column {ca}");
    }
}

//! Table I — communication costs of diBELLA 1D and diBELLA 2D.
//!
//! For a sweep of virtual process counts this harness measures the words and
//! messages actually moved by each phase (k-mer counting, overlap detection,
//! read exchange, transitive reduction) for both the 1D and 2D formulations,
//! and prints them next to the analytic model of Section V evaluated with the
//! same wire-format conventions.
//!
//! ```bash
//! cargo run --release -p dibella-bench --bin table1_comm_costs
//! ```

use dibella_bench::{benchmark_dataset, fmt, print_header, print_row};
use dibella_dist::{CommPhase, CommStats, ProcessGrid};
use dibella_overlap::{
    account_read_exchange_1d, account_read_exchange_2d, align_candidates, build_a_matrix,
    detect_candidates_1d, detect_candidates_2d, detect_candidates_2d_with, OverlapConfig,
};
use dibella_pipeline::{CommModel, ModelParams};
use dibella_seq::{count_kmers_distributed, DatasetSpec, KmerSelection};
use dibella_sparse::DistMat2D;
use dibella_strgraph::{transitive_reduction, TransitiveReductionConfig};

fn main() {
    let ds = benchmark_dataset(DatasetSpec::EColiLike, 71);
    let k = 17;
    let selection = KmerSelection::with_bella_bound(k, ds.achieved_depth(), ds.config.error_rate);
    let overlap_cfg = OverlapConfig {
        k,
        min_shared_kmers: 1,
        alignment: dibella_align::AlignmentConfig::for_error_rate(ds.config.error_rate),
        ..OverlapConfig::default()
    };
    println!(
        "Table I reproduction — {} ({} reads, {:.0} bp mean length, {:.1}x depth)\n",
        ds.label,
        ds.num_reads(),
        ds.mean_read_length(),
        ds.achieved_depth()
    );

    // One serial pass to derive the Table II parameters (n, m, a, c, r) and the
    // overlap matrix R reused by the transitive-reduction measurement.
    let warm = CommStats::new();
    let table = count_kmers_distributed(&ds.reads, &selection, 1, &warm);
    let a_ref = build_a_matrix(&ds.reads, &table, k, ProcessGrid::square(1), 1);
    let c_ref = detect_candidates_2d(&a_ref, &warm);
    let (r_ref, ostats) = align_candidates(&ds.reads, &c_ref, &overlap_cfg);
    let r_triples = r_ref.to_triples();
    let params = ModelParams {
        n: ds.num_reads(),
        m: table.len(),
        l: ds.mean_read_length(),
        k,
        a: if table.is_empty() { 0.0 } else { a_ref.nnz() as f64 / table.len() as f64 },
        c: ostats.c_density,
        r: ostats.r_density,
        kmer_passes: 2,
        tr_iterations: 3,
    };
    println!(
        "Table II parameters: n={}, m={}, l={:.0}, a={:.2}, c={:.1}, r={:.2}\n",
        params.n, params.m, params.l, params.a, params.c, params.r
    );

    print_header(&[
        "P", "phase", "algo", "meas. words", "model words", "meas. msgs", "model msgs",
    ]);

    for &p in &[16usize, 64, 256] {
        let grid = ProcessGrid::square(p);
        let model = CommModel::new(params, p);

        // K-mer counting (identical in 1D and 2D).
        let comm = CommStats::new();
        let _ = count_kmers_distributed(&ds.reads, &selection, p, &comm);
        let kc = comm.snapshot().phase(CommPhase::KmerCounting);
        emit(p, "K-mer counting", "1D=2D", kc.words, model.kmer_counting().aggregate_words, kc.messages, model.kmer_counting().aggregate_messages);

        // Overlap detection, 2D SUMMA — general path, the Table-I
        // formulation the model's `overlap_2d` row prices.
        let comm2d = CommStats::new();
        let a2d = build_a_matrix(&ds.reads, &table, k, grid, p);
        let _ = detect_candidates_2d_with(&a2d, &comm2d, false);
        let od2 = comm2d.snapshot().phase(CommPhase::OverlapDetection);
        emit(p, "Overlap detection", "2D", od2.words, model.overlap_2d().aggregate_words, od2.messages, model.overlap_2d().aggregate_messages);

        // Overlap detection, symmetric 2D SUMMA (the pipeline default):
        // half the broadcast traffic plus the cross-diagonal exchange.
        let comm2s = CommStats::new();
        let _ = detect_candidates_2d_with(&a2d, &comm2s, true);
        let od2s = comm2s.snapshot().phase(CommPhase::OverlapDetection);
        emit(p, "Overlap detection", "2D sym", od2s.words, model.overlap_2d_sym().aggregate_words, od2s.messages, model.overlap_2d_sym().aggregate_messages);

        // Overlap detection, 1D outer product.
        let comm1d = CommStats::new();
        let a_local = a_ref.to_local_csr();
        let c1d = detect_candidates_1d(&a_local, p, &comm1d);
        let od1 = comm1d.snapshot().phase(CommPhase::OverlapDetection);
        emit(p, "Overlap detection", "1D", od1.words, model.overlap_1d().aggregate_words, od1.messages, model.overlap_1d().aggregate_messages);

        // Read exchange.
        let ex2d = CommStats::new();
        account_read_exchange_2d(&ds.reads, grid, &ex2d);
        let re2 = ex2d.snapshot().phase(CommPhase::ReadExchange);
        emit(p, "Read exchange", "2D", re2.words, model.read_exchange_2d().aggregate_words, re2.messages, model.read_exchange_2d().aggregate_messages);

        let ex1d = CommStats::new();
        account_read_exchange_1d(&ds.reads, &c1d, p, &ex1d);
        let re1 = ex1d.snapshot().phase(CommPhase::ReadExchange);
        emit(p, "Read exchange", "1D", re1.words, model.read_exchange_1d().aggregate_words, re1.messages, model.read_exchange_1d().aggregate_messages);

        // Transitive reduction (2D only).
        let tr_comm = CommStats::new();
        let r_dist = DistMat2D::from_triples(grid, &r_triples);
        let tr = transitive_reduction(&r_dist, &TransitiveReductionConfig::default(), &tr_comm);
        let trc = tr_comm.snapshot().phase(CommPhase::TransitiveReduction);
        let tr_model = CommModel::new(
            ModelParams { tr_iterations: tr.iterations, ..params },
            p,
        );
        emit(
            p,
            "Transitive red.",
            "2D",
            trc.words,
            tr_model.transitive_reduction_2d().aggregate_words,
            trc.messages,
            tr_model.transitive_reduction_2d().aggregate_messages,
        );
        println!();
    }

    println!("Paper (Table I, per-process asymptotics):");
    println!("  K-mer counting     1D: nlk/4P      2D: nlk/4P       latency bP vs bP");
    println!("  Overlap detection  1D: a^2 m/P     2D: a m/sqrt(P)  latency P vs sqrt(P)");
    println!("  Read exchange      1D: cnl/P       2D: 2nl/sqrt(P)  latency min(cnl/P, P) vs sqrt(P)");
    println!("  Transitive red.    1D: -           2D: rn/sqrt(P)   latency - vs t*sqrt(P)");
    println!("\n(Measured and model values above are aggregates across all ranks, in 8-byte words,");
    println!(" with 2-bit packed k-mers/reads; divide by P for the per-process figures.)");
}

fn emit(p: usize, phase: &str, algo: &str, mw: u64, model_w: f64, mm: u64, model_m: f64) {
    print_row(&[
        p.to_string(),
        phase.to_string(),
        algo.to_string(),
        mw.to_string(),
        fmt(model_w),
        mm.to_string(),
        fmt(model_m),
    ]);
}

//! Assembly-quality harness — the end-to-end OLC evaluation.
//!
//! The paper's evaluation stops at the string graph; with the consensus stage
//! the reproduction can be scored like an assembler.  This harness simulates
//! a dataset from a known reference, runs the full diBELLA 2D pipeline
//! (overlap → layout → consensus), evaluates the consensus against the
//! reference with `dibella_strgraph::metrics`, then runs the **adversarial
//! scenario matrix** (repeat traps, chimeras, metagenome mix, circular
//! genome — see DESIGN.md "Adversarial scenario suite"), prints the reports
//! and writes the machine-readable trajectory record `BENCH_assembly.json`
//! (CI runs this at every push and uploads the artifact next to
//! `BENCH_spgemm.json`).
//!
//! ```bash
//! cargo run --release -p dibella-bench --bin assembly_quality
//! DIBELLA_ASSEMBLY_OUT=/tmp/out.json cargo run --release -p dibella-bench --bin assembly_quality
//! DIBELLA_SCENARIO_PRESET=fast cargo run --release -p dibella-bench --bin assembly_quality
//! ```

// The bench crate is the sanctioned home of wall-clock reads (see
// clippy.toml); opt back in to Instant::now here.
#![allow(clippy::disallowed_methods)]

use dibella_bench::{fmt, print_header, print_row};
use dibella_dist::CommStats;
use dibella_pipeline::{run_dibella_2d_on_reads, run_scenario, PipelineConfig, ScenarioSpec};
use dibella_seq::simulate::{
    generate_genome, simulate_reads, GenomeConfig, ReadSimConfig, Topology,
};
use dibella_seq::SimulatedDataset;
use dibella_strgraph::evaluate_assembly;

/// Genome length of the evaluation dataset: the 20 kbp reference the golden
/// end-to-end test also asserts thresholds on (`DIBELLA_BENCH_SCALE` scales
/// it like every other harness).
const GENOME_LENGTH: usize = 20_000;

/// The evaluation dataset: a 20 kbp reference read at 15× by reads of a
/// *narrow* length distribution.  Uniform lengths keep containments rare, so
/// nearly the full depth survives into the layouts and the POA sees enough
/// coverage to polish — the same regime the golden end-to-end test pins down.
fn evaluation_dataset(genome_length: usize) -> SimulatedDataset {
    let genome = generate_genome(&GenomeConfig {
        length: genome_length,
        repeat_fraction: 0.02,
        repeat_length: 300,
        seed: 71,
    });
    let config = ReadSimConfig {
        depth: 15.0,
        mean_read_length: 1_200,
        min_read_length: 900,
        read_length_sd: 100,
        error_rate: 0.05,
        seed: 72,
        ..ReadSimConfig::default()
    };
    let (reads, origins) = simulate_reads(&genome, &config);
    let num_reads = reads.len();
    SimulatedDataset {
        label: "assembly eval (20 kbp)".to_string(),
        genome,
        reads,
        origins,
        chimeric: vec![false; num_reads],
        topology: Topology::Linear,
        config,
    }
}

fn main() {
    let scale: f64 = std::env::var("DIBELLA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let genome_length = ((GENOME_LENGTH as f64 * scale) as usize).max(5_000);

    println!("Assembly quality — simulated reads, full OLC pipeline, consensus vs reference\n");
    let ds = evaluation_dataset(genome_length);
    let config = PipelineConfig::for_small_reads(15, 16);
    println!(
        "dataset: {} ({} reads, {:.1}x depth, {:.0}% error, {} bp reference)",
        ds.label,
        ds.num_reads(),
        ds.achieved_depth(),
        ds.config.error_rate * 100.0,
        ds.genome.len()
    );

    let comm = CommStats::new();
    let started = std::time::Instant::now();
    let out = run_dibella_2d_on_reads(&ds.reads, &config, &comm);
    let pipeline_secs = started.elapsed().as_secs_f64();
    let metrics =
        evaluate_assembly(&out.contigs, &out.consensus, &ds.origins, &ds.genome, &config.consensus);

    println!();
    print_header(&["metric", "value"]);
    print_row(&["contigs".into(), metrics.contigs.to_string()]);
    print_row(&["multi-read".into(), metrics.multi_read_contigs.to_string()]);
    print_row(&["assembled bp".into(), metrics.assembled_bases.to_string()]);
    print_row(&["largest bp".into(), metrics.largest_contig.to_string()]);
    print_row(&["N50 bp".into(), metrics.n50.to_string()]);
    print_row(&["NG50 bp".into(), metrics.ng50.to_string()]);
    print_row(&["mean identity".into(), fmt(metrics.mean_identity)]);
    print_row(&["largest ident.".into(), fmt(metrics.largest_identity)]);
    print_row(&["misjoins".into(), metrics.misjoins.to_string()]);
    println!();
    print_header(&["stage", "seconds"]);
    print_row(&["consensus".into(), fmt(out.timings.consensus)]);
    print_row(&["total".into(), fmt(out.timings.total())]);
    println!(
        "\nPOA: {} graph nodes, {} aligned bases, {} consensus bases",
        out.consensus_summary.poa_nodes,
        out.consensus_summary.aligned_bases,
        out.consensus_summary.consensus_bases
    );

    // The adversarial scenario matrix.  `DIBELLA_SCENARIO_PRESET` picks the
    // suite: "bench" (default; what the committed BENCH_assembly.json holds)
    // or "fast" (CI smoke subset: ~8 kb genomes, 600 bp reads).
    let preset = std::env::var("DIBELLA_SCENARIO_PRESET").unwrap_or_else(|_| "bench".to_string());
    let suite = match preset.as_str() {
        "fast" => ScenarioSpec::fast_suite(),
        _ => ScenarioSpec::bench_suite(),
    };
    println!("\nAdversarial scenario matrix ({preset} preset)\n");
    print_header(&["scenario", "reads", "contigs", "NG50", "identity", "misjoin", "chim.brk"]);
    let mut scenario_json = Vec::new();
    let scenarios_started = std::time::Instant::now();
    for spec in &suite {
        let r = run_scenario(spec);
        print_row(&[
            r.scenario.clone(),
            r.reads.to_string(),
            r.multi_read_contigs.to_string(),
            r.ng50.to_string(),
            fmt(r.mean_identity),
            r.misjoins.to_string(),
            r.chimera_breaks.to_string(),
        ]);
        scenario_json.push(format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{scenario}\",\n",
                "      \"genome_length\": {genome_length},\n",
                "      \"reads\": {reads},\n",
                "      \"chimeric_reads\": {chimeric},\n",
                "      \"depth\": {depth:.2},\n",
                "      \"contigs\": {contigs},\n",
                "      \"multi_read_contigs\": {multi},\n",
                "      \"circular_contigs\": {circular},\n",
                "      \"assembled_bases\": {assembled},\n",
                "      \"largest_contig\": {largest},\n",
                "      \"n50\": {n50},\n",
                "      \"ng50\": {ng50},\n",
                "      \"mean_identity\": {identity:.5},\n",
                "      \"misjoins\": {misjoins},\n",
                "      \"chimera_breaks\": {chimera_breaks}\n",
                "    }}"
            ),
            scenario = r.scenario,
            genome_length = r.genome_length,
            reads = r.reads,
            chimeric = r.chimeric_reads,
            depth = r.depth,
            contigs = r.contigs,
            multi = r.multi_read_contigs,
            circular = r.circular_contigs,
            assembled = r.assembled_bases,
            largest = r.largest_contig,
            n50 = r.n50,
            ng50 = r.ng50,
            identity = r.mean_identity,
            misjoins = r.misjoins,
            chimera_breaks = r.chimera_breaks,
        ));
    }
    let scenarios_secs = scenarios_started.elapsed().as_secs_f64();
    println!("\nscenario matrix: {} scenarios in {:.2}s", suite.len(), scenarios_secs);

    let json = format!(
        concat!(
            "{{\n",
            "  \"dataset\": \"{dataset}\",\n",
            "  \"genome_length\": {genome_length},\n",
            "  \"reads\": {reads},\n",
            "  \"depth\": {depth:.2},\n",
            "  \"error_rate\": {error:.3},\n",
            "  \"contigs\": {contigs},\n",
            "  \"multi_read_contigs\": {multi},\n",
            "  \"assembled_bases\": {assembled},\n",
            "  \"largest_contig\": {largest},\n",
            "  \"n50\": {n50},\n",
            "  \"ng50\": {ng50},\n",
            "  \"mean_identity\": {mean_identity:.5},\n",
            "  \"largest_identity\": {largest_identity:.5},\n",
            "  \"misjoins\": {misjoins},\n",
            "  \"poa_graph_nodes\": {poa_nodes},\n",
            "  \"poa_aligned_bases\": {aligned_bases},\n",
            "  \"consensus_bases\": {consensus_bases},\n",
            "  \"consensus_secs\": {consensus_secs:.4},\n",
            "  \"pipeline_secs\": {pipeline_secs:.4},\n",
            "  \"scenario_preset\": \"{preset}\",\n",
            "  \"scenario_matrix_secs\": {scenarios_secs:.4},\n",
            "  \"scenarios\": [\n{scenarios}\n  ]\n",
            "}}\n"
        ),
        dataset = ds.label,
        genome_length = ds.genome.len(),
        reads = ds.num_reads(),
        depth = ds.achieved_depth(),
        error = ds.config.error_rate,
        contigs = metrics.contigs,
        multi = metrics.multi_read_contigs,
        assembled = metrics.assembled_bases,
        largest = metrics.largest_contig,
        n50 = metrics.n50,
        ng50 = metrics.ng50,
        mean_identity = metrics.mean_identity,
        largest_identity = metrics.largest_identity,
        misjoins = metrics.misjoins,
        poa_nodes = out.consensus_summary.poa_nodes,
        aligned_bases = out.consensus_summary.aligned_bases,
        consensus_bases = out.consensus_summary.consensus_bases,
        consensus_secs = out.timings.consensus,
        pipeline_secs = pipeline_secs,
        preset = preset,
        scenarios_secs = scenarios_secs,
        scenarios = scenario_json.join(",\n"),
    );
    // Default to the workspace root (the binary's cwd is the package dir);
    // DIBELLA_ASSEMBLY_OUT overrides.
    let out_path = std::env::var("DIBELLA_ASSEMBLY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_assembly.json").to_string()
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\ncould not write {out_path}: {e}"),
    }
}

//! Table V — details of the machines used for evaluation.
//!
//! Prints this host's characteristics next to the Cori Haswell and Summit CPU
//! rows of the paper.  This reproduction runs on one machine with a virtual
//! process grid, so the table documents the hardware substitution.
//!
//! ```bash
//! cargo run --release -p dibella-bench --bin table5_machine
//! ```

use dibella_bench::{print_header, print_row};

fn read_first_match(path: &str, key: &str) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .find(|l| l.starts_with(key))
        .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
}

fn main() {
    println!("Table V reproduction — evaluation platforms\n");
    print_header(&["platform", "cores/node", "freq (GHz)", "processor", "memory (GB)"]);

    // This host.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let model = read_first_match("/proc/cpuinfo", "model name").unwrap_or_else(|| "unknown".into());
    let mhz: f64 = read_first_match("/proc/cpuinfo", "cpu MHz")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    let mem_gb: f64 = read_first_match("/proc/meminfo", "MemTotal")
        .and_then(|s| s.split_whitespace().next().map(|x| x.to_string()))
        .and_then(|kb| kb.parse::<f64>().ok())
        .map(|kb| kb / 1024.0 / 1024.0)
        .unwrap_or(0.0);
    print_row(&[
        "this host".into(),
        cores.to_string(),
        format!("{:.1}", mhz / 1000.0),
        model.chars().take(14).collect(),
        format!("{mem_gb:.0}"),
    ]);

    // The paper's platforms.
    print_row(&[
        "Cori Haswell".into(),
        "32".into(),
        "3.6".into(),
        "Xeon E5-2698V3".into(),
        "128".into(),
    ]);
    print_row(&[
        "Summit CPU".into(),
        "42".into(),
        "4.0".into(),
        "IBM POWER9".into(),
        "512".into(),
    ]);

    println!("\nNetworks: Cori uses Aries Dragonfly, Summit an InfiniBand fat tree.  This");
    println!("reproduction replaces the network with a virtual process grid whose collective");
    println!("volumes are measured exactly and whose time is projected with documented");
    println!("bandwidth/latency constants (see crates/bench/src/lib.rs).");
    println!("\nFull CPU model of this host: {model}");
}

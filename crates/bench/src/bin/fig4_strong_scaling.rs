//! Figure 4 — strong scaling of diBELLA 2D on two datasets.
//!
//! The paper plots total runtime against node count (32 MPI ranks per node)
//! for C. elegans (P = 32, 72, 128 nodes) and H. sapiens (P = 128, 200, 288,
//! 338 nodes), reporting 68–92% parallel efficiency.  This harness runs the
//! pipeline at each virtual process count, measures the per-phase
//! communication, and reports the projected distributed runtime and the
//! parallel efficiency relative to the smallest configuration.
//!
//! ```bash
//! cargo run --release -p dibella-bench --bin fig4_strong_scaling
//! ```

use dibella_bench::{benchmark_dataset, fmt, print_header, print_row, SimulatedBreakdown};
use dibella_dist::CommStats;
use dibella_pipeline::{run_dibella_2d_on_reads, PipelineConfig, StageTimings};
use dibella_seq::DatasetSpec;

fn main() {
    println!("Figure 4 reproduction — diBELLA 2D strong scaling\n");
    let cases = [
        (DatasetSpec::CElegansLike, 81u64, vec![32usize * 32, 72 * 32, 128 * 32]),
        (DatasetSpec::HSapiensLike, 82, vec![128usize * 32, 200 * 32, 288 * 32, 338 * 32]),
    ];

    for (spec, seed, rank_counts) in cases {
        let ds = benchmark_dataset(spec, seed);
        println!(
            "{} — {} reads, {:.0} bp mean read length, {:.1}x depth",
            ds.label,
            ds.num_reads(),
            ds.mean_read_length(),
            ds.achieved_depth()
        );
        print_header(&[
            "ranks P", "grid", "measured (s)", "proj. T(P) s", "speed-up", "par. eff. %",
        ]);

        let mut baseline: Option<(usize, f64)> = None;
        for &p in &rank_counts {
            let config = PipelineConfig::for_benchmark(17, ds.config.error_rate, p);
            let comm = CommStats::new();
            let out = run_dibella_2d_on_reads(&ds.reads, &config, &comm);
            let projected = SimulatedBreakdown::project(&out.timings, &out.comm, out.grid.nprocs());
            let total = projected.total();
            let (p0, t0) = *baseline.get_or_insert((out.grid.nprocs(), total));
            let eff = StageTimings::parallel_efficiency(t0, p0, total, out.grid.nprocs());
            print_row(&[
                p.to_string(),
                format!("{}x{}", out.grid.rows(), out.grid.cols()),
                fmt(out.timings.total()),
                fmt(total),
                format!("{:.2}x", t0 / total),
                format!("{:.0}", eff * 100.0),
            ]);
        }
        println!();
    }

    println!("Paper (Figure 4): near-linear scaling with >= 80% parallel efficiency for");
    println!("H. sapiens (peak 92% on Summit) and 68-83% for C. elegans.");
    println!("'measured' is this host's wall clock (constant by construction); 'proj. T(P)'");
    println!("divides the measured per-stage compute across ranks and adds the per-rank");
    println!("communication time derived from the measured volumes (see EXPERIMENTS.md).");
}

//! Section VII-B — comparison against a minimap2-style minimizer overlapper.
//!
//! The paper runs minimap2 on one node (32 OpenMP threads) and compares it
//! against diBELLA 2D at increasing node counts: minimap2 wins at small scale
//! (it skips base-level alignment) and diBELLA 2D overtakes it once enough
//! nodes are used (1.6–5× on C. elegans, 9.5–20.6× on H. sapiens).  This
//! harness measures the minimizer baseline on this host and compares it with
//! the projected diBELLA 2D runtime at the paper's rank counts.
//!
//! ```bash
//! cargo run --release -p dibella-bench --bin minimap_comparison
//! ```

// The bench crate is the sanctioned home of wall-clock reads (see
// clippy.toml); opt back in to Instant::now here.
#![allow(clippy::disallowed_methods)]

use dibella_bench::{benchmark_dataset, fmt, print_header, print_row, SimulatedBreakdown};
use dibella_dist::CommStats;
use dibella_overlap::{minimizer_overlaps, MinimizerConfig};
use dibella_pipeline::{run_dibella_2d_on_reads, PipelineConfig};
use dibella_seq::DatasetSpec;
use std::time::Instant;

fn main() {
    println!("Section VII-B reproduction — diBELLA 2D vs a minimizer overlapper\n");
    let cases = [
        (DatasetSpec::CElegansLike, 97u64, vec![8usize * 32, 32 * 32, 72 * 32, 128 * 32]),
        (DatasetSpec::HSapiensLike, 98, vec![128usize * 32, 200 * 32, 338 * 32]),
    ];

    for (spec, seed, rank_counts) in cases {
        let ds = benchmark_dataset(spec, seed);

        // The minimizer overlapper: single node, no alignment (minimap2's
        // design point), measured wall clock.
        let start = Instant::now();
        let min_cfg = MinimizerConfig::default();
        let found = minimizer_overlaps(&ds.reads, &min_cfg);
        let minimap_secs = start.elapsed().as_secs_f64().max(1e-4);

        println!(
            "{} — minimizer overlapper: {} overlaps in {:.2} s on one node",
            ds.label,
            found.len(),
            minimap_secs
        );
        print_header(&["ranks P", "diBELLA T(P) s", "minimizer (s)", "faster side", "factor"]);
        for &p in &rank_counts {
            let config = PipelineConfig::for_benchmark(17, ds.config.error_rate, p);
            let comm = CommStats::new();
            let out = run_dibella_2d_on_reads(&ds.reads, &config, &comm);
            let proj = SimulatedBreakdown::project(&out.timings, &out.comm, out.grid.nprocs());
            let dibella_secs = proj.total_without_tr();
            let (winner, factor) = if dibella_secs <= minimap_secs {
                ("diBELLA 2D", minimap_secs / dibella_secs)
            } else {
                ("minimizer", dibella_secs / minimap_secs)
            };
            print_row(&[
                p.to_string(),
                fmt(dibella_secs),
                fmt(minimap_secs),
                winner.to_string(),
                format!("{factor:.1}x"),
            ]);
        }
        println!();
    }

    println!("Paper: minimap2 is ~2x faster than diBELLA 2D at P=8 nodes on C. elegans but");
    println!("diBELLA 2D becomes 1.6x/3.2x/5x faster at higher concurrency, and 9.5-20.6x");
    println!("faster on H. sapiens at P=128-338 nodes.  The same crossover appears above:");
    println!("the minimizer baseline does no alignment, so it wins at small scale, while the");
    println!("distributed pipeline keeps scaling with P.");
}

//! Figure 9 — diBELLA 2D vs diBELLA 1D.
//!
//! The paper compares the total runtime of the two pipelines (subtracting the
//! transitive reduction from diBELLA 2D, which the 1D pipeline lacks) on
//! Summit, finding 1.5–1.9× (C. elegans) and 1.2–1.3× (H. sapiens) in favour
//! of 2D.  This harness runs both pipelines on the same simulated datasets at
//! each virtual process count and compares the projected runtimes.
//!
//! ```bash
//! cargo run --release -p dibella-bench --bin fig9_1d_vs_2d
//! ```

use dibella_bench::{benchmark_dataset, comm_time_secs, fmt, print_header, print_row, SimulatedBreakdown};
use dibella_dist::{CommPhase, CommStats};
use dibella_pipeline::{run_dibella_1d, run_dibella_2d_on_reads, PipelineConfig};
use dibella_seq::DatasetSpec;

fn main() {
    println!("Figure 9 reproduction — diBELLA 2D vs diBELLA 1D (TR excluded from 2D)\n");
    let cases = [
        (DatasetSpec::CElegansLike, 95u64, vec![32usize * 32, 72 * 32, 128 * 32]),
        (DatasetSpec::HSapiensLike, 96, vec![128usize * 32, 200 * 32, 338 * 32]),
    ];

    for (spec, seed, rank_counts) in cases {
        let ds = benchmark_dataset(spec, seed);
        println!("{}", ds.label);
        print_header(&["ranks P", "2D T(P) s", "1D T(P) s", "2D speed-up"]);
        for &p in &rank_counts {
            let config = PipelineConfig::for_benchmark(17, ds.config.error_rate, p);

            let comm2d = CommStats::new();
            let out2d = run_dibella_2d_on_reads(&ds.reads, &config, &comm2d);
            let proj2d =
                SimulatedBreakdown::project(&out2d.timings, &out2d.comm, out2d.grid.nprocs());
            let t2d = proj2d.total_without_tr();

            let comm1d = CommStats::new();
            let out1d = run_dibella_1d(&ds.reads, &config, &comm1d);
            // Project the 1D pipeline: same compute scaling, 1D communication.
            let pf = p as f64;
            let t1d = out1d.timings.alignment / pf
                + out1d.timings.read_fastq / pf.min(8.0)
                + out1d.timings.count_kmer / pf
                + comm_time_secs(
                    out1d.comm.phase(CommPhase::KmerCounting).words as f64 / pf,
                    out1d.comm.phase(CommPhase::KmerCounting).messages as f64 / pf,
                )
                + out1d.timings.create_spmat / pf
                + out1d.timings.spgemm / pf
                + comm_time_secs(
                    out1d.comm.phase(CommPhase::OverlapDetection).words as f64 / pf,
                    out1d.comm.phase(CommPhase::OverlapDetection).messages as f64 / pf,
                )
                + comm_time_secs(
                    out1d.comm.phase(CommPhase::ReadExchange).words as f64 / pf,
                    out1d.comm.phase(CommPhase::ReadExchange).messages as f64 / pf,
                );

            print_row(&[
                p.to_string(),
                fmt(t2d),
                fmt(t1d),
                format!("{:.2}x", t1d / t2d),
            ]);
        }
        println!();
    }

    println!("Paper (Figure 9): both pipelines scale near-linearly; diBELLA 2D is");
    println!("consistently faster, by 1.5-1.9x (avg 1.7x) on C. elegans and 1.2-1.3x");
    println!("(avg 1.2x) on H. sapiens.  The advantage comes from the lower overlap-");
    println!("detection and read-exchange communication of the 2D decomposition, which is");
    println!("exactly what the projected runtimes above are built from.");
}

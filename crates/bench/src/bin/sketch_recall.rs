//! Sketch-recall harness — the k-min-mer candidate path vs the exact
//! reliable-k-mer path on the baseline scenario.
//!
//! The k-min-mer subsystem (`dibella-sketch`) replaces the occurrence matrix
//! `A` (reads × reliable k-mers) with a sketch-space matrix (reads ×
//! k-min-mers over homopolymer-compressed reads), feeding the *same*
//! `OverlapSemiring` SUMMA and x-drop aligner.  Its value proposition is a
//! cheaper front end: no k-mer counting stage, ~density× fewer nonzeros to
//! broadcast and multiply.  This harness pins the two sides of that trade on
//! the baseline adversarial scenario:
//!
//! * **quality** — of the ground-truth overlapping pairs the exact path
//!   aligns successfully, the k-min-mer path must recover at least 90%;
//! * **cost** — the sketch matrix must carry at least 5x fewer nonzeros than
//!   the exact `A`, with the SpGEMM flops and `OverlapDetection` broadcast
//!   words shrinking alongside, and the staged overlap phase (counting +
//!   matrix + SUMMA + alignment) ending up faster wall-clock.
//!
//! Both claims are hard `assert!`s, so CI fails if a regression lands.  The
//! committed `BENCH_sketch.json` holds the `full` preset (the bench-scale
//! baseline scenario: 15 kb genome, 1.2 kb reads).
//!
//! ```bash
//! cargo run --release -p dibella-bench --bin sketch_recall
//! DIBELLA_SKETCH_PRESET=fast cargo run --release -p dibella-bench --bin sketch_recall
//! DIBELLA_SKETCH_OUT=/tmp/out.json cargo run --release -p dibella-bench --bin sketch_recall
//! ```

// The bench crate is the sanctioned home of wall-clock reads (see
// clippy.toml); opt back in to Instant::now here.
#![allow(clippy::disallowed_methods)]

use dibella_bench::{print_header, print_row};
use dibella_dist::{CommPhase, CommStats, ProcessGrid};
use dibella_overlap::{
    account_read_exchange_2d, align_candidates_with, build_a_matrix, detect_candidates_2d_with,
};
use dibella_pipeline::{run_dibella_2d_on_reads, CandidateSource, PipelineConfig, ScenarioSpec};
use dibella_seq::count_kmers_distributed;
use dibella_seq::simulate::{build_scenario, ScenarioKind, SimulatedDataset};
use dibella_sketch::build_sketch_matrix;
use dibella_sparse::summa::flops_key;
use std::collections::HashSet;
use std::time::Instant;

/// The candidate-recall floor: of the true pairs the exact path aligns, the
/// fraction the k-min-mer path must also align.
const RECALL_OF_EXACT_FLOOR: f64 = 0.90;

/// The sparsity floor: `exact A nnz / sketch A nnz` must be at least this.
const NNZ_REDUCTION_FLOOR: f64 = 5.0;

/// One staged overlap-phase run: matrix construction through alignment.
struct LegResult {
    /// Occurrence-matrix nonzeros (the SUMMA operand).
    a_nnz: usize,
    /// Occurrence-matrix columns (reliable k-mers or k-min-mers).
    a_cols: usize,
    /// Candidate pairs surviving the SUMMA threshold (upper triangle).
    candidate_pairs: usize,
    /// Aligned overlap pairs (upper triangle).
    pairs: HashSet<(usize, usize)>,
    /// Useful SpGEMM flops recorded under `OverlapDetection`.
    spgemm_flops: u64,
    /// Broadcast words recorded under `OverlapDetection`.
    bcast_words: u64,
    /// Total communication words of the leg, all phases.
    total_words: u64,
    /// Wall-clock of the staged leg (counting + matrix + SUMMA + alignment).
    secs: f64,
}

/// Run one candidate path end to end through alignment, mirroring the
/// staging of `run_overlap_2d` so the exact leg pays for its k-mer counting
/// stage and the sketch leg for its index exchange.
fn run_leg(ds: &SimulatedDataset, config: &PipelineConfig, source: CandidateSource) -> LegResult {
    let comm = CommStats::new();
    let start = Instant::now();
    let grid = ProcessGrid::square_at_most(config.nprocs);
    let a = match source {
        CandidateSource::ExactKmer => {
            let table =
                count_kmers_distributed(&ds.reads, &config.kmer, config.nprocs, &comm);
            build_a_matrix(&ds.reads, &table, config.overlap.k, grid, grid.nprocs())
        }
        CandidateSource::KMinMer => {
            build_sketch_matrix(&ds.reads, &config.sketch, grid, grid.nprocs(), &comm).0
        }
    };
    account_read_exchange_2d(&ds.reads, grid, &comm);
    let candidates = detect_candidates_2d_with(&a, &comm, config.overlap.use_symmetric_summa);
    let (overlaps, _) =
        align_candidates_with(&ds.reads, &candidates, &config.overlap, Some(&comm));
    let secs = start.elapsed().as_secs_f64();
    let snap = comm.snapshot();
    let bcast = snap.phase(CommPhase::OverlapDetection);
    LegResult {
        a_nnz: a.nnz(),
        a_cols: a.ncols(),
        candidate_pairs: candidates.to_triples().iter().filter(|(i, j, _)| i < j).count(),
        pairs: overlaps
            .to_triples()
            .iter()
            .filter(|(i, j, _)| i < j)
            .map(|(i, j, _)| (i, j))
            .collect(),
        spgemm_flops: snap
            .extras
            .get(&flops_key(CommPhase::OverlapDetection))
            .copied()
            .unwrap_or(0),
        bcast_words: bcast.words,
        total_words: snap.total_words(),
        secs,
    }
}

/// Wall-clock of the full 2D pipeline (through consensus) in one mode.
fn pipeline_secs(ds: &SimulatedDataset, config: &PipelineConfig) -> f64 {
    let comm = CommStats::new();
    let start = Instant::now();
    let out = run_dibella_2d_on_reads(&ds.reads, config, &comm);
    let secs = start.elapsed().as_secs_f64();
    assert!(out.consensus_summary.consensus_bases > 0, "pipeline produced no consensus");
    secs
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        f64::INFINITY
    }
}

fn main() {
    let preset_name =
        std::env::var("DIBELLA_SKETCH_PRESET").unwrap_or_else(|_| "full".to_string());
    let spec = match preset_name.as_str() {
        "fast" => ScenarioSpec::fast(ScenarioKind::Baseline),
        _ => ScenarioSpec::bench(ScenarioKind::Baseline),
    };
    let preset = if preset_name == "fast" { "fast" } else { "full" };
    let ds = build_scenario(spec.kind, &spec.params);
    let config = PipelineConfig::for_small_reads(spec.k, spec.nprocs);
    println!(
        "Sketch recall — k-min-mer candidates vs the exact reliable-k-mer path, {} preset\n\
         baseline scenario: {} bp genome, {} reads, {:.1}x depth, {:.0} bp mean reads\n\
         sketch: k={} kmm={} density={} hpc={}\n",
        preset,
        ds.genome.len(),
        ds.num_reads(),
        ds.achieved_depth(),
        ds.mean_read_length(),
        config.sketch.k,
        config.sketch.kmm,
        config.sketch.density,
        config.sketch.use_hpc,
    );

    // Ground truth from the simulator: pairs overlapping by at least the
    // aligner's minimum overlap.
    let min_overlap = config.overlap.alignment.min_overlap;
    let mut truth = HashSet::new();
    for i in 0..ds.num_reads() {
        for j in (i + 1)..ds.num_reads() {
            if ds.true_overlap(i, j) >= min_overlap {
                truth.insert((i, j));
            }
        }
    }

    let exact = run_leg(&ds, &config, CandidateSource::ExactKmer);
    let kmm = run_leg(&ds, &config, CandidateSource::KMinMer);

    // Quality: the k-min-mer path is judged against what the exact path
    // actually delivers (true pairs it aligned), not raw simulator truth —
    // pairs the exact path itself misses are not held against the sketch.
    let exact_true: HashSet<(usize, usize)> = exact.pairs.intersection(&truth).copied().collect();
    let kmm_true: HashSet<(usize, usize)> = kmm.pairs.intersection(&truth).copied().collect();
    let recovered = kmm_true.intersection(&exact_true).count();
    let recall_of_exact = ratio(recovered as f64, exact_true.len() as f64);
    let exact_recall = ratio(exact_true.len() as f64, truth.len() as f64);
    let kmm_recall = ratio(kmm_true.len() as f64, truth.len() as f64);
    let kmm_precision = ratio(kmm_true.len() as f64, kmm.pairs.len() as f64);

    // Cost: the reductions the smaller operand buys, and the staged and
    // end-to-end wall-clock.
    let nnz_reduction = ratio(exact.a_nnz as f64, kmm.a_nnz as f64);
    let flops_reduction = ratio(exact.spgemm_flops as f64, kmm.spgemm_flops as f64);
    let bcast_reduction = ratio(exact.bcast_words as f64, kmm.bcast_words as f64);
    let words_reduction = ratio(exact.total_words as f64, kmm.total_words as f64);
    let stage_speedup = ratio(exact.secs, kmm.secs);
    let exact_e2e = pipeline_secs(&ds, &config);
    let kmm_e2e = pipeline_secs(
        &ds,
        &PipelineConfig { candidate_source: CandidateSource::KMinMer, ..config },
    );
    let e2e_speedup = ratio(exact_e2e, kmm_e2e);

    print_header(&["path", "A nnz", "A cols", "cand", "pairs", "true", "bcast words", "secs"]);
    for (name, leg, true_pairs) in
        [("exact", &exact, exact_true.len()), ("k-min-mer", &kmm, kmm_true.len())]
    {
        print_row(&[
            name.to_string(),
            leg.a_nnz.to_string(),
            leg.a_cols.to_string(),
            leg.candidate_pairs.to_string(),
            leg.pairs.len().to_string(),
            true_pairs.to_string(),
            leg.bcast_words.to_string(),
            format!("{:.2}", leg.secs),
        ]);
    }
    println!(
        "\nground truth: {} pairs (>= {} bp); exact recall {:.1}%, k-min-mer recall {:.1}%\n\
         k-min-mer recovers {recovered}/{} of the exact path's true pairs ({:.1}%)\n\
         reductions: {:.1}x nnz, {:.1}x SpGEMM flops, {:.1}x broadcast words, {:.1}x total words\n\
         wall-clock: {:.2}x staged overlap phase, {:.2}x end-to-end pipeline",
        truth.len(),
        min_overlap,
        100.0 * exact_recall,
        100.0 * kmm_recall,
        exact_true.len(),
        100.0 * recall_of_exact,
        nnz_reduction,
        flops_reduction,
        bcast_reduction,
        words_reduction,
        stage_speedup,
        e2e_speedup,
    );

    assert!(
        recall_of_exact >= RECALL_OF_EXACT_FLOOR,
        "k-min-mer path recovered only {:.1}% of the exact path's {} true pairs \
         (floor {:.0}%)",
        100.0 * recall_of_exact,
        exact_true.len(),
        100.0 * RECALL_OF_EXACT_FLOOR,
    );
    assert!(
        nnz_reduction >= NNZ_REDUCTION_FLOOR,
        "sketch A carries {} nnz vs exact {} — only {nnz_reduction:.1}x reduction \
         (floor {NNZ_REDUCTION_FLOOR:.0}x)",
        kmm.a_nnz,
        exact.a_nnz,
    );
    assert!(
        flops_reduction > 1.0 && bcast_reduction > 1.0,
        "sketch path must shrink SpGEMM flops ({flops_reduction:.2}x) and broadcast \
         words ({bcast_reduction:.2}x)"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"preset\": \"{preset}\",\n",
            "  \"scenario\": \"baseline\",\n",
            "  \"genome_length\": {genome_length},\n",
            "  \"reads\": {reads},\n",
            "  \"mean_read_length\": {mean_len:.1},\n",
            "  \"k\": {k},\n",
            "  \"nprocs\": {nprocs},\n",
            "  \"sketch_config\": {{\n",
            "    \"k\": {sk}, \"kmm\": {kmm}, \"density\": {density}, \"use_hpc\": {hpc},\n",
            "    \"min_reads\": {min_reads}, \"max_reads\": {max_reads}\n",
            "  }},\n",
            "  \"truth_pairs\": {truth_pairs},\n",
            "  \"min_overlap\": {min_overlap},\n",
            "  \"exact\": {{\n",
            "    \"a_nnz\": {e_nnz}, \"a_cols\": {e_cols}, \"candidate_pairs\": {e_cand},\n",
            "    \"aligned_pairs\": {e_pairs}, \"true_pairs\": {e_true},\n",
            "    \"spgemm_flops\": {e_flops}, \"bcast_words\": {e_bcast},\n",
            "    \"total_words\": {e_words}, \"stage_secs\": {e_secs:.4}\n",
            "  }},\n",
            "  \"kminmer\": {{\n",
            "    \"a_nnz\": {s_nnz}, \"a_cols\": {s_cols}, \"candidate_pairs\": {s_cand},\n",
            "    \"aligned_pairs\": {s_pairs}, \"true_pairs\": {s_true},\n",
            "    \"spgemm_flops\": {s_flops}, \"bcast_words\": {s_bcast},\n",
            "    \"total_words\": {s_words}, \"stage_secs\": {s_secs:.4}\n",
            "  }},\n",
            "  \"recall_of_exact_true_pairs\": {recall:.4},\n",
            "  \"kminmer_precision\": {precision:.4},\n",
            "  \"nnz_reduction\": {nnz_red:.2},\n",
            "  \"spgemm_flops_reduction\": {flops_red:.2},\n",
            "  \"bcast_words_reduction\": {bcast_red:.2},\n",
            "  \"total_words_reduction\": {words_red:.2},\n",
            "  \"stage_speedup\": {stage_speedup:.2},\n",
            "  \"end_to_end_secs_exact\": {e2e_exact:.4},\n",
            "  \"end_to_end_secs_kminmer\": {e2e_kmm:.4},\n",
            "  \"end_to_end_speedup\": {e2e_speedup:.2}\n",
            "}}\n"
        ),
        preset = preset,
        genome_length = ds.genome.len(),
        reads = ds.num_reads(),
        mean_len = ds.mean_read_length(),
        k = spec.k,
        nprocs = spec.nprocs,
        sk = config.sketch.k,
        kmm = config.sketch.kmm,
        density = config.sketch.density,
        hpc = config.sketch.use_hpc,
        min_reads = config.sketch.min_reads,
        max_reads = config.sketch.max_reads,
        truth_pairs = truth.len(),
        min_overlap = min_overlap,
        e_nnz = exact.a_nnz,
        e_cols = exact.a_cols,
        e_cand = exact.candidate_pairs,
        e_pairs = exact.pairs.len(),
        e_true = exact_true.len(),
        e_flops = exact.spgemm_flops,
        e_bcast = exact.bcast_words,
        e_words = exact.total_words,
        e_secs = exact.secs,
        s_nnz = kmm.a_nnz,
        s_cols = kmm.a_cols,
        s_cand = kmm.candidate_pairs,
        s_pairs = kmm.pairs.len(),
        s_true = kmm_true.len(),
        s_flops = kmm.spgemm_flops,
        s_bcast = kmm.bcast_words,
        s_words = kmm.total_words,
        s_secs = kmm.secs,
        recall = recall_of_exact,
        precision = kmm_precision,
        nnz_red = nnz_reduction,
        flops_red = flops_reduction,
        bcast_red = bcast_reduction,
        words_red = words_reduction,
        stage_speedup = stage_speedup,
        e2e_exact = exact_e2e,
        e2e_kmm = kmm_e2e,
        e2e_speedup = e2e_speedup,
    );
    // Default to the workspace root; DIBELLA_SKETCH_OUT overrides.
    let out_path = std::env::var("DIBELLA_SKETCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sketch.json").to_string()
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\ncould not write {out_path}: {e}"),
    }
}

//! Table VI — transitive reduction: diBELLA 2D vs the SORA-style baseline.
//!
//! The paper feeds the overlap matrix produced by diBELLA 2D to both its own
//! transitive reduction and to SORA (Spark/GraphX), and reports the runtimes
//! and speedups per node count.  This harness does the same with the
//! SORA-style vertex-centric baseline of `dibella-strgraph`: both reductions
//! run on the same overlap matrix `R`, wall-clock is measured on this host,
//! and the diBELLA runtime is additionally projected to the paper's node
//! counts with the measured communication volumes.
//!
//! ```bash
//! cargo run --release -p dibella-bench --bin table6_tr_vs_sora
//! ```

// The bench crate is the sanctioned home of wall-clock reads (see
// clippy.toml); opt back in to Instant::now here.
#![allow(clippy::disallowed_methods)]

use dibella_bench::{benchmark_dataset, fmt, print_header, print_row, simulated_phase_time};
use dibella_dist::{CommPhase, CommStats, ProcessGrid};
use dibella_pipeline::{run_dibella_2d_on_reads, PipelineConfig};
use dibella_seq::DatasetSpec;
use dibella_sparse::DistMat2D;
use dibella_strgraph::{sora_transitive_reduction, transitive_reduction, TransitiveReductionConfig};
use std::time::Instant;

fn main() {
    println!("Table VI reproduction — transitive reduction vs a SORA-style baseline\n");
    print_header(&[
        "dataset", "nodes P", "SORA (s)", "diBELLA (s)", "speed-up", "proj. diBELLA", "proj. sp-up",
    ]);

    let cases = [
        (DatasetSpec::CElegansLike, 61u64, vec![32usize, 72, 128]),
        (DatasetSpec::HSapiensLike, 62, vec![128usize, 200, 338]),
    ];

    for (spec, seed, node_counts) in cases {
        let ds = benchmark_dataset(spec, seed);
        let config = PipelineConfig::for_benchmark(17, ds.config.error_rate, 16);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &config, &comm);
        let r_local = out.overlap_matrix.to_local_csr();
        let r_triples = out.overlap_matrix.to_triples();

        // The SORA-style baseline (vertex-centric supersteps, full graph
        // materialisation) — measured once; the paper's SORA times are
        // essentially flat across node counts.
        let start = Instant::now();
        let (_, sora_stats) = sora_transitive_reduction(&r_local, config.transitive.fuzz);
        let sora_secs = start.elapsed().as_secs_f64();

        for &p in &node_counts {
            let grid = ProcessGrid::square_at_most(p);
            let tr_comm = CommStats::new();
            let r_dist = DistMat2D::from_triples(grid, &r_triples);
            let start = Instant::now();
            let _ = transitive_reduction(
                &r_dist,
                &TransitiveReductionConfig { fuzz: config.transitive.fuzz, max_iterations: 16 },
                &tr_comm,
            );
            let tr_secs = start.elapsed().as_secs_f64();
            let projected = simulated_phase_time(
                tr_secs,
                &tr_comm.snapshot(),
                CommPhase::TransitiveReduction,
                grid.nprocs(),
            );
            print_row(&[
                ds.label.clone(),
                p.to_string(),
                fmt(sora_secs),
                fmt(tr_secs),
                format!("{:.1}x", sora_secs / tr_secs),
                fmt(projected),
                format!("{:.1}x", sora_secs / projected),
            ]);
        }
        println!(
            "  ({} overlap edges; SORA-style baseline used {} supersteps and shuffled {} adjacency records)",
            r_local.nnz(),
            sora_stats.supersteps,
            sora_stats.messages
        );
        println!();
    }

    println!("Paper (Table VI): SORA 34.3-34.9 s vs diBELLA 1.2-1.9 s on C. elegans");
    println!("(18.2-29.0x), and 23.4-25.3 s vs 1.9-2.3 s on H. sapiens (10.5-13.3x).");
    println!("The reproduction's 'speed-up' column is measured on one host; the projected");
    println!("column scales the matrix-based reduction to the paper's node counts using the");
    println!("measured communication volumes (the SORA baseline's runtime is flat across");
    println!("node counts in the paper, so its single-host measurement is used as-is).");
}

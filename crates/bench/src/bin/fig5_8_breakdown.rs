//! Figures 5–8 — runtime breakdown of diBELLA 2D per stage.
//!
//! The paper stacks, for each node count and dataset, the time spent in
//! Alignment, ReadFastq, CountKmer, CreateSpMat, SpGEMM, ExchangeRead and
//! TrReduction — once including alignment and once excluding it.  This
//! harness prints the same series: the measured single-host breakdown and the
//! projected per-stage breakdown at each virtual process count.
//!
//! ```bash
//! cargo run --release -p dibella-bench --bin fig5_8_breakdown
//! ```

use dibella_bench::{
    alignment_cell_rate, benchmark_dataset, fmt, phase_flop_rate, print_header, print_row,
    SimulatedBreakdown,
};
use dibella_dist::collectives::{p2p_messages_key, p2p_words_key};
use dibella_dist::{CommPhase, CommStats};
use dibella_overlap::{BAND_WIDTH_PEAK_KEY, XDROP_TERMINATIONS_KEY};
use dibella_pipeline::{run_dibella_2d, PipelineConfig, StageTimings};
use dibella_seq::{write_fasta, DatasetSpec};

fn main() {
    println!("Figures 5-8 reproduction — diBELLA 2D runtime breakdown\n");
    let cases = [
        (DatasetSpec::CElegansLike, 91u64, vec![32usize * 32, 72 * 32, 128 * 32]),
        (DatasetSpec::HSapiensLike, 92, vec![128usize * 32, 200 * 32, 338 * 32]),
    ];

    for (spec, seed, rank_counts) in cases {
        let ds = benchmark_dataset(spec, seed);
        let fasta = write_fasta(&ds.reads);
        println!("{} — projected per-stage seconds at P ranks", ds.label);
        let mut header = vec!["ranks P".to_string()];
        header.extend(StageTimings::LABELS.iter().map(|s| s.to_string()));
        header.push("total".into());
        header.push("w/o align".into());
        print_header(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());

        for &p in &rank_counts {
            let config = PipelineConfig::for_benchmark(17, ds.config.error_rate, p);
            let out = run_dibella_2d(&fasta, &config).expect("pipeline run");
            let proj = SimulatedBreakdown::project(&out.timings, &out.comm, out.grid.nprocs());
            let mut row = vec![p.to_string()];
            row.extend(proj.values().iter().map(|v| fmt(*v)));
            row.push(fmt(proj.total()));
            row.push(fmt(proj.total_without_alignment()));
            print_row(&row);

            if p == rank_counts[0] {
                let _ = CommStats::new();
                let mut measured = vec!["measured*".to_string()];
                measured.extend(out.timings.values().iter().map(|v| fmt(*v)));
                measured.push(fmt(out.timings.total()));
                measured.push(fmt(out.timings.total_without_alignment()));
                print_row(&measured);

                // Flops accounting from the SpGEMM accumulators, per phase.
                let (spgemm_flops, spgemm_rate) =
                    phase_flop_rate(&out.comm, CommPhase::OverlapDetection, out.timings.spgemm);
                let (tr_flops, tr_rate) = phase_flop_rate(
                    &out.comm,
                    CommPhase::TransitiveReduction,
                    out.timings.tr_reduction,
                );
                println!(
                    "  SpGEMM (AAᵀ): {spgemm_flops} useful flops at {spgemm_rate:.1} Mflop/s; \
                     TrReduction squarings: {tr_flops} flops at {tr_rate:.1} Mflop/s"
                );

                // The symmetric SUMMA's cross-diagonal block exchange,
                // split out of the phase totals: halving the AAᵀ flops buys
                // (P − √P)/2 point-to-point block sends.
                let p2p_words = out
                    .comm
                    .extras
                    .get(&p2p_words_key(CommPhase::OverlapDetection))
                    .copied()
                    .unwrap_or(0);
                let p2p_msgs = out
                    .comm
                    .extras
                    .get(&p2p_messages_key(CommPhase::OverlapDetection))
                    .copied()
                    .unwrap_or(0);
                let spgemm_phase = out.comm.phase(CommPhase::OverlapDetection);
                println!(
                    "  SpGEMM comm: {} words / {} messages total, of which the \
                     cross-diagonal exchange is {p2p_words} words / {p2p_msgs} messages",
                    spgemm_phase.words, spgemm_phase.messages
                );

                // Alignment throughput from the batched x-drop engine's cell
                // accounting (the dominant stage of Figures 5-8).
                let (cells, cell_rate) =
                    alignment_cell_rate(&out.comm, out.timings.alignment);
                let band_peak =
                    out.comm.extras.get(BAND_WIDTH_PEAK_KEY).copied().unwrap_or(0);
                let stops =
                    out.comm.extras.get(XDROP_TERMINATIONS_KEY).copied().unwrap_or(0);
                println!(
                    "  Alignment: {cells} DP cells at {cell_rate:.1} Mcells/s; \
                     peak band width {band_peak}; x-drop early stops {stops}"
                );
            }
        }
        println!("  (*) single-host wall clock of the run used for the first projection\n");
    }

    println!("Paper (Figures 5-8): pairwise alignment dominates the total runtime; the");
    println!("AAT SpGEMM is the largest non-alignment stage; ReadFastq stops scaling at");
    println!("high concurrency; CreateSpMat is negligible; TrReduction is a small share.");
    println!("The projected breakdowns above reproduce those relative proportions.");
}

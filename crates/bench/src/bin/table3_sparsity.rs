//! Table III — experimental sparsity values of diBELLA 2D.
//!
//! For each (scaled) dataset the harness reports the depth `d`, the candidate
//! matrix density `c`, the overlapper inefficiency `c/2d`, and the overlap
//! matrix density `r`, mirroring Table III of the paper.
//!
//! ```bash
//! cargo run --release -p dibella-bench --bin table3_sparsity
//! ```

use dibella_bench::{benchmark_dataset, fmt, print_header, print_row};
use dibella_dist::CommStats;
use dibella_pipeline::{run_dibella_2d_on_reads, PipelineConfig};
use dibella_seq::DatasetSpec;

fn main() {
    println!("Table III reproduction — sparsity of the candidate (C) and overlap (R) matrices\n");
    print_header(&["dataset", "depth d", "C density c", "ineff. c/2d", "R density r"]);

    let presets = [
        (DatasetSpec::EColiLike, 31u64),
        (DatasetSpec::CElegansLike, 32),
        (DatasetSpec::HSapiensLike, 33),
    ];
    for (spec, seed) in presets {
        let ds = benchmark_dataset(spec, seed);
        let config = PipelineConfig::for_benchmark(17, ds.config.error_rate, 16);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &config, &comm);
        let d = ds.achieved_depth();
        let c = out.overlap_stats.c_density;
        let r = out.overlap_stats.r_density;
        print_row(&[
            ds.label.clone(),
            fmt(d),
            fmt(c),
            fmt(c / (2.0 * d)),
            fmt(r),
        ]);
    }

    println!("\nPaper (Table III):");
    println!("  E. coli      d=30   c=145.9    c/2d=2.4    r=6.4");
    println!("  C. elegans   d=40   c=1579.7   c/2d=19.7   r=8.1");
    println!("  H. sapiens   d=10   c=1207.7   c/2d=60.4   r=1.3");
    println!("\nThe scaled synthetic genomes are far less repetitive than real eukaryotic");
    println!("genomes, so the absolute inefficiency factors are smaller; the orderings");
    println!("(c grows with depth, r stays a small constant, c >> 2d for noisy data) are");
    println!("the properties the communication analysis relies on.");
}

//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every table and figure of the paper's evaluation (Section VI–VII) has a
//! binary under `src/bin/` that regenerates it on simulated datasets.  The
//! original experiments ran on hundreds of Cori/Summit nodes; this host is a
//! single machine, so the harness reports two complementary quantities:
//!
//! * **measured** values — wall-clock times of the real computation on this
//!   host and the exact communication volumes recorded by
//!   [`dibella_dist::CommStats`];
//! * **simulated distributed runtimes** — an analytic projection of the
//!   per-process runtime at `P` ranks obtained from the measured serial
//!   compute time, the measured per-rank communication volume and documented
//!   interconnect constants ([`INTERCONNECT_BANDWIDTH_BYTES`],
//!   [`INTERCONNECT_LATENCY_SECS`], chosen to be Cori-Aries-like).  This is
//!   the substitution (documented in DESIGN.md and EXPERIMENTS.md) for the
//!   multi-node hardware the paper used: the *shape* of the scaling curves
//!   and the 1D/2D crossovers come from the measured volumes, not from the
//!   constants.

#![warn(missing_docs)]

use dibella_dist::{CommPhase, CommSnapshot};
use dibella_pipeline::StageTimings;
use dibella_seq::{DatasetSpec, SimulatedDataset};

/// Assumed per-process injection bandwidth of the interconnect (bytes/s).
/// Cray Aries (Cori) delivers roughly 8 GB/s per node.
pub const INTERCONNECT_BANDWIDTH_BYTES: f64 = 8.0e9;

/// Assumed point-to-point message latency of the interconnect (seconds).
pub const INTERCONNECT_LATENCY_SECS: f64 = 2.0e-6;

/// Bytes per word in the communication accounting.
pub const BYTES_PER_WORD: f64 = 8.0;

/// Scale of the benchmark datasets (genome length in bases).  The harnesses
/// accept `DIBELLA_BENCH_SCALE` in the environment to grow or shrink this.
pub fn genome_length_for(spec: DatasetSpec) -> usize {
    // Sizes chosen so that the dominant cost (pairwise alignment, roughly
    // genome_length x depth^2 x band cells) keeps every harness within a few
    // minutes on one core while the higher-depth datasets stay the harder ones.
    let base = match spec {
        DatasetSpec::EColiLike => 60_000,
        DatasetSpec::CElegansLike => 50_000,
        DatasetSpec::HSapiensLike => 150_000,
        DatasetSpec::Small => 60_000,
        DatasetSpec::Tiny => 4_000,
    };
    let scale: f64 = std::env::var("DIBELLA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    ((base as f64 * scale) as usize).max(2_000)
}

/// Generate (deterministically) the benchmark dataset for a preset.
pub fn benchmark_dataset(spec: DatasetSpec, seed: u64) -> SimulatedDataset {
    spec.generate_with_length(genome_length_for(spec), seed)
}

/// The estimated time to move `words` words and `messages` messages from one
/// rank, with the documented interconnect constants.
pub fn comm_time_secs(words: f64, messages: f64) -> f64 {
    words * BYTES_PER_WORD / INTERCONNECT_BANDWIDTH_BYTES
        + messages * INTERCONNECT_LATENCY_SECS
}

/// Per-phase simulated distributed time at `p` ranks: measured aggregate
/// compute time divided across ranks, plus the per-rank communication time
/// derived from the measured aggregate volumes.
pub fn simulated_phase_time(
    serial_compute_secs: f64,
    comm: &CommSnapshot,
    phase: CommPhase,
    p: usize,
) -> f64 {
    let counters = comm.phase(phase);
    let per_rank_words = counters.words as f64 / p as f64;
    let per_rank_msgs = counters.messages as f64 / p as f64;
    serial_compute_secs / p as f64 + comm_time_secs(per_rank_words, per_rank_msgs)
}

/// A simulated distributed runtime breakdown at `p` ranks, derived from a
/// single-host run's stage timings and communication snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatedBreakdown {
    /// Pairwise alignment (perfectly parallel, no communication).
    pub alignment: f64,
    /// FASTA parsing (parallel I/O is modelled as non-scaling beyond 8 ranks,
    /// mirroring the paper's observation that read I/O stops scaling).
    pub read_fastq: f64,
    /// K-mer counting.
    pub count_kmer: f64,
    /// Building `A`/`Aᵀ`.
    pub create_spmat: f64,
    /// The candidate-overlap SpGEMM.
    pub spgemm: f64,
    /// Sequence exchange.
    pub exchange_read: f64,
    /// Transitive reduction.
    pub tr_reduction: f64,
    /// Contig extraction plus POA consensus (embarrassingly parallel per
    /// contig, plus the per-contig read gather).
    pub consensus: f64,
}

impl SimulatedBreakdown {
    /// Project a measured single-host run onto `p` virtual ranks.
    pub fn project(timings: &StageTimings, comm: &CommSnapshot, p: usize) -> Self {
        let pf = p as f64;
        let io_ranks = pf.min(8.0);
        Self {
            alignment: timings.alignment / pf,
            read_fastq: timings.read_fastq / io_ranks,
            count_kmer: simulated_phase_time(timings.count_kmer, comm, CommPhase::KmerCounting, p),
            create_spmat: timings.create_spmat / pf,
            spgemm: simulated_phase_time(timings.spgemm, comm, CommPhase::OverlapDetection, p),
            exchange_read: comm_time_secs(
                comm.phase(CommPhase::ReadExchange).words as f64 / pf,
                comm.phase(CommPhase::ReadExchange).messages as f64 / pf,
            ),
            tr_reduction: simulated_phase_time(
                timings.tr_reduction,
                comm,
                CommPhase::TransitiveReduction,
                p,
            ),
            consensus: simulated_phase_time(timings.consensus, comm, CommPhase::Consensus, p),
        }
    }

    /// Total simulated runtime.
    pub fn total(&self) -> f64 {
        self.alignment
            + self.read_fastq
            + self.count_kmer
            + self.create_spmat
            + self.spgemm
            + self.exchange_read
            + self.tr_reduction
            + self.consensus
    }

    /// Total without alignment (right-hand plots of Figures 5–8).
    pub fn total_without_alignment(&self) -> f64 {
        self.total() - self.alignment
    }

    /// Total without transitive reduction (Figure 9 comparison).
    pub fn total_without_tr(&self) -> f64 {
        self.total() - self.tr_reduction
    }

    /// The stage values in the order of [`StageTimings::LABELS`].
    pub fn values(&self) -> [f64; 8] {
        [
            self.alignment,
            self.read_fastq,
            self.count_kmer,
            self.create_spmat,
            self.spgemm,
            self.exchange_read,
            self.tr_reduction,
            self.consensus,
        ]
    }
}

/// Useful SpGEMM flops a phase recorded (via `dibella_sparse::summa`'s
/// `FlopCounter` plumbing) and the resulting measured flop rate in Mflop/s
/// given the phase's measured wall-clock seconds.
pub fn phase_flop_rate(comm: &CommSnapshot, phase: CommPhase, secs: f64) -> (u64, f64) {
    let flops =
        comm.extras.get(&dibella_sparse::summa::flops_key(phase)).copied().unwrap_or(0);
    let rate = if secs > 0.0 { flops as f64 / secs / 1e6 } else { 0.0 };
    (flops, rate)
}

/// Aligned DP cells the batched aligner recorded (via the overlap stage's
/// `CommStats::extras` plumbing) and the resulting measured alignment
/// throughput in Mcells/s given the stage's measured wall-clock seconds.
pub fn alignment_cell_rate(comm: &CommSnapshot, secs: f64) -> (u64, f64) {
    let cells = comm.extras.get(dibella_overlap::ALIGNED_CELLS_KEY).copied().unwrap_or(0);
    let rate = if secs > 0.0 { cells as f64 / secs / 1e6 } else { 0.0 };
    (cells, rate)
}

/// Pretty-print a row of pipe-separated cells with a fixed width.
pub fn print_row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("| {} |", line.join(" | "));
}

/// Pretty-print a header row followed by a separator.
pub fn print_header(cells: &[&str]) {
    print_row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = cells.iter().map(|_| "-".repeat(14)).collect();
    println!("|-{}-|", sep.join("-|-"));
}

/// Format a float with 3 significant decimals.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_dist::CommStats;

    #[test]
    fn comm_time_is_linear_in_words_and_messages() {
        let t1 = comm_time_secs(1e6, 0.0);
        let t2 = comm_time_secs(2e6, 0.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert!(comm_time_secs(0.0, 1000.0) > 0.0);
    }

    #[test]
    fn simulated_breakdown_shrinks_with_more_ranks() {
        let timings = StageTimings {
            read_fastq: 1.0,
            count_kmer: 4.0,
            create_spmat: 1.0,
            spgemm: 8.0,
            exchange_read: 0.0,
            alignment: 20.0,
            tr_reduction: 2.0,
            consensus: 3.0,
        };
        let stats = CommStats::new();
        stats.record(CommPhase::OverlapDetection, 1_000_000, 100);
        let snap = stats.snapshot();
        let t4 = SimulatedBreakdown::project(&timings, &snap, 4);
        let t64 = SimulatedBreakdown::project(&timings, &snap, 64);
        assert!(t64.total() < t4.total());
        assert!(t64.alignment < t4.alignment);
        assert!(t4.total() < timings.total());
    }

    #[test]
    fn dataset_presets_generate_at_bench_scale() {
        let ds = benchmark_dataset(DatasetSpec::Tiny, 1);
        assert!(ds.num_reads() > 10);
        assert_eq!(ds.genome.len(), genome_length_for(DatasetSpec::Tiny));
    }

    #[test]
    fn formatting_helpers_do_not_panic() {
        print_header(&["a", "b"]);
        print_row(&[fmt(0.0), fmt(123.456)]);
        print_row(&[fmt(0.001234), fmt(12.5)]);
    }
}

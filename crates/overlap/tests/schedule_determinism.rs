//! Re-pins the alignment stage's determinism claim under adversarial steal
//! schedules.
//!
//! `align_candidates_exec` flattens (pair, seed) work items onto the pool
//! with per-worker scratch reused across items; everything it returns except
//! the per-worker `rc_orientations` cache counter must be bit-identical under
//! any chunk-claim order.  The explorer enumerates all 3-/4-chunk claim
//! permutations (randomized large shuffles on the CI main preset) with yield
//! injection, a much denser schedule space than the 1/2/4-thread sweeps.

use dibella_align::ExtendEngine;
use dibella_dist::{CommStats, ProcessGrid};
use dibella_overlap::{
    align_candidates_exec, build_a_matrix, detect_candidates_2d_with, OverlapConfig,
};
use dibella_seq::{count_kmers_serial, DatasetSpec, KmerSelection};
use dibella_testutil::{assert_schedule_determinism, SchedulePreset};

#[test]
fn align_candidates_exec_is_bit_identical_under_adversarial_schedules() {
    // A half-length Tiny genome keeps the candidate set big enough to fan out
    // onto many chunks while the 31+ full alignment replays stay fast.
    let ds = DatasetSpec::Tiny.generate_with_length(2_000, 77);
    let k = 13;
    let sel = KmerSelection { k, min_count: 2, max_count: 60 };
    let table = count_kmers_serial(&ds.reads, &sel);
    let cfg = OverlapConfig::for_tests(k);
    let grid = ProcessGrid::square(4);
    let a = build_a_matrix(&ds.reads, &table, cfg.k, grid, 4);
    let comm = CommStats::new();
    let candidates = detect_candidates_2d_with(&a, &comm, true);

    let explored = assert_schedule_determinism(SchedulePreset::from_env(), || {
        let (overlaps, stats, exec) =
            align_candidates_exec(&ds.reads, &candidates, &cfg, ExtendEngine::Auto);
        // rc_orientations counts per-worker cache misses and is the one
        // documented schedule-dependent counter — everything else is pinned.
        (
            overlaps.to_local_csr(),
            stats,
            exec.aligned_cells,
            exec.band_width_peak,
            exec.xdrop_terminations,
        )
    });
    assert!(explored >= 30, "expected at least the exhaustive-small preset");
}

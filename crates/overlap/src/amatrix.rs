//! Construction of the `|reads| x |k-mers|` occurrence matrix `A`.
//!
//! Section IV-D: "The local k-mer hash table and the local sequences are used
//! to create a distributed |sequences|-by-|k-mers| matrix A.  A nonzero `A_ij`
//! stores the position of the j-th k-mer in the i-th sequence."  Reads are
//! block-partitioned over virtual ranks for the construction; the resulting
//! triples are then distributed over the 2D grid exactly as CombBLAS would.

use crate::types::KmerOccurrence;
use dibella_dist::{par_ranks, BlockDist, ProcessGrid};
use dibella_seq::{KmerIter, KmerTable, ReadSet};
use dibella_sparse::{DistMat2D, Triples};

/// Build the occurrence matrix `A` (reads × reliable k-mers), distributed over
/// `grid`.
///
/// If a reliable k-mer occurs more than once in a read, the first occurrence
/// is kept (one position per nonzero, as in BELLA's `A` matrix).
pub fn build_a_matrix(
    reads: &ReadSet,
    table: &KmerTable,
    k: usize,
    grid: ProcessGrid,
    construction_ranks: usize,
) -> DistMat2D<KmerOccurrence> {
    assert!(construction_ranks > 0);
    let read_dist = BlockDist::new(reads.len(), construction_ranks);

    // Each construction rank scans its block of reads and emits triples.
    let per_rank: Vec<Vec<(usize, usize, KmerOccurrence)>> =
        par_ranks(construction_ranks, |rank| {
            let mut entries = Vec::new();
            for read_idx in read_dist.range(rank) {
                let seq = reads.seq(read_idx);
                if seq.len() < k {
                    continue;
                }
                // First occurrence per column within this read (membership
                // only — the set is never iterated, so HashSet is safe here).
                let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
                for (pos, kmer) in KmerIter::new(seq, k) {
                    let canon = kmer.canonical();
                    if let Some(col) = table.column_of(&canon.kmer) {
                        if seen.insert(col) {
                            entries.push((
                                read_idx,
                                col as usize,
                                KmerOccurrence { pos: pos as u32, forward: canon.was_forward },
                            ));
                        }
                    }
                }
            }
            entries
        });

    let mut triples = Triples::new(reads.len(), table.len());
    for entries in per_rank {
        triples.extend(entries);
    }
    DistMat2D::from_triples(grid, &triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_seq::{count_kmers_serial, parse_fasta, DatasetSpec, Kmer, KmerSelection};

    fn tiny_setup(k: usize) -> (ReadSet, KmerTable) {
        let ds = DatasetSpec::Tiny.generate(19);
        let sel = KmerSelection { k, min_count: 2, max_count: 50 };
        let table = count_kmers_serial(&ds.reads, &sel);
        (ds.reads, table)
    }

    #[test]
    fn a_matrix_dimensions_match_reads_by_kmers() {
        let (reads, table) = tiny_setup(11);
        let grid = ProcessGrid::square(4);
        let a = build_a_matrix(&reads, &table, 11, grid, 4);
        assert_eq!(a.nrows(), reads.len());
        assert_eq!(a.ncols(), table.len());
        assert!(a.nnz() > 0);
    }

    #[test]
    fn entries_point_at_real_occurrences() {
        let (reads, table) = tiny_setup(11);
        let grid = ProcessGrid::square(1);
        let a = build_a_matrix(&reads, &table, 11, grid, 3);
        let local = a.to_local_csr();
        let mut checked = 0;
        for (read_idx, col, occ) in local.iter() {
            let expected_canon = table.kmer_at(col as u32);
            let seq = reads.seq(read_idx);
            let window = seq.slice(occ.pos as usize, occ.pos as usize + 11);
            let found = Kmer::from_codes(window.codes());
            let canon = found.canonical();
            assert_eq!(canon.kmer, expected_canon, "stored position must contain the k-mer");
            assert_eq!(canon.was_forward, occ.forward, "orientation flag must match");
            checked += 1;
            if checked > 200 {
                break;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn construction_rank_count_does_not_change_the_matrix() {
        let (reads, table) = tiny_setup(9);
        let grid = ProcessGrid::square(4);
        let a1 = build_a_matrix(&reads, &table, 9, grid, 1);
        let a4 = build_a_matrix(&reads, &table, 9, grid, 4);
        let a7 = build_a_matrix(&reads, &table, 9, grid, 7);
        assert_eq!(a1.to_local_csr(), a4.to_local_csr());
        assert_eq!(a1.to_local_csr(), a7.to_local_csr());
    }

    #[test]
    fn duplicate_kmers_within_a_read_store_one_position() {
        // A read with the same 4-mer repeated: AAAA appears many times but the
        // matrix keeps a single entry (the first).
        let reads = parse_fasta(">r0\nAAAAAAAACGCG\n>r1\nAAAAAAAACGCG\n").unwrap();
        let sel = KmerSelection { k: 4, min_count: 2, max_count: 100 };
        let table = count_kmers_serial(&reads, &sel);
        let grid = ProcessGrid::square(1);
        let a = build_a_matrix(&reads, &table, 4, grid, 2);
        let local = a.to_local_csr();
        let aaaa = Kmer::from_ascii(b"AAAA").unwrap().canonical().kmer;
        let col = table.column_of(&aaaa).unwrap() as usize;
        let occ = local.get(0, col).expect("AAAA entry for read 0");
        assert_eq!(occ.pos, 0, "first occurrence wins");
        // One entry per (read, kmer) pair even though AAAA occurs 5 times.
        assert_eq!(local.row(0).filter(|(c, _)| *c == col).count(), 1);
    }

    #[test]
    fn reads_shorter_than_k_produce_no_entries() {
        let reads = parse_fasta(">a\nACG\n>b\nACGTACGTACGT\n>c\nACGTACGTACGT\n").unwrap();
        let sel = KmerSelection { k: 6, min_count: 2, max_count: 100 };
        let table = count_kmers_serial(&reads, &sel);
        let a = build_a_matrix(&reads, &table, 6, ProcessGrid::square(1), 2);
        let local = a.to_local_csr();
        assert_eq!(local.row_nnz(0), 0);
        assert!(local.row_nnz(1) > 0);
    }
}

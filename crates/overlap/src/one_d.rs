//! The diBELLA 1D overlap-detection baseline.
//!
//! diBELLA 1D (ICPP'19) finds candidate overlaps with a distributed hash table
//! keyed by k-mer; Section V-B of the paper observes that, in communication
//! terms, this "is equivalent to a 1D sparse matrix multiplication using the
//! outer product algorithm" followed by a reduction of the partial candidate
//! lists, and a per-nonzero read exchange before alignment.  This module
//! implements exactly that formulation so that Figure 9's 1D-vs-2D comparison
//! and Table I's cost comparison run the same local kernels and differ only in
//! decomposition and communication — which is the paper's claim.

use crate::amatrix::build_a_matrix;
use crate::detect::{align_candidates_with, read_exchange_words, OverlapConfig, OverlapOutput};
use crate::semiring::OverlapSemiring;
use crate::types::CommonKmers;
use dibella_dist::{BlockDist, CommPhase, CommStats, ProcessGrid};
use dibella_seq::{KmerTable, ReadSet};
use dibella_sparse::outer1d::outer1d_aat_with_words;
use dibella_sparse::{CsrMatrix, DistMat2D};
use std::collections::BTreeSet;

/// Compute the candidate overlap matrix with the 1D outer-product algorithm
/// over `nprocs` ranks, recording the reduction traffic.
///
/// Uses the transpose-free symmetric `A·Aᵀ` kernel: each rank slices its
/// column block directly out of `A`'s CSR arrays, multiplies the upper
/// triangle of the (mirror-symmetric) partial product against the slice's
/// CSC view and mirrors the rest, so `Aᵀ` is never materialised and only
/// half the products are formed.
pub fn detect_candidates_1d(
    a: &CsrMatrix<crate::types::KmerOccurrence>,
    nprocs: usize,
    stats: &CommStats,
) -> CsrMatrix<CommonKmers> {
    // A partial candidate entry travels as (row, col, count + one seed): ~4 words.
    let result = outer1d_aat_with_words::<OverlapSemiring>(
        a,
        nprocs,
        stats,
        CommPhase::OverlapDetection,
        4,
    );
    result.to_local_csr(a.nrows()).filter(|r, c, _| r != c)
}

/// Account for diBELLA 1D's read exchange (Section V-C): every rank owns a
/// block of `C`'s rows and already holds those reads; it must fetch the
/// column read of every nonzero it is responsible for (at most one read per
/// nonzero), from the rank that owns it in the 1D distribution.
pub fn account_read_exchange_1d(
    reads: &ReadSet,
    candidates: &CsrMatrix<CommonKmers>,
    nprocs: usize,
    stats: &CommStats,
) {
    let dist = BlockDist::new(reads.len(), nprocs);
    for rank in 0..nprocs {
        let mut needed: BTreeSet<usize> = BTreeSet::new();
        for row in dist.range(rank) {
            for (col, _) in candidates.row(row) {
                if !dist.range(rank).contains(&col) {
                    needed.insert(col);
                }
            }
        }
        let mut words = 0u64;
        let mut sources: BTreeSet<usize> = BTreeSet::new();
        for idx in needed {
            words += read_exchange_words(reads.seq(idx).len());
            sources.insert(dist.owner(idx));
        }
        stats.record(CommPhase::ReadExchange, words, sources.len() as u64);
        stats.record_rank_max(CommPhase::ReadExchange, words);
    }
}

/// Run the full 1D overlap-detection baseline: build `A`, compute the
/// candidates with the outer-product algorithm, account for the per-nonzero
/// read exchange, then align and prune exactly as the 2D pipeline does.
pub fn run_overlap_1d(
    reads: &ReadSet,
    table: &KmerTable,
    config: &OverlapConfig,
    nprocs: usize,
    comm: &CommStats,
) -> OverlapOutput {
    // The 1D algorithm's data structures are not 2D-distributed; a single-rank
    // grid holds the assembled matrices for downstream (shared) stages.
    let grid = ProcessGrid::square(1);
    let a = build_a_matrix(reads, table, config.k, grid, nprocs);
    let a_local = a.to_local_csr();
    let candidates_local = detect_candidates_1d(&a_local, nprocs, comm);
    account_read_exchange_1d(reads, &candidates_local, nprocs, comm);
    let candidates = DistMat2D::from_triples(grid, &candidates_local.to_triples());
    let (overlaps, stats) = align_candidates_with(reads, &candidates, config, Some(comm));
    OverlapOutput { a, candidates, overlaps, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::run_overlap_2d;
    use dibella_seq::{count_kmers_serial, DatasetSpec, KmerSelection};

    fn setup(seed: u64) -> (dibella_seq::SimulatedDataset, KmerTable, OverlapConfig) {
        let ds = DatasetSpec::Tiny.generate(seed);
        let k = 13;
        let sel = KmerSelection { k, min_count: 2, max_count: 60 };
        let table = count_kmers_serial(&ds.reads, &sel);
        (ds, table, OverlapConfig::for_tests(k))
    }

    #[test]
    fn one_d_candidates_match_2d_candidates() {
        let (ds, table, cfg) = setup(11);
        let comm2d = CommStats::new();
        let a = build_a_matrix(&ds.reads, &table, cfg.k, ProcessGrid::square(4), 4);
        let c2d = crate::detect::detect_candidates_2d(&a, &comm2d).to_local_csr();
        let comm1d = CommStats::new();
        let a_local = a.to_local_csr();
        let c1d = detect_candidates_1d(&a_local, 4, &comm1d);
        assert_eq!(c2d.pattern(), c1d.pattern(), "1D and 2D must find the same candidate pairs");
        // Shared k-mer counts must agree as well (seed choice may differ).
        for (i, j, v) in c2d.iter() {
            assert_eq!(c1d.get(i, j).unwrap().count, v.count);
        }
    }

    #[test]
    fn one_d_and_2d_pipelines_accept_the_same_overlaps() {
        let (ds, table, cfg) = setup(12);
        let comm2d = CommStats::new();
        let out2d = run_overlap_2d(&ds.reads, &table, &cfg, ProcessGrid::square(4), &comm2d);
        let comm1d = CommStats::new();
        let out1d = run_overlap_1d(&ds.reads, &table, &cfg, 4, &comm1d);
        assert_eq!(
            out2d.overlaps.to_local_csr().pattern(),
            out1d.overlaps.to_local_csr().pattern()
        );
        assert_eq!(out2d.stats.dovetail, out1d.stats.dovetail);
    }

    #[test]
    fn communication_scaling_matches_the_table1_model() {
        // Table I / Section V-B: per process the 1D reduction ships ~a²m/P
        // words (aggregate ~a²m, independent of P) while 2D SUMMA ships
        // ~am/√P per process (aggregate ~am·√P, growing with P).  Check both
        // trends on the simulated data.
        let (ds, table, cfg) = setup(13);
        let mut agg_1d = Vec::new();
        let mut agg_2d = Vec::new();
        for p in [4usize, 16] {
            let comm2d = CommStats::new();
            let a = build_a_matrix(&ds.reads, &table, cfg.k, ProcessGrid::square(p), p);
            let _ = crate::detect::detect_candidates_2d(&a, &comm2d);
            agg_2d.push(comm2d.words(CommPhase::OverlapDetection) as f64);
            let comm1d = CommStats::new();
            let a_local = a.to_local_csr();
            let _ = detect_candidates_1d(&a_local, p, &comm1d);
            agg_1d.push(comm1d.words(CommPhase::OverlapDetection) as f64);
        }
        // Both algorithms exchange data once more than one rank is involved.
        assert!(agg_1d.iter().all(|&w| w > 0.0));
        assert!(agg_2d.iter().all(|&w| w > 0.0));
        // 2D aggregate volume grows with √P: going from P=4 to P=16 should
        // increase it substantially (ideally ~(√16-1)/(√4-1) = 3x).
        let ratio_2d = agg_2d[1] / agg_2d[0];
        assert!(
            ratio_2d > 1.8,
            "2D aggregate volume should grow with √P, got ratio {ratio_2d}"
        );
        // The 1D aggregate volume is bounded by the unreduced partial-product
        // size (~a²m), which does not scale with P the way the 2D broadcasts
        // do; sanity-check the bound Σ_k a_k² on this dataset.
        let (ds, table, cfg) = setup(13);
        let a = build_a_matrix(&ds.reads, &table, cfg.k, ProcessGrid::square(1), 1);
        let a_local = a.to_local_csr();
        let at = a_local.transpose();
        let bound: f64 = (0..at.nrows()).map(|k| (at.row_nnz(k) as f64).powi(2)).sum();
        // 4 words per exchanged partial entry; allow for the diagonal terms
        // that never leave their rank.
        assert!(agg_1d[1] <= bound * 4.0, "1D volume {} exceeds the a²m bound {}", agg_1d[1], bound * 4.0);
    }

    #[test]
    fn latency_1d_exceeds_latency_2d_at_scale() {
        // Table I: Y_1D = P messages per rank vs Y_2D = √P per rank.  At P=16
        // the aggregate message counts must reflect that ordering.
        let (ds, table, cfg) = setup(15);
        let p = 16;
        let comm2d = CommStats::new();
        let a = build_a_matrix(&ds.reads, &table, cfg.k, ProcessGrid::square(p), p);
        let _ = crate::detect::detect_candidates_2d(&a, &comm2d);
        let comm1d = CommStats::new();
        let a_local = a.to_local_csr();
        let _ = detect_candidates_1d(&a_local, p, &comm1d);
        let y2d = comm2d.messages(CommPhase::OverlapDetection);
        let y1d = comm1d.messages(CommPhase::OverlapDetection);
        assert!(y1d > y2d, "1D all-to-all ({y1d} msgs) should exceed 2D broadcasts ({y2d} msgs)");
        assert!(y1d <= (p * (p - 1)) as u64, "1D cannot send more than P(P-1) messages");
    }

    #[test]
    fn read_exchange_1d_counts_only_remote_columns() {
        let (ds, table, cfg) = setup(14);
        let a = build_a_matrix(&ds.reads, &table, cfg.k, ProcessGrid::square(1), 1);
        let a_local = a.to_local_csr();
        let comm = CommStats::new();
        let c = detect_candidates_1d(&a_local, 1, &comm);
        let ex1 = CommStats::new();
        account_read_exchange_1d(&ds.reads, &c, 1, &ex1);
        assert_eq!(ex1.words(CommPhase::ReadExchange), 0, "one rank owns everything");
        let ex4 = CommStats::new();
        account_read_exchange_1d(&ds.reads, &c, 4, &ex4);
        assert!(ex4.words(CommPhase::ReadExchange) > 0);
        assert!(ex4.messages(CommPhase::ReadExchange) <= 4 * 3);
    }
}

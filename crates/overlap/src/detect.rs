//! diBELLA 2D overlap detection: `C = A·Aᵀ`, pairwise alignment, pruning.
//!
//! This module covers lines 4–8 of Algorithm 1: the candidate overlap matrix
//! is produced by Sparse SUMMA with the shared-k-mer semiring, every candidate
//! pair is aligned with the x-drop aligner seeded at a stored shared k-mer,
//! and pairs whose alignment is too weak — or which turn out to be contained
//! or purely internal matches — are pruned.  The surviving entries form the
//! overlap matrix `R`, annotated with the overhang length and bidirected
//! direction that transitive reduction needs.

use crate::amatrix::build_a_matrix;
use crate::semiring::OverlapSemiring;
use crate::types::{CommonKmers, KmerOccurrence, OverlapEdge, SharedSeed};
use dibella_align::{
    align_seed_pair_with, classify_alignment, AlignScratch, AlignmentConfig, ExtendEngine,
    OrientCache, OverlapClass, PairAlignment,
};
use dibella_dist::{words_of, BlockDist, CommPhase, CommStats, ProcessGrid};
use dibella_seq::{KmerTable, ReadSet, Strand};
use dibella_sparse::{summa_aat_sym_with_words, summa_abt_with_words, DistMat2D, Triples};
use rayon::pool;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of the overlap-detection stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapConfig {
    /// k-mer (seed) length; the paper uses 17.
    pub k: usize,
    /// Minimum number of shared reliable k-mers for a pair to be aligned.
    pub min_shared_kmers: u32,
    /// Compute `C = A·Aᵀ` with the symmetric SUMMA (`summa_aat_sym`): only
    /// the grid blocks on or above the diagonal are multiplied and the rest
    /// are mirrored across it — half the useful flops, at the cost of a
    /// `(P − √P)/2`-message cross-diagonal block exchange.  The output is
    /// bit-identical either way; `false` falls back to the general
    /// transpose-free `summa_abt` path.
    pub use_symmetric_summa: bool,
    /// Alignment settings.
    pub alignment: AlignmentConfig,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        Self {
            k: 17,
            min_shared_kmers: 1,
            use_symmetric_summa: true,
            alignment: AlignmentConfig::default(),
        }
    }
}

impl OverlapConfig {
    /// Settings scaled down for the short synthetic reads used in tests.
    pub fn for_tests(k: usize) -> Self {
        Self { k, alignment: AlignmentConfig::for_tests(), ..Self::default() }
    }
}

/// Counters describing one overlap-detection run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OverlapStats {
    /// Candidate pairs (upper triangle of `C`) examined.
    pub candidate_pairs: usize,
    /// Pairs actually aligned (shared-k-mer filter applied).
    pub aligned_pairs: usize,
    /// Pairs that produced a usable dovetail overlap.
    pub dovetail: usize,
    /// Pairs discarded because one read contains the other.
    pub contained: usize,
    /// Reads found to be contained in some other read; all their edges are
    /// dropped from `R` (they can be reintroduced after layout, Section II).
    pub contained_reads: usize,
    /// Pairs discarded as internal (repeat-induced) matches.
    pub internal: usize,
    /// Pairs discarded for a low alignment score or a short overlap.
    pub below_threshold: usize,
    /// `c` — average nonzeros per row of `C` (both triangles, Table III).
    pub c_density: f64,
    /// `r` — average nonzeros per row of `R` (Table III).
    pub r_density: f64,
}

/// The matrices produced by an overlap-detection run.
#[derive(Debug, Clone)]
pub struct OverlapOutput {
    /// The occurrence matrix `A` (reads × k-mers).
    pub a: DistMat2D<KmerOccurrence>,
    /// The candidate overlap matrix `C` (diagonal removed).
    pub candidates: DistMat2D<CommonKmers>,
    /// The overlap matrix `R` after alignment and pruning.
    pub overlaps: DistMat2D<OverlapEdge>,
    /// Counters for this run.
    pub stats: OverlapStats,
}

/// Word cost of shipping one read of `len` bases (2-bit packed plus a header
/// word), used consistently by the read-exchange accounting and by the
/// analytic model it is compared against.
pub fn read_exchange_words(len: usize) -> u64 {
    (len as u64).div_ceil(32) + 1
}

/// Compute the candidate overlap matrix `C = A·Aᵀ` with the symmetric Sparse
/// SUMMA and remove the diagonal (a read trivially shares all its k-mers
/// with itself).
///
/// Equivalent to [`detect_candidates_2d_with`] with the symmetric path on —
/// the [`OverlapConfig::use_symmetric_summa`] default.
pub fn detect_candidates_2d(
    a: &DistMat2D<KmerOccurrence>,
    stats: &CommStats,
) -> DistMat2D<CommonKmers> {
    detect_candidates_2d_with(a, stats, true)
}

/// [`detect_candidates_2d`] with an explicit kernel choice.
///
/// With `use_symmetric_summa` (the default), `summa_aat_sym` multiplies only
/// the grid blocks on or above the diagonal and mirrors the rest, recording
/// the cross-diagonal block exchange as point-to-point traffic; otherwise the
/// general transpose-free `summa_abt` computes both triangles.  Either way no
/// distributed transpose of `A` is ever materialised, and the two kernels
/// produce bit-identical candidate matrices.
pub fn detect_candidates_2d_with(
    a: &DistMat2D<KmerOccurrence>,
    stats: &CommStats,
    use_symmetric_summa: bool,
) -> DistMat2D<CommonKmers> {
    // A k-mer occurrence travels as (column index, position+orientation): 2
    // words; an exchanged C entry as (column index, count + seed list).
    let c = if use_symmetric_summa {
        summa_aat_sym_with_words::<OverlapSemiring>(
            a,
            stats,
            CommPhase::OverlapDetection,
            2,
            words_of::<CommonKmers>() + 1,
        )
    } else {
        summa_abt_with_words::<OverlapSemiring>(a, a, stats, CommPhase::OverlapDetection, 2, 2)
    };
    c.filter(|r, col, _| r != col)
}

/// Account for the sequence exchange of the 2D algorithm (Section V-C).
///
/// Reads start in a 1D block distribution (parallel FASTA I/O); every grid
/// rank then needs the full range of reads of its block row and block column,
/// i.e. about `2n/√P` reads costing `~2nl/√P` words, fetched from at most
/// `√P`-ish source ranks.
pub fn account_read_exchange_2d(reads: &ReadSet, grid: ProcessGrid, stats: &CommStats) {
    let p = grid.nprocs();
    let init = BlockDist::new(reads.len(), p);
    let row_dist = BlockDist::new(reads.len(), grid.rows());
    let col_dist = BlockDist::new(reads.len(), grid.cols());
    for rank in grid.ranks() {
        let (bi, bj) = grid.coords(rank);
        let mut needed: BTreeSet<usize> = row_dist.range(bi).collect();
        needed.extend(col_dist.range(bj));
        let own = init.range(rank);
        let mut words = 0u64;
        let mut sources: BTreeSet<usize> = BTreeSet::new();
        for idx in needed {
            if own.contains(&idx) {
                continue;
            }
            words += read_exchange_words(reads.seq(idx).len());
            sources.insert(init.owner(idx));
        }
        stats.record(CommPhase::ReadExchange, words, sources.len() as u64);
        stats.record_rank_max(CommPhase::ReadExchange, words);
    }
}

/// The classification outcome of one aligned candidate pair.
enum PairOutcome {
    Skipped,
    BelowThreshold,
    Internal,
    /// `contained` is spanned entirely by the other read.
    Contained { contained: usize },
    Dovetail { i: usize, j: usize, edge_ij: OverlapEdge, edge_ji: OverlapEdge },
}

pub use dibella_dist::extras::{ALIGNED_CELLS_KEY, BAND_WIDTH_PEAK_KEY, XDROP_TERMINATIONS_KEY};

/// Execution counters of one batched alignment run.
///
/// All fields except [`rc_orientations`](Self::rc_orientations) are
/// deterministic — independent of worker count and engine choice (both
/// kernels walk the same adaptive band); `rc_orientations` counts
/// per-worker cache misses and therefore varies with work stealing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlignExecStats {
    /// DP cells evaluated (live-band widths summed over every extension row).
    pub aligned_cells: u64,
    /// Widest adaptive band of any single extension row.
    pub band_width_peak: u64,
    /// Extensions stopped early by the x-drop test.
    pub xdrop_terminations: u64,
    /// x-drop extension calls (two per evaluated seed: left + right).
    pub extend_calls: u64,
    /// Extensions dispatched to the lane-packed vector kernel (SSE2 on
    /// x86-64, SWAR elsewhere).
    pub simd_calls: u64,
    /// Extensions dispatched to the scalar oracle.
    pub scalar_calls: u64,
    /// Reverse complements materialised by the per-worker oriented-read
    /// caches (cache misses; thread-count dependent, never fed into comm
    /// accounting).
    pub rc_orientations: u64,
}

/// Shared accumulator the per-worker scratches flush into on drop.
#[derive(Default)]
struct SharedAlignCounters {
    cells: AtomicU64,
    band_peak: AtomicU64,
    terminations: AtomicU64,
    calls: AtomicU64,
    simd: AtomicU64,
    scalar: AtomicU64,
    rc: AtomicU64,
}

impl SharedAlignCounters {
    fn into_stats(self) -> AlignExecStats {
        AlignExecStats {
            aligned_cells: self.cells.into_inner(),
            band_width_peak: self.band_peak.into_inner(),
            xdrop_terminations: self.terminations.into_inner(),
            extend_calls: self.calls.into_inner(),
            simd_calls: self.simd.into_inner(),
            scalar_calls: self.scalar.into_inner(),
            rc_orientations: self.rc.into_inner(),
        }
    }
}

/// One worker's state for the flat (pair, seed) queue: alignment scratch plus
/// the oriented-read cache.  The accumulated counters flush into the shared
/// totals exactly once, when the pool drops the worker state.
struct AlignWorker<'a> {
    scratch: AlignScratch,
    orient: OrientCache,
    shared: &'a SharedAlignCounters,
}

impl<'a> AlignWorker<'a> {
    fn new(shared: &'a SharedAlignCounters) -> Self {
        Self { scratch: AlignScratch::new(), orient: OrientCache::new(), shared }
    }
}

impl Drop for AlignWorker<'_> {
    fn drop(&mut self) {
        let c = &self.scratch.counters;
        self.shared.cells.fetch_add(c.cells, Ordering::Relaxed);
        self.shared.band_peak.fetch_max(c.band_peak, Ordering::Relaxed);
        self.shared.terminations.fetch_add(c.terminations, Ordering::Relaxed);
        self.shared.calls.fetch_add(c.calls, Ordering::Relaxed);
        self.shared.simd.fetch_add(self.scratch.simd_calls, Ordering::Relaxed);
        self.shared.scalar.fetch_add(self.scratch.scalar_calls, Ordering::Relaxed);
        self.shared.rc.fetch_add(self.orient.rc_computed, Ordering::Relaxed);
    }
}

/// One unit of the flat alignment work queue: one stored seed of one
/// candidate pair.  A pair's seeds stay adjacent in the queue, so a worker
/// processing them back-to-back hits its oriented-read cache.
#[derive(Clone, Copy)]
struct SeedJob {
    pair: u32,
    seed: SharedSeed,
}

/// Align every candidate pair, classify the alignments, and assemble the
/// pruned overlap matrix `R`.
///
/// Both `(i, j)` and `(j, i)` entries are produced for every surviving
/// overlap, with mirrored directions and overhangs, so that `R` can be used
/// directly as the (pattern-symmetric) overlap graph of Algorithm 2.  Reads
/// found to be contained in another read are removed from the graph entirely
/// (all their edges are dropped), matching the paper's treatment: "Contained
/// overlaps ... are discarded during transitive reduction regardless of their
/// alignment scores.  They may be reintroduced at later stages."
pub fn align_candidates(
    reads: &ReadSet,
    candidates: &DistMat2D<CommonKmers>,
    config: &OverlapConfig,
) -> (DistMat2D<OverlapEdge>, OverlapStats) {
    align_candidates_with(reads, candidates, config, None)
}

/// [`align_candidates`] that also folds the alignment-stage counters into
/// `comm` extras (`aligned_cells`, `band_width_peak`, `xdrop_terminations`) —
/// the form the pipelines call.  Only thread-count-deterministic counters are
/// recorded, so comm snapshots stay bit-identical at any worker count.
pub fn align_candidates_with(
    reads: &ReadSet,
    candidates: &DistMat2D<CommonKmers>,
    config: &OverlapConfig,
    comm: Option<&CommStats>,
) -> (DistMat2D<OverlapEdge>, OverlapStats) {
    let (overlaps, stats, exec) =
        align_candidates_exec(reads, candidates, config, ExtendEngine::Auto);
    if let Some(comm) = comm {
        comm.bump_extra(ALIGNED_CELLS_KEY, exec.aligned_cells);
        comm.max_extra(BAND_WIDTH_PEAK_KEY, exec.band_width_peak);
        comm.bump_extra(XDROP_TERMINATIONS_KEY, exec.xdrop_terminations);
    }
    (overlaps, stats)
}

/// The full-control form of [`align_candidates`]: explicit engine choice and
/// the execution counters returned to the caller (benches and tests).
///
/// The (pair, seed) work items are flattened into one queue on the
/// work-stealing pool; each worker reuses one [`AlignScratch`] +
/// [`OrientCache`] across every item it steals, and the per-pair best seed is
/// reduced deterministically afterwards (first-best in stored seed order, as
/// the sequential path always did).  Output is bit-identical for every
/// engine and worker count.
pub fn align_candidates_exec(
    reads: &ReadSet,
    candidates: &DistMat2D<CommonKmers>,
    config: &OverlapConfig,
    engine: ExtendEngine,
) -> (DistMat2D<OverlapEdge>, OverlapStats, AlignExecStats) {
    let mut stats = OverlapStats::default();
    let n = reads.len();

    // Work on the upper triangle only; every pair is aligned once.
    let pairs: Vec<(usize, usize, CommonKmers)> = candidates
        .to_triples()
        .into_entries()
        .into_iter()
        .filter(|(i, j, _)| i < j)
        .collect();
    stats.candidate_pairs = pairs.len();
    stats.c_density = if n > 0 { candidates.nnz() as f64 / n as f64 } else { 0.0 };

    // Flatten every stored seed of every pair that passes the shared-k-mer
    // filter into the flat work queue.
    let jobs: Vec<SeedJob> = pairs
        .iter()
        .enumerate()
        .filter(|(_, (_, _, common))| common.count >= config.min_shared_kmers)
        .flat_map(|(idx, (_, _, common))| {
            common.seeds.iter().map(move |&seed| SeedJob { pair: idx as u32, seed })
        })
        .collect();

    let shared = SharedAlignCounters::default();
    let results: Vec<Option<PairAlignment>> = pool::map_indexed_with(
        jobs.len(),
        || AlignWorker::new(&shared),
        |worker, idx| {
            let job = jobs[idx];
            let (i, j, _) = pairs[job.pair as usize];
            let v = reads.seq(i);
            let h = reads.seq(j);
            let seed = job.seed;
            let (strand, seed_h) = if seed.same_strand {
                (Strand::Forward, seed.pos_h as usize)
            } else {
                (Strand::Reverse, h.len() - config.k - seed.pos_h as usize)
            };
            if seed.pos_v as usize + config.k > v.len() || seed_h + config.k > h.len() {
                return None;
            }
            // Orient h once per (pair, strand): forward pairs borrow the
            // stored codes, reverse pairs hit the per-worker cache.
            let h_codes: &[u8] = if seed.same_strand {
                h.codes()
            } else {
                worker.orient.reverse_complement(j, h.codes())
            };
            Some(align_seed_pair_with(
                v.codes(),
                h_codes,
                seed.pos_v as usize,
                seed_h,
                config.k,
                strand,
                &config.alignment,
                engine,
                &mut worker.scratch,
            ))
        },
    );
    let exec = shared.into_stats();

    // Deterministic per-pair reduction: first-best in stored seed order
    // (strictly-greater keeps the earliest seed on ties, exactly like the
    // old sequential per-pair loop).
    let mut best: Vec<Option<PairAlignment>> = vec![None; pairs.len()];
    for (job, res) in jobs.iter().zip(results) {
        if let Some(aln) = res {
            let slot = &mut best[job.pair as usize];
            if slot.is_none_or(|b| aln.score > b.score) {
                *slot = Some(aln);
            }
        }
    }

    let outcomes: Vec<PairOutcome> = pairs
        .iter()
        .enumerate()
        .map(|(idx, &(i, j, ref common))| {
            if common.count < config.min_shared_kmers {
                return PairOutcome::Skipped;
            }
            let v = reads.seq(i);
            let h = reads.seq(j);
            let Some(aln) = best[idx] else { return PairOutcome::Skipped };

            let aligned_len = aln.aligned_len();
            if aligned_len < config.alignment.min_overlap
                || aln.score < config.alignment.score_threshold(aligned_len)
            {
                return PairOutcome::BelowThreshold;
            }
            match classify_alignment(&aln, v.len(), h.len(), &config.alignment) {
                OverlapClass::Dovetail { dir_vh, dir_hv, suffix_vh, suffix_hv } => {
                    PairOutcome::Dovetail {
                        i,
                        j,
                        edge_ij: OverlapEdge {
                            dir: dir_vh.bits(),
                            suffix: suffix_vh as u32,
                            score: aln.score,
                            overlap_len: aligned_len as u32,
                        },
                        edge_ji: OverlapEdge {
                            dir: dir_hv.bits(),
                            suffix: suffix_hv as u32,
                            score: aln.score,
                            overlap_len: aligned_len as u32,
                        },
                    }
                }
                OverlapClass::Contains => PairOutcome::Contained { contained: j },
                OverlapClass::ContainedBy => PairOutcome::Contained { contained: i },
                OverlapClass::Internal => PairOutcome::Internal,
            }
        })
        .collect();

    // First sweep: gather counters and the set of contained reads.
    let mut contained_reads = vec![false; n];
    for outcome in &outcomes {
        match outcome {
            PairOutcome::Skipped => {}
            PairOutcome::BelowThreshold => {
                stats.aligned_pairs += 1;
                stats.below_threshold += 1;
            }
            PairOutcome::Internal => {
                stats.aligned_pairs += 1;
                stats.internal += 1;
            }
            PairOutcome::Contained { contained } => {
                stats.aligned_pairs += 1;
                stats.contained += 1;
                contained_reads[*contained] = true;
            }
            PairOutcome::Dovetail { .. } => {
                stats.aligned_pairs += 1;
                stats.dovetail += 1;
            }
        }
    }
    stats.contained_reads = contained_reads.iter().filter(|&&b| b).count();

    // Second sweep: emit edges whose endpoints both survive.
    let mut edges: Vec<(usize, usize, OverlapEdge)> = Vec::new();
    for outcome in outcomes {
        if let PairOutcome::Dovetail { i, j, edge_ij, edge_ji } = outcome {
            if contained_reads[i] || contained_reads[j] {
                continue;
            }
            edges.push((i, j, edge_ij));
            edges.push((j, i, edge_ji));
        }
    }

    let triples = Triples::from_entries(n, n, edges);
    let overlaps = DistMat2D::from_triples(candidates.grid(), &triples);
    stats.r_density = if n > 0 { overlaps.nnz() as f64 / n as f64 } else { 0.0 };
    (overlaps, stats, exec)
}

/// Run the full 2D overlap-detection stage: build `A`, account for the read
/// exchange, compute `C = A·Aᵀ`, align and prune.
pub fn run_overlap_2d(
    reads: &ReadSet,
    table: &KmerTable,
    config: &OverlapConfig,
    grid: ProcessGrid,
    comm: &CommStats,
) -> OverlapOutput {
    let a = build_a_matrix(reads, table, config.k, grid, grid.nprocs());
    account_read_exchange_2d(reads, grid, comm);
    let candidates = detect_candidates_2d_with(&a, comm, config.use_symmetric_summa);
    let (overlaps, stats) = align_candidates_with(reads, &candidates, config, Some(comm));
    OverlapOutput { a, candidates, overlaps, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_align::BidirectedDir;
    use dibella_seq::{count_kmers_serial, DatasetSpec, KmerSelection, SimulatedDataset};

    fn setup(seed: u64) -> (SimulatedDataset, KmerTable, OverlapConfig) {
        let ds = DatasetSpec::Tiny.generate(seed);
        let k = 13;
        let sel = KmerSelection { k, min_count: 2, max_count: 60 };
        let table = count_kmers_serial(&ds.reads, &sel);
        (ds, table, OverlapConfig::for_tests(k))
    }

    #[test]
    fn candidate_matrix_is_reads_by_reads_without_diagonal() {
        let (ds, table, cfg) = setup(1);
        let grid = ProcessGrid::square(4);
        let comm = CommStats::new();
        let a = build_a_matrix(&ds.reads, &table, cfg.k, grid, 4);
        let c = detect_candidates_2d(&a, &comm);
        assert_eq!(c.nrows(), ds.reads.len());
        assert_eq!(c.ncols(), ds.reads.len());
        assert!(c.nnz() > 0, "a 12x-depth dataset must have candidate overlaps");
        for (i, j, _) in c.to_triples().iter() {
            assert_ne!(i, j, "diagonal must be removed");
        }
        assert!(comm.words(CommPhase::OverlapDetection) > 0);
    }

    #[test]
    fn candidate_matrix_pattern_is_symmetric() {
        let (ds, table, cfg) = setup(2);
        let grid = ProcessGrid::square(1);
        let comm = CommStats::new();
        let a = build_a_matrix(&ds.reads, &table, cfg.k, grid, 2);
        let c = detect_candidates_2d(&a, &comm);
        let local = c.to_local_csr();
        for (i, j, _) in local.iter() {
            assert!(local.get(j, i).is_some(), "C({j},{i}) missing for C({i},{j})");
        }
    }

    #[test]
    fn overlap_matrix_entries_mirror_each_other() {
        let (ds, table, cfg) = setup(3);
        let grid = ProcessGrid::square(4);
        let comm = CommStats::new();
        let out = run_overlap_2d(&ds.reads, &table, &cfg, grid, &comm);
        assert!(out.overlaps.nnz() > 0, "expected some accepted overlaps");
        let local = out.overlaps.to_local_csr();
        for (i, j, edge) in local.iter() {
            let mirror = local.get(j, i).expect("mirrored entry must exist");
            assert_eq!(
                BidirectedDir(edge.dir).reversed(),
                BidirectedDir(mirror.dir),
                "directions of ({i},{j}) and ({j},{i}) must be reversals"
            );
            assert_eq!(edge.score, mirror.score);
            assert_eq!(edge.overlap_len, mirror.overlap_len);
        }
    }

    #[test]
    fn accepted_overlaps_correspond_to_true_genome_overlaps() {
        let (ds, table, cfg) = setup(4);
        let grid = ProcessGrid::square(1);
        let comm = CommStats::new();
        let out = run_overlap_2d(&ds.reads, &table, &cfg, grid, &comm);
        let local = out.overlaps.to_local_csr();
        let mut true_pos = 0usize;
        let mut false_pos = 0usize;
        for (i, j, _) in local.iter() {
            if i < j {
                if ds.true_overlap(i, j) >= cfg.alignment.min_overlap / 2 {
                    true_pos += 1;
                } else {
                    false_pos += 1;
                }
            }
        }
        assert!(true_pos > 0, "should recover genuine overlaps");
        assert!(
            false_pos <= true_pos / 5 + 2,
            "too many spurious overlaps: {false_pos} false vs {true_pos} true"
        );
    }

    #[test]
    fn grid_size_does_not_change_the_overlap_set() {
        let (ds, table, cfg) = setup(5);
        let comm1 = CommStats::new();
        let out1 = run_overlap_2d(&ds.reads, &table, &cfg, ProcessGrid::square(1), &comm1);
        let comm4 = CommStats::new();
        let out4 = run_overlap_2d(&ds.reads, &table, &cfg, ProcessGrid::square(4), &comm4);
        let comm9 = CommStats::new();
        let out9 = run_overlap_2d(&ds.reads, &table, &cfg, ProcessGrid::square(9), &comm9);
        assert_eq!(out1.overlaps.to_local_csr(), out4.overlaps.to_local_csr());
        assert_eq!(out1.overlaps.to_local_csr(), out9.overlaps.to_local_csr());
        assert_eq!(out1.stats, out4.stats);
        // Larger grids communicate, a single rank does not.
        assert_eq!(comm1.words(CommPhase::OverlapDetection), 0);
        assert!(comm4.words(CommPhase::OverlapDetection) > 0);
        assert_eq!(comm1.words(CommPhase::ReadExchange), 0);
        assert!(comm4.words(CommPhase::ReadExchange) > 0);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (ds, table, cfg) = setup(6);
        let comm = CommStats::new();
        let out = run_overlap_2d(&ds.reads, &table, &cfg, ProcessGrid::square(4), &comm);
        let s = out.stats;
        assert_eq!(
            s.aligned_pairs,
            s.dovetail + s.contained + s.internal + s.below_threshold,
            "every aligned pair must be classified exactly once"
        );
        assert!(s.candidate_pairs >= s.aligned_pairs);
        assert!((s.r_density - out.overlaps.nnz() as f64 / ds.reads.len() as f64).abs() < 1e-9);
        // Every surviving overlap contributes two directed entries; dovetails
        // touching contained reads are dropped, so this is an upper bound.
        assert!(out.overlaps.nnz() <= 2 * s.dovetail);
        assert_eq!(out.overlaps.nnz() % 2, 0);
        // No edge may touch a contained read.
        if s.contained_reads > 0 {
            assert!(out.overlaps.nnz() < 2 * s.dovetail || s.dovetail == 0);
        }
    }

    #[test]
    fn symmetric_and_general_summa_are_bit_identical_on_real_occurrences() {
        let (ds, table, cfg) = setup(8);
        for p in [1usize, 4, 9, 16] {
            let grid = ProcessGrid::square(p);
            let a = build_a_matrix(&ds.reads, &table, cfg.k, grid, p);
            let comm_sym = CommStats::new();
            let sym = detect_candidates_2d_with(&a, &comm_sym, true);
            let comm_gen = CommStats::new();
            let general = detect_candidates_2d_with(&a, &comm_gen, false);
            assert_eq!(sym, general, "P={p}: candidate matrices must be bit-identical");
            // The symmetric path does about half the multiply work.
            let key = dibella_sparse::summa::flops_key(CommPhase::OverlapDetection);
            let (sf, gf) = (comm_sym.extra(&key), comm_gen.extra(&key));
            assert!(sf > 0 && sf < gf, "P={p}: sym flops {sf} vs general {gf}");
            assert!(2 * sf >= gf, "P={p}: upper triangle covers every product");
        }
    }

    #[test]
    fn symmetric_summa_records_the_cross_diagonal_exchange() {
        let (ds, table, cfg) = setup(9);
        let grid = ProcessGrid::square(9);
        let a = build_a_matrix(&ds.reads, &table, cfg.k, grid, 9);
        let comm = CommStats::new();
        let _ = detect_candidates_2d_with(&a, &comm, true);
        let msgs = comm
            .extra(&dibella_dist::collectives::p2p_messages_key(CommPhase::OverlapDetection));
        assert!(msgs > 0, "cross-diagonal exchange must be accounted");
        assert!(msgs <= (9 - 3) / 2, "at most (P − √P)/2 block sends");
        // The general path records no point-to-point traffic at all.
        let comm_gen = CommStats::new();
        let _ = detect_candidates_2d_with(&a, &comm_gen, false);
        assert_eq!(
            comm_gen
                .extra(&dibella_dist::collectives::p2p_messages_key(CommPhase::OverlapDetection)),
            0
        );
    }

    #[test]
    fn overlap_pipeline_output_is_independent_of_the_summa_kernel() {
        let (ds, table, cfg) = setup(10);
        let general_cfg = OverlapConfig { use_symmetric_summa: false, ..cfg };
        let comm_sym = CommStats::new();
        let sym = run_overlap_2d(&ds.reads, &table, &cfg, ProcessGrid::square(4), &comm_sym);
        let comm_gen = CommStats::new();
        let gen =
            run_overlap_2d(&ds.reads, &table, &general_cfg, ProcessGrid::square(4), &comm_gen);
        assert_eq!(sym.overlaps.to_local_csr(), gen.overlaps.to_local_csr());
        assert_eq!(sym.stats, gen.stats);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        #[test]
        fn prop_symmetric_summa_matches_general_over_the_overlap_semiring(
            coords in proptest::collection::btree_set((0usize..24, 0usize..20), 1..120),
            grid_side in 1usize..5,
        ) {
            use dibella_sparse::Triples;
            // Random occurrence matrix: position and strand vary per entry.
            let entries: Vec<(usize, usize, KmerOccurrence)> = coords
                .into_iter()
                .enumerate()
                .map(|(i, (r, c))| {
                    (r, c, KmerOccurrence { pos: (i * 13 % 251) as u32, forward: i % 3 != 0 })
                })
                .collect();
            let t = Triples::from_entries(24, 20, entries);
            let grid = ProcessGrid::square(grid_side * grid_side);
            let a = DistMat2D::from_triples(grid, &t);
            let sym = detect_candidates_2d_with(&a, &CommStats::new(), true);
            let general = detect_candidates_2d_with(&a, &CommStats::new(), false);
            proptest::prop_assert_eq!(sym, general);
        }
    }

    #[test]
    fn alignment_is_bit_identical_across_thread_counts_and_engines() {
        let (ds, table, cfg) = setup(11);
        let grid = ProcessGrid::square(4);
        let a = build_a_matrix(&ds.reads, &table, cfg.k, grid, 4);
        let candidates = detect_candidates_2d(&a, &CommStats::new());

        let reference = rayon::pool::with_thread_limit(1, || {
            align_candidates_exec(&ds.reads, &candidates, &cfg, ExtendEngine::Scalar)
        });
        assert!(reference.2.aligned_cells > 0);
        assert!(reference.2.extend_calls > 0);
        for threads in [1usize, 2, 4] {
            for engine in [ExtendEngine::Auto, ExtendEngine::Scalar] {
                let (overlaps, stats, exec) = rayon::pool::with_thread_limit(threads, || {
                    align_candidates_exec(&ds.reads, &candidates, &cfg, engine)
                });
                assert_eq!(
                    overlaps.to_local_csr(),
                    reference.0.to_local_csr(),
                    "threads={threads} engine={engine:?}: overlap matrix must be bit-identical"
                );
                assert_eq!(stats, reference.1, "threads={threads} engine={engine:?}");
                // Cell/band/termination accounting is engine- and
                // thread-count-deterministic (rc_orientations is not).
                assert_eq!(exec.aligned_cells, reference.2.aligned_cells);
                assert_eq!(exec.band_width_peak, reference.2.band_width_peak);
                assert_eq!(exec.xdrop_terminations, reference.2.xdrop_terminations);
                assert_eq!(exec.extend_calls, reference.2.extend_calls);
                match engine {
                    ExtendEngine::Auto => {
                        assert_eq!(exec.simd_calls, reference.2.extend_calls);
                        assert_eq!(exec.scalar_calls, 0);
                    }
                    ExtendEngine::Scalar => {
                        assert_eq!(exec.simd_calls, 0);
                        assert_eq!(exec.scalar_calls, reference.2.extend_calls);
                    }
                }
            }
        }
    }

    #[test]
    fn reverse_orientation_cost_is_per_pair_not_per_seed() {
        // One reverse-strand pair carrying MAX_SEEDS seeds: the oriented-read
        // cache must materialise exactly one reverse complement however many
        // seeds the pair stores (the pre-batching path recomputed it per seed).
        use crate::types::SeedList;
        use dibella_seq::DnaSeq;
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8 % 4
        };
        let genome: Vec<u8> = (0..400).map(|_| next()).collect();
        let v = DnaSeq::from_codes(genome[..300].to_vec());
        let h = DnaSeq::from_codes(genome[100..400].to_vec()).reverse_complement();
        let reads = ReadSet::from_records(vec![
            dibella_seq::ReadRecord { name: "v".into(), seq: v.clone() },
            dibella_seq::ReadRecord { name: "h".into(), seq: h.clone() },
        ]);
        let k = 13;
        let cfg = OverlapConfig::for_tests(k);

        // Two distinct seeds of the same reverse-strand pair.  pos_h is on
        // h's stored strand: h_oriented[seed_h..] with
        // seed_h = h.len() - k - pos_h must equal v[pos_v..pos_v+k], and
        // h_oriented = rc(h) = genome[100..400].
        let seed_at = |pos_v: u32| SharedSeed {
            pos_v,
            pos_h: (h.len() - k) as u32 - (pos_v - 100),
            same_strand: false,
        };
        let mut seeds = SeedList::default();
        seeds.push(seed_at(150));
        seeds.push(seed_at(220));
        assert_eq!(seeds.len(), crate::types::MAX_SEEDS);
        let common = CommonKmers { count: 2, seeds };
        let t = Triples::from_entries(2, 2, vec![(0usize, 1usize, common)]);
        let candidates = DistMat2D::from_triples(ProcessGrid::square(1), &t);

        let (_, stats, exec) = rayon::pool::with_thread_limit(1, || {
            align_candidates_exec(&reads, &candidates, &cfg, ExtendEngine::Auto)
        });
        assert_eq!(stats.aligned_pairs, 1);
        assert_eq!(exec.extend_calls, 4, "two seeds, each with left+right extension");
        assert_eq!(
            exec.rc_orientations, 1,
            "one reverse pair: exactly one reverse complement regardless of seed count"
        );
    }

    #[test]
    fn comm_extras_carry_alignment_counters() {
        let (ds, table, cfg) = setup(12);
        let comm = CommStats::new();
        let out = run_overlap_2d(&ds.reads, &table, &cfg, ProcessGrid::square(4), &comm);
        assert!(out.stats.aligned_pairs > 0);
        assert!(comm.extra(ALIGNED_CELLS_KEY) > 0);
        assert!(comm.extra(BAND_WIDTH_PEAK_KEY) > 0);
        // The counters agree with a direct exec run on the same candidates.
        let (_, _, exec) = align_candidates_exec(&ds.reads, &out.candidates, &cfg, ExtendEngine::Auto);
        assert_eq!(comm.extra(ALIGNED_CELLS_KEY), exec.aligned_cells);
        assert_eq!(comm.extra(BAND_WIDTH_PEAK_KEY), exec.band_width_peak);
        assert_eq!(comm.extra(XDROP_TERMINATIONS_KEY), exec.xdrop_terminations);
    }

    #[test]
    fn read_exchange_words_grow_with_grid_and_stay_zero_on_one_rank() {
        let (ds, _, _) = setup(7);
        let one = CommStats::new();
        account_read_exchange_2d(&ds.reads, ProcessGrid::square(1), &one);
        assert_eq!(one.words(CommPhase::ReadExchange), 0);
        let four = CommStats::new();
        account_read_exchange_2d(&ds.reads, ProcessGrid::square(4), &four);
        let nine = CommStats::new();
        account_read_exchange_2d(&ds.reads, ProcessGrid::square(9), &nine);
        assert!(four.words(CommPhase::ReadExchange) > 0);
        // Aggregate exchanged volume grows with the grid (per-rank volume shrinks).
        assert!(nine.words(CommPhase::ReadExchange) > four.words(CommPhase::ReadExchange));
        assert!(
            nine.snapshot().phase(CommPhase::ReadExchange).max_words_per_rank
                < four.snapshot().phase(CommPhase::ReadExchange).max_words_per_rank
        );
    }
}

//! Matrix entry types of the overlap stage.

use dibella_align::BidirectedDir;
use serde::{Deserialize, Serialize};

/// How many shared k-mer seeds are kept per read pair (a user parameter in the
/// paper; "for this work we store two k-mer positions for each read pair").
pub const MAX_SEEDS: usize = 2;

/// One entry of the `|reads| x |k-mers|` matrix `A`: where (and in which
/// orientation) a reliable k-mer occurs in a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KmerOccurrence {
    /// Start position of the k-mer in the read.
    pub pos: u32,
    /// `true` if the k-mer occurs in its canonical orientation at that
    /// position, `false` if its reverse complement does.
    pub forward: bool,
}

/// A shared k-mer between two reads — the alignment seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedSeed {
    /// Position of the k-mer in the row read (`v`).
    pub pos_v: u32,
    /// Position of the k-mer in the column read (`h`), on its stored strand.
    pub pos_h: u32,
    /// `true` if the k-mer has the same orientation in both reads, i.e. the
    /// overlap is a same-strand overlap.
    pub same_strand: bool,
}

/// An inline, allocation-free list of up to [`MAX_SEEDS`] shared seeds.
///
/// The overlap SpGEMM creates one [`CommonKmers`] per accumulated product —
/// hundreds of thousands per multiply — so the seed storage must not touch
/// the heap; a `Vec` here dominated the whole `C = A·Aᵀ` wall-clock before
/// this type replaced it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedList {
    seeds: [SharedSeed; MAX_SEEDS],
    len: u8,
}

impl SeedList {
    /// A list holding one seed.
    pub fn from_one(seed: SharedSeed) -> Self {
        let mut list = Self::default();
        list.push(seed);
        list
    }

    /// Number of stored seeds.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no seeds are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a seed; seeds beyond [`MAX_SEEDS`] are silently dropped (the
    /// paper keeps a fixed number of seed positions per pair).
    pub fn push(&mut self, seed: SharedSeed) {
        if (self.len as usize) < MAX_SEEDS {
            self.seeds[self.len as usize] = seed;
            self.len += 1;
        }
    }

    /// The stored seeds as a slice.
    pub fn as_slice(&self) -> &[SharedSeed] {
        &self.seeds[..self.len as usize]
    }

    /// Iterate over the stored seeds.
    pub fn iter(&self) -> impl Iterator<Item = &SharedSeed> {
        self.as_slice().iter()
    }
}

impl std::ops::Index<usize> for SeedList {
    type Output = SharedSeed;
    fn index(&self, i: usize) -> &SharedSeed {
        &self.as_slice()[i]
    }
}

impl IntoIterator for SeedList {
    type Item = SharedSeed;
    type IntoIter = std::iter::Take<std::array::IntoIter<SharedSeed, MAX_SEEDS>>;
    fn into_iter(self) -> Self::IntoIter {
        self.seeds.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a SeedList {
    type Item = &'a SharedSeed;
    type IntoIter = std::slice::Iter<'a, SharedSeed>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// One entry of the candidate overlap matrix `C = A·Aᵀ`: the number of shared
/// k-mers between two reads and (up to [`MAX_SEEDS`]) seed positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommonKmers {
    /// Number of shared reliable k-mers.
    pub count: u32,
    /// Stored seed positions (at most [`MAX_SEEDS`]).
    pub seeds: SeedList,
}

impl CommonKmers {
    /// A candidate with a single seed.
    pub fn from_seed(seed: SharedSeed) -> Self {
        Self { count: 1, seeds: SeedList::from_one(seed) }
    }
}

/// One entry of the overlap matrix `R` (and of the string matrix `S`): a
/// bidirected edge annotated with the information transitive reduction needs
/// (Section IV-E — "the length of the overlap suffix and the overlap
/// orientation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlapEdge {
    /// Two-bit direction of the edge when walking row-read → column-read.
    pub dir: u8,
    /// Overhang (suffix) length in bases when walking row-read → column-read.
    pub suffix: u32,
    /// Alignment score of the underlying overlap.
    pub score: i32,
    /// Aligned length (overlap length) in bases.
    pub overlap_len: u32,
}

impl OverlapEdge {
    /// The direction as a typed [`BidirectedDir`].
    pub fn direction(&self) -> BidirectedDir {
        BidirectedDir(self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_kmers_from_seed() {
        let seed = SharedSeed { pos_v: 10, pos_h: 20, same_strand: true };
        let ck = CommonKmers::from_seed(seed);
        assert_eq!(ck.count, 1);
        assert_eq!(ck.seeds.as_slice(), &[seed]);
    }

    #[test]
    fn seed_list_caps_at_max_seeds_without_allocating() {
        let mut list = SeedList::default();
        assert!(list.is_empty());
        for i in 0..5u32 {
            list.push(SharedSeed { pos_v: i, pos_h: i + 100, same_strand: i % 2 == 0 });
        }
        assert_eq!(list.len(), MAX_SEEDS, "extra seeds are dropped");
        assert_eq!(list[0].pos_v, 0);
        assert_eq!(list[1].pos_v, 1);
        let by_ref: Vec<u32> = (&list).into_iter().map(|s| s.pos_h).collect();
        assert_eq!(by_ref, vec![100, 101]);
        let by_val: Vec<u32> = list.into_iter().map(|s| s.pos_v).collect();
        assert_eq!(by_val, vec![0, 1]);
    }

    #[test]
    fn overlap_edge_direction_roundtrip() {
        for bits in 0u8..4 {
            let e = OverlapEdge { dir: bits, suffix: 100, score: 50, overlap_len: 400 };
            assert_eq!(e.direction().bits(), bits);
        }
    }
}

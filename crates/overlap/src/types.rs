//! Matrix entry types of the overlap stage.

use dibella_align::BidirectedDir;
use serde::{Deserialize, Serialize};

/// How many shared k-mer seeds are kept per read pair (a user parameter in the
/// paper; "for this work we store two k-mer positions for each read pair").
pub const MAX_SEEDS: usize = 2;

/// One entry of the `|reads| x |k-mers|` matrix `A`: where (and in which
/// orientation) a reliable k-mer occurs in a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KmerOccurrence {
    /// Start position of the k-mer in the read.
    pub pos: u32,
    /// `true` if the k-mer occurs in its canonical orientation at that
    /// position, `false` if its reverse complement does.
    pub forward: bool,
}

/// A shared k-mer between two reads — the alignment seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedSeed {
    /// Position of the k-mer in the row read (`v`).
    pub pos_v: u32,
    /// Position of the k-mer in the column read (`h`), on its stored strand.
    pub pos_h: u32,
    /// `true` if the k-mer has the same orientation in both reads, i.e. the
    /// overlap is a same-strand overlap.
    pub same_strand: bool,
}

/// One entry of the candidate overlap matrix `C = A·Aᵀ`: the number of shared
/// k-mers between two reads and (up to [`MAX_SEEDS`]) seed positions.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommonKmers {
    /// Number of shared reliable k-mers.
    pub count: u32,
    /// Stored seed positions (at most [`MAX_SEEDS`]).
    pub seeds: Vec<SharedSeed>,
}

impl CommonKmers {
    /// A candidate with a single seed.
    pub fn from_seed(seed: SharedSeed) -> Self {
        Self { count: 1, seeds: vec![seed] }
    }
}

/// One entry of the overlap matrix `R` (and of the string matrix `S`): a
/// bidirected edge annotated with the information transitive reduction needs
/// (Section IV-E — "the length of the overlap suffix and the overlap
/// orientation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlapEdge {
    /// Two-bit direction of the edge when walking row-read → column-read.
    pub dir: u8,
    /// Overhang (suffix) length in bases when walking row-read → column-read.
    pub suffix: u32,
    /// Alignment score of the underlying overlap.
    pub score: i32,
    /// Aligned length (overlap length) in bases.
    pub overlap_len: u32,
}

impl OverlapEdge {
    /// The direction as a typed [`BidirectedDir`].
    pub fn direction(&self) -> BidirectedDir {
        BidirectedDir(self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_kmers_from_seed() {
        let seed = SharedSeed { pos_v: 10, pos_h: 20, same_strand: true };
        let ck = CommonKmers::from_seed(seed);
        assert_eq!(ck.count, 1);
        assert_eq!(ck.seeds, vec![seed]);
    }

    #[test]
    fn overlap_edge_direction_roundtrip() {
        for bits in 0u8..4 {
            let e = OverlapEdge { dir: bits, suffix: 100, score: 50, overlap_len: 400 };
            assert_eq!(e.direction().bits(), bits);
        }
    }
}

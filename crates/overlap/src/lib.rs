//! # dibella-overlap — overlap detection as distributed SpGEMM
//!
//! The first half of the diBELLA 2D pipeline (Algorithm 1, lines 4–8):
//!
//! 1. build the `|reads| x |k-mers|` occurrence matrix `A` from the reliable
//!    k-mer table ([`amatrix`]);
//! 2. compute the candidate overlap matrix `C = A·Aᵀ` with the shared-k-mer
//!    semiring ([`semiring`]) via distributed Sparse SUMMA ([`detect`]);
//! 3. run seed-and-extend alignment on every candidate pair, classify the
//!    result, and prune low-scoring / contained / internal matches to obtain
//!    the overlap matrix `R` annotated with bidirected directions and
//!    overhang lengths ([`detect::align_candidates`]);
//! 4. account for the sequence exchange that precedes alignment
//!    ([`detect::account_read_exchange_2d`]).
//!
//! Two baselines from the paper's evaluation live here as well:
//!
//! * [`one_d`] — diBELLA 1D's overlap detection, expressed (as the paper
//!   observes) as a 1D outer-product SpGEMM with a post-multiplication
//!   reduction and per-nonzero read exchange;
//! * [`minimizer`] — a minimap2-style minimizer overlapper that estimates
//!   overlaps from shared minimizers without base-level alignment.

#![warn(missing_docs)]

pub mod amatrix;
pub mod detect;
pub mod minimizer;
pub mod one_d;
pub mod semiring;
pub mod types;

pub use amatrix::build_a_matrix;
pub use detect::{
    account_read_exchange_2d, align_candidates, align_candidates_exec, align_candidates_with,
    detect_candidates_2d, detect_candidates_2d_with, run_overlap_2d, AlignExecStats,
    OverlapConfig, OverlapOutput, OverlapStats, ALIGNED_CELLS_KEY, BAND_WIDTH_PEAK_KEY,
    XDROP_TERMINATIONS_KEY,
};
pub use minimizer::{minimizer_overlaps, MinimizerConfig, MinimizerOverlap};
pub use one_d::{account_read_exchange_1d, detect_candidates_1d, run_overlap_1d};
pub use semiring::OverlapSemiring;
pub use types::{CommonKmers, KmerOccurrence, OverlapEdge, SharedSeed, MAX_SEEDS};

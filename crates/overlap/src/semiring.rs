//! The shared-k-mer-positions semiring used for `C = A·Aᵀ`.
//!
//! Section IV-D: "We overload the multiplication with an assignment by taking
//! the positions of the respective k-mer in two sequences [...].  We overload
//! the addition operator by incrementing the counter of common k-mers [...]
//! and storing the positions of another common k-mer [...] as long as it is
//! smaller than the number of positions to be stored."

use crate::types::{CommonKmers, KmerOccurrence, SharedSeed, MAX_SEEDS};
use dibella_sparse::semiring::MirrorSemiring;
use dibella_sparse::Semiring;

/// Semiring computing [`CommonKmers`] from pairs of [`KmerOccurrence`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlapSemiring;

impl Semiring for OverlapSemiring {
    type Left = KmerOccurrence;
    type Right = KmerOccurrence;
    type Out = CommonKmers;

    fn multiply(a: &KmerOccurrence, b: &KmerOccurrence) -> Option<CommonKmers> {
        Some(CommonKmers::from_seed(SharedSeed {
            pos_v: a.pos,
            pos_h: b.pos,
            same_strand: a.forward == b.forward,
        }))
    }

    fn add(acc: &mut CommonKmers, x: CommonKmers) {
        acc.count += x.count;
        for seed in x.seeds {
            if acc.seeds.len() >= MAX_SEEDS {
                break;
            }
            acc.seeds.push(seed);
        }
    }
}

/// `C = A·Aᵀ` is mirror-symmetric for the overlap semiring: `C[j][i]` holds
/// the same shared-k-mer count as `C[i][j]`, with every seed's row/column
/// positions swapped (the same k-mers contribute, in the same order).  The
/// symmetric SpGEMM kernels exploit this to compute only the upper triangle.
impl MirrorSemiring for OverlapSemiring {
    fn mirror(out: &CommonKmers) -> CommonKmers {
        let mut mirrored = CommonKmers { count: out.count, seeds: Default::default() };
        for seed in &out.seeds {
            mirrored.seeds.push(SharedSeed {
                pos_v: seed.pos_h,
                pos_h: seed.pos_v,
                same_strand: seed.same_strand,
            });
        }
        mirrored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(pos: u32, forward: bool) -> KmerOccurrence {
        KmerOccurrence { pos, forward }
    }

    #[test]
    fn multiply_records_positions_and_strand() {
        let out = OverlapSemiring::multiply(&occ(5, true), &occ(9, true)).unwrap();
        assert_eq!(out.count, 1);
        assert_eq!(out.seeds[0], SharedSeed { pos_v: 5, pos_h: 9, same_strand: true });
        let rc = OverlapSemiring::multiply(&occ(5, true), &occ(9, false)).unwrap();
        assert!(!rc.seeds[0].same_strand);
        let rc2 = OverlapSemiring::multiply(&occ(5, false), &occ(9, false)).unwrap();
        assert!(rc2.seeds[0].same_strand, "both reverse means same relative strand");
    }

    #[test]
    fn mirror_swaps_seed_positions_and_keeps_the_count() {
        let mut acc = OverlapSemiring::multiply(&occ(1, true), &occ(2, false)).unwrap();
        OverlapSemiring::add(&mut acc, OverlapSemiring::multiply(&occ(3, true), &occ(4, true)).unwrap());
        OverlapSemiring::add(&mut acc, OverlapSemiring::multiply(&occ(5, true), &occ(6, true)).unwrap());
        let mirrored = OverlapSemiring::mirror(&acc);
        assert_eq!(mirrored.count, acc.count);
        assert_eq!(mirrored.seeds.len(), acc.seeds.len());
        for (m, o) in mirrored.seeds.iter().zip(acc.seeds.iter()) {
            assert_eq!(m.pos_v, o.pos_h);
            assert_eq!(m.pos_h, o.pos_v);
            assert_eq!(m.same_strand, o.same_strand);
        }
    }

    #[test]
    fn add_counts_all_but_caps_stored_seeds() {
        let mut acc = OverlapSemiring::multiply(&occ(1, true), &occ(2, true)).unwrap();
        for i in 0..5 {
            let x = OverlapSemiring::multiply(&occ(10 + i, true), &occ(20 + i, true)).unwrap();
            OverlapSemiring::add(&mut acc, x);
        }
        assert_eq!(acc.count, 6, "every shared k-mer is counted");
        assert_eq!(acc.seeds.len(), MAX_SEEDS, "only MAX_SEEDS seed positions are stored");
        assert_eq!(acc.seeds[0].pos_v, 1);
        assert_eq!(acc.seeds[1].pos_v, 10);
    }
}

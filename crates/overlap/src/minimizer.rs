//! A minimap2-style minimizer overlapper (comparison baseline).
//!
//! Section VII-B compares diBELLA 2D against minimap2, noting that "minimap2
//! does not perform base-level pairwise alignment and instead estimates
//! pairwise similarity from the number of shared minimizers, making it
//! significantly faster".  This module reproduces that design point: reads are
//! sketched with `(w, k)` minimizers, pairs sharing enough minimizers are
//! reported with an overlap span estimated from the minimizer hit positions,
//! and no alignment is performed.  It is deliberately a shared-memory
//! algorithm (minimap2 has no distributed mode), parallelised over reads with
//! rayon, mirroring its 32-OpenMP-thread single-node usage in the paper.

use dibella_seq::{windowed_minimizers, DnaSeq, ReadSet};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Minimizer sketching and overlap-calling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinimizerConfig {
    /// k-mer length of the minimizers (minimap2 default for CLR data: 15).
    pub k: usize,
    /// Window length: one minimizer is selected from every `w` consecutive k-mers.
    pub w: usize,
    /// Minimum number of shared minimizers to report an overlap.
    pub min_shared: usize,
    /// Minimum estimated overlap span (bases) to report.
    pub min_span: usize,
    /// Minimizers occurring in more than this many reads are masked as
    /// repetitive (minimap2's high-frequency filter).
    pub max_occurrences: usize,
}

impl Default for MinimizerConfig {
    fn default() -> Self {
        Self { k: 15, w: 10, min_shared: 3, min_span: 500, max_occurrences: 200 }
    }
}

impl MinimizerConfig {
    /// Settings for the short reads used in tests.
    pub fn for_tests(k: usize) -> Self {
        Self { k, w: 5, min_shared: 2, min_span: 60, max_occurrences: 500 }
    }
}

/// An approximate overlap reported by the minimizer overlapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinimizerOverlap {
    /// First read (smaller index).
    pub read_a: usize,
    /// Second read (larger index).
    pub read_b: usize,
    /// Number of shared minimizers.
    pub shared: usize,
    /// Estimated overlap span in bases (max hit extent on read a).
    pub span: usize,
    /// Whether the overlap is same-strand.
    pub same_strand: bool,
}

/// One minimizer of one read.
#[derive(Debug, Clone, Copy)]
struct MinimizerHit {
    read: u32,
    pos: u32,
    forward: bool,
}

/// Compute the `(w, k)` minimizer sketch of a sequence: for every window of
/// `w` consecutive k-mers, the canonical k-mer with the smallest hash is kept.
///
/// Delegates to the shared [`dibella_seq::sketch`] primitives (also used by
/// the k-min-mer candidate subsystem); the output is pinned bit-identical to
/// the pre-extraction implementation by a regression test below.
fn sketch(seq: &DnaSeq, k: usize, w: usize) -> Vec<(u64, u32, bool)> {
    windowed_minimizers(seq, k, w)
}

/// Find approximate overlaps between all read pairs sharing minimizers.
pub fn minimizer_overlaps(reads: &ReadSet, config: &MinimizerConfig) -> Vec<MinimizerOverlap> {
    // Sketch every read in parallel.
    let sketches: Vec<Vec<(u64, u32, bool)>> = (0..reads.len())
        .into_par_iter()
        .map(|i| sketch(reads.seq(i), config.k, config.w))
        .collect();

    // Index: minimizer hash -> hits.  BTreeMap, not HashMap: `values()` below
    // feeds the pair statistics, so its iteration order must be deterministic.
    let mut index: BTreeMap<u64, Vec<MinimizerHit>> = BTreeMap::new();
    for (read, sk) in sketches.iter().enumerate() {
        for &(hash, pos, forward) in sk {
            index.entry(hash).or_default().push(MinimizerHit { read: read as u32, pos, forward });
        }
    }
    // Mask repetitive minimizers.
    index.retain(|_, hits| hits.len() <= config.max_occurrences);

    // Collect per-pair hit statistics.
    #[derive(Default, Clone, Copy)]
    struct PairStat {
        shared_same: usize,
        shared_diff: usize,
        min_a: u32,
        max_a: u32,
    }
    let mut pairs: BTreeMap<(u32, u32), PairStat> = BTreeMap::new();
    for hits in index.values() {
        for (x, a) in hits.iter().enumerate() {
            for b in hits.iter().skip(x + 1) {
                if a.read == b.read {
                    continue;
                }
                let (lo, hi, lo_hit) =
                    if a.read < b.read { (a.read, b.read, a) } else { (b.read, a.read, b) };
                let entry = pairs.entry((lo, hi)).or_insert(PairStat {
                    shared_same: 0,
                    shared_diff: 0,
                    min_a: lo_hit.pos,
                    max_a: lo_hit.pos,
                });
                if a.forward == b.forward {
                    entry.shared_same += 1;
                } else {
                    entry.shared_diff += 1;
                }
                entry.min_a = entry.min_a.min(lo_hit.pos);
                entry.max_a = entry.max_a.max(lo_hit.pos);
            }
        }
    }

    let mut out: Vec<MinimizerOverlap> = pairs
        .into_par_iter()
        .filter_map(|((a, b), stat)| {
            let shared = stat.shared_same.max(stat.shared_diff);
            let span = (stat.max_a - stat.min_a) as usize + config.k;
            if shared >= config.min_shared && span >= config.min_span {
                Some(MinimizerOverlap {
                    read_a: a as usize,
                    read_b: b as usize,
                    shared,
                    span,
                    same_strand: stat.shared_same >= stat.shared_diff,
                })
            } else {
                None
            }
        })
        .collect();
    out.sort_by_key(|o| (o.read_a, o.read_b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_seq::{DatasetSpec, KmerIter, ReadRecord};

    /// The pre-extraction `(w, k)` sketch implementation, kept verbatim as a
    /// regression oracle: the shared `windowed_minimizers` the overlapper now
    /// delegates to must stay bit-identical to it.
    fn sketch_pre_extraction(seq: &DnaSeq, k: usize, w: usize) -> Vec<(u64, u32, bool)> {
        if seq.len() < k {
            return Vec::new();
        }
        let hashes: Vec<(u64, u32, bool)> = KmerIter::new(seq, k)
            .map(|(pos, kmer)| {
                let canon = kmer.canonical();
                (canon.kmer.hash64(), pos as u32, canon.was_forward)
            })
            .collect();
        let mut out: Vec<(u64, u32, bool)> = Vec::new();
        if hashes.len() <= w {
            if let Some(min) = hashes.iter().min_by_key(|(h, _, _)| *h) {
                out.push(*min);
            }
            return out;
        }
        for window in hashes.windows(w) {
            let min = window.iter().min_by_key(|(h, _, _)| *h).unwrap();
            if out.last().is_none_or(|last| last.1 != min.1) {
                out.push(*min);
            }
        }
        out
    }

    #[test]
    fn extracted_sketch_is_bit_identical_to_the_pre_extraction_logic() {
        let ds = DatasetSpec::Small.generate(42);
        for (k, w) in [(13usize, 5usize), (15, 10), (17, 8), (13, 1)] {
            for i in 0..ds.reads.len() {
                let seq = ds.reads.seq(i);
                assert_eq!(
                    sketch(seq, k, w),
                    sketch_pre_extraction(seq, k, w),
                    "sketch diverged for read {i} at (k={k}, w={w})"
                );
            }
        }
        // Degenerate lengths: shorter than k, exactly k, fewer k-mers than w.
        for ascii in ["", "ACG", "ACGTACGTACGTA", "ACGTACGTACGTACG"] {
            let seq: DnaSeq = ascii.parse().unwrap();
            assert_eq!(sketch(&seq, 13, 5), sketch_pre_extraction(&seq, 13, 5));
        }
    }

    #[test]
    fn sketch_is_sparser_than_the_kmer_set() {
        let ds = DatasetSpec::Tiny.generate(21);
        let seq = ds.reads.seq(0);
        let sk = sketch(seq, 13, 8);
        let total_kmers = seq.len() - 13 + 1;
        assert!(!sk.is_empty());
        assert!(sk.len() < total_kmers / 2, "minimizers must subsample the k-mers");
        // Positions must be increasing (windows slide left to right).
        for w in sk.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn sketch_of_a_read_and_its_reverse_complement_share_hashes() {
        let ds = DatasetSpec::Tiny.generate(22);
        let seq = ds.reads.seq(0);
        let rc = seq.reverse_complement();
        let h1: std::collections::HashSet<u64> = sketch(seq, 13, 6).iter().map(|x| x.0).collect();
        let h2: std::collections::HashSet<u64> = sketch(&rc, 13, 6).iter().map(|x| x.0).collect();
        let inter = h1.intersection(&h2).count();
        assert!(
            inter * 2 >= h1.len().min(h2.len()),
            "canonical minimizers should be largely strand-invariant ({inter} shared)"
        );
    }

    #[test]
    fn overlapping_reads_are_reported() {
        let ds = DatasetSpec::Tiny.generate(23);
        let cfg = MinimizerConfig::for_tests(13);
        let overlaps = minimizer_overlaps(&ds.reads, &cfg);
        assert!(!overlaps.is_empty(), "a 12x dataset must produce minimizer overlaps");
        // The clear majority of reported pairs should be genuine genomic overlaps.
        let mut genuine = 0usize;
        for o in &overlaps {
            if ds.true_overlap(o.read_a, o.read_b) > 0 {
                genuine += 1;
            }
        }
        assert!(
            genuine * 10 >= overlaps.len() * 7,
            "only {genuine}/{} reported overlaps are genuine",
            overlaps.len()
        );
    }

    #[test]
    fn unrelated_reads_are_not_reported() {
        // Two disjoint random genomes cannot share long minimizer chains.
        let a = DatasetSpec::Tiny.generate_with_length(2_000, 31);
        let b = DatasetSpec::Tiny.generate_with_length(2_000, 77);
        let mut reads = dibella_seq::ReadSet::new();
        reads.push(ReadRecord { name: "a".into(), seq: a.genome.slice(0, 1500) });
        reads.push(ReadRecord { name: "b".into(), seq: b.genome.slice(0, 1500) });
        let cfg = MinimizerConfig::for_tests(13);
        let overlaps = minimizer_overlaps(&reads, &cfg);
        assert!(overlaps.is_empty(), "unrelated sequences must not overlap: {overlaps:?}");
    }

    #[test]
    fn strand_calls_match_ground_truth_orientation() {
        let ds = DatasetSpec::Tiny.generate(25);
        let cfg = MinimizerConfig::for_tests(13);
        let overlaps = minimizer_overlaps(&ds.reads, &cfg);
        let mut checked = 0;
        let mut correct = 0;
        for o in &overlaps {
            if ds.true_overlap(o.read_a, o.read_b) > 200 {
                checked += 1;
                let same = ds.origins[o.read_a].strand == ds.origins[o.read_b].strand;
                if same == o.same_strand {
                    correct += 1;
                }
            }
        }
        assert!(checked > 0);
        assert!(correct * 10 >= checked * 8, "strand calls too often wrong: {correct}/{checked}");
    }
}

//! Re-pins the SpGEMM determinism claim under adversarial steal schedules.
//!
//! `spgemm_stages` accumulates every output row in place across stages on the
//! work-stealing pool; its claim is bit-identical output for every thread
//! count *and every chunk-claim order*.  The 1/2/4-thread sweeps elsewhere
//! leave the claim order to the OS; here the schedule explorer enumerates all
//! 3-/4-chunk permutations (and seeded large shuffles on the randomized CI
//! preset) with yield points injected before every claim.

use dibella_sparse::{
    spgemm::spgemm_stages, AccumPolicy, CsrMatrix, FlopCounter, PlusTimes, Triples,
};
use dibella_testutil::{assert_schedule_determinism, SchedulePreset};

/// A deterministic pseudo-random CSR matrix (LCG-filled, duplicate-free).
fn random_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix<u64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut seen = std::collections::BTreeSet::new();
    let mut triples = Triples::new(nrows, ncols);
    while seen.len() < nnz.min(nrows * ncols) {
        let r = (next() % nrows as u64) as usize;
        let c = (next() % ncols as u64) as usize;
        if seen.insert((r, c)) {
            triples.push(r, c, next() % 97 + 1);
        }
    }
    CsrMatrix::from_triples(&triples)
}

#[test]
fn spgemm_stages_is_bit_identical_under_adversarial_schedules() {
    // Two stages with skewed shapes, as a 2-stage SUMMA rank would see.
    let a1 = random_csr(96, 48, 700, 1);
    let b1 = random_csr(48, 80, 500, 2);
    let a2 = random_csr(96, 48, 350, 3);
    let b2 = random_csr(48, 80, 900, 4);

    let explored = assert_schedule_determinism(SchedulePreset::from_env(), || {
        let flops = FlopCounter::new();
        let out = spgemm_stages::<PlusTimes<u64>, _>(
            96,
            80,
            &[(&a1, &b1), (&a2, &b2)],
            AccumPolicy::Auto,
            &flops,
        );
        // The counters are part of the determinism claim too.
        (out, flops.flops(), flops.probes(), flops.peak_row_width())
    });
    assert!(explored >= 30, "expected at least the exhaustive-small preset");
}

//! The semiring abstraction used by every SpGEMM in the pipeline.
//!
//! diBELLA 2D overloads the scalar addition and multiplication of sparse
//! matrix multiplication twice: once with a "collect shared k-mer positions"
//! semiring for overlap detection (Section IV-D) and once with the MinPlus
//! semiring with orientation checks for transitive reduction (Algorithm 3).
//! This module defines the trait both plug into, along with the classical
//! semirings used for testing and for the generic graph kernels.

/// A semiring over possibly heterogeneous operand types.
///
/// `multiply` may return `None`, which acts as the multiplicative annihilator:
/// the pair contributes nothing to the accumulator.  This is how Algorithm 3's
/// `ISDIROK` check (return the identity when the path is not a valid bidirected
/// walk) is expressed.
///
/// `add` folds a new contribution into an existing accumulator; the first
/// contribution for an output coordinate initialises the accumulator, so no
/// explicit additive identity is required.
pub trait Semiring {
    /// Element type of the left operand matrix.
    type Left: Clone + Send + Sync;
    /// Element type of the right operand matrix.
    type Right: Clone + Send + Sync;
    /// Element type of the output matrix.
    type Out: Clone + Send + Sync;

    /// Multiply one left entry with one right entry, or annihilate (`None`).
    fn multiply(a: &Self::Left, b: &Self::Right) -> Option<Self::Out>;

    /// Fold `x` into the accumulator `acc`.
    fn add(acc: &mut Self::Out, x: Self::Out);
}

/// A semiring whose `C = A·Aᵀ` output is mirror-symmetric: the product is
/// fully determined by its upper triangle, with `C[j][i] = mirror(C[i][j])`.
///
/// This holds whenever `multiply(x, y)` and `multiply(y, x)` are related by a
/// fixed involution (for commutative scalar semirings the involution is the
/// identity; the overlap semiring swaps the two stored seed positions).  The
/// symmetric SpGEMM kernels exploit it to halve the multiply work of `A·Aᵀ`;
/// both operands come from the same matrix, so `Right` must equal `Left`.
pub trait MirrorSemiring: Semiring<Right = <Self as Semiring>::Left> {
    /// The value of `C[j][i]` given the computed `C[i][j]`.
    fn mirror(out: &Self::Out) -> Self::Out;
}

/// The ordinary `(+, *)` semiring over a numeric type.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlusTimes<T>(std::marker::PhantomData<T>);

macro_rules! impl_plus_times {
    ($($t:ty),*) => {
        $(
            impl Semiring for PlusTimes<$t> {
                type Left = $t;
                type Right = $t;
                type Out = $t;
                fn multiply(a: &$t, b: &$t) -> Option<$t> {
                    Some(a * b)
                }
                fn add(acc: &mut $t, x: $t) {
                    *acc += x;
                }
            }
        )*
    };
}

impl_plus_times!(i32, i64, u32, u64, f32, f64);

macro_rules! impl_mirror_identity {
    ($($semiring:ty),*) => {
        $(
            impl MirrorSemiring for $semiring {
                fn mirror(out: &Self::Out) -> Self::Out {
                    out.clone()
                }
            }
        )*
    };
}

impl_mirror_identity!(
    PlusTimes<i32>,
    PlusTimes<i64>,
    PlusTimes<u32>,
    PlusTimes<u64>,
    PlusTimes<f32>,
    PlusTimes<f64>,
    MinPlusNum<i32>,
    MinPlusNum<i64>,
    MinPlusNum<u32>,
    MinPlusNum<u64>,
    BoolAndOr
);

/// The `(min, +)` semiring over a numeric type (shortest paths).
///
/// This is the plain version without orientation checks; the transitive
/// reduction crate defines the bidirected variant of Algorithm 3 on top of the
/// same [`Semiring`] trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinPlusNum<T>(std::marker::PhantomData<T>);

macro_rules! impl_min_plus {
    ($($t:ty),*) => {
        $(
            impl Semiring for MinPlusNum<$t> {
                type Left = $t;
                type Right = $t;
                type Out = $t;
                fn multiply(a: &$t, b: &$t) -> Option<$t> {
                    Some(a + b)
                }
                fn add(acc: &mut $t, x: $t) {
                    if x < *acc {
                        *acc = x;
                    }
                }
            }
        )*
    };
}

impl_min_plus!(i32, i64, u32, u64);

/// The boolean `(or, and)` semiring — structural reachability.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoolAndOr;

impl Semiring for BoolAndOr {
    type Left = bool;
    type Right = bool;
    type Out = bool;

    fn multiply(a: &bool, b: &bool) -> Option<bool> {
        Some(*a && *b)
    }

    fn add(acc: &mut bool, x: bool) {
        *acc |= x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_behaves_like_arithmetic() {
        let mut acc = <PlusTimes<i64> as Semiring>::multiply(&3, &4).unwrap();
        assert_eq!(acc, 12);
        PlusTimes::<i64>::add(&mut acc, PlusTimes::<i64>::multiply(&2, &5).unwrap());
        assert_eq!(acc, 22);
    }

    #[test]
    fn min_plus_takes_shortest_sum() {
        let mut acc = <MinPlusNum<u64> as Semiring>::multiply(&3, &4).unwrap();
        assert_eq!(acc, 7);
        MinPlusNum::<u64>::add(&mut acc, MinPlusNum::<u64>::multiply(&1, &2).unwrap());
        assert_eq!(acc, 3);
        MinPlusNum::<u64>::add(&mut acc, MinPlusNum::<u64>::multiply(&10, &10).unwrap());
        assert_eq!(acc, 3);
    }

    #[test]
    fn bool_semiring_is_reachability() {
        assert_eq!(BoolAndOr::multiply(&true, &true), Some(true));
        assert_eq!(BoolAndOr::multiply(&true, &false), Some(false));
        let mut acc = false;
        BoolAndOr::add(&mut acc, false);
        assert!(!acc);
        BoolAndOr::add(&mut acc, true);
        assert!(acc);
        BoolAndOr::add(&mut acc, false);
        assert!(acc);
    }

    #[test]
    fn float_plus_times_works() {
        let mut acc = <PlusTimes<f64> as Semiring>::multiply(&0.5, &4.0).unwrap();
        PlusTimes::<f64>::add(&mut acc, 1.0);
        assert!((acc - 3.0).abs() < 1e-12);
    }
}

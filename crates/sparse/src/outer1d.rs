//! 1D outer-product SpGEMM — the communication structure of diBELLA 1D.
//!
//! Section V-B of the paper observes that diBELLA 1D's distributed-hash-table
//! overlap detection "is equivalent to a 1D sparse matrix multiplication using
//! the outer product algorithm": `A` is distributed in block columns, `Aᵀ` in
//! block rows, every rank `k` forms the partial product `A_{:,k} · Aᵀ_{k,:}`
//! locally, and the partial products are then reduced onto the block-row
//! owners of `C`.  The reduction is the expensive part: each rank exchanges
//! `a²m/P` words, compared with `a·m/sqrt(P)` for the 2D algorithm.
//!
//! This module implements that algorithm generically over a [`Semiring`] so
//! that the 1D-vs-2D comparison of Figure 9 and Table I runs the same local
//! kernels and differs only in decomposition and communication — exactly the
//! comparison the paper makes.

use crate::csr::CsrMatrix;
use crate::semiring::Semiring;
use crate::spgemm::{local_spgemm, merge_rows, rows_to_csr};
use crate::triples::Triples;
use dibella_dist::{alltoallv_counted, par_ranks, words_of, BlockDist, CommPhase, CommStats};
use rayon::prelude::*;

/// One source rank's per-destination COO buffers of the 1D all-to-all
/// reduction (entry `[dst]` holds the `(row, col, value)` triples bound for
/// rank `dst`).
type CooBuffers<T> = Vec<Vec<(usize, usize, T)>>;

/// Result of a 1D outer-product SpGEMM: the output matrix distributed in block
/// rows over `nprocs` ranks, plus the gathered global matrix.
pub struct Outer1dResult<T> {
    /// Per-rank block-row partitions of the result (rank `k` owns the rows in
    /// `row_dist.range(k)`).
    pub row_blocks: Vec<CsrMatrix<T>>,
    /// Distribution of output rows over ranks.
    pub row_dist: BlockDist,
}

impl<T: Clone> Outer1dResult<T> {
    /// Assemble the distributed block rows into one global matrix.
    pub fn to_local_csr(&self, ncols: usize) -> CsrMatrix<T> {
        let total_rows = self.row_dist.total();
        let mut t = Triples::new(total_rows, ncols);
        for (rank, block) in self.row_blocks.iter().enumerate() {
            let roff = self.row_dist.start(rank);
            for (r, c, v) in block.iter() {
                t.push(roff + r, c, v.clone());
            }
        }
        CsrMatrix::from_triples(&t)
    }

    /// Total stored entries.
    pub fn nnz(&self) -> usize {
        self.row_blocks.iter().map(|b| b.nnz()).sum()
    }
}

/// Compute `C = A·B` with the 1D outer-product algorithm over `nprocs` virtual
/// ranks, recording the reduction traffic into `stats` under `phase`.
///
/// `A` is split into block columns and `B` into the matching block rows; the
/// partial products are merged onto block-row owners of `C` with an
/// all-to-all, which is the communication the paper's 1D analysis charges
/// (`W_1D = a²m/P`, `Y_1D = P`).
pub fn outer1d_spgemm<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
    nprocs: usize,
    stats: &CommStats,
    phase: CommPhase,
) -> Outer1dResult<S::Out> {
    outer1d_spgemm_with_words::<S>(a, b, nprocs, stats, phase, words_of::<S::Out>() + 2)
}

/// [`outer1d_spgemm`] with an explicit word cost per exchanged partial entry
/// (value plus row and column index by default).
pub fn outer1d_spgemm_with_words<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
    nprocs: usize,
    stats: &CommStats,
    phase: CommPhase,
    entry_words: u64,
) -> Outer1dResult<S::Out> {
    assert!(nprocs > 0, "need at least one rank");
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let n = a.nrows();
    let inner = a.ncols();
    let inner_dist = BlockDist::new(inner, nprocs);
    let out_row_dist = BlockDist::new(n, nprocs);

    // Every rank forms its partial product A[:, k-th column block] * B[k-th
    // row block, :].  Both slices are carved directly out of the CSR arrays
    // (contiguous column range via two binary searches per row, contiguous
    // row range as a sub-slice) — no transpose round-trip.
    let partials: Vec<CsrMatrix<S::Out>> = par_ranks(nprocs, |rank| {
        let cols = inner_dist.range(rank);
        if cols.is_empty() {
            return CsrMatrix::zero(n, b.ncols());
        }
        let a_slice = a.slice_col_range(cols.clone());
        let b_slice = b.slice_row_range(cols);
        local_spgemm::<S>(&a_slice, &b_slice)
    });

    reduce_partials::<S>(partials, out_row_dist, b.ncols(), stats, phase, entry_words)
}

/// Compute `C = A·Bᵀ` with the 1D outer-product algorithm, transpose-free:
/// rank `k` multiplies `A[:, cols_k] · (B[:, cols_k])ᵀ` with the CSC-view
/// kernel, so neither operand is ever transposed or re-sliced through a
/// transpose.  This is the formulation diBELLA 1D's candidate detection
/// (`C = A·Aᵀ`: pass the same matrix twice) maps onto.
pub fn outer1d_abt<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
    nprocs: usize,
    stats: &CommStats,
    phase: CommPhase,
) -> Outer1dResult<S::Out> {
    outer1d_abt_with_words::<S>(a, b, nprocs, stats, phase, words_of::<S::Out>() + 2)
}

/// [`outer1d_abt`] with an explicit word cost per exchanged partial entry.
pub fn outer1d_abt_with_words<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
    nprocs: usize,
    stats: &CommStats,
    phase: CommPhase,
    entry_words: u64,
) -> Outer1dResult<S::Out> {
    assert!(nprocs > 0, "need at least one rank");
    assert_eq!(a.ncols(), b.ncols(), "inner dimension mismatch for A·Bᵀ");
    let n = a.nrows();
    let inner_dist = BlockDist::new(a.ncols(), nprocs);
    let out_row_dist = BlockDist::new(n, nprocs);

    let partials: Vec<CsrMatrix<S::Out>> = par_ranks(nprocs, |rank| {
        let cols = inner_dist.range(rank);
        if cols.is_empty() {
            return CsrMatrix::zero(n, b.nrows());
        }
        let a_slice = a.slice_col_range(cols.clone());
        let b_slice = b.slice_col_range(cols);
        crate::spgemm::local_spgemm_abt::<S>(&a_slice, &b_slice)
    });

    reduce_partials::<S>(partials, out_row_dist, b.nrows(), stats, phase, entry_words)
}

/// Compute the symmetric `C = A·Aᵀ` with the 1D outer-product algorithm.
///
/// Each rank's partial product `A[:, cols_k] · (A[:, cols_k])ᵀ` is itself
/// mirror-symmetric, so every rank runs the upper-triangle
/// [`crate::spgemm::local_spgemm_aat`] kernel — half the multiply work of
/// [`outer1d_abt`] with the same matrix passed twice, bit-identical output.
pub fn outer1d_aat<S>(
    a: &CsrMatrix<S::Left>,
    nprocs: usize,
    stats: &CommStats,
    phase: CommPhase,
) -> Outer1dResult<S::Out>
where
    S: crate::semiring::MirrorSemiring,
{
    outer1d_aat_with_words::<S>(a, nprocs, stats, phase, words_of::<S::Out>() + 2)
}

/// [`outer1d_aat`] with an explicit word cost per exchanged partial entry.
pub fn outer1d_aat_with_words<S>(
    a: &CsrMatrix<S::Left>,
    nprocs: usize,
    stats: &CommStats,
    phase: CommPhase,
    entry_words: u64,
) -> Outer1dResult<S::Out>
where
    S: crate::semiring::MirrorSemiring,
{
    assert!(nprocs > 0, "need at least one rank");
    let n = a.nrows();
    let inner_dist = BlockDist::new(a.ncols(), nprocs);
    let out_row_dist = BlockDist::new(n, nprocs);

    let partials: Vec<CsrMatrix<S::Out>> = par_ranks(nprocs, |rank| {
        let cols = inner_dist.range(rank);
        if cols.is_empty() {
            return CsrMatrix::zero(n, n);
        }
        let a_slice = a.slice_col_range(cols);
        crate::spgemm::local_spgemm_aat::<S>(&a_slice)
    });

    reduce_partials::<S>(partials, out_row_dist, n, stats, phase, entry_words)
}

/// The 1D reduction: route every partial entry to the block-row owner of its
/// output row with an all-to-all, then merge per destination rank with the
/// semiring's add.
fn reduce_partials<S: Semiring>(
    partials: Vec<CsrMatrix<S::Out>>,
    out_row_dist: BlockDist,
    out_cols: usize,
    stats: &CommStats,
    phase: CommPhase,
    entry_words: u64,
) -> Outer1dResult<S::Out> {
    let nprocs = partials.len();
    // Consume each partial: values are *moved* into the send buffers and the
    // partial's CSR storage is freed inside the map, so the exchange never
    // holds a cloned copy of the partial products alongside the originals.
    let send: Vec<CooBuffers<S::Out>> = partials
        .into_par_iter()
        .map(|partial| {
            let mut bufs: CooBuffers<S::Out> = (0..nprocs).map(|_| Vec::new()).collect();
            for (r, c, v) in partial.into_entries() {
                bufs[out_row_dist.owner(r)].push((r, c, v));
            }
            bufs
        })
        .collect();
    let received = alltoallv_counted(send, stats, phase, entry_words);

    // Merge each destination rank's received entries into its block rows.
    let row_blocks: Vec<CsrMatrix<S::Out>> = received
        .into_par_iter()
        .enumerate()
        .map(|(rank, entries)| {
            let rows_here = out_row_dist.size(rank);
            let roff = out_row_dist.start(rank);
            let mut rows: Vec<Vec<(usize, S::Out)>> = vec![Vec::new(); rows_here];
            // Group by row, then merge column-sorted runs with the semiring add.
            let mut by_row: Vec<Vec<(usize, S::Out)>> = vec![Vec::new(); rows_here];
            for (r, c, v) in entries {
                by_row[r - roff].push((c, v));
            }
            for (local_r, mut run) in by_row.into_iter().enumerate() {
                run.sort_by_key(|(c, _)| *c);
                let mut merged: Vec<(usize, S::Out)> = Vec::with_capacity(run.len());
                for (c, v) in run {
                    match merged.last_mut() {
                        Some((lc, lv)) if *lc == c => S::add(lv, v),
                        _ => merged.push((c, v)),
                    }
                }
                rows[local_r] = merged;
            }
            rows_to_csr(rows_here, out_cols, rows)
        })
        .collect();

    Outer1dResult { row_blocks, row_dist: out_row_dist }
}

/// Merge helper re-exported for the overlap crate's 1D pipeline.
pub fn merge_sorted_rows<S: Semiring>(
    left: Vec<(usize, S::Out)>,
    right: Vec<(usize, S::Out)>,
) -> Vec<(usize, S::Out)> {
    merge_rows::<S>(left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimes;
    use proptest::prelude::*;

    fn random_triples(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> Triples<i64> {
        let mut t = Triples::new(nrows, ncols);
        let mut seen = std::collections::BTreeSet::new();
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        while seen.len() < nnz.min(nrows * ncols) {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let r = (state >> 33) as usize % nrows;
            let c = (state >> 11) as usize % ncols;
            if seen.insert((r, c)) {
                t.push(r, c, ((state % 13) as i64) - 6);
            }
        }
        t
    }

    #[test]
    fn outer1d_matches_local_spgemm() {
        let at = random_triples(12, 9, 40, 11);
        let bt = random_triples(9, 14, 40, 12);
        let a = CsrMatrix::from_triples(&at);
        let b = CsrMatrix::from_triples(&bt);
        let expected = local_spgemm::<PlusTimes<i64>>(&a, &b);
        for p in [1usize, 2, 3, 5, 8] {
            let stats = CommStats::new();
            let result =
                outer1d_spgemm::<PlusTimes<i64>>(&a, &b, p, &stats, CommPhase::OverlapDetection);
            assert_eq!(result.to_local_csr(b.ncols()), expected, "mismatch at P={p}");
        }
    }

    #[test]
    fn outer1d_single_rank_communicates_nothing() {
        let at = random_triples(8, 8, 20, 3);
        let a = CsrMatrix::from_triples(&at);
        let b = a.transpose();
        let stats = CommStats::new();
        let _ = outer1d_spgemm::<PlusTimes<i64>>(&a, &b, 1, &stats, CommPhase::OverlapDetection);
        assert_eq!(stats.words(CommPhase::OverlapDetection), 0);
        assert_eq!(stats.messages(CommPhase::OverlapDetection), 0);
    }

    #[test]
    fn outer1d_communication_counts_partial_products() {
        // With a dense-ish A*A^T the 1D algorithm must ship roughly the full
        // partial-product volume; just assert it is substantial and grows as P
        // gives each rank a smaller share of the inner dimension.
        let at = random_triples(20, 16, 120, 21);
        let a = CsrMatrix::from_triples(&at);
        let b = a.transpose();
        let stats4 = CommStats::new();
        let _ = outer1d_spgemm::<PlusTimes<i64>>(&a, &b, 4, &stats4, CommPhase::OverlapDetection);
        let w4 = stats4.words(CommPhase::OverlapDetection);
        assert!(w4 > 0);
        let stats16 = CommStats::new();
        let _ = outer1d_spgemm::<PlusTimes<i64>>(&a, &b, 16, &stats16, CommPhase::OverlapDetection);
        let w16 = stats16.words(CommPhase::OverlapDetection);
        assert!(w16 >= w4, "more ranks should not reduce total exchanged volume: {w16} vs {w4}");
    }

    #[test]
    fn outer1d_abt_matches_product_with_transpose() {
        let at = random_triples(13, 9, 45, 41);
        let bt = random_triples(11, 9, 40, 42);
        let a = CsrMatrix::from_triples(&at);
        let b = CsrMatrix::from_triples(&bt);
        let expected = local_spgemm::<PlusTimes<i64>>(&a, &b.transpose());
        for p in [1usize, 2, 4, 7] {
            let stats = CommStats::new();
            let got = outer1d_abt::<PlusTimes<i64>>(&a, &b, p, &stats, CommPhase::Other);
            assert_eq!(got.to_local_csr(b.nrows()), expected, "mismatch at P={p}");
        }
    }

    #[test]
    fn outer1d_abt_squares_a_matrix_like_the_transpose_path() {
        // The A·Aᵀ form the 1D overlap pipeline uses: both operands are the
        // same matrix and the comm volumes match the explicit-transpose path.
        let at = random_triples(14, 10, 50, 43);
        let a = CsrMatrix::from_triples(&at);
        let stats_abt = CommStats::new();
        let direct = outer1d_abt::<PlusTimes<i64>>(&a, &a, 4, &stats_abt, CommPhase::Other);
        let stats_t = CommStats::new();
        let via_t =
            outer1d_spgemm::<PlusTimes<i64>>(&a, &a.transpose(), 4, &stats_t, CommPhase::Other);
        assert_eq!(direct.to_local_csr(a.nrows()), via_t.to_local_csr(a.nrows()));
        assert_eq!(stats_abt.words(CommPhase::Other), stats_t.words(CommPhase::Other));
        assert_eq!(stats_abt.messages(CommPhase::Other), stats_t.messages(CommPhase::Other));
    }

    #[test]
    fn outer1d_symmetric_aat_is_bit_identical_to_the_general_path() {
        let at = random_triples(16, 12, 60, 51);
        let a = CsrMatrix::from_triples(&at);
        for p in [1usize, 3, 5] {
            let stats_sym = CommStats::new();
            let sym = outer1d_aat::<PlusTimes<i64>>(&a, p, &stats_sym, CommPhase::Other);
            let stats_gen = CommStats::new();
            let general = outer1d_abt::<PlusTimes<i64>>(&a, &a, p, &stats_gen, CommPhase::Other);
            assert_eq!(
                sym.to_local_csr(a.nrows()),
                general.to_local_csr(a.nrows()),
                "P={p}"
            );
            assert_eq!(stats_sym.words(CommPhase::Other), stats_gen.words(CommPhase::Other));
        }
    }

    #[test]
    fn outer1d_handles_more_ranks_than_inner_dimension() {
        let at = random_triples(6, 3, 10, 31);
        let a = CsrMatrix::from_triples(&at);
        let b = a.transpose();
        let expected = local_spgemm::<PlusTimes<i64>>(&a, &b);
        let stats = CommStats::new();
        let result = outer1d_spgemm::<PlusTimes<i64>>(&a, &b, 9, &stats, CommPhase::Other);
        assert_eq!(result.to_local_csr(b.ncols()), expected);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_outer1d_equals_local(
            seed_a in 0u64..500,
            seed_b in 500u64..1000,
            p in 1usize..7,
            n in 4usize..16,
            m in 4usize..16,
            k in 4usize..16,
        ) {
            let at = random_triples(n, m, n * m / 3 + 1, seed_a);
            let bt = random_triples(m, k, m * k / 3 + 1, seed_b);
            let a = CsrMatrix::from_triples(&at);
            let b = CsrMatrix::from_triples(&bt);
            let expected = local_spgemm::<PlusTimes<i64>>(&a, &b);
            let stats = CommStats::new();
            let got = outer1d_spgemm::<PlusTimes<i64>>(&a, &b, p, &stats, CommPhase::Other);
            prop_assert_eq!(got.to_local_csr(b.ncols()), expected);
        }
    }
}

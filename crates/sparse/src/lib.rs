//! # dibella-sparse — sparse matrices and semiring algebra
//!
//! diBELLA 2D expresses both overlap detection and transitive reduction as
//! operations on 2D-distributed sparse matrices with user-defined semirings
//! (the CombBLAS model).  This crate is a from-scratch Rust implementation of
//! the pieces the paper relies on:
//!
//! * [`triples::Triples`] — coordinate (COO) storage used for construction and
//!   redistribution.
//! * [`csr::CsrMatrix`] — compressed sparse row storage used for computation.
//! * [`semiring::Semiring`] — the overloadable add/multiply abstraction; the
//!   overlap-detection and MinPlus transitive-reduction semirings of the paper
//!   live in the higher-level crates and plug in here.
//! * [`accum`] — reusable per-worker row accumulators (dense SPA / linear-
//!   probing hash vector) and the [`accum::FlopCounter`] every kernel tallies
//!   useful flops, probes and peak row width into.
//! * [`spgemm`] — local (single-block) Gustavson SpGEMM over the reusable
//!   accumulators, including the transpose-free `A·Bᵀ` kernel and the
//!   multi-stage accumulate-in-place entry point SUMMA uses, plus a dense
//!   reference implementation for testing.
//! * [`elementwise`] — the element-wise kernels of Algorithm 2: `Apply`,
//!   `Prune`, `Reduce(Row, max)`, `DimApply`, element-wise intersection and
//!   set-difference.
//! * [`distmat::DistMat2D`] — a matrix block-distributed over a
//!   [`dibella_dist::ProcessGrid`].
//! * [`mod@summa`] — 2D Sparse SUMMA (`C = A·B` over a semiring) with
//!   communication accounting, the direct analogue of CombBLAS' SpGEMM used in
//!   the paper.
//! * [`outer1d`] — the 1D outer-product SpGEMM that models diBELLA 1D's
//!   communication structure (Section V-B).

#![warn(missing_docs)]

pub mod accum;
pub mod csr;
pub mod distmat;
pub mod elementwise;
pub mod outer1d;
pub mod semiring;
pub mod spgemm;
pub mod summa;
pub mod triples;

pub use accum::{AccumPolicy, Accumulator, FlopCounter};
pub use csr::{CscView, CsrMatrix};
pub use distmat::DistMat2D;
pub use semiring::{BoolAndOr, MinPlusNum, MirrorSemiring, PlusTimes, Semiring};
pub use spgemm::{
    dense_reference_spgemm, local_spgemm, local_spgemm_aat, local_spgemm_abt,
    local_spgemm_baseline, mirror_block,
};
pub use summa::{
    summa, summa_aat_sym, summa_aat_sym_with_words, summa_abt, summa_abt_with_words,
    summa_with_words,
};
pub use triples::Triples;

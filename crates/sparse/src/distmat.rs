//! 2D block-distributed sparse matrices.
//!
//! CombBLAS distributes every matrix over a `sqrt(P) x sqrt(P)` process grid;
//! processor `(i, j)` owns the block of rows `row_dist.range(i)` and columns
//! `col_dist.range(j)`.  [`DistMat2D`] reproduces that layout over the virtual
//! ranks of a [`ProcessGrid`]: each rank's block is an ordinary local
//! [`CsrMatrix`] addressed with block-local indices.

use crate::csr::CsrMatrix;
use crate::triples::Triples;
use dibella_dist::{par_ranks, BlockDist, ProcessGrid};
use serde::{Deserialize, Serialize};

/// A sparse matrix block-distributed over a 2D process grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistMat2D<T> {
    grid: ProcessGrid,
    nrows: usize,
    ncols: usize,
    row_dist: BlockDist,
    col_dist: BlockDist,
    /// One CSR block per rank, indexed by `grid.rank_of(block_row, block_col)`.
    blocks: Vec<CsrMatrix<T>>,
}

impl<T: Clone + Send + Sync> DistMat2D<T> {
    /// Distribute `triples` (with global coordinates) over `grid`.
    pub fn from_triples(grid: ProcessGrid, triples: &Triples<T>) -> Self {
        let nrows = triples.nrows();
        let ncols = triples.ncols();
        let row_dist = BlockDist::new(nrows, grid.rows());
        let col_dist = BlockDist::new(ncols, grid.cols());

        // Route every entry to its owner block.
        let mut per_rank: Vec<Vec<(usize, usize, T)>> =
            (0..grid.nprocs()).map(|_| Vec::new()).collect();
        for (r, c, v) in triples.iter() {
            let bi = row_dist.owner(r);
            let bj = col_dist.owner(c);
            let rank = grid.rank_of(bi, bj);
            per_rank[rank].push((r - row_dist.start(bi), c - col_dist.start(bj), v.clone()));
        }

        // Build the local CSR blocks in parallel.
        let blocks: Vec<CsrMatrix<T>> = {
            let per_rank_ref = &per_rank;
            par_ranks(grid.nprocs(), |rank| {
                let (bi, bj) = grid.coords(rank);
                let local = Triples::from_entries(
                    row_dist.size(bi),
                    col_dist.size(bj),
                    per_rank_ref[rank].clone(),
                );
                CsrMatrix::from_triples(&local)
            })
        };

        Self { grid, nrows, ncols, row_dist, col_dist, blocks }
    }

    /// An all-zero distributed matrix with the given global dimensions.
    pub fn zero(grid: ProcessGrid, nrows: usize, ncols: usize) -> Self {
        Self::from_triples(grid, &Triples::new(nrows, ncols))
    }

    /// Assemble the distributed blocks from a builder that produces each local
    /// block directly (used by SUMMA to avoid a global round-trip).
    ///
    /// # Panics
    /// Panics if a produced block's dimensions do not match the distribution.
    pub fn from_block_fn(
        grid: ProcessGrid,
        nrows: usize,
        ncols: usize,
        build: impl Fn(usize, usize) -> CsrMatrix<T> + Sync,
    ) -> Self {
        let row_dist = BlockDist::new(nrows, grid.rows());
        let col_dist = BlockDist::new(ncols, grid.cols());
        let blocks = par_ranks(grid.nprocs(), |rank| {
            let (bi, bj) = grid.coords(rank);
            let block = build(bi, bj);
            assert_eq!(block.nrows(), row_dist.size(bi), "block ({bi},{bj}) row mismatch");
            assert_eq!(block.ncols(), col_dist.size(bj), "block ({bi},{bj}) col mismatch");
            block
        });
        Self { grid, nrows, ncols, row_dist, col_dist, blocks }
    }

    /// Assemble a distributed matrix from already-built per-rank blocks, **by
    /// value** (no clone): `blocks[rank]` becomes the block of grid position
    /// `grid.coords(rank)`.  This is the constructor the SUMMA kernels and
    /// the block-wise element-wise operations use, since their `par_ranks`
    /// loop already produces the blocks in rank order.
    ///
    /// # Panics
    /// Panics if the block count or any block's dimensions do not match the
    /// distribution.
    pub fn from_blocks(
        grid: ProcessGrid,
        nrows: usize,
        ncols: usize,
        blocks: Vec<CsrMatrix<T>>,
    ) -> Self {
        let row_dist = BlockDist::new(nrows, grid.rows());
        let col_dist = BlockDist::new(ncols, grid.cols());
        assert_eq!(blocks.len(), grid.nprocs(), "one block per rank required");
        for (rank, block) in blocks.iter().enumerate() {
            let (bi, bj) = grid.coords(rank);
            assert_eq!(block.nrows(), row_dist.size(bi), "block ({bi},{bj}) row mismatch");
            assert_eq!(block.ncols(), col_dist.size(bj), "block ({bi},{bj}) col mismatch");
        }
        Self { grid, nrows, ncols, row_dist, col_dist, blocks }
    }

    /// The process grid this matrix is distributed over.
    pub fn grid(&self) -> ProcessGrid {
        self.grid
    }

    /// Global number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Global number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The row distribution over grid rows.
    pub fn row_dist(&self) -> BlockDist {
        self.row_dist
    }

    /// The column distribution over grid columns.
    pub fn col_dist(&self) -> BlockDist {
        self.col_dist
    }

    /// Total number of stored entries across all blocks.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.nnz()).sum()
    }

    /// Number of stored entries in the block owned by grid position `(i, j)`.
    pub fn block_nnz(&self, block_row: usize, block_col: usize) -> usize {
        self.block(block_row, block_col).nnz()
    }

    /// The local CSR block owned by grid position `(i, j)`.
    pub fn block(&self, block_row: usize, block_col: usize) -> &CsrMatrix<T> {
        &self.blocks[self.grid.rank_of(block_row, block_col)]
    }

    /// All blocks in rank order.
    pub fn blocks(&self) -> &[CsrMatrix<T>] {
        &self.blocks
    }

    /// Gather every entry back into a single triple list with global
    /// coordinates.
    pub fn to_triples(&self) -> Triples<T> {
        let mut out = Triples::new(self.nrows, self.ncols);
        for rank in self.grid.ranks() {
            let (bi, bj) = self.grid.coords(rank);
            let roff = self.row_dist.start(bi);
            let coff = self.col_dist.start(bj);
            for (r, c, v) in self.blocks[rank].iter() {
                out.push(roff + r, coff + c, v.clone());
            }
        }
        out
    }

    /// Gather the whole matrix into a single local CSR (for tests, serial
    /// baselines and diagnostics — not used on the performance path).
    pub fn to_local_csr(&self) -> CsrMatrix<T> {
        CsrMatrix::from_triples(&self.to_triples())
    }

    /// Look up a value by global coordinates.
    pub fn get(&self, row: usize, col: usize) -> Option<&T> {
        let bi = self.row_dist.owner(row);
        let bj = self.col_dist.owner(col);
        self.block(bi, bj)
            .get(row - self.row_dist.start(bi), col - self.col_dist.start(bj))
    }

    /// Transpose the distributed matrix.  Block `(i, j)` becomes block
    /// `(j, i)` of the result, locally transposed; the grid is transposed
    /// accordingly (square grids stay square).
    pub fn transpose(&self) -> DistMat2D<T> {
        let new_grid = ProcessGrid::new(self.grid.cols(), self.grid.rows());
        let blocks = par_ranks(new_grid.nprocs(), |rank| {
            let (bi, bj) = new_grid.coords(rank);
            // New block (bi, bj) is old block (bj, bi) transposed.
            self.block(bj, bi).transpose()
        });
        DistMat2D {
            grid: new_grid,
            nrows: self.ncols,
            ncols: self.nrows,
            row_dist: self.col_dist,
            col_dist: self.row_dist,
            blocks,
        }
    }

    /// Map every value, preserving the distribution and pattern.
    pub fn map<U: Clone + Send + Sync>(
        &self,
        f: impl Fn(usize, usize, &T) -> U + Sync,
    ) -> DistMat2D<U> {
        let blocks = par_ranks(self.grid.nprocs(), |rank| {
            let (bi, bj) = self.grid.coords(rank);
            let roff = self.row_dist.start(bi);
            let coff = self.col_dist.start(bj);
            self.blocks[rank].map(|r, c, v| f(roff + r, coff + c, v))
        });
        DistMat2D {
            grid: self.grid,
            nrows: self.nrows,
            ncols: self.ncols,
            row_dist: self.row_dist,
            col_dist: self.col_dist,
            blocks,
        }
    }

    /// Keep only entries selected by `pred` (global coordinates).
    pub fn filter(&self, pred: impl Fn(usize, usize, &T) -> bool + Sync) -> DistMat2D<T> {
        let blocks = par_ranks(self.grid.nprocs(), |rank| {
            let (bi, bj) = self.grid.coords(rank);
            let roff = self.row_dist.start(bi);
            let coff = self.col_dist.start(bj);
            self.blocks[rank].filter(|r, c, v| pred(roff + r, coff + c, v))
        });
        DistMat2D {
            grid: self.grid,
            nrows: self.nrows,
            ncols: self.ncols,
            row_dist: self.row_dist,
            col_dist: self.col_dist,
            blocks,
        }
    }

    /// Apply `f` to every value in place.
    pub fn apply_mut(&mut self, f: impl Fn(usize, usize, &mut T) + Sync + Send) {
        let grid = self.grid;
        let row_dist = self.row_dist;
        let col_dist = self.col_dist;
        dibella_dist::par_ranks_mut(&mut self.blocks, |rank, block| {
            let (bi, bj) = grid.coords(rank);
            let roff = row_dist.start(bi);
            let coff = col_dist.start(bj);
            block.apply_mut(|r, c, v| f(roff + r, coff + c, v));
        });
    }

    /// Reduce every global row with `map` and `combine` (CombBLAS
    /// `Reduce(Row, op)`).  Returns one slot per global row; empty rows give
    /// `None`.
    ///
    /// In a real 2D distribution this requires a reduction along each grid
    /// row; the caller can account for that traffic separately (it is
    /// asymptotically dominated by the SpGEMM and the paper folds it into the
    /// in-place element-wise operations).
    pub fn reduce_rows<U: Clone + Send>(
        &self,
        map: impl Fn(usize, usize, &T) -> U + Sync,
        combine: impl Fn(U, U) -> U + Sync + Send,
    ) -> Vec<Option<U>> {
        let mut out: Vec<Option<U>> = vec![None; self.nrows];
        for rank in self.grid.ranks() {
            let (bi, bj) = self.grid.coords(rank);
            let roff = self.row_dist.start(bi);
            let coff = self.col_dist.start(bj);
            for (r, c, v) in self.blocks[rank].iter() {
                let gr = roff + r;
                let x = map(gr, coff + c, v);
                out[gr] = Some(match out[gr].take() {
                    None => x,
                    Some(acc) => combine(acc, x),
                });
            }
        }
        out
    }

    /// Count the stored entries in every global row.
    pub fn row_nnz_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nrows];
        for rank in self.grid.ranks() {
            let (bi, _) = self.grid.coords(rank);
            let roff = self.row_dist.start(bi);
            let block = &self.blocks[rank];
            for r in 0..block.nrows() {
                counts[roff + r] += block.row_nnz(r);
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_triples() -> Triples<i64> {
        // A 6x6 matrix with entries on the diagonal and a few off-diagonals.
        let entries = vec![
            (0, 0, 1),
            (1, 1, 2),
            (2, 2, 3),
            (3, 3, 4),
            (4, 4, 5),
            (5, 5, 6),
            (0, 5, 7),
            (5, 0, 8),
            (2, 4, 9),
        ];
        Triples::from_entries(6, 6, entries)
    }

    #[test]
    fn distribution_preserves_every_entry() {
        let grid = ProcessGrid::square(4);
        let t = sample_triples();
        let d = DistMat2D::from_triples(grid, &t);
        assert_eq!(d.nnz(), t.nnz());
        let mut back = d.to_triples();
        back.sort();
        let mut orig = t.clone();
        orig.sort();
        assert_eq!(back, orig);
    }

    #[test]
    fn blocks_have_consistent_dimensions() {
        let grid = ProcessGrid::square(4);
        let d = DistMat2D::from_triples(grid, &sample_triples());
        for i in 0..2 {
            for j in 0..2 {
                let b = d.block(i, j);
                assert_eq!(b.nrows(), 3);
                assert_eq!(b.ncols(), 3);
                assert!(b.validate().is_ok());
            }
        }
    }

    #[test]
    fn get_uses_global_coordinates() {
        let grid = ProcessGrid::square(4);
        let d = DistMat2D::from_triples(grid, &sample_triples());
        assert_eq!(d.get(0, 5), Some(&7));
        assert_eq!(d.get(5, 0), Some(&8));
        assert_eq!(d.get(2, 4), Some(&9));
        assert_eq!(d.get(1, 2), None);
    }

    #[test]
    fn transpose_swaps_global_coordinates() {
        let grid = ProcessGrid::square(4);
        let d = DistMat2D::from_triples(grid, &sample_triples());
        let t = d.transpose();
        assert_eq!(t.nnz(), d.nnz());
        assert_eq!(t.get(5, 0), Some(&7));
        assert_eq!(t.get(0, 5), Some(&8));
        assert_eq!(t.get(4, 2), Some(&9));
    }

    #[test]
    fn works_on_non_square_grids_and_dims() {
        let grid = ProcessGrid::new(2, 3);
        let t = Triples::from_entries(5, 7, vec![(0, 0, 1), (4, 6, 2), (2, 3, 3)]);
        let d = DistMat2D::from_triples(grid, &t);
        assert_eq!(d.nnz(), 3);
        assert_eq!(d.get(4, 6), Some(&2));
        let back = d.to_local_csr();
        assert_eq!(back.get(2, 3), Some(&3));
    }

    #[test]
    fn map_and_filter_preserve_distribution() {
        let grid = ProcessGrid::square(4);
        let d = DistMat2D::from_triples(grid, &sample_triples());
        let doubled = d.map(|_, _, v| v * 2);
        assert_eq!(doubled.get(0, 5), Some(&14));
        let big = d.filter(|_, _, v| *v >= 5);
        assert_eq!(big.nnz(), 5);
        assert_eq!(big.get(0, 0), None);
    }

    #[test]
    fn apply_mut_modifies_values_in_place() {
        let grid = ProcessGrid::square(4);
        let mut d = DistMat2D::from_triples(grid, &sample_triples());
        d.apply_mut(|r, c, v| *v = (r * 10 + c) as i64);
        assert_eq!(d.get(2, 4), Some(&24));
        assert_eq!(d.get(5, 0), Some(&50));
    }

    #[test]
    fn reduce_rows_matches_local_reduction() {
        let grid = ProcessGrid::square(4);
        let d = DistMat2D::from_triples(grid, &sample_triples());
        let local = d.to_local_csr();
        let dist_max = d.reduce_rows(|_, _, v| *v, i64::max);
        let local_max = local.reduce_rows(|_, _, v| *v, i64::max);
        assert_eq!(dist_max, local_max);
    }

    #[test]
    fn row_nnz_counts_sum_to_nnz() {
        let grid = ProcessGrid::square(9);
        let d = DistMat2D::from_triples(grid, &sample_triples());
        let counts = d.row_nnz_counts();
        assert_eq!(counts.iter().sum::<usize>(), d.nnz());
        assert_eq!(counts[0], 2);
        assert_eq!(counts[5], 2);
    }

    #[test]
    fn from_blocks_takes_blocks_by_value_in_rank_order() {
        let grid = ProcessGrid::square(4);
        let via_triples = DistMat2D::from_triples(grid, &sample_triples());
        let blocks: Vec<CsrMatrix<i64>> =
            via_triples.blocks().to_vec();
        let rebuilt = DistMat2D::from_blocks(grid, 6, 6, blocks);
        assert_eq!(rebuilt, via_triples);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn from_blocks_rejects_wrong_block_dimensions() {
        let grid = ProcessGrid::square(4);
        let blocks = vec![CsrMatrix::<i64>::zero(2, 3); 4];
        let _ = DistMat2D::from_blocks(grid, 6, 6, blocks);
    }

    #[test]
    fn single_rank_grid_is_just_a_local_matrix() {
        let grid = ProcessGrid::square(1);
        let t = sample_triples();
        let d = DistMat2D::from_triples(grid, &t);
        let local = CsrMatrix::from_triples(&t);
        assert_eq!(d.block(0, 0), &local);
    }

    proptest! {
        #[test]
        fn prop_distribute_gather_roundtrip(
            coords in proptest::collection::btree_set((0usize..20, 0usize..17), 0..120),
            grid_side in 1usize..4,
        ) {
            let entries: Vec<_> = coords
                .into_iter()
                .enumerate()
                .map(|(i, (r, c))| (r, c, i as i64))
                .collect();
            let t = Triples::from_entries(20, 17, entries);
            let grid = ProcessGrid::square(grid_side * grid_side);
            let d = DistMat2D::from_triples(grid, &t);
            prop_assert_eq!(d.nnz(), t.nnz());
            let mut back = d.to_triples();
            back.sort();
            let mut orig = t;
            orig.sort();
            prop_assert_eq!(back, orig);
        }

        #[test]
        fn prop_distributed_transpose_matches_local_transpose(
            coords in proptest::collection::btree_set((0usize..12, 0usize..12), 0..60),
        ) {
            let entries: Vec<_> = coords
                .into_iter()
                .enumerate()
                .map(|(i, (r, c))| (r, c, i as i64))
                .collect();
            let t = Triples::from_entries(12, 12, entries);
            let grid = ProcessGrid::square(4);
            let d = DistMat2D::from_triples(grid, &t);
            let dist_t = d.transpose().to_local_csr();
            let local_t = CsrMatrix::from_triples(&t).transpose();
            prop_assert_eq!(dist_t, local_t);
        }
    }
}

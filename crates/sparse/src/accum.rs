//! Reusable row accumulators and flops accounting for the SpGEMM kernels.
//!
//! CombBLAS' local SpGEMM gets most of its speed from never allocating a
//! fresh accumulator per output row.  This module provides the same
//! discipline: an [`Accumulator`] is created **once per worker thread** and
//! reused across every row that worker processes — and, in SUMMA, across all
//! `√P` stages of a rank's block product.  Two variants cover the density
//! spectrum:
//!
//! * [`DenseSpa`] — a generation-stamped scatter array (SPA) with a touched
//!   -column list.  O(1) scatter, O(w log w) extract where `w` is the row
//!   width; memory proportional to the output block width, so it is used when
//!   the width is at most [`DENSE_WIDTH_LIMIT`].
//! * [`HashAccum`] — a linear-probing open-addressing hash vector (Fibonacci
//!   hashing, power-of-two capacity, ≤ 50% load) for wide outputs, growing
//!   geometrically and reusing its storage across rows.
//!
//! Both count their probes into the worker's running tallies, which the
//! kernels flush per row into a shared [`FlopCounter`] — the quantity
//! `summa` folds into `CommStats::extras` so every phase can report flops/s.

use std::sync::atomic::{AtomicU64, Ordering};

/// Output widths up to this use the dense SPA; wider outputs use hashing.
///
/// At 2^16 columns the SPA costs one stamp word and one value slot per
/// column per worker — a few MiB at most — while covering every per-block
/// width that appears in the scaled-down experiments.
pub const DENSE_WIDTH_LIMIT: usize = 1 << 16;

/// Shared counters describing the arithmetic work of one SpGEMM.
///
/// * **useful flops** — one multiply and one accumulate per non-annihilated
///   semiring product, i.e. `2 ×` the number of `multiply` results folded in
///   (the conventional SpGEMM flop count);
/// * **probes** — accumulator slot inspections (SPA touches plus hash probe
///   steps), the classic measure of accumulator efficiency;
/// * **peak row width** — the widest accumulated output row, which bounds
///   the accumulator memory any worker needed.
#[derive(Debug, Default)]
pub struct FlopCounter {
    flops: AtomicU64,
    probes: AtomicU64,
    peak_row_width: AtomicU64,
}

impl FlopCounter {
    /// A fresh counter with every tally at zero.
    pub const fn new() -> Self {
        Self {
            flops: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            peak_row_width: AtomicU64::new(0),
        }
    }

    /// Fold one finished row's tallies in (called once per output row, so the
    /// atomics are off the inner scatter loop).
    pub fn record_row(&self, products: u64, probes: u64, width: u64) {
        self.flops.fetch_add(2 * products, Ordering::Relaxed);
        self.probes.fetch_add(probes, Ordering::Relaxed);
        self.peak_row_width.fetch_max(width, Ordering::Relaxed);
    }

    /// Useful flops so far (2 per accumulated product).
    pub fn flops(&self) -> u64 {
        self.flops.load(Ordering::Relaxed)
    }

    /// Accumulator probes so far.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Widest output row accumulated so far.
    pub fn peak_row_width(&self) -> u64 {
        self.peak_row_width.load(Ordering::Relaxed)
    }
}

/// Which accumulator variant a kernel should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumPolicy {
    /// Dense SPA for widths up to [`DENSE_WIDTH_LIMIT`], hash otherwise.
    Auto,
    /// Always the dense SPA (tests; small widths).
    ForceDense,
    /// Always the linear-probing hash vector (tests; huge widths).
    ForceHash,
}

/// A reusable sparse-row accumulator (dense SPA or hash vector).
#[derive(Debug)]
pub enum Accumulator<T> {
    /// Generation-stamped scatter array.
    Dense(DenseSpa<T>),
    /// Linear-probing open-addressing hash vector.
    Hash(HashAccum<T>),
}

impl<T> Accumulator<T> {
    /// Choose a variant for an output of `ncols` columns under `policy`.
    pub fn with_policy(ncols: usize, policy: AccumPolicy) -> Self {
        match policy {
            AccumPolicy::Auto if ncols <= DENSE_WIDTH_LIMIT => {
                Accumulator::Dense(DenseSpa::new(ncols))
            }
            AccumPolicy::Auto | AccumPolicy::ForceHash => Accumulator::Hash(HashAccum::new()),
            AccumPolicy::ForceDense => Accumulator::Dense(DenseSpa::new(ncols)),
        }
    }

    /// The automatic choice for an output of `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        Self::with_policy(ncols, AccumPolicy::Auto)
    }

    /// Fold `val` into column `col`, combining collisions with `add`.
    #[inline]
    pub fn scatter(&mut self, col: usize, val: T, add: impl FnOnce(&mut T, T)) {
        match self {
            Accumulator::Dense(spa) => spa.scatter(col, val, add),
            Accumulator::Hash(h) => h.scatter(col, val, add),
        }
    }

    /// Number of distinct columns currently accumulated.
    pub fn len(&self) -> usize {
        match self {
            Accumulator::Dense(spa) => spa.touched.len(),
            Accumulator::Hash(h) => h.used.len(),
        }
    }

    /// Whether nothing has been accumulated since the last extract.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probe tally since the last [`Accumulator::take_probes`] call.
    pub fn take_probes(&mut self) -> u64 {
        let probes = match self {
            Accumulator::Dense(spa) => &mut spa.probes,
            Accumulator::Hash(h) => &mut h.probes,
        };
        std::mem::take(probes)
    }

    /// Drain the accumulated row, sorted by column, into a fresh vector, and
    /// reset the accumulator for the next row (storage is retained).
    pub fn extract_sorted(&mut self) -> Vec<(usize, T)> {
        match self {
            Accumulator::Dense(spa) => spa.extract_sorted(),
            Accumulator::Hash(h) => h.extract_sorted(),
        }
    }
}

/// Generation-stamped scatter array with a touched-column list.
///
/// `stamp[c] == generation` marks column `c` live for the current row; a
/// reset is a single generation bump, so the O(width) arrays are paid for
/// once per worker, not once per row.  Values live in `MaybeUninit` slots —
/// the stamp array is the sole liveness witness, which keeps the hot scatter
/// path free of `Option` discriminant traffic (measurable for 32-byte entry
/// types like the overlap semiring's).
#[derive(Debug)]
pub struct DenseSpa<T> {
    stamp: Vec<u64>,
    generation: u64,
    vals: Vec<std::mem::MaybeUninit<T>>,
    touched: Vec<usize>,
    probes: u64,
}

impl<T> DenseSpa<T> {
    /// A SPA covering columns `0..ncols`.
    pub fn new(ncols: usize) -> Self {
        let mut vals = Vec::with_capacity(ncols);
        // SAFETY-ADJACENT: slots start uninitialised; `stamp[c] == generation`
        // is the invariant marking slot `c` initialised for the current row.
        vals.resize_with(ncols, std::mem::MaybeUninit::uninit);
        Self { stamp: vec![0; ncols], generation: 1, vals, touched: Vec::new(), probes: 0 }
    }

    #[inline]
    fn scatter(&mut self, col: usize, val: T, add: impl FnOnce(&mut T, T)) {
        self.probes += 1;
        if self.stamp[col] == self.generation {
            // SAFETY: the stamp invariant guarantees the slot was written
            // this generation and not yet extracted.
            add(unsafe { self.vals[col].assume_init_mut() }, val);
        } else {
            self.stamp[col] = self.generation;
            self.vals[col].write(val);
            self.touched.push(col);
        }
    }

    fn extract_sorted(&mut self) -> Vec<(usize, T)> {
        self.touched.sort_unstable();
        let vals = &mut self.vals;
        let row = self
            .touched
            .drain(..)
            // SAFETY: every touched slot was written this generation; the
            // generation bump below marks them uninitialised again, so each
            // value is read out exactly once.
            .map(|c| (c, unsafe { vals[c].assume_init_read() }))
            .collect();
        self.generation += 1;
        row
    }
}

impl<T> Drop for DenseSpa<T> {
    fn drop(&mut self) {
        // Slots touched since the last extract still hold live values.
        for &c in &self.touched {
            // SAFETY: `touched` lists exactly the slots written this
            // generation and not yet extracted.
            unsafe { self.vals[c].assume_init_drop() };
        }
    }
}

const EMPTY_KEY: usize = usize::MAX;

/// Linear-probing open-addressing hash accumulator.
#[derive(Debug)]
pub struct HashAccum<T> {
    keys: Vec<usize>,
    vals: Vec<Option<T>>,
    used: Vec<usize>,
    probes: u64,
}

impl<T> HashAccum<T> {
    /// An empty accumulator (capacity grows geometrically on demand).
    pub fn new() -> Self {
        let cap = 16;
        Self {
            keys: vec![EMPTY_KEY; cap],
            vals: (0..cap).map(|_| None).collect(),
            used: Vec::new(),
            probes: 0,
        }
    }

    #[inline]
    fn slot_for(&self, col: usize) -> usize {
        // Fibonacci hashing onto a power-of-two table.
        let hash = (col as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (hash >> (64 - self.keys.len().trailing_zeros())) as usize
    }

    #[inline]
    fn scatter(&mut self, col: usize, val: T, add: impl FnOnce(&mut T, T)) {
        debug_assert_ne!(col, EMPTY_KEY, "column index reserved as the empty marker");
        if (self.used.len() + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = self.slot_for(col);
        loop {
            self.probes += 1;
            if self.keys[slot] == col {
                add(self.vals[slot].as_mut().expect("occupied hash slot holds a value"), val);
                return;
            }
            if self.keys[slot] == EMPTY_KEY {
                self.keys[slot] = col;
                self.vals[slot] = Some(val);
                self.used.push(slot);
                return;
            }
            slot = (slot + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_cap]);
        let mut old_vals =
            std::mem::replace(&mut self.vals, (0..new_cap).map(|_| None).collect());
        let old_used = std::mem::take(&mut self.used);
        let mask = new_cap - 1;
        for slot in old_used {
            let col = old_keys[slot];
            let val = old_vals[slot].take();
            let mut new_slot = self.slot_for(col);
            while self.keys[new_slot] != EMPTY_KEY {
                new_slot = (new_slot + 1) & mask;
            }
            self.keys[new_slot] = col;
            self.vals[new_slot] = val;
            self.used.push(new_slot);
        }
    }

    fn extract_sorted(&mut self) -> Vec<(usize, T)> {
        let keys = &mut self.keys;
        let vals = &mut self.vals;
        let mut row: Vec<(usize, T)> = self
            .used
            .drain(..)
            .map(|slot| {
                let col = std::mem::replace(&mut keys[slot], EMPTY_KEY);
                (col, vals[slot].take().expect("occupied hash slot holds a value"))
            })
            .collect();
        row.sort_unstable_by_key(|(c, _)| *c);
        row
    }
}

impl<T> Default for HashAccum<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_and_extract(acc: &mut Accumulator<i64>) -> Vec<(usize, i64)> {
        for (col, val) in [(7usize, 1i64), (3, 10), (7, 2), (0, 5), (3, 1)] {
            acc.scatter(col, val, |a, b| *a += b);
        }
        assert_eq!(acc.len(), 3);
        acc.extract_sorted()
    }

    #[test]
    fn dense_spa_accumulates_and_sorts() {
        let mut acc = Accumulator::with_policy(16, AccumPolicy::ForceDense);
        assert_eq!(fill_and_extract(&mut acc), vec![(0, 5), (3, 11), (7, 3)]);
        assert!(acc.take_probes() >= 5);
        // Reuse after extract: the generation bump must forget the old row.
        acc.scatter(7, 100, |a, b| *a += b);
        assert_eq!(acc.extract_sorted(), vec![(7, 100)]);
    }

    #[test]
    fn hash_accum_accumulates_and_sorts() {
        let mut acc = Accumulator::with_policy(16, AccumPolicy::ForceHash);
        assert_eq!(fill_and_extract(&mut acc), vec![(0, 5), (3, 11), (7, 3)]);
        assert!(acc.take_probes() >= 5);
        acc.scatter(7, 100, |a, b| *a += b);
        assert_eq!(acc.extract_sorted(), vec![(7, 100)]);
    }

    #[test]
    fn hash_accum_grows_past_initial_capacity() {
        let mut acc: HashAccum<u64> = HashAccum::new();
        for col in 0..5_000usize {
            acc.scatter(col * 3, col as u64, |a, b| *a += b);
        }
        let row = acc.extract_sorted();
        assert_eq!(row.len(), 5_000);
        for (i, (c, v)) in row.iter().enumerate() {
            assert_eq!(*c, i * 3);
            assert_eq!(*v, i as u64);
        }
        // Reuse keeps the grown capacity but no stale entries.
        acc.scatter(42, 1, |a, b| *a += b);
        assert_eq!(acc.extract_sorted(), vec![(42, 1)]);
    }

    #[test]
    fn auto_policy_picks_by_width() {
        assert!(matches!(Accumulator::<i64>::new(100), Accumulator::Dense(_)));
        assert!(matches!(
            Accumulator::<i64>::new(DENSE_WIDTH_LIMIT + 1),
            Accumulator::Hash(_)
        ));
    }

    #[test]
    fn flop_counter_tallies_and_tracks_peak() {
        let c = FlopCounter::new();
        c.record_row(10, 12, 4);
        c.record_row(3, 3, 9);
        c.record_row(0, 0, 2);
        assert_eq!(c.flops(), 26, "2 flops per accumulated product");
        assert_eq!(c.probes(), 15);
        assert_eq!(c.peak_row_width(), 9);
    }
}

//! Coordinate-format (COO) sparse matrix storage.
//!
//! Triples are the interchange format of this crate: matrices are assembled
//! from `(row, col, value)` triples, redistributed across virtual ranks as
//! triples, and converted to [`crate::CsrMatrix`] for computation.

use serde::{Deserialize, Serialize};

/// A sparse matrix in coordinate format.
///
/// Duplicate `(row, col)` entries are allowed until [`Triples::merge_duplicates`]
/// is called (or until conversion to CSR, which requires uniqueness).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Triples<T> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T> Triples<T> {
    /// Create an empty triple list for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, entries: Vec::new() }
    }

    /// Create from an existing list of `(row, col, value)` entries.
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_entries(nrows: usize, ncols: usize, entries: Vec<(usize, usize, T)>) -> Self {
        for (r, c, _) in &entries {
            assert!(*r < nrows && *c < ncols, "entry ({r},{c}) out of bounds {nrows}x{ncols}");
        }
        Self { nrows, ncols, entries }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (including duplicates, if any).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no stored entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append one entry.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row},{col}) out of bounds {}x{}",
            self.nrows,
            self.ncols
        );
        self.entries.push((row, col, value));
    }

    /// Borrow the entries.
    pub fn entries(&self) -> &[(usize, usize, T)] {
        &self.entries
    }

    /// Consume and return the entries.
    pub fn into_entries(self) -> Vec<(usize, usize, T)> {
        self.entries
    }

    /// Iterate over `(row, col, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        self.entries.iter().map(|(r, c, v)| (*r, *c, v))
    }

    /// Sort entries by `(row, col)`.
    pub fn sort(&mut self) {
        self.entries.sort_by_key(|a| (a.0, a.1));
    }

    /// Sort by `(row, col)` and merge duplicate coordinates with `combine`.
    ///
    /// `combine(acc, new)` folds a later duplicate into the earlier one.
    pub fn merge_duplicates(&mut self, mut combine: impl FnMut(&mut T, T)) {
        self.sort();
        let mut merged: Vec<(usize, usize, T)> = Vec::with_capacity(self.entries.len());
        for (r, c, v) in std::mem::take(&mut self.entries) {
            match merged.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => combine(lv, v),
                _ => merged.push((r, c, v)),
            }
        }
        self.entries = merged;
    }

    /// Map values to a new type, keeping the sparsity pattern.
    pub fn map<U>(self, mut f: impl FnMut(T) -> U) -> Triples<U> {
        Triples {
            nrows: self.nrows,
            ncols: self.ncols,
            entries: self.entries.into_iter().map(|(r, c, v)| (r, c, f(v))).collect(),
        }
    }

    /// Keep only the entries for which `pred(row, col, &value)` is true.
    pub fn retain(&mut self, mut pred: impl FnMut(usize, usize, &T) -> bool) {
        self.entries.retain(|(r, c, v)| pred(*r, *c, v));
    }

    /// Swap rows and columns (transpose), preserving values.
    pub fn transpose(self) -> Triples<T> {
        Triples {
            nrows: self.ncols,
            ncols: self.nrows,
            entries: self.entries.into_iter().map(|(r, c, v)| (c, r, v)).collect(),
        }
    }
}

impl<T: Clone> Triples<T> {
    /// The set of `(row, col)` coordinates, sorted.
    pub fn pattern(&self) -> Vec<(usize, usize)> {
        let mut p: Vec<(usize, usize)> = self.entries.iter().map(|(r, c, _)| (*r, *c)).collect();
        p.sort_unstable();
        p
    }
}

impl<T> Extend<(usize, usize, T)> for Triples<T> {
    fn extend<I: IntoIterator<Item = (usize, usize, T)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_and_iter_roundtrip() {
        let mut t = Triples::new(3, 4);
        t.push(0, 1, 10);
        t.push(2, 3, 20);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 4);
        let collected: Vec<_> = t.iter().map(|(r, c, v)| (r, c, *v)).collect();
        assert_eq!(collected, vec![(0, 1, 10), (2, 3, 20)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut t = Triples::new(2, 2);
        t.push(2, 0, 1);
    }

    #[test]
    fn merge_duplicates_combines_values() {
        let mut t = Triples::new(2, 2);
        t.push(1, 1, 5);
        t.push(0, 0, 1);
        t.push(1, 1, 7);
        t.push(0, 0, 2);
        t.merge_duplicates(|acc, v| *acc += v);
        assert_eq!(t.entries(), &[(0, 0, 3), (1, 1, 12)]);
    }

    #[test]
    fn merge_duplicates_keeps_unique_entries_sorted() {
        let mut t = Triples::new(3, 3);
        t.push(2, 0, 1);
        t.push(0, 2, 2);
        t.push(1, 1, 3);
        t.merge_duplicates(|_, _| panic!("no duplicates expected"));
        assert_eq!(t.entries(), &[(0, 2, 2), (1, 1, 3), (2, 0, 1)]);
    }

    #[test]
    fn transpose_swaps_coordinates_and_dims() {
        let mut t = Triples::new(2, 5);
        t.push(1, 4, 7);
        t.push(0, 2, 3);
        let tt = t.transpose();
        assert_eq!(tt.nrows(), 5);
        assert_eq!(tt.ncols(), 2);
        assert_eq!(tt.pattern(), vec![(2, 0), (4, 1)]);
    }

    #[test]
    fn map_changes_value_type() {
        let mut t = Triples::new(1, 3);
        t.push(0, 0, 2u32);
        t.push(0, 2, 4u32);
        let m = t.map(|v| v as f64 * 1.5);
        let vals: Vec<f64> = m.iter().map(|(_, _, v)| *v).collect();
        assert_eq!(vals, vec![3.0, 6.0]);
    }

    #[test]
    fn retain_filters_entries() {
        let mut t = Triples::new(4, 4);
        for i in 0..4 {
            t.push(i, i, i as u64);
        }
        t.retain(|_, _, v| *v % 2 == 0);
        assert_eq!(t.pattern(), vec![(0, 0), (2, 2)]);
    }

    #[test]
    fn from_entries_validates_bounds() {
        let t = Triples::from_entries(2, 2, vec![(0, 0, 1), (1, 1, 2)]);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_entries_rejects_bad_bounds() {
        let _ = Triples::from_entries(2, 2, vec![(0, 5, 1)]);
    }

    proptest! {
        #[test]
        fn prop_transpose_is_involution(
            entries in proptest::collection::vec((0usize..20, 0usize..30, 0i64..100), 0..200)
        ) {
            let mut t = Triples::new(20, 30);
            for (r, c, v) in entries {
                t.push(r, c, v);
            }
            let back = t.clone().transpose().transpose();
            prop_assert_eq!(t.pattern(), back.pattern());
            prop_assert_eq!(t.nrows(), back.nrows());
            prop_assert_eq!(t.ncols(), back.ncols());
        }

        #[test]
        fn prop_merge_duplicates_sum_preserved(
            entries in proptest::collection::vec((0usize..5, 0usize..5, 1i64..10), 0..100)
        ) {
            let mut t = Triples::new(5, 5);
            let total: i64 = entries.iter().map(|e| e.2).sum();
            for (r, c, v) in entries {
                t.push(r, c, v);
            }
            t.merge_duplicates(|a, b| *a += b);
            let merged_total: i64 = t.iter().map(|(_, _, v)| *v).sum();
            prop_assert_eq!(total, merged_total);
            // No duplicate coordinates remain.
            let pat = t.pattern();
            let mut dedup = pat.clone();
            dedup.dedup();
            prop_assert_eq!(pat, dedup);
        }
    }
}

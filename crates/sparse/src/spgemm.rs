//! Local sparse matrix-matrix multiplication over a semiring.
//!
//! CombBLAS' local SpGEMM uses a hybrid hash/heap algorithm; we implement a
//! row-wise Gustavson SpGEMM with hash-map accumulation, parallelised over the
//! output rows with rayon.  The same kernel is reused by the SUMMA stages
//! ([`mod@crate::summa`]) and the 1D outer-product baseline ([`crate::outer1d`]),
//! which also needs the accumulate-into-existing-partial variant
//! [`spgemm_accumulate`].

use crate::csr::CsrMatrix;
use crate::semiring::Semiring;
use rayon::prelude::*;
use std::collections::HashMap;

/// Compute `C = A · B` over semiring `S`.
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn local_spgemm<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
) -> CsrMatrix<S::Out> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "inner dimension mismatch: A is {}x{}, B is {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let rows: Vec<Vec<(usize, S::Out)>> = (0..a.nrows())
        .into_par_iter()
        .map(|i| multiply_row::<S>(a, b, i))
        .collect();
    rows_to_csr(a.nrows(), b.ncols(), rows)
}

/// Multiply a single output row `i`: combine row `i` of `A` with the rows of
/// `B` selected by `A`'s column indices, accumulating per output column.
fn multiply_row<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
    i: usize,
) -> Vec<(usize, S::Out)> {
    let mut acc: HashMap<usize, S::Out> = HashMap::new();
    for (k, aval) in a.row(i) {
        for (j, bval) in b.row(k) {
            if let Some(prod) = S::multiply(aval, bval) {
                match acc.entry(j) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        S::add(e.get_mut(), prod);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(prod);
                    }
                }
            }
        }
    }
    let mut row: Vec<(usize, S::Out)> = acc.into_iter().collect();
    row.sort_unstable_by_key(|(j, _)| *j);
    row
}

/// Accumulate `A · B` into an existing set of per-row partial results.
///
/// `partial` must have one entry per output row; each entry is a sorted
/// `(col, value)` list.  This is the kernel SUMMA uses across its `sqrt(P)`
/// stages and the 1D algorithm uses when merging partial products.
pub fn spgemm_accumulate<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
    partial: &mut [Vec<(usize, S::Out)>],
) {
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    assert_eq!(partial.len(), a.nrows(), "partial must have one slot per output row");
    partial.par_iter_mut().enumerate().for_each(|(i, slot)| {
        let new_row = multiply_row::<S>(a, b, i);
        if new_row.is_empty() {
            return;
        }
        if slot.is_empty() {
            *slot = new_row;
        } else {
            *slot = merge_rows::<S>(std::mem::take(slot), new_row);
        }
    });
}

/// Merge two sorted `(col, value)` rows, combining collisions with `S::add`.
pub fn merge_rows<S: Semiring>(
    left: Vec<(usize, S::Out)>,
    right: Vec<(usize, S::Out)>,
) -> Vec<(usize, S::Out)> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut li = left.into_iter().peekable();
    let mut ri = right.into_iter().peekable();
    loop {
        match (li.peek(), ri.peek()) {
            (Some((lc, _)), Some((rc, _))) => {
                if lc < rc {
                    out.push(li.next().unwrap());
                } else if rc < lc {
                    out.push(ri.next().unwrap());
                } else {
                    let (c, mut lv) = li.next().unwrap();
                    let (_, rv) = ri.next().unwrap();
                    S::add(&mut lv, rv);
                    out.push((c, lv));
                }
            }
            (Some(_), None) => out.push(li.next().unwrap()),
            (None, Some(_)) => out.push(ri.next().unwrap()),
            (None, None) => break,
        }
    }
    out
}

/// Assemble per-row `(col, value)` lists into a CSR matrix.
pub fn rows_to_csr<T: Clone + Send>(
    nrows: usize,
    ncols: usize,
    rows: Vec<Vec<(usize, T)>>,
) -> CsrMatrix<T> {
    assert_eq!(rows.len(), nrows);
    let nnz: usize = rows.iter().map(|r| r.len()).sum();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for row in rows {
        for (c, v) in row {
            colidx.push(c);
            vals.push(v);
        }
        rowptr.push(colidx.len());
    }
    CsrMatrix::from_raw(nrows, ncols, rowptr, colidx, vals)
}

/// A straightforward dense reference SpGEMM used to validate the sparse
/// kernels in tests and property tests.
pub fn dense_reference_spgemm<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
) -> Vec<Vec<Option<S::Out>>> {
    assert_eq!(a.ncols(), b.nrows());
    let mut dense: Vec<Vec<Option<S::Out>>> = vec![vec![None; b.ncols()]; a.nrows()];
    for (i, k, aval) in a.iter() {
        for (j, bval) in b.row(k) {
            if let Some(prod) = S::multiply(aval, bval) {
                match &mut dense[i][j] {
                    Some(acc) => S::add(acc, prod),
                    slot @ None => *slot = Some(prod),
                }
            }
        }
    }
    dense
}

/// Compare a sparse result against the dense reference (used by tests).
pub fn matches_dense<T: PartialEq + Clone>(
    sparse: &CsrMatrix<T>,
    dense: &[Vec<Option<T>>],
) -> bool {
    if dense.len() != sparse.nrows() {
        return false;
    }
    for i in 0..sparse.nrows() {
        for j in 0..sparse.ncols() {
            let d = dense[i][j].as_ref();
            let s = sparse.get(i, j);
            if d != s {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolAndOr, MinPlusNum, PlusTimes};
    use crate::triples::Triples;
    use proptest::prelude::*;

    fn matrix_from(entries: Vec<(usize, usize, i64)>, nrows: usize, ncols: usize) -> CsrMatrix<i64> {
        CsrMatrix::from_triples(&Triples::from_entries(nrows, ncols, entries))
    }

    #[test]
    fn small_plus_times_product() {
        // A = [1 2; 0 3], B = [4 0; 5 6]  =>  C = [14 12; 15 18]
        let a = matrix_from(vec![(0, 0, 1), (0, 1, 2), (1, 1, 3)], 2, 2);
        let b = matrix_from(vec![(0, 0, 4), (1, 0, 5), (1, 1, 6)], 2, 2);
        let c = local_spgemm::<PlusTimes<i64>>(&a, &b);
        assert_eq!(c.get(0, 0), Some(&14));
        assert_eq!(c.get(0, 1), Some(&12));
        assert_eq!(c.get(1, 0), Some(&15));
        assert_eq!(c.get(1, 1), Some(&18));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn product_with_empty_matrix_is_empty() {
        let a = matrix_from(vec![(0, 0, 1)], 2, 3);
        let b = CsrMatrix::<i64>::zero(3, 4);
        let c = local_spgemm::<PlusTimes<i64>>(&a, &b);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 4);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_dimensions_panic() {
        let a = matrix_from(vec![(0, 0, 1)], 2, 3);
        let b = matrix_from(vec![(0, 0, 1)], 2, 2);
        let _ = local_spgemm::<PlusTimes<i64>>(&a, &b);
    }

    #[test]
    fn min_plus_finds_two_hop_shortest_paths() {
        // Path graph 0 -> 1 -> 2 with weights 2 and 3, plus direct 0 -> 2 with weight 10.
        let entries = vec![(0usize, 1usize, 2u64), (1, 2, 3), (0, 2, 10)];
        let r = CsrMatrix::from_triples(&Triples::from_entries(3, 3, entries));
        let n = local_spgemm::<MinPlusNum<u64>>(&r, &r);
        // Two-hop path 0 -> 2 via 1 costs 5; the "direct then nothing" path is absent
        // because there is no outgoing edge from 2.
        assert_eq!(n.get(0, 2), Some(&5));
    }

    #[test]
    fn bool_semiring_squares_reachability() {
        let entries = vec![(0usize, 1usize, true), (1, 2, true)];
        let g = CsrMatrix::from_triples(&Triples::from_entries(3, 3, entries));
        let g2 = local_spgemm::<BoolAndOr>(&g, &g);
        assert_eq!(g2.get(0, 2), Some(&true));
        assert_eq!(g2.nnz(), 1);
    }

    #[test]
    fn accumulate_equals_one_shot_product() {
        let a = matrix_from(vec![(0, 0, 1), (0, 1, 2), (1, 1, 3), (2, 0, 4)], 3, 2);
        let b = matrix_from(vec![(0, 0, 5), (0, 1, 6), (1, 0, 7), (1, 2, 8)], 2, 3);
        let direct = local_spgemm::<PlusTimes<i64>>(&a, &b);
        let mut partial: Vec<Vec<(usize, i64)>> = vec![Vec::new(); 3];
        spgemm_accumulate::<PlusTimes<i64>>(&a, &b, &mut partial);
        let assembled = rows_to_csr(3, 3, partial);
        assert_eq!(direct, assembled);
    }

    #[test]
    fn accumulate_merges_across_calls() {
        // Split A into its two columns and B into its two rows; summing the two
        // outer products must give the same result as the full product.
        let a = matrix_from(vec![(0, 0, 1), (0, 1, 2), (1, 1, 3)], 2, 2);
        let b = matrix_from(vec![(0, 0, 4), (1, 0, 5), (1, 1, 6)], 2, 2);
        let full = local_spgemm::<PlusTimes<i64>>(&a, &b);

        let a_col0 = matrix_from(vec![(0, 0, 1)], 2, 1);
        let a_col1 = matrix_from(vec![(0, 0, 2), (1, 0, 3)], 2, 1);
        let b_row0 = matrix_from(vec![(0, 0, 4)], 1, 2);
        let b_row1 = matrix_from(vec![(0, 0, 5), (0, 1, 6)], 1, 2);

        let mut partial: Vec<Vec<(usize, i64)>> = vec![Vec::new(); 2];
        spgemm_accumulate::<PlusTimes<i64>>(&a_col0, &b_row0, &mut partial);
        spgemm_accumulate::<PlusTimes<i64>>(&a_col1, &b_row1, &mut partial);
        let assembled = rows_to_csr(2, 2, partial);
        assert_eq!(full, assembled);
    }

    #[test]
    fn merge_rows_combines_collisions() {
        let left = vec![(0usize, 1i64), (2, 3)];
        let right = vec![(1usize, 10i64), (2, 5)];
        let merged = merge_rows::<PlusTimes<i64>>(left, right);
        assert_eq!(merged, vec![(0, 1), (1, 10), (2, 8)]);
    }

    #[test]
    fn dense_reference_agrees_on_small_case() {
        let a = matrix_from(vec![(0, 0, 1), (0, 1, 2), (1, 1, 3)], 2, 2);
        let b = matrix_from(vec![(0, 0, 4), (1, 0, 5), (1, 1, 6)], 2, 2);
        let c = local_spgemm::<PlusTimes<i64>>(&a, &b);
        let dense = dense_reference_spgemm::<PlusTimes<i64>>(&a, &b);
        assert!(matches_dense(&c, &dense));
    }

    fn arb_matrix(nrows: usize, ncols: usize) -> impl Strategy<Value = CsrMatrix<i64>> {
        proptest::collection::btree_set((0..nrows, 0..ncols), 0..(nrows * ncols).min(60)).prop_map(
            move |coords| {
                let entries: Vec<_> = coords
                    .into_iter()
                    .enumerate()
                    .map(|(i, (r, c))| (r, c, (i % 7) as i64 - 3))
                    .collect();
                CsrMatrix::from_triples(&Triples::from_entries(nrows, ncols, entries))
            },
        )
    }

    proptest! {
        #[test]
        fn prop_spgemm_matches_dense_reference(
            a in arb_matrix(8, 6),
            b in arb_matrix(6, 9),
        ) {
            let c = local_spgemm::<PlusTimes<i64>>(&a, &b);
            prop_assert!(c.validate().is_ok());
            let dense = dense_reference_spgemm::<PlusTimes<i64>>(&a, &b);
            prop_assert!(matches_dense(&c, &dense));
        }

        #[test]
        fn prop_spgemm_transpose_identity(
            a in arb_matrix(7, 5),
            b in arb_matrix(5, 6),
        ) {
            // (A·B)ᵀ == Bᵀ·Aᵀ over a commutative semiring.
            let ab_t = local_spgemm::<PlusTimes<i64>>(&a, &b).transpose();
            let bt_at = local_spgemm::<PlusTimes<i64>>(&b.transpose(), &a.transpose());
            prop_assert_eq!(ab_t, bt_at);
        }

        #[test]
        fn prop_accumulate_split_equals_full(
            a in arb_matrix(6, 4),
            b in arb_matrix(4, 5),
        ) {
            let full = local_spgemm::<PlusTimes<i64>>(&a, &b);
            // Accumulate the product one inner index at a time (rank-1 updates).
            let at = a.transpose();
            let mut partial: Vec<Vec<(usize, i64)>> = vec![Vec::new(); a.nrows()];
            for k in 0..a.ncols() {
                // Column k of A as a nrows x 1 matrix; row k of B as 1 x ncols.
                let mut col_t = Triples::new(a.nrows(), 1);
                for (r, v) in at.row(k) {
                    col_t.push(r, 0, *v);
                }
                let mut row_t = Triples::new(1, b.ncols());
                for (c, v) in b.row(k) {
                    row_t.push(0, c, *v);
                }
                let col = CsrMatrix::from_triples(&col_t);
                let row = CsrMatrix::from_triples(&row_t);
                spgemm_accumulate::<PlusTimes<i64>>(&col, &row, &mut partial);
            }
            let assembled = rows_to_csr(a.nrows(), b.ncols(), partial);
            prop_assert_eq!(full, assembled);
        }
    }
}

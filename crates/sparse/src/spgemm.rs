//! Local sparse matrix-matrix multiplication over a semiring.
//!
//! CombBLAS' local SpGEMM uses a tuned hybrid hash/heap algorithm; this
//! module implements a row-wise Gustavson SpGEMM on top of the reusable
//! [`Accumulator`] abstraction (dense SPA or linear-probing hash vector, see
//! [`crate::accum`]): one accumulator is created per worker thread of the
//! work-stealing pool and reused across every output row that worker claims —
//! and, through [`spgemm_stages`], across all SUMMA stages of a block
//! product, so no per-row `HashMap` is ever allocated and no per-stage
//! sorted-merge is performed.
//!
//! The right operand is abstracted by [`RightRows`], which is implemented by
//! [`CsrMatrix`] (rows of `B`) and by [`CscView`] (columns of `B`, i.e. rows
//! of `Bᵀ`): the same kernel therefore computes both `A·B` and the
//! transpose-free `A·Bᵀ` ([`local_spgemm_abt`]) that overlap detection's
//! `C = A·Aᵀ` uses without materialising a transpose.
//!
//! All kernels tally useful flops, accumulator probes and the peak row width
//! into a [`FlopCounter`]; the distributed layers fold those into
//! `CommStats::extras` so every phase reports flops/s.

use crate::accum::{AccumPolicy, Accumulator, FlopCounter};
use crate::csr::{CscView, CsrMatrix};
use crate::semiring::{MirrorSemiring, Semiring};
use rayon::pool;
use std::collections::HashMap;

/// Row-indexed access to the *effective* right operand `B_eff` of a product
/// `C = A·B_eff`, abstracting over `B` stored by rows ([`CsrMatrix`]) and
/// `Bᵀ` walked through `B`'s columns ([`CscView`]).
pub trait RightRows<T>: Sync {
    /// Rows of the effective operand (must equal `A`'s column count).
    fn nrows(&self) -> usize;
    /// Columns of the effective operand (the output width).
    fn ncols(&self) -> usize;
    /// Iterate effective row `k` as `(col, &value)` pairs.
    fn inner<'s>(&'s self, k: usize) -> impl Iterator<Item = (usize, &'s T)>
    where
        T: 's;
    /// Iterate effective row `k` restricted to columns `>= min_col`
    /// (entries are column-sorted, so implementations binary-search the
    /// start; the symmetric `A·Aᵀ` kernel walks only the upper triangle
    /// this way).
    fn inner_from<'s>(&'s self, k: usize, min_col: usize) -> impl Iterator<Item = (usize, &'s T)>
    where
        T: 's;
}

impl<T: Sync> RightRows<T> for CsrMatrix<T> {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }
    fn inner<'s>(&'s self, k: usize) -> impl Iterator<Item = (usize, &'s T)>
    where
        T: 's,
    {
        self.row(k)
    }
    fn inner_from<'s>(&'s self, k: usize, min_col: usize) -> impl Iterator<Item = (usize, &'s T)>
    where
        T: 's,
    {
        let range = self.rowptr()[k]..self.rowptr()[k + 1];
        let cols = &self.colidx()[range.clone()];
        let start = cols.partition_point(|&c| c < min_col);
        cols[start..]
            .iter()
            .copied()
            .zip(self.values()[range.start + start..range.end].iter())
    }
}

/// A [`CscView`] of `B` acts as the operand `Bᵀ`: effective row `k` is
/// column `k` of `B`.
impl<T: Sync> RightRows<T> for CscView<'_, T> {
    fn nrows(&self) -> usize {
        CscView::ncols(self)
    }
    fn ncols(&self) -> usize {
        CscView::nrows(self)
    }
    fn inner<'s>(&'s self, k: usize) -> impl Iterator<Item = (usize, &'s T)>
    where
        T: 's,
    {
        self.col(k)
    }
    fn inner_from<'s>(&'s self, k: usize, min_col: usize) -> impl Iterator<Item = (usize, &'s T)>
    where
        T: 's,
    {
        self.col_from(k, min_col)
    }
}

/// Scatter row `i` of `A · B_eff` into `acc`, returning the number of
/// accumulated (non-annihilated) products.
#[inline]
fn scatter_row<S: Semiring, R: RightRows<S::Right>>(
    a: &CsrMatrix<S::Left>,
    right: &R,
    i: usize,
    acc: &mut Accumulator<S::Out>,
) -> u64 {
    let mut products = 0u64;
    for (k, aval) in a.row(i) {
        for (j, bval) in right.inner(k) {
            if let Some(prod) = S::multiply(aval, bval) {
                products += 1;
                acc.scatter(j, prod, S::add);
            }
        }
    }
    products
}

/// Multiply-accumulate a whole sequence of stage pairs into one output block:
/// `C = Σ_s A_s · B_eff_s`, parallel over output rows with one reusable
/// accumulator per worker.
///
/// This is the kernel SUMMA uses: every rank passes its `√P` stage pairs at
/// once, so each output row is accumulated in place across all stages and
/// extracted (sorted) exactly once — no per-stage sorted merge.
///
/// # Panics
/// Panics if any stage's dimensions disagree with `out_rows`/`out_cols` or
/// between the pair's operands.
pub fn spgemm_stages<S, R>(
    out_rows: usize,
    out_cols: usize,
    stages: &[(&CsrMatrix<S::Left>, &R)],
    policy: AccumPolicy,
    flops: &FlopCounter,
) -> CsrMatrix<S::Out>
where
    S: Semiring,
    R: RightRows<S::Right>,
{
    for (a, right) in stages {
        assert_eq!(a.nrows(), out_rows, "stage with mismatched output row count");
        assert_eq!(right.ncols(), out_cols, "stage with mismatched output column count");
        assert_eq!(
            a.ncols(),
            right.nrows(),
            "inner dimension mismatch: A is {}x{}, B is {}x{}",
            a.nrows(),
            a.ncols(),
            right.nrows(),
            right.ncols()
        );
    }
    let rows: Vec<Vec<(usize, S::Out)>> = pool::map_indexed_with(
        out_rows,
        || Accumulator::with_policy(out_cols, policy),
        |acc, i| {
            let mut products = 0u64;
            for (a, right) in stages {
                products += scatter_row::<S, R>(a, right, i, acc);
            }
            let width = acc.len() as u64;
            let probes = acc.take_probes();
            let row = acc.extract_sorted();
            flops.record_row(products, probes, width);
            row
        },
    );
    rows_to_csr(out_rows, out_cols, rows)
}

/// Compute `C = A · B` over semiring `S`.
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn local_spgemm<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
) -> CsrMatrix<S::Out> {
    local_spgemm_counted::<S>(a, b, &FlopCounter::new())
}

/// [`local_spgemm`] tallying its work into `flops`.
pub fn local_spgemm_counted<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
    flops: &FlopCounter,
) -> CsrMatrix<S::Out> {
    spgemm_stages::<S, _>(a.nrows(), b.ncols(), &[(a, b)], AccumPolicy::Auto, flops)
}

/// Compute `C = A · Bᵀ` over semiring `S` **without materialising `Bᵀ`**:
/// `B`'s columns are walked in place through a [`CscView`] (no value clones,
/// no transpose round-trip).
///
/// # Panics
/// Panics if `A` and `B` disagree on the inner (column) dimension.
pub fn local_spgemm_abt<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
) -> CsrMatrix<S::Out> {
    local_spgemm_abt_counted::<S>(a, b, &FlopCounter::new())
}

/// [`local_spgemm_abt`] tallying its work into `flops`.
pub fn local_spgemm_abt_counted<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
    flops: &FlopCounter,
) -> CsrMatrix<S::Out> {
    assert_eq!(
        a.ncols(),
        b.ncols(),
        "inner dimension mismatch for A·Bᵀ: A is {}x{}, B is {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    let view = b.csc_view();
    spgemm_stages::<S, _>(a.nrows(), b.nrows(), &[(a, &view)], AccumPolicy::Auto, flops)
}

/// Compute the symmetric product `C = A · Aᵀ` over a [`MirrorSemiring`],
/// multiplying only the **upper triangle** (diagonal included) and mirroring
/// it into the lower one — half the multiply work of [`local_spgemm_abt`]
/// with the same matrix passed twice.
///
/// The column-major form of `A` is built once (a contiguous local CSC copy —
/// each column is walked `O(column degree)` times, so contiguity beats the
/// zero-copy [`CscView`] here) and every worker enters each column at its
/// upper-triangle offset by binary search.
///
/// Exactness: for every `k` shared by rows `i` and `j`, the products
/// contributing to `C[i][j]` and `C[j][i]` arrive in the same (ascending `k`)
/// order, so `C[j][i] = mirror(C[i][j])` entry for entry — see
/// [`MirrorSemiring`].
pub fn local_spgemm_aat<S: MirrorSemiring>(a: &CsrMatrix<S::Left>) -> CsrMatrix<S::Out> {
    local_spgemm_aat_counted::<S>(a, &FlopCounter::new())
}

/// [`local_spgemm_aat`] tallying its work into `flops` (only the multiplies
/// actually performed — the upper triangle — are counted).
pub fn local_spgemm_aat_counted<S: MirrorSemiring>(
    a: &CsrMatrix<S::Left>,
    flops: &FlopCounter,
) -> CsrMatrix<S::Out> {
    let at = a.transpose();
    spgemm_stages_aat::<S, _>(a.nrows(), &[(a, &at)], AccumPolicy::Auto, flops)
}

/// Multiply-accumulate a sequence of stage pairs into one **diagonal** block
/// of a symmetric product, `C = Σ_s A_s · (A_s)ᵀ`, computing only the upper
/// triangle (diagonal included) and mirroring it into the lower one — the
/// multi-stage generalisation of [`local_spgemm_aat`] that the symmetric
/// Sparse SUMMA runs on its grid-diagonal blocks.
///
/// `n` is the (square) output dimension; each stage's effective right operand
/// must be the transpose of its left one (same inner dimension, `n` columns).
/// Row `i` enters every effective right row at its upper-triangle offset via
/// [`RightRows::inner_from`] (a binary search per inner index).
///
/// Exactness: for every inner index shared by rows `i` and `j ≥ i`, the
/// products contributing to `C[i][j]` and `C[j][i]` arrive in the same
/// (stage-major, ascending inner index) order in both this kernel and the
/// general [`spgemm_stages`], so `C[j][i] = mirror(C[i][j])` entry for entry —
/// see [`MirrorSemiring`].  Only the upper-triangle multiplies are tallied
/// into `flops`.
pub fn spgemm_stages_aat<S, R>(
    n: usize,
    stages: &[(&CsrMatrix<S::Left>, &R)],
    policy: AccumPolicy,
    flops: &FlopCounter,
) -> CsrMatrix<S::Out>
where
    S: MirrorSemiring,
    R: RightRows<S::Left>,
{
    for (a, right) in stages {
        assert_eq!(a.nrows(), n, "stage with mismatched output row count");
        assert_eq!(right.ncols(), n, "stage with mismatched output column count");
        assert_eq!(
            a.ncols(),
            right.nrows(),
            "inner dimension mismatch: A is {}x{}, B is {}x{}",
            a.nrows(),
            a.ncols(),
            right.nrows(),
            right.ncols()
        );
    }
    let upper: Vec<Vec<(usize, S::Out)>> = pool::map_indexed_with(
        n,
        || Accumulator::with_policy(n, policy),
        |acc, i| {
            let mut products = 0u64;
            for (a, right) in stages {
                for (k, aval) in a.row(i) {
                    for (j, bval) in right.inner_from(k, i) {
                        if let Some(prod) = S::multiply(aval, bval) {
                            products += 1;
                            acc.scatter(j, prod, S::add);
                        }
                    }
                }
            }
            let width = acc.len() as u64;
            let probes = acc.take_probes();
            let row = acc.extract_sorted();
            flops.record_row(products, probes, width);
            row
        },
    );
    mirror_upper_rows::<S>(n, upper)
}

/// Mirror the strict upper triangle of per-row `(col, value)` results into
/// the lower one and assemble the full square CSR block.
///
/// Iterating `i` ascending appends to each lower row in ascending column
/// order, so `lower[j] ++ upper[j]` is sorted without any per-row sort.
fn mirror_upper_rows<S: MirrorSemiring>(
    n: usize,
    upper: Vec<Vec<(usize, S::Out)>>,
) -> CsrMatrix<S::Out> {
    let mut lower: Vec<Vec<(usize, S::Out)>> = vec![Vec::new(); n];
    for (i, row) in upper.iter().enumerate() {
        for (j, v) in row {
            if *j > i {
                lower[*j].push((i, S::mirror(v)));
            }
        }
    }
    let rows: Vec<Vec<(usize, S::Out)>> = lower
        .into_iter()
        .zip(upper)
        .map(|(mut low, up)| {
            low.extend(up);
            low
        })
        .collect();
    rows_to_csr(n, n, rows)
}

/// The cross-diagonal mirror of a computed off-diagonal block of a symmetric
/// product: `C_{j,i} = mirror((C_{i,j})ᵀ)` — transpose the pattern, mirror
/// every value.  This is what the symmetric Sparse SUMMA materialises on each
/// strictly-lower grid rank after receiving its partner's block.
pub fn mirror_block<S: MirrorSemiring>(block: &CsrMatrix<S::Out>) -> CsrMatrix<S::Out> {
    block.transpose().map(|_, _, v| S::mirror(v))
}

/// Accumulate `A · B` into an existing set of per-row partial results.
///
/// `partial` must have one entry per output row; each entry is a sorted
/// `(col, value)` list.  The existing entries are re-seeded into the worker's
/// accumulator and the new products folded in place — collisions combine as
/// `add(existing, new)`, matching the old sorted-merge semantics exactly.
pub fn spgemm_accumulate<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
    partial: &mut [Vec<(usize, S::Out)>],
) {
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    assert_eq!(partial.len(), a.nrows(), "partial must have one slot per output row");
    let ncols = b.ncols();
    pool::for_each_mut_with(
        partial,
        || Accumulator::<S::Out>::new(ncols),
        |acc, i, slot| {
            for (c, v) in slot.drain(..) {
                acc.scatter(c, v, S::add);
            }
            scatter_row::<S, _>(a, b, i, acc);
            acc.take_probes();
            *slot = acc.extract_sorted();
        },
    );
}

/// Merge two sorted `(col, value)` rows, combining collisions with `S::add`.
pub fn merge_rows<S: Semiring>(
    left: Vec<(usize, S::Out)>,
    right: Vec<(usize, S::Out)>,
) -> Vec<(usize, S::Out)> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut li = left.into_iter().peekable();
    let mut ri = right.into_iter().peekable();
    loop {
        match (li.peek(), ri.peek()) {
            (Some((lc, _)), Some((rc, _))) => {
                if lc < rc {
                    out.push(li.next().unwrap());
                } else if rc < lc {
                    out.push(ri.next().unwrap());
                } else {
                    let (c, mut lv) = li.next().unwrap();
                    let (_, rv) = ri.next().unwrap();
                    S::add(&mut lv, rv);
                    out.push((c, lv));
                }
            }
            (Some(_), None) => out.push(li.next().unwrap()),
            (None, Some(_)) => out.push(ri.next().unwrap()),
            (None, None) => break,
        }
    }
    out
}

/// Assemble per-row `(col, value)` lists into a CSR matrix.
pub fn rows_to_csr<T: Clone + Send>(
    nrows: usize,
    ncols: usize,
    rows: Vec<Vec<(usize, T)>>,
) -> CsrMatrix<T> {
    assert_eq!(rows.len(), nrows);
    let nnz: usize = rows.iter().map(|r| r.len()).sum();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for row in rows {
        for (c, v) in row {
            colidx.push(c);
            vals.push(v);
        }
        rowptr.push(colidx.len());
    }
    CsrMatrix::from_raw(nrows, ncols, rowptr, colidx, vals)
}

/// The pre-refactor kernel: sequential row-wise Gustavson with one
/// `HashMap` allocated per output row.
///
/// Kept (1) as an independent oracle the accumulator kernels are tested
/// against and (2) as the regression baseline the `spgemm` bench compares
/// wall-clock against (the `baseline_speedup` field of `BENCH_spgemm.json`).
pub fn local_spgemm_baseline<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
) -> CsrMatrix<S::Out> {
    assert_eq!(a.ncols(), b.nrows(), "inner dimension mismatch");
    let mut rows: Vec<Vec<(usize, S::Out)>> = Vec::with_capacity(a.nrows());
    for i in 0..a.nrows() {
        let mut acc: HashMap<usize, S::Out> = HashMap::new();
        for (k, aval) in a.row(i) {
            for (j, bval) in b.row(k) {
                if let Some(prod) = S::multiply(aval, bval) {
                    match acc.entry(j) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            S::add(e.get_mut(), prod);
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(prod);
                        }
                    }
                }
            }
        }
        // lint: allow(hash-iter) — order restored by the sort on the next line
        let mut row: Vec<(usize, S::Out)> = acc.into_iter().collect();
        row.sort_unstable_by_key(|(j, _)| *j);
        rows.push(row);
    }
    rows_to_csr(a.nrows(), b.ncols(), rows)
}

/// A straightforward dense reference SpGEMM used to validate the sparse
/// kernels in tests and property tests.
pub fn dense_reference_spgemm<S: Semiring>(
    a: &CsrMatrix<S::Left>,
    b: &CsrMatrix<S::Right>,
) -> Vec<Vec<Option<S::Out>>> {
    assert_eq!(a.ncols(), b.nrows());
    let mut dense: Vec<Vec<Option<S::Out>>> = vec![vec![None; b.ncols()]; a.nrows()];
    for (i, k, aval) in a.iter() {
        for (j, bval) in b.row(k) {
            if let Some(prod) = S::multiply(aval, bval) {
                match &mut dense[i][j] {
                    Some(acc) => S::add(acc, prod),
                    slot @ None => *slot = Some(prod),
                }
            }
        }
    }
    dense
}

/// Compare a sparse result against the dense reference (used by tests).
pub fn matches_dense<T: PartialEq + Clone>(
    sparse: &CsrMatrix<T>,
    dense: &[Vec<Option<T>>],
) -> bool {
    if dense.len() != sparse.nrows() {
        return false;
    }
    for (i, dense_row) in dense.iter().enumerate() {
        for (j, d) in dense_row.iter().enumerate() {
            if d.as_ref() != sparse.get(i, j) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolAndOr, MinPlusNum, PlusTimes};
    use crate::triples::Triples;
    use proptest::prelude::*;
    use proptest::test_runner::TestCaseError;

    fn matrix_from(entries: Vec<(usize, usize, i64)>, nrows: usize, ncols: usize) -> CsrMatrix<i64> {
        CsrMatrix::from_triples(&Triples::from_entries(nrows, ncols, entries))
    }

    #[test]
    fn small_plus_times_product() {
        // A = [1 2; 0 3], B = [4 0; 5 6]  =>  C = [14 12; 15 18]
        let a = matrix_from(vec![(0, 0, 1), (0, 1, 2), (1, 1, 3)], 2, 2);
        let b = matrix_from(vec![(0, 0, 4), (1, 0, 5), (1, 1, 6)], 2, 2);
        let c = local_spgemm::<PlusTimes<i64>>(&a, &b);
        assert_eq!(c.get(0, 0), Some(&14));
        assert_eq!(c.get(0, 1), Some(&12));
        assert_eq!(c.get(1, 0), Some(&15));
        assert_eq!(c.get(1, 1), Some(&18));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn product_with_empty_matrix_is_empty() {
        let a = matrix_from(vec![(0, 0, 1)], 2, 3);
        let b = CsrMatrix::<i64>::zero(3, 4);
        let c = local_spgemm::<PlusTimes<i64>>(&a, &b);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 4);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_dimensions_panic() {
        let a = matrix_from(vec![(0, 0, 1)], 2, 3);
        let b = matrix_from(vec![(0, 0, 1)], 2, 2);
        let _ = local_spgemm::<PlusTimes<i64>>(&a, &b);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn abt_mismatched_dimensions_panic() {
        let a = matrix_from(vec![(0, 0, 1)], 2, 3);
        let b = matrix_from(vec![(0, 0, 1)], 3, 2);
        let _ = local_spgemm_abt::<PlusTimes<i64>>(&a, &b);
    }

    #[test]
    fn min_plus_finds_two_hop_shortest_paths() {
        // Path graph 0 -> 1 -> 2 with weights 2 and 3, plus direct 0 -> 2 with weight 10.
        let entries = vec![(0usize, 1usize, 2u64), (1, 2, 3), (0, 2, 10)];
        let r = CsrMatrix::from_triples(&Triples::from_entries(3, 3, entries));
        let n = local_spgemm::<MinPlusNum<u64>>(&r, &r);
        // Two-hop path 0 -> 2 via 1 costs 5; the "direct then nothing" path is absent
        // because there is no outgoing edge from 2.
        assert_eq!(n.get(0, 2), Some(&5));
    }

    #[test]
    fn bool_semiring_squares_reachability() {
        let entries = vec![(0usize, 1usize, true), (1, 2, true)];
        let g = CsrMatrix::from_triples(&Triples::from_entries(3, 3, entries));
        let g2 = local_spgemm::<BoolAndOr>(&g, &g);
        assert_eq!(g2.get(0, 2), Some(&true));
        assert_eq!(g2.nnz(), 1);
    }

    #[test]
    fn abt_matches_multiplying_by_the_transpose() {
        let a = matrix_from(vec![(0, 0, 1), (0, 2, 2), (1, 1, 3), (2, 0, 4), (2, 2, 5)], 3, 3);
        let b = matrix_from(vec![(0, 0, 6), (1, 2, 7), (3, 1, 8)], 4, 3);
        let direct = local_spgemm_abt::<PlusTimes<i64>>(&a, &b);
        let via_transpose = local_spgemm::<PlusTimes<i64>>(&a, &b.transpose());
        assert_eq!(direct, via_transpose);
        assert_eq!(direct.nrows(), 3);
        assert_eq!(direct.ncols(), 4);
    }

    #[test]
    fn symmetric_aat_matches_general_abt() {
        let a = arb_like_matrix(25, 18, 9);
        let sym = local_spgemm_aat::<PlusTimes<i64>>(&a);
        let general = local_spgemm_abt::<PlusTimes<i64>>(&a, &a);
        assert_eq!(sym, general);
        assert!(sym.validate().is_ok());
    }

    #[test]
    fn symmetric_aat_counts_roughly_half_the_products() {
        let a = arb_like_matrix(30, 20, 10);
        let full = FlopCounter::new();
        let _ = local_spgemm_abt_counted_probe(&a, &full);
        let half = FlopCounter::new();
        let _ = local_spgemm_aat_counted::<PlusTimes<i64>>(&a, &half);
        assert!(half.flops() > 0);
        assert!(
            half.flops() <= full.flops() / 2 + full.flops() / 8,
            "upper-triangle kernel should perform about half the multiplies \
             ({} vs {})",
            half.flops(),
            full.flops()
        );
    }

    fn local_spgemm_abt_counted_probe(
        a: &CsrMatrix<i64>,
        flops: &FlopCounter,
    ) -> CsrMatrix<i64> {
        local_spgemm_abt_counted::<PlusTimes<i64>>(a, a, flops)
    }

    #[test]
    fn staged_aat_kernel_matches_the_single_stage_one() {
        // Split A column-wise into two stages; Σ_s A_s·A_sᵀ over both must
        // equal the one-shot A·Aᵀ.
        let a = arb_like_matrix(14, 10, 4);
        let whole = local_spgemm_aat::<PlusTimes<i64>>(&a);
        let left = a.filter(|_, c, _| c < 5);
        let right = a.filter(|_, c, _| c >= 5);
        let (lt, rt) = (left.transpose(), right.transpose());
        let flops = FlopCounter::new();
        let staged = spgemm_stages_aat::<PlusTimes<i64>, _>(
            a.nrows(),
            &[(&left, &lt), (&right, &rt)],
            AccumPolicy::Auto,
            &flops,
        );
        assert_eq!(staged, whole);
        assert!(flops.flops() > 0);
    }

    #[test]
    fn mirror_block_transposes_and_mirrors() {
        let block = matrix_from(vec![(0, 1, 3), (2, 0, -4), (1, 1, 5)], 3, 2);
        let mirrored = mirror_block::<PlusTimes<i64>>(&block);
        assert_eq!(mirrored.nrows(), 2);
        assert_eq!(mirrored.ncols(), 3);
        // PlusTimes mirrors by identity, so this is a plain transpose.
        assert_eq!(mirrored, block.transpose());
    }

    #[test]
    fn accumulate_equals_one_shot_product() {
        let a = matrix_from(vec![(0, 0, 1), (0, 1, 2), (1, 1, 3), (2, 0, 4)], 3, 2);
        let b = matrix_from(vec![(0, 0, 5), (0, 1, 6), (1, 0, 7), (1, 2, 8)], 2, 3);
        let direct = local_spgemm::<PlusTimes<i64>>(&a, &b);
        let mut partial: Vec<Vec<(usize, i64)>> = vec![Vec::new(); 3];
        spgemm_accumulate::<PlusTimes<i64>>(&a, &b, &mut partial);
        let assembled = rows_to_csr(3, 3, partial);
        assert_eq!(direct, assembled);
    }

    #[test]
    fn accumulate_merges_across_calls() {
        // Split A into its two columns and B into its two rows; summing the two
        // outer products must give the same result as the full product.
        let a = matrix_from(vec![(0, 0, 1), (0, 1, 2), (1, 1, 3)], 2, 2);
        let b = matrix_from(vec![(0, 0, 4), (1, 0, 5), (1, 1, 6)], 2, 2);
        let full = local_spgemm::<PlusTimes<i64>>(&a, &b);

        let a_col0 = matrix_from(vec![(0, 0, 1)], 2, 1);
        let a_col1 = matrix_from(vec![(0, 0, 2), (1, 0, 3)], 2, 1);
        let b_row0 = matrix_from(vec![(0, 0, 4)], 1, 2);
        let b_row1 = matrix_from(vec![(0, 0, 5), (0, 1, 6)], 1, 2);

        let mut partial: Vec<Vec<(usize, i64)>> = vec![Vec::new(); 2];
        spgemm_accumulate::<PlusTimes<i64>>(&a_col0, &b_row0, &mut partial);
        spgemm_accumulate::<PlusTimes<i64>>(&a_col1, &b_row1, &mut partial);
        let assembled = rows_to_csr(2, 2, partial);
        assert_eq!(full, assembled);
    }

    #[test]
    fn stages_accumulate_like_separate_products() {
        // C = A0·B0 + A1·B1, accumulated in one spgemm_stages call.
        let a0 = matrix_from(vec![(0, 0, 1), (1, 1, 2)], 2, 2);
        let b0 = matrix_from(vec![(0, 0, 3), (1, 1, 4)], 2, 3);
        let a1 = matrix_from(vec![(0, 0, 5), (1, 0, 6)], 2, 1);
        let b1 = matrix_from(vec![(0, 0, 7), (0, 2, 8)], 1, 3);
        let flops = FlopCounter::new();
        let c = spgemm_stages::<PlusTimes<i64>, _>(
            2,
            3,
            &[(&a0, &b0), (&a1, &b1)],
            AccumPolicy::Auto,
            &flops,
        );
        let mut partial: Vec<Vec<(usize, i64)>> = vec![Vec::new(); 2];
        spgemm_accumulate::<PlusTimes<i64>>(&a0, &b0, &mut partial);
        spgemm_accumulate::<PlusTimes<i64>>(&a1, &b1, &mut partial);
        let want = rows_to_csr(2, 3, partial);
        assert_eq!(c, want);
        assert!(flops.flops() > 0);
        assert!(flops.peak_row_width() >= 2);
    }

    #[test]
    fn empty_stage_list_gives_the_zero_matrix() {
        let flops = FlopCounter::new();
        let stages: [(&CsrMatrix<i64>, &CsrMatrix<i64>); 0] = [];
        let c = spgemm_stages::<PlusTimes<i64>, CsrMatrix<i64>>(
            3,
            4,
            &stages,
            AccumPolicy::Auto,
            &flops,
        );
        assert_eq!(c, CsrMatrix::zero(3, 4));
        assert_eq!(flops.flops(), 0);
    }

    #[test]
    fn flop_counter_counts_two_flops_per_product() {
        // A = [1 2], B = [3; 4]: one output entry from two products.
        let a = matrix_from(vec![(0, 0, 1), (0, 1, 2)], 1, 2);
        let b = matrix_from(vec![(0, 0, 3), (1, 0, 4)], 2, 1);
        let flops = FlopCounter::new();
        let c = local_spgemm_counted::<PlusTimes<i64>>(&a, &b, &flops);
        assert_eq!(c.get(0, 0), Some(&11));
        assert_eq!(flops.flops(), 4, "two products, two flops each");
        assert_eq!(flops.peak_row_width(), 1);
        assert!(flops.probes() >= 2);
    }

    #[test]
    fn merge_rows_combines_collisions() {
        let left = vec![(0usize, 1i64), (2, 3)];
        let right = vec![(1usize, 10i64), (2, 5)];
        let merged = merge_rows::<PlusTimes<i64>>(left, right);
        assert_eq!(merged, vec![(0, 1), (1, 10), (2, 8)]);
    }

    #[test]
    fn dense_reference_agrees_on_small_case() {
        let a = matrix_from(vec![(0, 0, 1), (0, 1, 2), (1, 1, 3)], 2, 2);
        let b = matrix_from(vec![(0, 0, 4), (1, 0, 5), (1, 1, 6)], 2, 2);
        let c = local_spgemm::<PlusTimes<i64>>(&a, &b);
        let dense = dense_reference_spgemm::<PlusTimes<i64>>(&a, &b);
        assert!(matches_dense(&c, &dense));
    }

    #[test]
    fn baseline_kernel_agrees_with_accumulator_kernel() {
        let a = matrix_from(vec![(0, 0, 1), (0, 1, 2), (1, 1, 3), (3, 0, -2)], 4, 2);
        let b = matrix_from(vec![(0, 0, 4), (1, 0, 5), (1, 2, 6)], 2, 3);
        assert_eq!(
            local_spgemm_baseline::<PlusTimes<i64>>(&a, &b),
            local_spgemm::<PlusTimes<i64>>(&a, &b)
        );
    }

    #[test]
    fn kernels_are_deterministic_across_thread_counts() {
        let a = arb_like_matrix(40, 37, 1);
        let b = arb_like_matrix(37, 45, 2);
        let reference = rayon::pool::with_thread_limit(1, || {
            (
                local_spgemm::<PlusTimes<i64>>(&a, &b),
                local_spgemm_abt::<PlusTimes<i64>>(&a, &arb_like_matrix(21, 37, 3)),
            )
        });
        for threads in [2usize, 3, 8] {
            let got = rayon::pool::with_thread_limit(threads, || {
                (
                    local_spgemm::<PlusTimes<i64>>(&a, &b),
                    local_spgemm_abt::<PlusTimes<i64>>(&a, &arb_like_matrix(21, 37, 3)),
                )
            });
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    /// Deterministic pseudo-random matrix without the proptest machinery.
    fn arb_like_matrix(nrows: usize, ncols: usize, seed: u64) -> CsrMatrix<i64> {
        let mut t = Triples::new(nrows, ncols);
        let mut seen = std::collections::BTreeSet::new();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        while seen.len() < (nrows * ncols / 4).max(1) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (state >> 33) as usize % nrows;
            let c = (state >> 13) as usize % ncols;
            if seen.insert((r, c)) {
                t.push(r, c, ((state % 17) as i64) - 8);
            }
        }
        CsrMatrix::from_triples(&t)
    }

    fn arb_matrix(nrows: usize, ncols: usize) -> impl Strategy<Value = CsrMatrix<i64>> {
        proptest::collection::btree_set((0..nrows, 0..ncols), 0..(nrows * ncols).min(60)).prop_map(
            move |coords| {
                let entries: Vec<_> = coords
                    .into_iter()
                    .enumerate()
                    .map(|(i, (r, c))| (r, c, (i % 7) as i64 - 3))
                    .collect();
                CsrMatrix::from_triples(&Triples::from_entries(nrows, ncols, entries))
            },
        )
    }

    fn arb_u64_matrix(nrows: usize, ncols: usize) -> impl Strategy<Value = CsrMatrix<u64>> {
        proptest::collection::btree_set((0..nrows, 0..ncols), 0..(nrows * ncols).min(50)).prop_map(
            move |coords| {
                let entries: Vec<_> = coords
                    .into_iter()
                    .enumerate()
                    .map(|(i, (r, c))| (r, c, (i % 11) as u64 + 1))
                    .collect();
                CsrMatrix::from_triples(&Triples::from_entries(nrows, ncols, entries))
            },
        )
    }

    fn arb_bool_matrix(nrows: usize, ncols: usize) -> impl Strategy<Value = CsrMatrix<bool>> {
        proptest::collection::btree_set((0..nrows, 0..ncols), 0..(nrows * ncols).min(50)).prop_map(
            move |coords| {
                let entries: Vec<_> =
                    coords.into_iter().map(|(r, c)| (r, c, true)).collect();
                CsrMatrix::from_triples(&Triples::from_entries(nrows, ncols, entries))
            },
        )
    }

    /// Run one (a, b) pair through both accumulator variants and compare
    /// against the dense reference — the satellite coverage pitting the SPA
    /// and the hash accumulator against each other over a semiring.
    fn check_both_policies<S>(a: &CsrMatrix<S::Left>, b: &CsrMatrix<S::Right>) -> Result<(), TestCaseError>
    where
        S: Semiring,
        S::Out: PartialEq + std::fmt::Debug,
    {
        let dense = dense_reference_spgemm::<S>(a, b);
        for policy in [AccumPolicy::ForceDense, AccumPolicy::ForceHash] {
            let flops = FlopCounter::new();
            let c = spgemm_stages::<S, _>(a.nrows(), b.ncols(), &[(a, b)], policy, &flops);
            prop_assert!(c.validate().is_ok());
            prop_assert!(matches_dense(&c, &dense), "policy {policy:?} disagrees with dense");
            prop_assert_eq!(
                flops.flops() % 2,
                0,
                "flops are counted in multiply-add pairs"
            );
        }
        Ok(())
    }

    proptest! {
        #[test]
        fn prop_spgemm_matches_dense_reference(
            a in arb_matrix(8, 6),
            b in arb_matrix(6, 9),
        ) {
            let c = local_spgemm::<PlusTimes<i64>>(&a, &b);
            prop_assert!(c.validate().is_ok());
            let dense = dense_reference_spgemm::<PlusTimes<i64>>(&a, &b);
            prop_assert!(matches_dense(&c, &dense));
        }

        #[test]
        fn prop_both_accumulators_match_dense_plus_times(
            a in arb_matrix(8, 6),
            b in arb_matrix(6, 9),
        ) {
            check_both_policies::<PlusTimes<i64>>(&a, &b)?;
        }

        #[test]
        fn prop_both_accumulators_match_dense_min_plus(
            a in arb_u64_matrix(7, 6),
            b in arb_u64_matrix(6, 8),
        ) {
            check_both_policies::<MinPlusNum<u64>>(&a, &b)?;
        }

        #[test]
        fn prop_both_accumulators_match_dense_bool(
            a in arb_bool_matrix(7, 6),
            b in arb_bool_matrix(6, 8),
        ) {
            check_both_policies::<BoolAndOr>(&a, &b)?;
        }

        #[test]
        fn prop_abt_equals_product_with_transpose(
            a in arb_matrix(7, 5),
            b in arb_matrix(6, 5),
        ) {
            let direct = local_spgemm_abt::<PlusTimes<i64>>(&a, &b);
            prop_assert!(direct.validate().is_ok());
            let via_t = local_spgemm::<PlusTimes<i64>>(&a, &b.transpose());
            prop_assert_eq!(direct, via_t);
        }

        #[test]
        fn prop_symmetric_aat_equals_product_with_transpose(
            a in arb_matrix(9, 6),
        ) {
            let sym = local_spgemm_aat::<PlusTimes<i64>>(&a);
            prop_assert!(sym.validate().is_ok());
            let via_t = local_spgemm::<PlusTimes<i64>>(&a, &a.transpose());
            prop_assert_eq!(sym, via_t);
        }

        #[test]
        fn prop_spgemm_transpose_identity(
            a in arb_matrix(7, 5),
            b in arb_matrix(5, 6),
        ) {
            // (A·B)ᵀ == Bᵀ·Aᵀ over a commutative semiring.
            let ab_t = local_spgemm::<PlusTimes<i64>>(&a, &b).transpose();
            let bt_at = local_spgemm::<PlusTimes<i64>>(&b.transpose(), &a.transpose());
            prop_assert_eq!(ab_t, bt_at);
        }

        #[test]
        fn prop_accumulate_split_equals_full(
            a in arb_matrix(6, 4),
            b in arb_matrix(4, 5),
        ) {
            let full = local_spgemm::<PlusTimes<i64>>(&a, &b);
            // Accumulate the product one inner index at a time (rank-1 updates).
            let at = a.transpose();
            let mut partial: Vec<Vec<(usize, i64)>> = vec![Vec::new(); a.nrows()];
            for k in 0..a.ncols() {
                // Column k of A as a nrows x 1 matrix; row k of B as 1 x ncols.
                let mut col_t = Triples::new(a.nrows(), 1);
                for (r, v) in at.row(k) {
                    col_t.push(r, 0, *v);
                }
                let mut row_t = Triples::new(1, b.ncols());
                for (c, v) in b.row(k) {
                    row_t.push(0, c, *v);
                }
                let col = CsrMatrix::from_triples(&col_t);
                let row = CsrMatrix::from_triples(&row_t);
                spgemm_accumulate::<PlusTimes<i64>>(&col, &row, &mut partial);
            }
            let assembled = rows_to_csr(a.nrows(), b.ncols(), partial);
            prop_assert_eq!(full, assembled);
        }

        #[test]
        fn prop_baseline_and_accumulator_kernels_agree(
            a in arb_matrix(9, 7),
            b in arb_matrix(7, 8),
        ) {
            prop_assert_eq!(
                local_spgemm_baseline::<PlusTimes<i64>>(&a, &b),
                local_spgemm::<PlusTimes<i64>>(&a, &b)
            );
        }
    }
}

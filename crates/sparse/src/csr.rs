//! Compressed sparse row (CSR) matrices.
//!
//! CSR is the local storage format used for all computation: every block of a
//! [`crate::DistMat2D`] is a `CsrMatrix`, and the local SpGEMM, element-wise
//! kernels and reductions all operate on it.

use crate::triples::Triples;
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (checked in debug builds and by [`CsrMatrix::validate`]):
/// * `rowptr.len() == nrows + 1`, `rowptr[0] == 0`, non-decreasing;
/// * `colidx.len() == vals.len() == rowptr[nrows]`;
/// * within each row, column indices are strictly increasing (no duplicates).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<usize>,
    vals: Vec<T>,
}

impl<T> CsrMatrix<T> {
    /// An empty (all-zero) `nrows x ncols` matrix.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colidx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Build from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the CSR invariants do not hold.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<usize>,
        vals: Vec<T>,
    ) -> Self {
        let m = Self { nrows, ncols, rowptr, colidx, vals };
        m.validate().expect("invalid CSR arrays");
        m
    }

    /// Check the CSR invariants, returning a description of the first
    /// violation if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.rowptr.len() != self.nrows + 1 {
            return Err(format!(
                "rowptr length {} != nrows+1 {}",
                self.rowptr.len(),
                self.nrows + 1
            ));
        }
        if self.rowptr[0] != 0 {
            return Err("rowptr[0] != 0".into());
        }
        if *self.rowptr.last().unwrap() != self.colidx.len() {
            return Err("rowptr[nrows] != colidx.len()".into());
        }
        if self.colidx.len() != self.vals.len() {
            return Err("colidx and vals length mismatch".into());
        }
        for r in 0..self.nrows {
            if self.rowptr[r] > self.rowptr[r + 1] {
                return Err(format!("rowptr decreases at row {r}"));
            }
            let row = &self.colidx[self.rowptr[r]..self.rowptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {r} has unsorted or duplicate columns"));
                }
            }
            if let Some(&last) = row.last() {
                if last >= self.ncols {
                    return Err(format!("row {r} has column {last} >= ncols {}", self.ncols));
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Whether the matrix stores no entries.
    pub fn is_empty(&self) -> bool {
        self.colidx.is_empty()
    }

    /// The row pointer array.
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// The column index array.
    pub fn colidx(&self) -> &[usize] {
        &self.colidx
    }

    /// The value array.
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Mutable access to the values (the pattern cannot be changed this way).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// Iterate over one row as `(col, &value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, &T)> {
        let range = self.rowptr[r]..self.rowptr[r + 1];
        self.colidx[range.clone()].iter().copied().zip(self.vals[range].iter())
    }

    /// Number of entries in one row.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.rowptr[r + 1] - self.rowptr[r]
    }

    /// Iterate over all entries as `(row, col, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        (0..self.nrows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Consume the matrix, yielding owned `(row, col, value)` entries.
    ///
    /// Lets a reduction move values out instead of cloning them while the
    /// source matrix stays resident — the matrix's storage is dropped as soon
    /// as the iterator is.
    pub fn into_entries(self) -> impl Iterator<Item = (usize, usize, T)> {
        let Self { rowptr, colidx, vals, .. } = self;
        let mut row = 0usize;
        colidx.into_iter().zip(vals).enumerate().map(move |(i, (c, v))| {
            while rowptr[row + 1] <= i {
                row += 1;
            }
            (row, c, v)
        })
    }

    /// Look up the value at `(row, col)` (binary search within the row).
    pub fn get(&self, row: usize, col: usize) -> Option<&T> {
        let range = self.rowptr[row]..self.rowptr[row + 1];
        let cols = &self.colidx[range.clone()];
        cols.binary_search(&col).ok().map(|i| &self.vals[range.start + i])
    }

    /// The sorted `(row, col)` sparsity pattern.
    pub fn pattern(&self) -> Vec<(usize, usize)> {
        self.iter().map(|(r, c, _)| (r, c)).collect()
    }

    /// Map values (same pattern, new value type).
    pub fn map<U>(&self, mut f: impl FnMut(usize, usize, &T) -> U) -> CsrMatrix<U> {
        let mut vals = Vec::with_capacity(self.nnz());
        for (r, c, v) in self.iter() {
            vals.push(f(r, c, v));
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr: self.rowptr.clone(),
            colidx: self.colidx.clone(),
            vals,
        }
    }

    /// Apply a function to every value in place (CombBLAS `Apply`).
    pub fn apply_mut(&mut self, mut f: impl FnMut(usize, usize, &mut T)) {
        for r in 0..self.nrows {
            for i in self.rowptr[r]..self.rowptr[r + 1] {
                let c = self.colidx[i];
                f(r, c, &mut self.vals[i]);
            }
        }
    }

    /// Build a column-major view of this matrix **without cloning values**:
    /// the view stores a permutation into [`CsrMatrix::values`], so the
    /// transpose-free `A·Bᵀ` kernels can walk `B`'s columns in place.  This
    /// is the structural half of a transpose at a third of its cost (and none
    /// of the value clones, which matters for heavy entry types like the
    /// overlap semiring's seed lists).
    pub fn csc_view(&self) -> CscView<'_, T> {
        // Counting sort of the entry positions by column.
        let mut colptr = vec![0usize; self.ncols + 1];
        for &c in &self.colidx {
            colptr[c + 1] += 1;
        }
        for c in 0..self.ncols {
            colptr[c + 1] += colptr[c];
        }
        let mut next = colptr.clone();
        let mut rowidx = vec![0usize; self.nnz()];
        let mut pos = vec![0usize; self.nnz()];
        for r in 0..self.nrows {
            for i in self.rowptr[r]..self.rowptr[r + 1] {
                let c = self.colidx[i];
                let slot = next[c];
                rowidx[slot] = r;
                pos[slot] = i;
                next[c] += 1;
            }
        }
        CscView { nrows: self.nrows, colptr, rowidx, pos, vals: &self.vals }
    }
}

/// A borrowed column-major (CSC) view of a [`CsrMatrix`] — see
/// [`CsrMatrix::csc_view`].  Values stay in the CSR's arrays; the view only
/// holds the column structure and a permutation into them.
#[derive(Debug)]
pub struct CscView<'a, T> {
    nrows: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    pos: Vec<usize>,
    vals: &'a [T],
}

impl<'a, T> CscView<'a, T> {
    /// Rows of the viewed matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the viewed matrix.
    pub fn ncols(&self) -> usize {
        self.colptr.len() - 1
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Iterate over column `c` as `(row, &value)` pairs, rows ascending.
    pub fn col(&self, c: usize) -> impl Iterator<Item = (usize, &'a T)> + '_ {
        self.col_from(c, 0)
    }

    /// Iterate over the entries of column `c` with `row >= min_row`, rows
    /// ascending (binary search on the sorted row list — the symmetric
    /// `A·Aᵀ` kernel uses this to walk only the upper triangle).
    pub fn col_from(&self, c: usize, min_row: usize) -> impl Iterator<Item = (usize, &'a T)> + '_ {
        let range = self.colptr[c]..self.colptr[c + 1];
        let rows = &self.rowidx[range.clone()];
        let start = rows.partition_point(|&r| r < min_row);
        rows[start..]
            .iter()
            .copied()
            .zip(self.pos[range.start + start..range.end].iter().map(|&i| &self.vals[i]))
    }
}

impl<T: Clone> CsrMatrix<T> {
    /// Build from triples; duplicate coordinates are rejected.
    ///
    /// # Panics
    /// Panics if the triples contain duplicate `(row, col)` coordinates — use
    /// [`Triples::merge_duplicates`] first if duplicates are expected.
    pub fn from_triples(triples: &Triples<T>) -> Self {
        let nrows = triples.nrows();
        let ncols = triples.ncols();
        let mut entries: Vec<(usize, usize, T)> =
            triples.iter().map(|(r, c, v)| (r, c, v.clone())).collect();
        entries.sort_by_key(|a| (a.0, a.1));
        for w in entries.windows(2) {
            assert!(
                (w[0].0, w[0].1) != (w[1].0, w[1].1),
                "duplicate coordinate ({}, {}) in triples",
                w[0].0,
                w[0].1
            );
        }
        let mut rowptr = vec![0usize; nrows + 1];
        for (r, _, _) in &entries {
            rowptr[r + 1] += 1;
        }
        for r in 0..nrows {
            rowptr[r + 1] += rowptr[r];
        }
        let mut colidx = Vec::with_capacity(entries.len());
        let mut vals = Vec::with_capacity(entries.len());
        for (_, c, v) in entries {
            colidx.push(c);
            vals.push(v);
        }
        Self { nrows, ncols, rowptr, colidx, vals }
    }

    /// Convert back to triples (values cloned).
    pub fn to_triples(&self) -> Triples<T> {
        let mut t = Triples::new(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            t.push(r, c, v.clone());
        }
        t
    }

    /// Transpose (values cloned).
    pub fn transpose(&self) -> CsrMatrix<T> {
        // Counting sort by column.
        let mut rowptr = vec![0usize; self.ncols + 1];
        for &c in &self.colidx {
            rowptr[c + 1] += 1;
        }
        for c in 0..self.ncols {
            rowptr[c + 1] += rowptr[c];
        }
        let mut next = rowptr.clone();
        let mut colidx = vec![0usize; self.nnz()];
        let mut vals: Vec<Option<T>> = vec![None; self.nnz()];
        for (r, c, v) in self.iter() {
            let slot = next[c];
            colidx[slot] = r;
            vals[slot] = Some(v.clone());
            next[c] += 1;
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr,
            colidx,
            vals: vals.into_iter().map(|v| v.expect("transpose slot unfilled")).collect(),
        }
    }

    /// Extract the contiguous column range `cols` as an `nrows × cols.len()`
    /// matrix with column indices rebased to the slice.
    ///
    /// Within each CSR row the column indices are sorted, so the slice
    /// boundaries are found with two binary searches per row — no transpose
    /// round-trip, which is how the 1D outer-product algorithm carves its
    /// per-rank column blocks.
    pub fn slice_col_range(&self, cols: std::ops::Range<usize>) -> CsrMatrix<T> {
        assert!(cols.end <= self.ncols, "column slice out of bounds");
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        rowptr.push(0usize);
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..self.nrows {
            let row_cols = &self.colidx[self.rowptr[r]..self.rowptr[r + 1]];
            let lo = self.rowptr[r] + row_cols.partition_point(|&c| c < cols.start);
            let hi = self.rowptr[r] + row_cols.partition_point(|&c| c < cols.end);
            for i in lo..hi {
                colidx.push(self.colidx[i] - cols.start);
                vals.push(self.vals[i].clone());
            }
            rowptr.push(colidx.len());
        }
        CsrMatrix { nrows: self.nrows, ncols: cols.len(), rowptr, colidx, vals }
    }

    /// Extract the contiguous row range `rows` as a `rows.len() × ncols`
    /// matrix (a plain sub-slice of the CSR arrays).
    pub fn slice_row_range(&self, rows: std::ops::Range<usize>) -> CsrMatrix<T> {
        assert!(rows.end <= self.nrows, "row slice out of bounds");
        let start = self.rowptr[rows.start];
        let end = self.rowptr[rows.end];
        let rowptr: Vec<usize> =
            self.rowptr[rows.start..=rows.end].iter().map(|p| p - start).collect();
        CsrMatrix {
            nrows: rows.len(),
            ncols: self.ncols,
            rowptr,
            colidx: self.colidx[start..end].to_vec(),
            vals: self.vals[start..end].to_vec(),
        }
    }

    /// Keep only entries for which `pred` returns true (CombBLAS `Prune` keeps
    /// the complement of the pruned set; here the predicate selects survivors).
    pub fn filter(&self, mut pred: impl FnMut(usize, usize, &T) -> bool) -> CsrMatrix<T> {
        let mut t = Triples::new(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            if pred(r, c, v) {
                t.push(r, c, v.clone());
            }
        }
        CsrMatrix::from_triples(&t)
    }

    /// Reduce every row with `f`, starting from `None` (empty rows give `None`).
    ///
    /// This is CombBLAS `Reduce(Row, op)`: the result has one slot per row.
    pub fn reduce_rows<U>(
        &self,
        mut map: impl FnMut(usize, usize, &T) -> U,
        mut combine: impl FnMut(U, U) -> U,
    ) -> Vec<Option<U>> {
        let mut out: Vec<Option<U>> = Vec::with_capacity(self.nrows);
        for r in 0..self.nrows {
            let mut acc: Option<U> = None;
            for (c, v) in self.row(r) {
                let x = map(r, c, v);
                acc = Some(match acc {
                    None => x,
                    Some(a) => combine(a, x),
                });
            }
            out.push(acc);
        }
        out
    }

    /// Replace each nonzero in row `r` with `f(v[r], value)` where `v` is a
    /// per-row vector (CombBLAS `DimApply(Row, v, op)`).
    ///
    /// Rows whose vector slot is `None` are left untouched.
    pub fn dimapply_rows<U: Clone, V>(
        &self,
        v: &[Option<U>],
        mut f: impl FnMut(&U, usize, usize, &T) -> V,
    ) -> CsrMatrix<Option<V>> {
        assert_eq!(v.len(), self.nrows, "vector length must equal the row count");
        self.map(|r, c, val| v[r].as_ref().map(|u| f(u, r, c, val)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> CsrMatrix<i64> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        let t = Triples::from_entries(3, 3, vec![(0, 0, 1), (0, 2, 2), (2, 0, 3), (2, 1, 4)]);
        CsrMatrix::from_triples(&t)
    }

    #[test]
    fn from_triples_builds_valid_csr() {
        let m = small();
        assert!(m.validate().is_ok());
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.rowptr(), &[0, 2, 2, 4]);
        assert_eq!(m.colidx(), &[0, 2, 0, 1]);
        assert_eq!(m.values(), &[1, 2, 3, 4]);
    }

    #[test]
    fn into_entries_matches_borrowed_iteration() {
        let m = small();
        let borrowed: Vec<(usize, usize, i64)> =
            m.iter().map(|(r, c, v)| (r, c, *v)).collect();
        let owned: Vec<(usize, usize, i64)> = m.into_entries().collect();
        assert_eq!(owned, borrowed);
        // Empty matrix and empty-leading/trailing-row edge cases.
        assert_eq!(CsrMatrix::<i64>::zero(3, 3).into_entries().count(), 0);
        let t = Triples::from_entries(4, 2, vec![(2, 1, 9)]);
        let entries: Vec<_> = CsrMatrix::from_triples(&t).into_entries().collect();
        assert_eq!(entries, vec![(2, 1, 9)]);
    }

    #[test]
    fn get_finds_entries_and_misses() {
        let m = small();
        assert_eq!(m.get(0, 2), Some(&2));
        assert_eq!(m.get(2, 1), Some(&4));
        assert_eq!(m.get(1, 1), None);
        assert_eq!(m.get(0, 1), None);
    }

    #[test]
    fn row_iteration_is_sorted() {
        let m = small();
        let row0: Vec<_> = m.row(0).map(|(c, v)| (c, *v)).collect();
        assert_eq!(row0, vec![(0, 1), (2, 2)]);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(2), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate coordinate")]
    fn from_triples_rejects_duplicates() {
        let t = Triples::from_entries(2, 2, vec![(0, 0, 1), (0, 0, 2)]);
        let _ = CsrMatrix::<i64>::from_triples(&t);
    }

    #[test]
    fn transpose_matches_manual() {
        let m = small();
        let t = m.transpose();
        assert!(t.validate().is_ok());
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.get(0, 0), Some(&1));
        assert_eq!(t.get(2, 0), Some(&2));
        assert_eq!(t.get(0, 2), Some(&3));
        assert_eq!(t.get(1, 2), Some(&4));
        assert_eq!(t.nnz(), 4);
    }

    #[test]
    fn filter_prunes_entries() {
        let m = small();
        let f = m.filter(|_, _, v| *v >= 3);
        assert_eq!(f.nnz(), 2);
        assert_eq!(f.pattern(), vec![(2, 0), (2, 1)]);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn map_and_apply_mut_change_values() {
        let m = small();
        let doubled = m.map(|_, _, v| v * 2);
        assert_eq!(doubled.values(), &[2, 4, 6, 8]);
        let mut m2 = small();
        m2.apply_mut(|r, c, v| *v += (r + c) as i64);
        assert_eq!(m2.get(2, 1), Some(&7));
    }

    #[test]
    fn reduce_rows_max() {
        let m = small();
        let maxes = m.reduce_rows(|_, _, v| *v, i64::max);
        assert_eq!(maxes, vec![Some(2), None, Some(4)]);
    }

    #[test]
    fn dimapply_rows_broadcasts_row_vector() {
        let m = small();
        let v = vec![Some(10i64), None, Some(100)];
        let d = m.dimapply_rows(&v, |u, _, _, _| *u);
        assert_eq!(d.get(0, 0), Some(&Some(10)));
        assert_eq!(d.get(2, 1), Some(&Some(100)));
    }

    #[test]
    fn zero_matrix_is_valid_and_empty() {
        let z = CsrMatrix::<u32>::zero(5, 7);
        assert!(z.validate().is_ok());
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.nrows(), 5);
        assert_eq!(z.ncols(), 7);
        assert!(z.iter().next().is_none());
    }

    #[test]
    fn to_triples_roundtrip() {
        let m = small();
        let back = CsrMatrix::from_triples(&m.to_triples());
        assert_eq!(m, back);
    }

    #[test]
    fn csc_view_matches_transpose_rows() {
        let m = small();
        let view = m.csc_view();
        assert_eq!(view.nrows(), 3);
        assert_eq!(view.ncols(), 3);
        assert_eq!(view.nnz(), m.nnz());
        let t = m.transpose();
        for c in 0..m.ncols() {
            let from_view: Vec<(usize, i64)> = view.col(c).map(|(r, v)| (r, *v)).collect();
            let from_t: Vec<(usize, i64)> = t.row(c).map(|(r, v)| (r, *v)).collect();
            assert_eq!(from_view, from_t, "column {c}");
        }
    }

    #[test]
    fn slice_col_range_rebases_columns() {
        let m = small();
        let s = m.slice_col_range(1..3);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.get(0, 1), Some(&2), "column 2 rebased to 1");
        assert_eq!(s.get(2, 0), Some(&4), "column 1 rebased to 0");
        assert_eq!(s.nnz(), 2);
        assert!(s.validate().is_ok());
        let empty = m.slice_col_range(1..1);
        assert_eq!((empty.ncols(), empty.nnz()), (0, 0));
    }

    #[test]
    fn slice_row_range_preserves_rows() {
        let m = small();
        let s = m.slice_row_range(1..3);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.get(1, 0), Some(&3));
        assert_eq!(s.get(1, 1), Some(&4));
        assert_eq!(s.row_nnz(0), 0);
        assert!(s.validate().is_ok());
    }

    fn arb_triples() -> impl Strategy<Value = Triples<i64>> {
        proptest::collection::btree_set((0usize..15, 0usize..12), 0..80).prop_map(|coords| {
            let entries: Vec<_> = coords
                .into_iter()
                .enumerate()
                .map(|(i, (r, c))| (r, c, i as i64 + 1))
                .collect();
            Triples::from_entries(15, 12, entries)
        })
    }

    proptest! {
        #[test]
        fn prop_csr_roundtrip_preserves_everything(t in arb_triples()) {
            let m = CsrMatrix::from_triples(&t);
            prop_assert!(m.validate().is_ok());
            prop_assert_eq!(m.nnz(), t.nnz());
            let mut sorted = t.clone();
            sorted.sort();
            let back = m.to_triples();
            prop_assert_eq!(back.entries(), sorted.entries());
        }

        #[test]
        fn prop_transpose_involution(t in arb_triples()) {
            let m = CsrMatrix::from_triples(&t);
            let tt = m.transpose().transpose();
            prop_assert_eq!(m, tt);
        }

        #[test]
        fn prop_col_slices_partition_the_matrix(t in arb_triples(), split in 0usize..=12) {
            let m = CsrMatrix::from_triples(&t);
            let left = m.slice_col_range(0..split);
            let right = m.slice_col_range(split..m.ncols());
            prop_assert!(left.validate().is_ok());
            prop_assert!(right.validate().is_ok());
            prop_assert_eq!(left.nnz() + right.nnz(), m.nnz());
            for (r, c, v) in m.iter() {
                let found = if c < split {
                    left.get(r, c)
                } else {
                    right.get(r, c - split)
                };
                prop_assert_eq!(found, Some(v));
            }
        }

        #[test]
        fn prop_csc_view_visits_every_entry_once(t in arb_triples()) {
            let m = CsrMatrix::from_triples(&t);
            let view = m.csc_view();
            let mut seen = 0usize;
            for c in 0..m.ncols() {
                let mut prev_row = None;
                for (r, v) in view.col(c) {
                    prop_assert!(prev_row.is_none_or(|p| p < r), "rows ascending");
                    prev_row = Some(r);
                    prop_assert_eq!(m.get(r, c), Some(v));
                    seen += 1;
                }
            }
            prop_assert_eq!(seen, m.nnz());
        }

        #[test]
        fn prop_transpose_preserves_values_at_swapped_coords(t in arb_triples()) {
            let m = CsrMatrix::from_triples(&t);
            let tr = m.transpose();
            prop_assert!(tr.validate().is_ok());
            for (r, c, v) in m.iter() {
                prop_assert_eq!(tr.get(c, r), Some(v));
            }
        }
    }
}

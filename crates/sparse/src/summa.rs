//! 2D Sparse SUMMA — the distributed SpGEMM of diBELLA 2D.
//!
//! CombBLAS computes `C = A·B` on a `sqrt(P) x sqrt(P)` grid by iterating over
//! `sqrt(P)` stages; in stage `k`, the blocks `A_{i,k}` are broadcast along
//! grid row `i` and the blocks `B_{k,j}` along grid column `j`, and every rank
//! `(i, j)` accumulates `A_{i,k} · B_{k,j}` into its local output block
//! ("owner computes").  Because all virtual ranks share one address space, the
//! broadcasts here move no bytes — but their cost is recorded in
//! [`CommStats`], which is exactly the quantity Table I of the paper models
//! (`W_2D = a·m/sqrt(P)`, `Y_2D = sqrt(P)` for overlap detection).
//!
//! Each rank hands **all** its stage pairs to [`spgemm_stages`] at once, so
//! every output row is accumulated in place across the `sqrt(P)` stages by
//! one reusable per-worker accumulator and extracted exactly once — there is
//! no per-stage sorted merge.  [`summa_abt`] computes the transpose-free
//! `C = A·Bᵀ` (overlap detection's `A·Aᵀ`) by broadcasting `B`'s blocks in
//! locally-converted column-major form instead of materialising and
//! re-distributing a second (transposed) matrix.
//!
//! Every SUMMA records its arithmetic into `CommStats::extras` under
//! phase-suffixed keys (see [`flops_key`], [`probes_key`],
//! [`peak_row_width_key`]), which is how the pipeline reports flops/s per
//! phase.

use crate::accum::{AccumPolicy, FlopCounter};
use crate::csr::CsrMatrix;
use crate::distmat::DistMat2D;
use crate::semiring::Semiring;
use crate::spgemm::spgemm_stages;
use dibella_dist::collectives::record_broadcast;
use dibella_dist::{par_ranks, words_of, CommPhase, CommStats};

/// The `CommStats::extras` key carrying useful SpGEMM flops for `phase`.
pub fn flops_key(phase: CommPhase) -> String {
    format!("spgemm_flops_{}", phase.name())
}

/// The `CommStats::extras` key carrying accumulator probes for `phase`.
pub fn probes_key(phase: CommPhase) -> String {
    format!("spgemm_probes_{}", phase.name())
}

/// The `CommStats::extras` key carrying the peak accumulated row width for
/// `phase` (a maximum, not a sum).
pub fn peak_row_width_key(phase: CommPhase) -> String {
    format!("spgemm_peak_row_width_{}", phase.name())
}

/// Fold a finished SpGEMM's [`FlopCounter`] into `stats` under `phase`.
fn record_flops(stats: &CommStats, phase: CommPhase, flops: &FlopCounter) {
    stats.bump_extra(&flops_key(phase), flops.flops());
    stats.bump_extra(&probes_key(phase), flops.probes());
    stats.max_extra(&peak_row_width_key(phase), flops.peak_row_width());
}

/// Compute `C = A·B` over semiring `S` with Sparse SUMMA, recording
/// communication into `stats` under `phase`.
///
/// Word accounting uses the in-memory size of the operand entry types plus one
/// word per entry for its column index (the usual CSC/CSR wire format).
pub fn summa<S: Semiring>(
    a: &DistMat2D<S::Left>,
    b: &DistMat2D<S::Right>,
    stats: &CommStats,
    phase: CommPhase,
) -> DistMat2D<S::Out> {
    summa_with_words::<S>(a, b, stats, phase, words_of::<S::Left>() + 1, words_of::<S::Right>() + 1)
}

/// [`summa`] with explicit per-entry word costs for the two operands.
pub fn summa_with_words<S: Semiring>(
    a: &DistMat2D<S::Left>,
    b: &DistMat2D<S::Right>,
    stats: &CommStats,
    phase: CommPhase,
    a_entry_words: u64,
    b_entry_words: u64,
) -> DistMat2D<S::Out> {
    let grid = a.grid();
    assert_eq!(grid, b.grid(), "SUMMA operands must share a process grid");
    assert!(grid.is_square(), "Sparse SUMMA requires a square process grid");
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "inner dimension mismatch: A is {}x{}, B is {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    // A's columns and B's rows must be partitioned identically so that stage k
    // pairs matching blocks.  With a square grid and equal inner dimension the
    // BlockDists coincide by construction.
    assert_eq!(a.col_dist(), b.row_dist(), "inner-dimension distributions must match");

    let stages = grid.cols();

    // Account for the stage broadcasts exactly as MPI would perform them.
    for k in 0..stages {
        for i in 0..grid.rows() {
            let words = a.block_nnz(i, k) as u64 * a_entry_words;
            record_broadcast(stats, phase, words, grid.cols());
        }
        for j in 0..grid.cols() {
            let words = b.block_nnz(k, j) as u64 * b_entry_words;
            record_broadcast(stats, phase, words, grid.rows());
        }
    }
    stats.bump_extra("summa_stages", stages as u64);

    // Owner-computes: every rank hands its sqrt(P) stage pairs to one
    // accumulate-in-place block multiply.  Ranks run in parallel; inside each
    // rank the multiply is row-parallel on the same thread budget.
    let row_dist = a.row_dist();
    let col_dist = b.col_dist();
    let flops = FlopCounter::new();
    let blocks: Vec<CsrMatrix<S::Out>> = par_ranks(grid.nprocs(), |rank| {
        let (i, j) = grid.coords(rank);
        let pairs: Vec<(&CsrMatrix<S::Left>, &CsrMatrix<S::Right>)> = (0..stages)
            .filter_map(|k| {
                let a_block = a.block(i, k);
                let b_block = b.block(k, j);
                (!a_block.is_empty() && !b_block.is_empty()).then_some((a_block, b_block))
            })
            .collect();
        spgemm_stages::<S, _>(
            row_dist.size(i),
            col_dist.size(j),
            &pairs,
            AccumPolicy::Auto,
            &flops,
        )
    });
    record_flops(stats, phase, &flops);

    DistMat2D::from_blocks(grid, a.nrows(), b.ncols(), blocks)
}

/// Compute `C = A·Bᵀ` over semiring `S` with Sparse SUMMA, **without
/// materialising `Bᵀ`**: in stage `k`, rank `(i, j)` accumulates
/// `A_{i,k} · (B_{j,k})ᵀ`, walking `B_{j,k}` in column-major form (each
/// block converted locally exactly once).  This is the kernel overlap
/// detection uses for `C = A·Aᵀ` (pass the same matrix twice), replacing the
/// distributed `transpose()` round-trip.
pub fn summa_abt<S: Semiring>(
    a: &DistMat2D<S::Left>,
    b: &DistMat2D<S::Right>,
    stats: &CommStats,
    phase: CommPhase,
) -> DistMat2D<S::Out> {
    summa_abt_with_words::<S>(
        a,
        b,
        stats,
        phase,
        words_of::<S::Left>() + 1,
        words_of::<S::Right>() + 1,
    )
}

/// [`summa_abt`] with explicit per-entry word costs for the two operands.
pub fn summa_abt_with_words<S: Semiring>(
    a: &DistMat2D<S::Left>,
    b: &DistMat2D<S::Right>,
    stats: &CommStats,
    phase: CommPhase,
    a_entry_words: u64,
    b_entry_words: u64,
) -> DistMat2D<S::Out> {
    let grid = a.grid();
    assert_eq!(grid, b.grid(), "SUMMA operands must share a process grid");
    assert!(grid.is_square(), "Sparse SUMMA requires a square process grid");
    assert_eq!(
        a.ncols(),
        b.ncols(),
        "inner dimension mismatch for A·Bᵀ: A is {}x{}, B is {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    assert_eq!(a.col_dist(), b.col_dist(), "inner-dimension distributions must match");

    let stages = grid.cols();

    // Stage broadcasts: A_{i,k} travels along grid row i exactly as in
    // [`summa`]; the role of B_{k,j} is played by (B_{j,k})ᵀ, so block
    // B_{j,k} travels along grid column j.  Volumes match a SUMMA on a
    // materialised transpose, as they must — only the local representation
    // (CSC view instead of transposed CSR) differs.
    for k in 0..stages {
        for i in 0..grid.rows() {
            let words = a.block_nnz(i, k) as u64 * a_entry_words;
            record_broadcast(stats, phase, words, grid.cols());
        }
        for j in 0..grid.rows() {
            let words = b.block_nnz(j, k) as u64 * b_entry_words;
            record_broadcast(stats, phase, words, grid.rows());
        }
    }
    stats.bump_extra("summa_stages", stages as u64);

    // Convert each B block to column-major form exactly once, shared by
    // every rank in the block's grid column.  A contiguous local transpose
    // beats the zero-copy CSC view here because each block is walked once
    // per stage by a whole grid column of ranks (high reuse), and no second
    // *distributed* matrix is ever assembled — which is what the old
    // `a.transpose()` round-trip paid for.
    let columns: Vec<CsrMatrix<S::Right>> =
        par_ranks(grid.nprocs(), |rank| b.blocks()[rank].transpose());

    let row_dist = a.row_dist();
    let out_col_dist = b.row_dist();
    let flops = FlopCounter::new();
    let blocks: Vec<CsrMatrix<S::Out>> = par_ranks(grid.nprocs(), |rank| {
        let (i, j) = grid.coords(rank);
        let pairs: Vec<(&CsrMatrix<S::Left>, &CsrMatrix<S::Right>)> = (0..stages)
            .filter_map(|k| {
                let a_block = a.block(i, k);
                let view = &columns[grid.rank_of(j, k)];
                (!a_block.is_empty() && !view.is_empty()).then_some((a_block, view))
            })
            .collect();
        spgemm_stages::<S, _>(
            row_dist.size(i),
            out_col_dist.size(j),
            &pairs,
            AccumPolicy::Auto,
            &flops,
        )
    });
    record_flops(stats, phase, &flops);

    DistMat2D::from_blocks(grid, a.nrows(), b.nrows(), blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlusNum, PlusTimes};
    use crate::spgemm::local_spgemm;
    use crate::triples::Triples;
    use dibella_dist::ProcessGrid;
    use proptest::prelude::*;

    fn random_triples(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> Triples<i64> {
        // Simple deterministic pseudo-random pattern (no rand dependency needed).
        let mut t = Triples::new(nrows, ncols);
        let mut seen = std::collections::BTreeSet::new();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        while seen.len() < nnz.min(nrows * ncols) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (state >> 33) as usize % nrows;
            let c = (state >> 13) as usize % ncols;
            if seen.insert((r, c)) {
                t.push(r, c, ((state % 17) as i64) - 8);
            }
        }
        t
    }

    #[test]
    fn summa_matches_local_spgemm_on_square_grid() {
        let grid = ProcessGrid::square(4);
        let at = random_triples(14, 11, 40, 1);
        let bt = random_triples(11, 9, 35, 2);
        let a = DistMat2D::from_triples(grid, &at);
        let b = DistMat2D::from_triples(grid, &bt);
        let stats = CommStats::new();
        let c = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::OverlapDetection);
        let local = local_spgemm::<PlusTimes<i64>>(
            &CsrMatrix::from_triples(&at),
            &CsrMatrix::from_triples(&bt),
        );
        assert_eq!(c.to_local_csr(), local);
    }

    #[test]
    fn summa_single_rank_has_zero_communication() {
        let grid = ProcessGrid::square(1);
        let at = random_triples(10, 10, 25, 3);
        let a = DistMat2D::from_triples(grid, &at);
        let b = a.transpose();
        let stats = CommStats::new();
        let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::OverlapDetection);
        assert_eq!(stats.words(CommPhase::OverlapDetection), 0);
        assert_eq!(stats.messages(CommPhase::OverlapDetection), 0);
    }

    #[test]
    fn summa_communication_grows_with_grid_size() {
        // The per-rank bandwidth should shrink with sqrt(P) but the aggregate
        // (what CommStats totals) grows; check both qualitatively.
        let at = random_triples(24, 24, 200, 5);
        let bt = random_triples(24, 24, 200, 6);
        let mut totals = Vec::new();
        for p in [1usize, 4, 16] {
            let grid = ProcessGrid::square(p);
            let a = DistMat2D::from_triples(grid, &at);
            let b = DistMat2D::from_triples(grid, &bt);
            let stats = CommStats::new();
            let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::OverlapDetection);
            totals.push((
                stats.words(CommPhase::OverlapDetection),
                stats.messages(CommPhase::OverlapDetection),
            ));
        }
        assert_eq!(totals[0], (0, 0));
        assert!(totals[1].0 > 0);
        assert!(totals[2].0 > totals[1].0);
        // Latency: aggregate messages grow with P, per the 2(sqrt(P)-1) broadcasts per stage.
        assert!(totals[2].1 > totals[1].1);
    }

    #[test]
    fn summa_respects_min_plus_semiring() {
        // Two-hop shortest paths on a small digraph, distributed.
        let grid = ProcessGrid::square(4);
        let entries = vec![(0usize, 1usize, 4u64), (1, 2, 1), (0, 3, 2), (3, 2, 9), (2, 0, 7)];
        let t = Triples::from_entries(4, 4, entries);
        let r = DistMat2D::from_triples(grid, &t);
        let stats = CommStats::new();
        let n = summa::<MinPlusNum<u64>>(&r, &r, &stats, CommPhase::TransitiveReduction);
        let local = local_spgemm::<MinPlusNum<u64>>(
            &CsrMatrix::from_triples(&t),
            &CsrMatrix::from_triples(&t),
        );
        assert_eq!(n.to_local_csr(), local);
        // 0 -> 2 best two-hop path is via 1 (4+1=5), not via 3 (2+9=11).
        assert_eq!(n.get(0, 2), Some(&5));
    }

    #[test]
    fn summa_records_flops_per_phase() {
        let grid = ProcessGrid::square(4);
        let at = random_triples(16, 16, 80, 9);
        let a = DistMat2D::from_triples(grid, &at);
        let b = DistMat2D::from_triples(grid, &random_triples(16, 16, 80, 10));
        let stats = CommStats::new();
        let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::OverlapDetection);
        assert!(stats.extra(&flops_key(CommPhase::OverlapDetection)) > 0);
        assert!(stats.extra(&probes_key(CommPhase::OverlapDetection)) > 0);
        assert!(stats.extra(&peak_row_width_key(CommPhase::OverlapDetection)) > 0);
        assert_eq!(stats.extra(&flops_key(CommPhase::TransitiveReduction)), 0);
        // 2 flops per accumulated product.
        assert_eq!(stats.extra(&flops_key(CommPhase::OverlapDetection)) % 2, 0);
    }

    #[test]
    fn summa_flops_are_independent_of_the_grid() {
        let at = random_triples(20, 20, 150, 11);
        let bt = random_triples(20, 20, 150, 12);
        let mut flops = Vec::new();
        for p in [1usize, 4, 16] {
            let grid = ProcessGrid::square(p);
            let a = DistMat2D::from_triples(grid, &at);
            let b = DistMat2D::from_triples(grid, &bt);
            let stats = CommStats::new();
            let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other);
            flops.push(stats.extra(&flops_key(CommPhase::Other)));
        }
        assert!(flops[0] > 0);
        assert_eq!(flops[0], flops[1], "useful flops must not depend on the decomposition");
        assert_eq!(flops[0], flops[2]);
    }

    #[test]
    fn summa_abt_matches_summa_against_materialised_transpose() {
        for p in [1usize, 4, 9] {
            let grid = ProcessGrid::square(p);
            let at = random_triples(13, 17, 60, 21);
            let bt = random_triples(10, 17, 50, 22);
            let a = DistMat2D::from_triples(grid, &at);
            let b = DistMat2D::from_triples(grid, &bt);
            let stats_abt = CommStats::new();
            let direct =
                summa_abt::<PlusTimes<i64>>(&a, &b, &stats_abt, CommPhase::OverlapDetection);
            let stats_t = CommStats::new();
            let via_t = summa::<PlusTimes<i64>>(
                &a,
                &b.transpose(),
                &stats_t,
                CommPhase::OverlapDetection,
            );
            assert_eq!(direct.to_local_csr(), via_t.to_local_csr(), "P={p}");
            // Same blocks travel in both formulations, so the accounted
            // volumes must agree too.
            assert_eq!(
                stats_abt.words(CommPhase::OverlapDetection),
                stats_t.words(CommPhase::OverlapDetection),
                "P={p}"
            );
        }
    }

    #[test]
    fn summa_aat_squares_without_transposing() {
        let grid = ProcessGrid::square(4);
        let at = random_triples(15, 12, 70, 31);
        let a = DistMat2D::from_triples(grid, &at);
        let stats = CommStats::new();
        let c = summa_abt::<PlusTimes<i64>>(&a, &a, &stats, CommPhase::OverlapDetection);
        let local_a = CsrMatrix::from_triples(&at);
        let want = local_spgemm::<PlusTimes<i64>>(&local_a, &local_a.transpose());
        assert_eq!(c.to_local_csr(), want);
        assert_eq!(c.nrows(), 15);
        assert_eq!(c.ncols(), 15);
    }

    #[test]
    #[should_panic(expected = "square process grid")]
    fn summa_rejects_non_square_grid() {
        let grid = ProcessGrid::new(1, 2);
        let a = DistMat2D::from_triples(grid, &random_triples(4, 4, 4, 7));
        let b = DistMat2D::from_triples(grid, &random_triples(4, 4, 4, 8));
        let stats = CommStats::new();
        let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn summa_rejects_dimension_mismatch() {
        let grid = ProcessGrid::square(4);
        let a = DistMat2D::from_triples(grid, &random_triples(4, 5, 4, 7));
        let b = DistMat2D::from_triples(grid, &random_triples(4, 4, 4, 8));
        let stats = CommStats::new();
        let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn summa_abt_rejects_dimension_mismatch() {
        let grid = ProcessGrid::square(4);
        let a = DistMat2D::from_triples(grid, &random_triples(4, 5, 4, 7));
        let b = DistMat2D::from_triples(grid, &random_triples(4, 4, 4, 8));
        let stats = CommStats::new();
        let _ = summa_abt::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_summa_equals_local_product(
            seed_a in 0u64..1000,
            seed_b in 0u64..1000,
            grid_side in 1usize..4,
            n in 6usize..20,
            m in 6usize..20,
            k in 6usize..20,
        ) {
            let at = random_triples(n, m, n * m / 3, seed_a);
            let bt = random_triples(m, k, m * k / 3, seed_b);
            let grid = ProcessGrid::square(grid_side * grid_side);
            let a = DistMat2D::from_triples(grid, &at);
            let b = DistMat2D::from_triples(grid, &bt);
            let stats = CommStats::new();
            let c = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::OverlapDetection);
            let local = local_spgemm::<PlusTimes<i64>>(
                &CsrMatrix::from_triples(&at),
                &CsrMatrix::from_triples(&bt),
            );
            prop_assert_eq!(c.to_local_csr(), local);
        }

        #[test]
        fn prop_summa_abt_equals_local_abt(
            seed_a in 0u64..1000,
            seed_b in 0u64..1000,
            grid_side in 1usize..4,
            n in 6usize..18,
            m in 6usize..18,
            k in 6usize..18,
        ) {
            let at = random_triples(n, m, n * m / 3, seed_a);
            let bt = random_triples(k, m, k * m / 3, seed_b);
            let grid = ProcessGrid::square(grid_side * grid_side);
            let a = DistMat2D::from_triples(grid, &at);
            let b = DistMat2D::from_triples(grid, &bt);
            let stats = CommStats::new();
            let c = summa_abt::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other);
            let local = crate::spgemm::local_spgemm_abt::<PlusTimes<i64>>(
                &CsrMatrix::from_triples(&at),
                &CsrMatrix::from_triples(&bt),
            );
            prop_assert_eq!(c.to_local_csr(), local);
        }
    }
}

//! 2D Sparse SUMMA — the distributed SpGEMM of diBELLA 2D.
//!
//! CombBLAS computes `C = A·B` on a `sqrt(P) x sqrt(P)` grid by iterating over
//! `sqrt(P)` stages; in stage `k`, the blocks `A_{i,k}` are broadcast along
//! grid row `i` and the blocks `B_{k,j}` along grid column `j`, and every rank
//! `(i, j)` accumulates `A_{i,k} · B_{k,j}` into its local output block
//! ("owner computes").  Because all virtual ranks share one address space, the
//! broadcasts here move no bytes — but their cost is recorded in
//! [`CommStats`], which is exactly the quantity Table I of the paper models
//! (`W_2D = a·m/sqrt(P)`, `Y_2D = sqrt(P)` for overlap detection).
//!
//! Each rank hands **all** its stage pairs to [`spgemm_stages`] at once, so
//! every output row is accumulated in place across the `sqrt(P)` stages by
//! one reusable per-worker accumulator and extracted exactly once — there is
//! no per-stage sorted merge.  [`summa_abt`] computes the transpose-free
//! `C = A·Bᵀ` (overlap detection's `A·Aᵀ`) by broadcasting `B`'s blocks in
//! locally-converted column-major form instead of materialising and
//! re-distributing a second (transposed) matrix.  [`summa_aat_sym`] goes one
//! step further for `C = A·Aᵀ` over a [`MirrorSemiring`]: it multiplies only
//! the grid blocks on or above the diagonal and mirrors the rest across it,
//! halving the useful flops at the cost of a `(P − √P)/2`-message
//! cross-diagonal block exchange (accounted via
//! [`dibella_dist::collectives::record_p2p`]).
//!
//! Every SUMMA records its arithmetic into `CommStats::extras` under
//! phase-suffixed keys (see [`flops_key`], [`probes_key`],
//! [`peak_row_width_key`]), which is how the pipeline reports flops/s per
//! phase.

use crate::accum::{AccumPolicy, FlopCounter};
use crate::csr::CsrMatrix;
use crate::distmat::DistMat2D;
use crate::semiring::{MirrorSemiring, Semiring};
use crate::spgemm::{mirror_block, spgemm_stages, spgemm_stages_aat};
use dibella_dist::collectives::{record_broadcast, record_p2p};
use dibella_dist::{par_ranks, words_of, CommPhase, CommStats};

/// One rank's SUMMA stage list: the `(A block, effective-B block)` operand
/// pairs handed to the accumulate-in-place block multiply at once.
type StagePairs<'a, L, R> = Vec<(&'a CsrMatrix<L>, &'a CsrMatrix<R>)>;

pub use dibella_dist::extras::{flops_key, peak_row_width_key, probes_key, SUMMA_STAGES_KEY};

/// Fold a finished SpGEMM's [`FlopCounter`] into `stats` under `phase`.
fn record_flops(stats: &CommStats, phase: CommPhase, flops: &FlopCounter) {
    stats.bump_extra(&flops_key(phase), flops.flops());
    stats.bump_extra(&probes_key(phase), flops.probes());
    stats.max_extra(&peak_row_width_key(phase), flops.peak_row_width());
}

/// Compute `C = A·B` over semiring `S` with Sparse SUMMA, recording
/// communication into `stats` under `phase`.
///
/// Word accounting uses the in-memory size of the operand entry types plus one
/// word per entry for its column index (the usual CSC/CSR wire format).
pub fn summa<S: Semiring>(
    a: &DistMat2D<S::Left>,
    b: &DistMat2D<S::Right>,
    stats: &CommStats,
    phase: CommPhase,
) -> DistMat2D<S::Out> {
    summa_with_words::<S>(a, b, stats, phase, words_of::<S::Left>() + 1, words_of::<S::Right>() + 1)
}

/// [`summa`] with explicit per-entry word costs for the two operands.
pub fn summa_with_words<S: Semiring>(
    a: &DistMat2D<S::Left>,
    b: &DistMat2D<S::Right>,
    stats: &CommStats,
    phase: CommPhase,
    a_entry_words: u64,
    b_entry_words: u64,
) -> DistMat2D<S::Out> {
    let grid = a.grid();
    assert_eq!(grid, b.grid(), "SUMMA operands must share a process grid");
    assert!(grid.is_square(), "Sparse SUMMA requires a square process grid");
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "inner dimension mismatch: A is {}x{}, B is {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    // A's columns and B's rows must be partitioned identically so that stage k
    // pairs matching blocks.  With a square grid and equal inner dimension the
    // BlockDists coincide by construction.
    assert_eq!(a.col_dist(), b.row_dist(), "inner-dimension distributions must match");

    let stages = grid.cols();

    // Account for the stage broadcasts exactly as MPI would perform them:
    // A_{i,k} travels along grid row i (to the row's grid.cols() members),
    // B_{k,j} along grid column j (to the column's grid.rows() members).
    // Broadcasts are collectives, so an empty block still posts its
    // per-member messages (see [`record_broadcast`]); the accounted message
    // count therefore has the data-independent closed form
    // `stages · (rows·(cols-1) + cols·(rows-1))` and the word count is
    // `(group-1) · Σ nnz · entry_words` per operand.
    for k in 0..stages {
        for i in 0..grid.rows() {
            let words = a.block_nnz(i, k) as u64 * a_entry_words;
            record_broadcast(stats, phase, words, grid.cols());
        }
        for j in 0..grid.cols() {
            let words = b.block_nnz(k, j) as u64 * b_entry_words;
            record_broadcast(stats, phase, words, grid.rows());
        }
    }
    stats.bump_extra(SUMMA_STAGES_KEY, stages as u64);

    // Owner-computes: every rank hands its sqrt(P) stage pairs to one
    // accumulate-in-place block multiply.  Ranks run in parallel; inside each
    // rank the multiply is row-parallel on the same thread budget.
    let row_dist = a.row_dist();
    let col_dist = b.col_dist();
    let flops = FlopCounter::new();
    let blocks: Vec<CsrMatrix<S::Out>> = par_ranks(grid.nprocs(), |rank| {
        let (i, j) = grid.coords(rank);
        let pairs: StagePairs<'_, S::Left, S::Right> = (0..stages)
            .filter_map(|k| {
                let a_block = a.block(i, k);
                let b_block = b.block(k, j);
                (!a_block.is_empty() && !b_block.is_empty()).then_some((a_block, b_block))
            })
            .collect();
        spgemm_stages::<S, _>(
            row_dist.size(i),
            col_dist.size(j),
            &pairs,
            AccumPolicy::Auto,
            &flops,
        )
    });
    record_flops(stats, phase, &flops);

    DistMat2D::from_blocks(grid, a.nrows(), b.ncols(), blocks)
}

/// Compute `C = A·Bᵀ` over semiring `S` with Sparse SUMMA, **without
/// materialising `Bᵀ`**: in stage `k`, rank `(i, j)` accumulates
/// `A_{i,k} · (B_{j,k})ᵀ`, walking `B_{j,k}` in column-major form (each
/// block converted locally exactly once).  This is the kernel overlap
/// detection uses for `C = A·Aᵀ` (pass the same matrix twice), replacing the
/// distributed `transpose()` round-trip.
pub fn summa_abt<S: Semiring>(
    a: &DistMat2D<S::Left>,
    b: &DistMat2D<S::Right>,
    stats: &CommStats,
    phase: CommPhase,
) -> DistMat2D<S::Out> {
    summa_abt_with_words::<S>(
        a,
        b,
        stats,
        phase,
        words_of::<S::Left>() + 1,
        words_of::<S::Right>() + 1,
    )
}

/// [`summa_abt`] with explicit per-entry word costs for the two operands.
pub fn summa_abt_with_words<S: Semiring>(
    a: &DistMat2D<S::Left>,
    b: &DistMat2D<S::Right>,
    stats: &CommStats,
    phase: CommPhase,
    a_entry_words: u64,
    b_entry_words: u64,
) -> DistMat2D<S::Out> {
    let grid = a.grid();
    assert_eq!(grid, b.grid(), "SUMMA operands must share a process grid");
    assert!(grid.is_square(), "Sparse SUMMA requires a square process grid");
    assert_eq!(
        a.ncols(),
        b.ncols(),
        "inner dimension mismatch for A·Bᵀ: A is {}x{}, B is {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols()
    );
    assert_eq!(a.col_dist(), b.col_dist(), "inner-dimension distributions must match");

    let stages = grid.cols();

    // Stage broadcasts: A_{i,k} travels along grid row i exactly as in
    // [`summa`]; the role of B_{k,j} is played by (B_{j,k})ᵀ, so block
    // B_{j,k} travels along grid column j to the column's grid.rows()
    // members.  Volumes match a SUMMA on a materialised transpose, as they
    // must — only the local representation (CSC instead of transposed CSR)
    // differs.  `j` enumerates grid columns, so its bound is grid.cols();
    // B's row blocks are distributed over grid *rows*, which is why the
    // square-grid assert above is load-bearing for `b.block_nnz(j, k)`.
    // Empty blocks still post their broadcast (see [`summa_with_words`]).
    for k in 0..stages {
        for i in 0..grid.rows() {
            let words = a.block_nnz(i, k) as u64 * a_entry_words;
            record_broadcast(stats, phase, words, grid.cols());
        }
        for j in 0..grid.cols() {
            let words = b.block_nnz(j, k) as u64 * b_entry_words;
            record_broadcast(stats, phase, words, grid.rows());
        }
    }
    stats.bump_extra(SUMMA_STAGES_KEY, stages as u64);

    // Convert each B block to column-major form exactly once, shared by
    // every rank in the block's grid column.  A contiguous local transpose
    // beats the zero-copy CSC view here because each block is walked once
    // per stage by a whole grid column of ranks (high reuse), and no second
    // *distributed* matrix is ever assembled — which is what the old
    // `a.transpose()` round-trip paid for.
    let columns: Vec<CsrMatrix<S::Right>> =
        par_ranks(grid.nprocs(), |rank| b.blocks()[rank].transpose());

    let row_dist = a.row_dist();
    let out_col_dist = b.row_dist();
    let flops = FlopCounter::new();
    let blocks: Vec<CsrMatrix<S::Out>> = par_ranks(grid.nprocs(), |rank| {
        let (i, j) = grid.coords(rank);
        let pairs: StagePairs<'_, S::Left, S::Right> = (0..stages)
            .filter_map(|k| {
                let a_block = a.block(i, k);
                let view = &columns[grid.rank_of(j, k)];
                (!a_block.is_empty() && !view.is_empty()).then_some((a_block, view))
            })
            .collect();
        spgemm_stages::<S, _>(
            row_dist.size(i),
            out_col_dist.size(j),
            &pairs,
            AccumPolicy::Auto,
            &flops,
        )
    });
    record_flops(stats, phase, &flops);

    DistMat2D::from_blocks(grid, a.nrows(), b.nrows(), blocks)
}

/// Compute the symmetric product `C = A·Aᵀ` over a [`MirrorSemiring`] with a
/// Sparse SUMMA that exploits the **grid-diagonal block symmetry** of `C`:
/// only the blocks on or above the grid diagonal (`i ≤ j`) are multiplied.
///
/// * Off-diagonal upper blocks (`i < j`) run the general transpose-free stage
///   kernel of [`summa_abt`].
/// * Diagonal blocks (`i = j`) run the upper-triangle+mirror stage kernel
///   ([`spgemm_stages_aat`]), since a diagonal block of `A·Aᵀ` is itself
///   mirror-symmetric.
/// * Every strictly-lower block `C_{j,i}` is materialised by mirroring its
///   computed partner: `C_{j,i} = mirror((C_{i,j})ᵀ)` ([`mirror_block`]).
///
/// This halves the useful multiply work of [`summa_abt`] (exactly the upper
/// triangle of `C` is computed) at the price of a cross-diagonal exchange:
/// each computed `C_{i,j}` (`i < j`) travels point-to-point from rank
/// `(i, j)` to rank `(j, i)` — `(P − √P)/2` messages of
/// `nnz(C_{i,j}) · out_entry_words` words, recorded via
/// [`record_p2p`] so the phase's totals and its `p2p_*` extras show what the
/// halved flops cost in latency.  Stage broadcasts shrink to the
/// participating upper-triangle ranks (block `A_{i,k}` serves grid row `i`'s
/// columns `j ≥ i` as the left operand and grid column `i`'s rows `i' ≤ i`
/// as the transposed right operand — `(√P − i − 1) + i = √P − 1` accounted
/// copies per block instead of the general path's `2(√P − 1)`), so both the
/// broadcast volume and its message count halve as well.
///
/// The output is **bit-identical** to `summa_abt(a, a, ..)` at every grid
/// size and thread count: products for any entry arrive in the same
/// (stage-major, ascending inner index) order in both formulations, and
/// [`MirrorSemiring::mirror`] reconstructs the lower triangle entry for
/// entry.
pub fn summa_aat_sym<S: MirrorSemiring>(
    a: &DistMat2D<S::Left>,
    stats: &CommStats,
    phase: CommPhase,
) -> DistMat2D<S::Out> {
    summa_aat_sym_with_words::<S>(
        a,
        stats,
        phase,
        words_of::<S::Left>() + 1,
        words_of::<S::Out>() + 1,
    )
}

/// [`summa_aat_sym`] with explicit per-entry word costs for the operand and
/// for the exchanged output blocks.
pub fn summa_aat_sym_with_words<S: MirrorSemiring>(
    a: &DistMat2D<S::Left>,
    stats: &CommStats,
    phase: CommPhase,
    a_entry_words: u64,
    out_entry_words: u64,
) -> DistMat2D<S::Out> {
    let grid = a.grid();
    assert!(grid.is_square(), "Sparse SUMMA requires a square process grid");

    let stages = grid.cols();

    // Stage broadcasts, restricted to the ranks that actually compute: block
    // A_{i,k} serves (as the left operand) the upper-triangle ranks
    // `(i, j ≥ i)` of grid row i — a (cols − i)-member group — and (as the
    // transposed right operand) the ranks `(i' ≤ i, i)` of grid column i — an
    // (i + 1)-member group.  Together that is (cols − 1) accounted copies per
    // block — half the general path's 2(cols − 1) — so the stage-broadcast
    // words and messages both halve.  Empty blocks still post their
    // broadcasts (collectives; see [`summa_with_words`]).
    for k in 0..stages {
        for i in 0..grid.rows() {
            let words = a.block_nnz(i, k) as u64 * a_entry_words;
            record_broadcast(stats, phase, words, grid.cols() - i);
            record_broadcast(stats, phase, words, i + 1);
        }
    }
    stats.bump_extra(SUMMA_STAGES_KEY, stages as u64);

    // Column-major form of every block of A, shared by all consumers (the
    // same local conversion summa_abt performs).
    let columns: Vec<CsrMatrix<S::Left>> =
        par_ranks(grid.nprocs(), |rank| a.blocks()[rank].transpose());

    let row_dist = a.row_dist();
    let flops = FlopCounter::new();
    let upper: Vec<Option<CsrMatrix<S::Out>>> = par_ranks(grid.nprocs(), |rank| {
        let (i, j) = grid.coords(rank);
        if i > j {
            return None;
        }
        let pairs: StagePairs<'_, S::Left, S::Left> = (0..stages)
            .filter_map(|k| {
                let a_block = a.block(i, k);
                let view = &columns[grid.rank_of(j, k)];
                (!a_block.is_empty() && !view.is_empty()).then_some((a_block, view))
            })
            .collect();
        Some(if i == j {
            // A diagonal block of A·Aᵀ is mirror-symmetric on its own: its
            // local upper triangle is exactly the global one, because the
            // row and column offsets of block (i, i) coincide.
            spgemm_stages_aat::<S, _>(row_dist.size(i), &pairs, AccumPolicy::Auto, &flops)
        } else {
            spgemm_stages::<S, _>(
                row_dist.size(i),
                row_dist.size(j),
                &pairs,
                AccumPolicy::Auto,
                &flops,
            )
        })
    });
    record_flops(stats, phase, &flops);

    // Cross-diagonal exchange: rank (i, j) ships its computed C_{i,j} to the
    // mirror rank (j, i).  Empty blocks are skipped (the point-to-point
    // convention), so a diagonal-heavy C costs fewer than (P − √P)/2 sends.
    for rank in grid.ranks() {
        let (i, j) = grid.coords(rank);
        if i < j {
            let nnz = upper[rank].as_ref().map_or(0, CsrMatrix::nnz);
            record_p2p(stats, phase, nnz as u64 * out_entry_words);
        }
    }

    // Materialise the strictly-lower blocks from their received partners.
    let mirrored: Vec<Option<CsrMatrix<S::Out>>> = par_ranks(grid.nprocs(), |rank| {
        let (i, j) = grid.coords(rank);
        (i > j).then(|| {
            mirror_block::<S>(upper[grid.rank_of(j, i)].as_ref().expect("upper block computed"))
        })
    });
    let blocks: Vec<CsrMatrix<S::Out>> = upper
        .into_iter()
        .zip(mirrored)
        .map(|(up, low)| up.or(low).expect("every rank owns a block"))
        .collect();

    DistMat2D::from_blocks(grid, a.nrows(), a.nrows(), blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlusNum, PlusTimes};
    use crate::spgemm::local_spgemm;
    use crate::triples::Triples;
    use dibella_dist::collectives::{p2p_messages_key, p2p_words_key};
    use dibella_dist::ProcessGrid;
    use proptest::prelude::*;

    fn random_triples(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> Triples<i64> {
        // Simple deterministic pseudo-random pattern (no rand dependency needed).
        let mut t = Triples::new(nrows, ncols);
        let mut seen = std::collections::BTreeSet::new();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        while seen.len() < nnz.min(nrows * ncols) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (state >> 33) as usize % nrows;
            let c = (state >> 13) as usize % ncols;
            if seen.insert((r, c)) {
                t.push(r, c, ((state % 17) as i64) - 8);
            }
        }
        t
    }

    #[test]
    fn summa_matches_local_spgemm_on_square_grid() {
        let grid = ProcessGrid::square(4);
        let at = random_triples(14, 11, 40, 1);
        let bt = random_triples(11, 9, 35, 2);
        let a = DistMat2D::from_triples(grid, &at);
        let b = DistMat2D::from_triples(grid, &bt);
        let stats = CommStats::new();
        let c = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::OverlapDetection);
        let local = local_spgemm::<PlusTimes<i64>>(
            &CsrMatrix::from_triples(&at),
            &CsrMatrix::from_triples(&bt),
        );
        assert_eq!(c.to_local_csr(), local);
    }

    #[test]
    fn summa_single_rank_has_zero_communication() {
        let grid = ProcessGrid::square(1);
        let at = random_triples(10, 10, 25, 3);
        let a = DistMat2D::from_triples(grid, &at);
        let b = a.transpose();
        let stats = CommStats::new();
        let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::OverlapDetection);
        assert_eq!(stats.words(CommPhase::OverlapDetection), 0);
        assert_eq!(stats.messages(CommPhase::OverlapDetection), 0);
    }

    #[test]
    fn summa_communication_grows_with_grid_size() {
        // The per-rank bandwidth should shrink with sqrt(P) but the aggregate
        // (what CommStats totals) grows; check both qualitatively.
        let at = random_triples(24, 24, 200, 5);
        let bt = random_triples(24, 24, 200, 6);
        let mut totals = Vec::new();
        for p in [1usize, 4, 16] {
            let grid = ProcessGrid::square(p);
            let a = DistMat2D::from_triples(grid, &at);
            let b = DistMat2D::from_triples(grid, &bt);
            let stats = CommStats::new();
            let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::OverlapDetection);
            totals.push((
                stats.words(CommPhase::OverlapDetection),
                stats.messages(CommPhase::OverlapDetection),
            ));
        }
        assert_eq!(totals[0], (0, 0));
        assert!(totals[1].0 > 0);
        assert!(totals[2].0 > totals[1].0);
        // Latency: aggregate messages grow with P, per the 2(sqrt(P)-1) broadcasts per stage.
        assert!(totals[2].1 > totals[1].1);
    }

    #[test]
    fn summa_respects_min_plus_semiring() {
        // Two-hop shortest paths on a small digraph, distributed.
        let grid = ProcessGrid::square(4);
        let entries = vec![(0usize, 1usize, 4u64), (1, 2, 1), (0, 3, 2), (3, 2, 9), (2, 0, 7)];
        let t = Triples::from_entries(4, 4, entries);
        let r = DistMat2D::from_triples(grid, &t);
        let stats = CommStats::new();
        let n = summa::<MinPlusNum<u64>>(&r, &r, &stats, CommPhase::TransitiveReduction);
        let local = local_spgemm::<MinPlusNum<u64>>(
            &CsrMatrix::from_triples(&t),
            &CsrMatrix::from_triples(&t),
        );
        assert_eq!(n.to_local_csr(), local);
        // 0 -> 2 best two-hop path is via 1 (4+1=5), not via 3 (2+9=11).
        assert_eq!(n.get(0, 2), Some(&5));
    }

    #[test]
    fn summa_records_flops_per_phase() {
        let grid = ProcessGrid::square(4);
        let at = random_triples(16, 16, 80, 9);
        let a = DistMat2D::from_triples(grid, &at);
        let b = DistMat2D::from_triples(grid, &random_triples(16, 16, 80, 10));
        let stats = CommStats::new();
        let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::OverlapDetection);
        assert!(stats.extra(&flops_key(CommPhase::OverlapDetection)) > 0);
        assert!(stats.extra(&probes_key(CommPhase::OverlapDetection)) > 0);
        assert!(stats.extra(&peak_row_width_key(CommPhase::OverlapDetection)) > 0);
        assert_eq!(stats.extra(&flops_key(CommPhase::TransitiveReduction)), 0);
        // 2 flops per accumulated product.
        assert_eq!(stats.extra(&flops_key(CommPhase::OverlapDetection)) % 2, 0);
    }

    #[test]
    fn summa_flops_are_independent_of_the_grid() {
        let at = random_triples(20, 20, 150, 11);
        let bt = random_triples(20, 20, 150, 12);
        let mut flops = Vec::new();
        for p in [1usize, 4, 16] {
            let grid = ProcessGrid::square(p);
            let a = DistMat2D::from_triples(grid, &at);
            let b = DistMat2D::from_triples(grid, &bt);
            let stats = CommStats::new();
            let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other);
            flops.push(stats.extra(&flops_key(CommPhase::Other)));
        }
        assert!(flops[0] > 0);
        assert_eq!(flops[0], flops[1], "useful flops must not depend on the decomposition");
        assert_eq!(flops[0], flops[2]);
    }

    #[test]
    fn summa_abt_matches_summa_against_materialised_transpose() {
        for p in [1usize, 4, 9] {
            let grid = ProcessGrid::square(p);
            let at = random_triples(13, 17, 60, 21);
            let bt = random_triples(10, 17, 50, 22);
            let a = DistMat2D::from_triples(grid, &at);
            let b = DistMat2D::from_triples(grid, &bt);
            let stats_abt = CommStats::new();
            let direct =
                summa_abt::<PlusTimes<i64>>(&a, &b, &stats_abt, CommPhase::OverlapDetection);
            let stats_t = CommStats::new();
            let via_t = summa::<PlusTimes<i64>>(
                &a,
                &b.transpose(),
                &stats_t,
                CommPhase::OverlapDetection,
            );
            assert_eq!(direct.to_local_csr(), via_t.to_local_csr(), "P={p}");
            // Same blocks travel in both formulations, so the accounted
            // volumes must agree too.
            assert_eq!(
                stats_abt.words(CommPhase::OverlapDetection),
                stats_t.words(CommPhase::OverlapDetection),
                "P={p}"
            );
        }
    }

    #[test]
    fn summa_aat_squares_without_transposing() {
        let grid = ProcessGrid::square(4);
        let at = random_triples(15, 12, 70, 31);
        let a = DistMat2D::from_triples(grid, &at);
        let stats = CommStats::new();
        let c = summa_abt::<PlusTimes<i64>>(&a, &a, &stats, CommPhase::OverlapDetection);
        let local_a = CsrMatrix::from_triples(&at);
        let want = local_spgemm::<PlusTimes<i64>>(&local_a, &local_a.transpose());
        assert_eq!(c.to_local_csr(), want);
        assert_eq!(c.nrows(), 15);
        assert_eq!(c.ncols(), 15);
    }

    #[test]
    fn summa_aat_sym_is_bit_identical_to_summa_abt_on_paper_grids() {
        let at = random_triples(19, 14, 90, 41);
        for p in [1usize, 4, 9, 16] {
            let grid = ProcessGrid::square(p);
            let a = DistMat2D::from_triples(grid, &at);
            let stats_sym = CommStats::new();
            let sym = summa_aat_sym::<PlusTimes<i64>>(&a, &stats_sym, CommPhase::OverlapDetection);
            let stats_abt = CommStats::new();
            let general =
                summa_abt::<PlusTimes<i64>>(&a, &a, &stats_abt, CommPhase::OverlapDetection);
            // Distributed equality: every block, bit for bit.
            assert_eq!(sym, general, "P={p}");
        }
    }

    #[test]
    fn summa_aat_sym_is_deterministic_across_thread_counts() {
        let at = random_triples(21, 16, 110, 43);
        let grid = ProcessGrid::square(9);
        let a = DistMat2D::from_triples(grid, &at);
        let reference = rayon::pool::with_thread_limit(1, || {
            summa_aat_sym::<PlusTimes<i64>>(&a, &CommStats::new(), CommPhase::Other)
        });
        for threads in [2usize, 4, 8] {
            let got = rayon::pool::with_thread_limit(threads, || {
                summa_aat_sym::<PlusTimes<i64>>(&a, &CommStats::new(), CommPhase::Other)
            });
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn summa_aat_sym_flops_are_half_the_general_path_and_grid_independent() {
        let at = random_triples(24, 18, 160, 45);
        let mut sym_flops = Vec::new();
        let mut general_flops = 0;
        for p in [1usize, 4, 9, 16] {
            let grid = ProcessGrid::square(p);
            let a = DistMat2D::from_triples(grid, &at);
            let stats = CommStats::new();
            let _ = summa_aat_sym::<PlusTimes<i64>>(&a, &stats, CommPhase::Other);
            sym_flops.push(stats.extra(&flops_key(CommPhase::Other)));
            let stats_abt = CommStats::new();
            let _ = summa_abt::<PlusTimes<i64>>(&a, &a, &stats_abt, CommPhase::Other);
            general_flops = stats_abt.extra(&flops_key(CommPhase::Other));
        }
        assert!(sym_flops[0] > 0);
        for (i, &f) in sym_flops.iter().enumerate() {
            assert_eq!(f, sym_flops[0], "useful flops must not depend on the grid (case {i})");
        }
        // The upper triangle holds half the products plus the diagonal:
        // general = 2·sym − diag, so sym is ~half and never more than
        // (general + diag)/2.
        assert!(sym_flops[0] < general_flops, "symmetric path must do less work");
        assert!(
            sym_flops[0] <= general_flops / 2 + general_flops / 8,
            "expected ~half the flops: sym={} general={general_flops}",
            sym_flops[0]
        );
        assert!(2 * sym_flops[0] >= general_flops, "upper triangle covers every product once");
    }

    #[test]
    fn summa_aat_sym_single_rank_has_zero_communication() {
        let grid = ProcessGrid::square(1);
        let a = DistMat2D::from_triples(grid, &random_triples(12, 9, 40, 47));
        let stats = CommStats::new();
        let _ = summa_aat_sym::<PlusTimes<i64>>(&a, &stats, CommPhase::OverlapDetection);
        assert_eq!(stats.words(CommPhase::OverlapDetection), 0);
        assert_eq!(stats.messages(CommPhase::OverlapDetection), 0);
        assert_eq!(stats.extra(&p2p_messages_key(CommPhase::OverlapDetection)), 0);
    }

    #[test]
    fn summa_aat_sym_accounts_the_cross_diagonal_exchange() {
        // Dense-ish A so every upper block of C is non-empty: the exchange
        // must show exactly (P − √P)/2 point-to-point messages, and the
        // broadcast volume must be half the general path's.
        let at = random_triples(20, 20, 300, 49);
        for (p, side) in [(4usize, 2u64), (9, 3), (16, 4)] {
            let grid = ProcessGrid::square(p);
            let a = DistMat2D::from_triples(grid, &at);
            let stats_sym = CommStats::new();
            let c = summa_aat_sym_with_words::<PlusTimes<i64>>(
                &a,
                &stats_sym,
                CommPhase::OverlapDetection,
                2,
                3,
            );
            let stats_abt = CommStats::new();
            let _ = summa_abt_with_words::<PlusTimes<i64>>(
                &a,
                &a,
                &stats_abt,
                CommPhase::OverlapDetection,
                2,
                2,
            );
            let p2p_msgs = stats_sym.extra(&p2p_messages_key(CommPhase::OverlapDetection));
            let p2p_words = stats_sym.extra(&p2p_words_key(CommPhase::OverlapDetection));
            assert_eq!(p2p_msgs, (p as u64 - side) / 2, "P={p}");
            // Exchanged words = nnz of the strictly-upper off-diagonal blocks
            // times the per-entry word cost.
            let mut upper_nnz = 0u64;
            for i in 0..grid.rows() {
                for j in (i + 1)..grid.cols() {
                    upper_nnz += c.block_nnz(i, j) as u64;
                }
            }
            assert_eq!(p2p_words, upper_nnz * 3, "P={p}");
            // Broadcast traffic (phase totals minus the p2p share) is half
            // the general path's, in words and messages.
            let sym_bcast_words = stats_sym.words(CommPhase::OverlapDetection) - p2p_words;
            let sym_bcast_msgs = stats_sym.messages(CommPhase::OverlapDetection) - p2p_msgs;
            assert_eq!(sym_bcast_words * 2, stats_abt.words(CommPhase::OverlapDetection));
            assert_eq!(sym_bcast_msgs * 2, stats_abt.messages(CommPhase::OverlapDetection));
        }
    }

    #[test]
    fn summa_accounting_matches_the_closed_form() {
        // With empty blocks still posting their (collective) broadcasts, the
        // accounted totals have data-independent closed forms: for a side-s
        // grid, messages = 2·s²·(s−1)·[per stage] = 2·s²·(s−1) summed over
        // the s stages... i.e. s stages × 2·s·(s−1) messages, and words =
        // (s−1)·(nnz(A)·aw + nnz(B)·bw).
        let at = random_triples(17, 13, 70, 51);
        let bt = random_triples(13, 11, 55, 52);
        let (aw, bw) = (3u64, 5u64);
        for side in [1usize, 2, 3] {
            let grid = ProcessGrid::square(side * side);
            let a = DistMat2D::from_triples(grid, &at);
            let b = DistMat2D::from_triples(grid, &bt);
            let stats = CommStats::new();
            let _ = summa_with_words::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other, aw, bw);
            let s = side as u64;
            assert_eq!(
                stats.words(CommPhase::Other),
                (s - 1) * (at.nnz() as u64 * aw + bt.nnz() as u64 * bw),
                "side={side}"
            );
            assert_eq!(stats.messages(CommPhase::Other), s * 2 * s * (s - 1), "side={side}");
        }
    }

    #[test]
    fn summa_abt_accounting_matches_the_closed_form() {
        // The regression pinning the rows()/cols() symbol fix: same closed
        // form as [`summa_accounting_matches_the_closed_form`] — the B-side
        // loop must enumerate grid columns and broadcast to grid-row-many
        // members, which on today's square grids is only distinguishable by
        // this totals check staying exact.
        let at = random_triples(15, 12, 60, 53);
        let bt = random_triples(14, 12, 50, 54);
        let (aw, bw) = (2u64, 7u64);
        for side in [1usize, 2, 3, 4] {
            let grid = ProcessGrid::square(side * side);
            let a = DistMat2D::from_triples(grid, &at);
            let b = DistMat2D::from_triples(grid, &bt);
            let stats = CommStats::new();
            let _ =
                summa_abt_with_words::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other, aw, bw);
            let s = side as u64;
            assert_eq!(
                stats.words(CommPhase::Other),
                (s - 1) * (at.nnz() as u64 * aw + bt.nnz() as u64 * bw),
                "side={side}"
            );
            assert_eq!(stats.messages(CommPhase::Other), s * 2 * s * (s - 1), "side={side}");
        }
    }

    #[test]
    fn empty_blocks_still_post_their_broadcasts() {
        // The accounting decision, pinned: broadcasts are collectives, so an
        // all-zero operand records its full closed-form message count and
        // zero words (point-to-point sends, by contrast, skip empty buffers —
        // see the collectives tests).
        let grid = ProcessGrid::square(9);
        let a = DistMat2D::<i64>::zero(grid, 12, 12);
        let b = DistMat2D::<i64>::zero(grid, 12, 12);
        let stats = CommStats::new();
        let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other);
        assert_eq!(stats.words(CommPhase::Other), 0);
        assert_eq!(stats.messages(CommPhase::Other), 3 * 2 * 3 * 2);
        let stats_abt = CommStats::new();
        let _ = summa_abt::<PlusTimes<i64>>(&a, &b, &stats_abt, CommPhase::Other);
        assert_eq!(stats_abt.messages(CommPhase::Other), 3 * 2 * 3 * 2);
        // The symmetric path's empty exchange ships nothing at all.
        let stats_sym = CommStats::new();
        let _ = summa_aat_sym::<PlusTimes<i64>>(&a, &stats_sym, CommPhase::Other);
        assert_eq!(stats_sym.words(CommPhase::Other), 0);
        // Half the general path's broadcasts: s·(s−1) per stage × s stages.
        assert_eq!(stats_sym.messages(CommPhase::Other), 3 * 2 * 3);
        assert_eq!(stats_sym.extra(&p2p_messages_key(CommPhase::Other)), 0);
    }

    #[test]
    #[should_panic(expected = "square process grid")]
    fn summa_rejects_non_square_grid() {
        let grid = ProcessGrid::new(1, 2);
        let a = DistMat2D::from_triples(grid, &random_triples(4, 4, 4, 7));
        let b = DistMat2D::from_triples(grid, &random_triples(4, 4, 4, 8));
        let stats = CommStats::new();
        let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn summa_rejects_dimension_mismatch() {
        let grid = ProcessGrid::square(4);
        let a = DistMat2D::from_triples(grid, &random_triples(4, 5, 4, 7));
        let b = DistMat2D::from_triples(grid, &random_triples(4, 4, 4, 8));
        let stats = CommStats::new();
        let _ = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn summa_abt_rejects_dimension_mismatch() {
        let grid = ProcessGrid::square(4);
        let a = DistMat2D::from_triples(grid, &random_triples(4, 5, 4, 7));
        let b = DistMat2D::from_triples(grid, &random_triples(4, 4, 4, 8));
        let stats = CommStats::new();
        let _ = summa_abt::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_summa_equals_local_product(
            seed_a in 0u64..1000,
            seed_b in 0u64..1000,
            grid_side in 1usize..4,
            n in 6usize..20,
            m in 6usize..20,
            k in 6usize..20,
        ) {
            let at = random_triples(n, m, n * m / 3, seed_a);
            let bt = random_triples(m, k, m * k / 3, seed_b);
            let grid = ProcessGrid::square(grid_side * grid_side);
            let a = DistMat2D::from_triples(grid, &at);
            let b = DistMat2D::from_triples(grid, &bt);
            let stats = CommStats::new();
            let c = summa::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::OverlapDetection);
            let local = local_spgemm::<PlusTimes<i64>>(
                &CsrMatrix::from_triples(&at),
                &CsrMatrix::from_triples(&bt),
            );
            prop_assert_eq!(c.to_local_csr(), local);
        }

        #[test]
        fn prop_summa_aat_sym_equals_summa_abt(
            seed in 0u64..1000,
            grid_side in 1usize..5,
            n in 6usize..20,
            m in 6usize..18,
        ) {
            let at = random_triples(n, m, (n * m / 3).max(1), seed);
            let grid = ProcessGrid::square(grid_side * grid_side);
            let a = DistMat2D::from_triples(grid, &at);
            let sym = summa_aat_sym::<PlusTimes<i64>>(&a, &CommStats::new(), CommPhase::Other);
            let general =
                summa_abt::<PlusTimes<i64>>(&a, &a, &CommStats::new(), CommPhase::Other);
            prop_assert_eq!(sym, general);
        }

        #[test]
        fn prop_summa_abt_equals_local_abt(
            seed_a in 0u64..1000,
            seed_b in 0u64..1000,
            grid_side in 1usize..4,
            n in 6usize..18,
            m in 6usize..18,
            k in 6usize..18,
        ) {
            let at = random_triples(n, m, n * m / 3, seed_a);
            let bt = random_triples(k, m, k * m / 3, seed_b);
            let grid = ProcessGrid::square(grid_side * grid_side);
            let a = DistMat2D::from_triples(grid, &at);
            let b = DistMat2D::from_triples(grid, &bt);
            let stats = CommStats::new();
            let c = summa_abt::<PlusTimes<i64>>(&a, &b, &stats, CommPhase::Other);
            let local = crate::spgemm::local_spgemm_abt::<PlusTimes<i64>>(
                &CsrMatrix::from_triples(&at),
                &CsrMatrix::from_triples(&bt),
            );
            prop_assert_eq!(c.to_local_csr(), local);
        }
    }
}

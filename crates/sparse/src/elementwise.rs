//! Element-wise sparse kernels used by Algorithm 2.
//!
//! The transitive reduction algorithm (Algorithm 2 in the paper) needs, beyond
//! the SpGEMM `N = R²`:
//!
//! * `Reduce(Row, max)` and `Apply` — provided directly on
//!   [`crate::CsrMatrix`];
//! * `DimApply(Row, v, return2nd)` — building the maximal-suffix matrix `M`;
//! * an element-wise comparison over the intersection of two sparsity patterns
//!   (`I = M >= N`, only where both are nonzero) — [`ewise_intersect`];
//! * `R ∘ ¬I` — removing the flagged transitive edges, i.e. the set difference
//!   `nonzeros(R) \ nonzeros(I)` — [`set_difference`].
//!
//! All kernels are pattern-respecting and never densify.

use crate::csr::CsrMatrix;
use crate::triples::Triples;
use rayon::prelude::*;

/// Element-wise operation over the **intersection** of the patterns of `a` and
/// `b`.  For every coordinate present in both, `f` may produce an output entry
/// (`Some`) or drop it (`None`).
pub fn ewise_intersect<A: Clone + Sync, B: Clone + Sync, C: Clone + Send>(
    a: &CsrMatrix<A>,
    b: &CsrMatrix<B>,
    f: impl Fn(usize, usize, &A, &B) -> Option<C> + Sync,
) -> CsrMatrix<C> {
    assert_eq!(a.nrows(), b.nrows(), "ewise: row count mismatch");
    assert_eq!(a.ncols(), b.ncols(), "ewise: column count mismatch");
    let rows: Vec<Vec<(usize, C)>> = (0..a.nrows())
        .into_par_iter()
        .map(|r| {
            let mut out = Vec::new();
            let mut bi = b.row(r).peekable();
            for (ca, va) in a.row(r) {
                // Advance b's iterator until its column >= ca.
                while matches!(bi.peek(), Some((cb, _)) if *cb < ca) {
                    bi.next();
                }
                if let Some((cb, vb)) = bi.peek() {
                    if *cb == ca {
                        if let Some(v) = f(r, ca, va, vb) {
                            out.push((ca, v));
                        }
                    }
                }
            }
            out
        })
        .collect();
    crate::spgemm::rows_to_csr(a.nrows(), a.ncols(), rows)
}

/// Element-wise operation over the **union** of the patterns of `a` and `b`.
///
/// `f` receives `Option`s for the two sides; at least one is always `Some`.
pub fn ewise_union<A: Clone + Sync, B: Clone + Sync, C: Clone + Send>(
    a: &CsrMatrix<A>,
    b: &CsrMatrix<B>,
    f: impl Fn(usize, usize, Option<&A>, Option<&B>) -> Option<C> + Sync,
) -> CsrMatrix<C> {
    assert_eq!(a.nrows(), b.nrows(), "ewise: row count mismatch");
    assert_eq!(a.ncols(), b.ncols(), "ewise: column count mismatch");
    let rows: Vec<Vec<(usize, C)>> = (0..a.nrows())
        .into_par_iter()
        .map(|r| {
            let mut out = Vec::new();
            let mut ai = a.row(r).peekable();
            let mut bi = b.row(r).peekable();
            loop {
                match (ai.peek().copied(), bi.peek().copied()) {
                    (Some((ca, va)), Some((cb, vb))) => {
                        if ca < cb {
                            if let Some(v) = f(r, ca, Some(va), None) {
                                out.push((ca, v));
                            }
                            ai.next();
                        } else if cb < ca {
                            if let Some(v) = f(r, cb, None, Some(vb)) {
                                out.push((cb, v));
                            }
                            bi.next();
                        } else {
                            if let Some(v) = f(r, ca, Some(va), Some(vb)) {
                                out.push((ca, v));
                            }
                            ai.next();
                            bi.next();
                        }
                    }
                    (Some((ca, va)), None) => {
                        if let Some(v) = f(r, ca, Some(va), None) {
                            out.push((ca, v));
                        }
                        ai.next();
                    }
                    (None, Some((cb, vb))) => {
                        if let Some(v) = f(r, cb, None, Some(vb)) {
                            out.push((cb, v));
                        }
                        bi.next();
                    }
                    (None, None) => break,
                }
            }
            out
        })
        .collect();
    crate::spgemm::rows_to_csr(a.nrows(), a.ncols(), rows)
}

/// The set difference `nonzeros(a) \ nonzeros(mask)`: keep every entry of `a`
/// whose coordinate is **not** present in `mask` (line 9 of Algorithm 2,
/// `R ← R ∘ ¬I`).
pub fn set_difference<A: Clone + Sync + Send, M: Clone + Sync>(
    a: &CsrMatrix<A>,
    mask: &CsrMatrix<M>,
) -> CsrMatrix<A> {
    assert_eq!(a.nrows(), mask.nrows(), "set_difference: row count mismatch");
    assert_eq!(a.ncols(), mask.ncols(), "set_difference: column count mismatch");
    let rows: Vec<Vec<(usize, A)>> = (0..a.nrows())
        .into_par_iter()
        .map(|r| {
            let mask_cols: Vec<usize> = mask.row(r).map(|(c, _)| c).collect();
            a.row(r)
                .filter(|(c, _)| mask_cols.binary_search(c).is_err())
                .map(|(c, v)| (c, v.clone()))
                .collect()
        })
        .collect();
    crate::spgemm::rows_to_csr(a.nrows(), a.ncols(), rows)
}

/// Build a matrix with the pattern of `a` where each entry in row `r` is
/// `f(v[r], entry)`; rows whose vector slot is `None` produce no entries.
///
/// This is the `M ← R.DimApply(Row, v, return2nd)` step of Algorithm 2 in a
/// form that drops rows with no reduction value.
pub fn dimapply_rows_filtered<A: Clone + Sync, U: Clone + Sync, C: Clone + Send>(
    a: &CsrMatrix<A>,
    v: &[Option<U>],
    f: impl Fn(&U, usize, usize, &A) -> C + Sync,
) -> CsrMatrix<C> {
    assert_eq!(v.len(), a.nrows(), "vector length must equal the row count");
    let rows: Vec<Vec<(usize, C)>> = (0..a.nrows())
        .into_par_iter()
        .map(|r| match &v[r] {
            None => Vec::new(),
            Some(u) => a.row(r).map(|(c, val)| (c, f(u, r, c, val))).collect(),
        })
        .collect();
    crate::spgemm::rows_to_csr(a.nrows(), a.ncols(), rows)
}

/// Keep the entries of `a` selected by `pred`, in parallel over rows.
pub fn filter_par<A: Clone + Sync + Send>(
    a: &CsrMatrix<A>,
    pred: impl Fn(usize, usize, &A) -> bool + Sync,
) -> CsrMatrix<A> {
    let rows: Vec<Vec<(usize, A)>> = (0..a.nrows())
        .into_par_iter()
        .map(|r| {
            a.row(r)
                .filter(|(c, v)| pred(r, *c, v))
                .map(|(c, v)| (c, v.clone()))
                .collect()
        })
        .collect();
    crate::spgemm::rows_to_csr(a.nrows(), a.ncols(), rows)
}

/// Convenience: build a CSR matrix from a list of entries (testing helper).
pub fn csr_from_entries<T: Clone>(
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, T)>,
) -> CsrMatrix<T> {
    CsrMatrix::from_triples(&Triples::from_entries(nrows, ncols, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intersect_only_touches_shared_coordinates() {
        let a = csr_from_entries(2, 3, vec![(0, 0, 1i64), (0, 2, 2), (1, 1, 3)]);
        let b = csr_from_entries(2, 3, vec![(0, 2, 10i64), (1, 0, 20), (1, 1, 30)]);
        let c = ewise_intersect(&a, &b, |_, _, x, y| Some(x + y));
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 2), Some(&12));
        assert_eq!(c.get(1, 1), Some(&33));
    }

    #[test]
    fn intersect_can_drop_entries() {
        let a = csr_from_entries(1, 4, vec![(0, 0, 5i64), (0, 1, 1), (0, 3, 9)]);
        let b = csr_from_entries(1, 4, vec![(0, 0, 5i64), (0, 1, 2), (0, 3, 9)]);
        let c = ewise_intersect(&a, &b, |_, _, x, y| if x == y { Some(*x) } else { None });
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 1), None);
    }

    #[test]
    fn union_visits_every_coordinate_once() {
        let a = csr_from_entries(1, 5, vec![(0, 0, 1i64), (0, 2, 2)]);
        let b = csr_from_entries(1, 5, vec![(0, 2, 10i64), (0, 4, 20)]);
        let c = ewise_union(&a, &b, |_, _, x, y| {
            Some(x.copied().unwrap_or(0) + y.copied().unwrap_or(0))
        });
        assert_eq!(c.nnz(), 3);
        assert_eq!(c.get(0, 0), Some(&1));
        assert_eq!(c.get(0, 2), Some(&12));
        assert_eq!(c.get(0, 4), Some(&20));
    }

    #[test]
    fn set_difference_removes_masked_entries() {
        let a = csr_from_entries(2, 3, vec![(0, 0, 1i64), (0, 1, 2), (1, 2, 3)]);
        let mask = csr_from_entries(2, 3, vec![(0, 1, true), (1, 0, true)]);
        let d = set_difference(&a, &mask);
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.get(0, 0), Some(&1));
        assert_eq!(d.get(0, 1), None);
        assert_eq!(d.get(1, 2), Some(&3));
    }

    #[test]
    fn set_difference_with_empty_mask_is_identity() {
        let a = csr_from_entries(2, 2, vec![(0, 0, 1i64), (1, 1, 2)]);
        let mask = CsrMatrix::<bool>::zero(2, 2);
        assert_eq!(set_difference(&a, &mask), a);
    }

    #[test]
    fn dimapply_skips_empty_rows() {
        let a = csr_from_entries(3, 3, vec![(0, 0, 1i64), (0, 1, 2), (2, 2, 3)]);
        let v = vec![Some(100i64), Some(7), None];
        let m = dimapply_rows_filtered(&a, &v, |u, _, _, _| *u);
        assert_eq!(m.get(0, 0), Some(&100));
        assert_eq!(m.get(0, 1), Some(&100));
        assert_eq!(m.get(2, 2), None);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn filter_par_matches_sequential_filter() {
        let a = csr_from_entries(3, 3, vec![(0, 0, 1i64), (1, 1, -2), (2, 2, 3), (2, 0, -4)]);
        let pos_par = filter_par(&a, |_, _, v| *v > 0);
        let pos_seq = a.filter(|_, _, v| *v > 0);
        assert_eq!(pos_par, pos_seq);
        assert_eq!(pos_par.nnz(), 2);
    }

    fn arb_matrix(nrows: usize, ncols: usize) -> impl Strategy<Value = CsrMatrix<i64>> {
        proptest::collection::btree_set((0..nrows, 0..ncols), 0..40).prop_map(move |coords| {
            let entries: Vec<_> = coords
                .into_iter()
                .enumerate()
                .map(|(i, (r, c))| (r, c, i as i64 + 1))
                .collect();
            csr_from_entries(nrows, ncols, entries)
        })
    }

    proptest! {
        #[test]
        fn prop_set_difference_pattern_is_a_minus_mask(
            a in arb_matrix(10, 10),
            mask in arb_matrix(10, 10),
        ) {
            let d = set_difference(&a, &mask);
            prop_assert!(d.validate().is_ok());
            let mask_pat: std::collections::BTreeSet<_> = mask.pattern().into_iter().collect();
            let expected: Vec<_> = a
                .pattern()
                .into_iter()
                .filter(|coord| !mask_pat.contains(coord))
                .collect();
            prop_assert_eq!(d.pattern(), expected);
            // Values must be untouched.
            for (r, c, v) in d.iter() {
                prop_assert_eq!(a.get(r, c), Some(v));
            }
        }

        #[test]
        fn prop_intersect_union_patterns(
            a in arb_matrix(8, 8),
            b in arb_matrix(8, 8),
        ) {
            let inter = ewise_intersect(&a, &b, |_, _, x, y| Some(x + y));
            let uni = ewise_union(&a, &b, |_, _, x, y| Some(x.copied().unwrap_or(0) + y.copied().unwrap_or(0)));
            let pa: std::collections::BTreeSet<_> = a.pattern().into_iter().collect();
            let pb: std::collections::BTreeSet<_> = b.pattern().into_iter().collect();
            let expected_inter: Vec<_> = pa.intersection(&pb).copied().collect();
            let expected_union: Vec<_> = pa.union(&pb).copied().collect();
            prop_assert_eq!(inter.pattern(), expected_inter);
            prop_assert_eq!(uni.pattern(), expected_union);
        }
    }
}

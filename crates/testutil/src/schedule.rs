//! Schedule-exploration harness for the work-stealing pool.
//!
//! The pool's determinism claim — bit-identical output at any thread count —
//! is usually tested by sweeping 1/2/4 workers and hoping the OS produces
//! interesting interleavings.  This module makes the sweep adversarial and
//! reproducible instead: it drives the pool's [`StealSchedule`] mode (see
//! `rayon::pool`), which pins the chunk count and permutes the chunk-claim
//! order deterministically, with yield points injected before every claim.
//!
//! Two presets cover the two exploration regimes:
//!
//! * [`SchedulePreset::ExhaustiveSmall`] enumerates **every** claim order at
//!   3 and 4 chunks (`3! + 4! = 30` schedules) — small enough to be complete,
//!   large enough that any claim-order dependence shows up;
//! * [`SchedulePreset::RandomizedLarge`] samples seeded shuffles at 8/12/16
//!   chunks, where enumeration is hopeless but coarse chunk interleavings
//!   hide different bugs (e.g. accumulator reuse across distant rows).
//!
//! [`assert_schedule_determinism`] is the entry point: it runs a workload
//! once under the production schedule as the baseline, then once per explored
//! schedule (each under its own worker-count pin), and asserts every output
//! equals the baseline.  CI runs the exhaustive preset on pull requests and
//! the larger randomized preset on pushes to main
//! (`DIBELLA_SCHEDULES=randomized`; see [`SchedulePreset::from_env`]).

use rayon::pool::{with_steal_schedule, with_thread_limit, StealSchedule};

/// One explored schedule: a steal-order permutation plus the worker-count pin
/// to run it under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploredSchedule {
    /// Worker-count pin for the run.
    pub threads: usize,
    /// The chunk-claim schedule.
    pub schedule: StealSchedule,
}

/// A named family of schedules to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePreset {
    /// All `3! + 4! = 30` claim-order permutations at 3 and 4 chunks,
    /// alternating 2- and 3-worker pins — exhaustive at its chunk counts.
    ExhaustiveSmall,
    /// `count` seeded shuffles cycling through 8/12/16 chunks and 2/3/4
    /// workers — the sampling regime for chunk counts too large to enumerate.
    RandomizedLarge {
        /// How many seeded schedules to explore.
        count: usize,
    },
}

impl SchedulePreset {
    /// The default randomized preset (32 schedules).
    pub fn randomized_default() -> Self {
        SchedulePreset::RandomizedLarge { count: 32 }
    }

    /// The preset selected by the `DIBELLA_SCHEDULES` environment variable:
    /// `randomized` (optionally `randomized:<count>`) or anything else /
    /// unset for [`SchedulePreset::ExhaustiveSmall`].  This is the CI knob —
    /// exhaustive on pull requests, randomized on pushes to main.
    pub fn from_env() -> Self {
        match std::env::var("DIBELLA_SCHEDULES") {
            Ok(value) if value.starts_with("randomized") => {
                let count = value
                    .split_once(':')
                    .and_then(|(_, n)| n.parse().ok())
                    .unwrap_or(32);
                SchedulePreset::RandomizedLarge { count }
            }
            _ => SchedulePreset::ExhaustiveSmall,
        }
    }

    /// The schedules this preset explores, in a deterministic order.
    pub fn schedules(self) -> Vec<ExploredSchedule> {
        match self {
            SchedulePreset::ExhaustiveSmall => {
                let mut out = Vec::with_capacity(30);
                for (chunks, orders) in [(3usize, 6u64), (4, 24)] {
                    for index in 0..orders {
                        out.push(ExploredSchedule {
                            threads: 2 + (index % 2) as usize,
                            schedule: StealSchedule::exhaustive(chunks, index),
                        });
                    }
                }
                out
            }
            SchedulePreset::RandomizedLarge { count } => (0..count as u64)
                .map(|seed| ExploredSchedule {
                    threads: 2 + (seed % 3) as usize,
                    schedule: StealSchedule::randomized(8 + (seed % 3) as usize * 4, seed),
                })
                .collect(),
        }
    }
}

/// Run `workload` once under the production schedule (the baseline) and once
/// per schedule in `preset`, asserting every adversarial run reproduces the
/// baseline output bit for bit.
///
/// Returns the number of schedules explored (callers pin floors on it, e.g.
/// the pipeline's ≥ 50-schedule re-pin).  Panics with the offending schedule
/// on the first mismatch — the schedule is `Copy` and fully determines the
/// replay, so a failure message is a reproducer.
pub fn assert_schedule_determinism<T, F>(preset: SchedulePreset, workload: F) -> usize
where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    let baseline = workload();
    let schedules = preset.schedules();
    for explored in &schedules {
        let got = with_thread_limit(explored.threads, || {
            with_steal_schedule(explored.schedule, &workload)
        });
        assert!(
            got == baseline,
            "output diverged under {:?} with {} workers:\n  baseline: {:?}\n  explored: {:?}",
            explored.schedule,
            explored.threads,
            baseline,
            got
        );
    }
    schedules.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn exhaustive_small_is_complete_and_distinct() {
        let schedules = SchedulePreset::ExhaustiveSmall.schedules();
        assert_eq!(schedules.len(), 30);
        let mut seen: Vec<StealSchedule> = Vec::new();
        for s in &schedules {
            assert!((2..=3).contains(&s.threads));
            assert!(!seen.contains(&s.schedule), "duplicate schedule {:?}", s.schedule);
            seen.push(s.schedule);
        }
    }

    #[test]
    fn randomized_preset_honours_its_count() {
        assert_eq!(SchedulePreset::RandomizedLarge { count: 26 }.schedules().len(), 26);
        assert_eq!(SchedulePreset::randomized_default().schedules().len(), 32);
    }

    #[test]
    fn determinism_assertion_passes_for_a_deterministic_workload() {
        let explored = assert_schedule_determinism(SchedulePreset::ExhaustiveSmall, || {
            rayon::pool::map_indexed(64, |i| i as u64 * 17)
        });
        assert_eq!(explored, 30);
    }

    #[test]
    #[should_panic(expected = "output diverged under")]
    fn determinism_assertion_catches_an_order_sensitive_workload() {
        // Appending under a lock instead of writing per-index slots is the
        // canonical nondeterminism bug; some permutation must expose it.
        assert_schedule_determinism(SchedulePreset::ExhaustiveSmall, || {
            let out = std::sync::Mutex::new(Vec::new());
            rayon::pool::for_each_index(12, || (), |(), i| out.lock().unwrap().push(i));
            out.into_inner().unwrap()
        });
    }

    #[test]
    fn workload_runs_once_per_schedule_plus_baseline() {
        let runs = AtomicUsize::new(0);
        assert_schedule_determinism(SchedulePreset::RandomizedLarge { count: 5 }, || {
            runs.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed), 6);
    }
}

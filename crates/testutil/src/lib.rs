//! # dibella-testutil — allocation-tracking measurement utilities
//!
//! A counting global allocator that makes memory claims falsifiable: it
//! tracks the number of allocation calls, the bytes currently resident and
//! the high-water mark of resident bytes.  It grew out of the alignment
//! engine's steady-state-zero-allocation test (PR 7) and is shared by
//!
//! * the alignment test pinning zero allocations in the warm x-drop loop,
//! * the ingest tests pinning peak resident bytes under an
//!   `IngestBudget::max_resident_bytes`, and
//! * the `ingest_scale` bench binary that records peak resident bytes vs
//!   dataset size into `BENCH_ingest.json`.
//!
//! ## Usage
//!
//! Each binary (test file or bench bin) registers one [`PeakAlloc`] as its
//! global allocator and measures through a scope guard:
//!
//! ```ignore
//! use dibella_testutil::PeakAlloc;
//!
//! #[global_allocator]
//! static ALLOC: PeakAlloc = PeakAlloc::new();
//!
//! let scope = ALLOC.scope();
//! run_workload();
//! assert!(scope.peak_resident() <= BUDGET_BYTES);
//! assert_eq!(scope.allocations(), 0); // for zero-allocation claims
//! ```
//!
//! The counters are global to the process, so a measuring test file should
//! hold a single `#[test]` (a sibling test allocating concurrently would make
//! the delta meaningless) — the same discipline the PR 7 test established.

#![warn(missing_docs)]

pub mod schedule;

pub use schedule::{assert_schedule_determinism, ExploredSchedule, SchedulePreset};

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A counting global allocator wrapping the system allocator.
///
/// Tracks three monotonically-safe counters:
///
/// * **allocations** — number of `alloc`/`realloc`/`alloc_zeroed` calls;
/// * **current** — bytes currently resident (allocated minus deallocated);
/// * **peak** — the high-water mark of `current` since the last
///   [`PeakAlloc::reset_peak`].
///
/// All methods are lock-free; the peak is maintained with a CAS loop, so
/// concurrent allocations from worker threads are folded in correctly.
pub struct PeakAlloc {
    allocations: AtomicU64,
    current: AtomicU64,
    peak: AtomicU64,
}

impl PeakAlloc {
    /// A fresh allocator with all counters at zero (`const`, so it can
    /// initialise a `#[global_allocator]` static).
    pub const fn new() -> Self {
        Self {
            allocations: AtomicU64::new(0),
            current: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Number of allocation calls (`alloc`, `realloc`, `alloc_zeroed`) so far.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Bytes currently resident: allocated and not yet deallocated.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The high-water mark of resident bytes since the last
    /// [`PeakAlloc::reset_peak`] (or process start).
    pub fn peak_resident(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Reset the high-water mark to the *current* resident bytes, so the next
    /// [`PeakAlloc::peak_resident`] reflects only growth after this call.
    pub fn reset_peak(&self) {
        self.peak.store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Start a measurement scope: records the current counters as the
    /// baseline and resets the peak, so the guard's deltas cover exactly the
    /// work done while it is alive.
    pub fn scope(&self) -> AllocScope<'_> {
        self.reset_peak();
        AllocScope {
            alloc: self,
            base_allocations: self.allocations(),
            base_current: self.current(),
        }
    }

    fn on_alloc(&self, bytes: usize) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.grow(bytes as u64);
    }

    fn grow(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        // Fold the new resident total into the peak (CAS loop: another thread
        // may be raising it concurrently).
        let mut peak = self.peak.load(Ordering::Relaxed);
        while now > peak {
            match self.peak.compare_exchange_weak(
                peak,
                now,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => peak = seen,
            }
        }
    }

    fn shrink(&self, bytes: u64) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }
}

impl Default for PeakAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates every operation to the system allocator unchanged; the
// counters are side accounting and never affect the returned pointers.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            self.on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.shrink(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            self.allocations.fetch_add(1, Ordering::Relaxed);
            // Account the delta: a grow raises current (and maybe the peak), a
            // shrink lowers it.
            if new_size >= layout.size() {
                self.grow((new_size - layout.size()) as u64);
            } else {
                self.shrink((layout.size() - new_size) as u64);
            }
        }
        new_ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            self.on_alloc(layout.size());
        }
        ptr
    }
}

/// RAII measurement scope over a [`PeakAlloc`] (see [`PeakAlloc::scope`]).
///
/// The guard holds the baseline counters from its creation; its accessors
/// report deltas, so two sequential scopes measure independent workloads.
pub struct AllocScope<'a> {
    alloc: &'a PeakAlloc,
    base_allocations: u64,
    base_current: u64,
}

impl AllocScope<'_> {
    /// Allocation calls since the scope opened.
    pub fn allocations(&self) -> u64 {
        self.alloc.allocations() - self.base_allocations
    }

    /// Peak resident bytes **above the scope's baseline**: the high-water
    /// mark reached since the scope opened, minus the bytes that were already
    /// resident when it opened.  This is the number an ingest budget bounds —
    /// memory the measured workload itself made resident.
    pub fn peak_resident(&self) -> u64 {
        self.alloc.peak_resident().saturating_sub(self.base_current)
    }

    /// Bytes resident right now above the scope's baseline (what the workload
    /// has not yet freed); can be compared against
    /// [`AllocScope::peak_resident`] to see how much was transient.
    pub fn resident_now(&self) -> u64 {
        self.alloc.current().saturating_sub(self.base_current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: these unit tests do NOT register the allocator globally (the test
    // harness itself allocates); they exercise the counter arithmetic through
    // the GlobalAlloc entry points directly.
    #[test]
    fn counters_track_alloc_and_dealloc() {
        let a = PeakAlloc::new();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(a.current(), 1024);
            assert_eq!(a.peak_resident(), 1024);
            assert_eq!(a.allocations(), 1);
            a.dealloc(p, layout);
        }
        assert_eq!(a.current(), 0);
        assert_eq!(a.peak_resident(), 1024, "peak survives the free");
        a.reset_peak();
        assert_eq!(a.peak_resident(), 0);
    }

    #[test]
    fn realloc_accounts_the_delta_both_ways() {
        let a = PeakAlloc::new();
        let layout = Layout::from_size_align(100, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            let p2 = a.realloc(p, layout, 300);
            assert_eq!(a.current(), 300);
            assert_eq!(a.peak_resident(), 300);
            let grown = Layout::from_size_align(300, 8).unwrap();
            let p3 = a.realloc(p2, grown, 50);
            assert_eq!(a.current(), 50);
            assert_eq!(a.peak_resident(), 300, "shrinks do not lower the peak");
            a.dealloc(p3, Layout::from_size_align(50, 8).unwrap());
        }
        assert_eq!(a.current(), 0);
        assert_eq!(a.allocations(), 3);
    }

    #[test]
    fn scope_measures_deltas_only() {
        let a = PeakAlloc::new();
        let layout = Layout::from_size_align(500, 8).unwrap();
        let pre = unsafe { a.alloc(layout) };
        let scope = a.scope();
        assert_eq!(scope.allocations(), 0);
        assert_eq!(scope.peak_resident(), 0);
        unsafe {
            let p = a.alloc(layout);
            assert_eq!(scope.peak_resident(), 500);
            assert_eq!(scope.resident_now(), 500);
            a.dealloc(p, layout);
        }
        assert_eq!(scope.allocations(), 1);
        assert_eq!(scope.peak_resident(), 500, "scope peak survives the free");
        assert_eq!(scope.resident_now(), 0);
        unsafe { a.dealloc(pre, layout) };
    }

    #[test]
    fn peak_folds_concurrent_growth() {
        let a = PeakAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        unsafe {
                            let p = a.alloc(layout);
                            a.dealloc(p, layout);
                        }
                    }
                });
            }
        });
        assert_eq!(a.current(), 0);
        assert!(a.peak_resident() >= 64);
        assert!(a.peak_resident() <= 4 * 64, "peak cannot exceed max concurrency");
        assert_eq!(a.allocations(), 4000);
    }
}

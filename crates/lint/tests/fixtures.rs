//! Fixture corpus: every rule has at least one must-fire and one
//! must-not-fire case, the escape hatch is proven to work (and to expire
//! after one line), and the classic lexer traps — rule-looking text inside
//! comments and string literals — are pinned as non-findings.

use dibella_lint::lint_source;

/// Assert the fixture produces exactly the given `(line, rule)` findings.
fn expect(path: &str, src: &str, expected: &[(u32, &str)]) {
    let found: Vec<(u32, &str)> =
        lint_source(path, src).iter().map(|v| (v.line, v.rule)).collect();
    assert_eq!(found, expected, "fixture {path}:\n{src}");
}

// ---------------------------------------------------------------------------
// hash-iter
// ---------------------------------------------------------------------------

#[test]
fn hash_iter_must_fire_on_every_iteration_method() {
    let src = "use std::collections::HashMap;\n\
               fn f() {\n\
               let mut m: HashMap<u32, u32> = HashMap::new();\n\
               let _a: Vec<_> = m.keys().collect();\n\
               let _b: Vec<_> = m.values().collect();\n\
               let _c: Vec<_> = m.iter().collect();\n\
               for kv in &m { drop(kv); }\n\
               let _d: Vec<_> = m.into_iter().collect();\n\
               }\n";
    expect(
        "crates/overlap/src/fx.rs",
        src,
        &[(4, "hash-iter"), (5, "hash-iter"), (6, "hash-iter"), (7, "hash-iter"), (8, "hash-iter")],
    );
}

#[test]
fn hash_iter_must_not_fire_on_membership_or_btreemap() {
    let src = "use std::collections::{BTreeMap, HashSet};\n\
               fn f() {\n\
               let mut seen: HashSet<u32> = HashSet::new();\n\
               seen.insert(3);\n\
               assert!(seen.contains(&3));\n\
               let mut b: BTreeMap<u32, u32> = BTreeMap::new();\n\
               b.insert(1, 2);\n\
               for kv in &b { drop(kv); }\n\
               }\n";
    expect("crates/sparse/src/fx.rs", src, &[]);
}

#[test]
fn hash_iter_is_scoped_to_deterministic_crates() {
    let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for kv in &m { drop(kv); } }";
    // align is not on the deterministic list; sparse is.
    expect("crates/align/src/fx.rs", src, &[]);
    expect("crates/sparse/src/fx.rs", src, &[(1, "hash-iter")]);
}

#[test]
fn hash_iter_escape_hatch_covers_the_next_line_only() {
    let src = "fn f() {\n\
               let m: HashMap<u32, u32> = HashMap::new();\n\
               // lint: allow(hash-iter) — folded with a commutative op\n\
               let _s: u32 = m.values().sum();\n\
               let _t: u32 = m.values().sum();\n\
               }\n";
    expect("crates/dist/src/fx.rs", src, &[(5, "hash-iter")]);
}

// ---------------------------------------------------------------------------
// unwrap
// ---------------------------------------------------------------------------

#[test]
fn unwrap_must_fire_in_library_code() {
    let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n\
               pub fn g(r: Result<u32, ()>) -> u32 { r.expect(\"boom\") }\n";
    expect("crates/seq/src/fx.rs", src, &[(1, "unwrap"), (2, "unwrap")]);
}

#[test]
fn unwrap_must_not_fire_on_lock_poisoning_or_unwrap_or() {
    let src = "pub fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n\
               pub fn g(l: &std::sync::RwLock<u32>) -> u32 { *l.read().unwrap() }\n\
               pub fn h(l: &std::sync::RwLock<u32>) { *l.write().unwrap() = 3; }\n\
               pub fn i(o: Option<u32>) -> u32 { o.unwrap_or(0) }\n\
               pub fn j(o: Option<u32>) -> u32 { o.unwrap_or_default() }\n";
    expect("crates/dist/src/fx.rs", src, &[]);
}

#[test]
fn unwrap_must_not_fire_in_test_modules_or_test_files() {
    let src = "pub fn lib_ok() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               #[test]\n\
               fn t() { Some(1).unwrap(); }\n\
               }\n";
    expect("crates/seq/src/fx.rs", src, &[]);
    // Whole-file exemption for integration tests.
    expect("crates/seq/tests/fx.rs", "fn t() { Some(1).unwrap(); }", &[]);
}

#[test]
fn unwrap_is_scoped_to_pipeline_facing_crates() {
    let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }";
    expect("crates/bench/src/fx.rs", src, &[]);
    expect("crates/pipeline/src/fx.rs", src, &[(1, "unwrap")]);
}

#[test]
fn unwrap_escape_hatch_works_inline_and_above() {
    let src = "pub fn f(v: &[u32]) -> u32 {\n\
               *v.last().unwrap() // lint: allow(unwrap) — caller checks non-empty\n\
               }\n\
               pub fn g(v: &[u32]) -> u32 {\n\
               // lint: allow(unwrap) — caller checks non-empty\n\
               *v.last().unwrap()\n\
               }\n";
    expect("crates/strgraph/src/fx.rs", src, &[]);
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

#[test]
fn wall_clock_must_fire_outside_bench() {
    let src = "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n\
               pub fn g() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
    expect("crates/sketch/src/fx.rs", src, &[(1, "wall-clock"), (2, "wall-clock")]);
}

#[test]
fn wall_clock_must_not_fire_in_bench_or_when_annotated() {
    let src = "pub fn f() -> std::time::Instant { std::time::Instant::now() }";
    expect("crates/bench/src/fx.rs", src, &[]);
    let annotated = "pub fn timed() {\n\
                     // lint: allow(wall-clock) — the designated timing sink\n\
                     let _t = std::time::Instant::now();\n\
                     }\n";
    expect("crates/pipeline/src/fx.rs", annotated, &[]);
}

#[test]
fn wall_clock_elapsed_and_duration_are_fine() {
    let src = "pub fn f(start: std::time::Instant) -> f64 { start.elapsed().as_secs_f64() }";
    expect("crates/pipeline/src/fx.rs", src, &[]);
}

// ---------------------------------------------------------------------------
// comm-phase
// ---------------------------------------------------------------------------

#[test]
fn comm_phase_must_fire_when_no_function_names_a_phase() {
    let src = "fn f(stats: &CommStats) { record_broadcast(stats, other(), 8, 4); }";
    expect("crates/sketch/src/fx.rs", src, &[(1, "comm-phase")]);
}

#[test]
fn comm_phase_must_not_fire_when_the_function_takes_or_names_one() {
    let src = "fn takes(stats: &CommStats, phase: CommPhase) {\n\
               record_broadcast(stats, phase, 8, 4);\n\
               }\n\
               fn names(stats: &CommStats) {\n\
               let recv = alltoallv_counted(send(), stats, CommPhase::KmerCounting, 2);\n\
               drop(recv);\n\
               }\n";
    expect("crates/seq/src/fx.rs", src, &[]);
}

#[test]
fn comm_phase_checks_the_innermost_function() {
    // The outer fn names CommPhase but the inner helper does not: the call
    // inside the helper is unattributed.
    let src = "fn outer(phase: CommPhase) {\n\
               fn helper(stats: &CommStats) { record_p2p(stats, other(), 8); }\n\
               }\n";
    expect("crates/sparse/src/fx.rs", src, &[(2, "comm-phase")]);
}

#[test]
fn comm_phase_ignores_definitions_and_imports() {
    let src = "use dibella_dist::{alltoallv_counted, record_broadcast, record_p2p};\n\
               pub fn record_p2p(stats: &CommStats, phase: CommPhase, words: u64) {\n\
               bump(stats, phase, words);\n\
               }\n";
    expect("crates/dist/src/fx.rs", src, &[]);
}

// ---------------------------------------------------------------------------
// extras-key
// ---------------------------------------------------------------------------

#[test]
fn extras_key_must_fire_on_raw_literals() {
    let src = "fn f(s: &CommStats) {\n\
               s.bump_extra(\"summa_stages\", 2);\n\
               s.max_extra(\"peak\", 9);\n\
               s.set_extra(\"x\", 1);\n\
               let _v = s.extra(\"x\");\n\
               }\n";
    expect(
        "crates/sparse/src/fx.rs",
        src,
        &[(2, "extras-key"), (3, "extras-key"), (4, "extras-key"), (5, "extras-key")],
    );
}

#[test]
fn extras_key_must_not_fire_on_registry_constants_or_in_the_registry() {
    let src = "fn f(s: &CommStats) {\n\
               s.bump_extra(SUMMA_STAGES_KEY, 2);\n\
               s.bump_extra(&flops_key(phase), 2);\n\
               }\n";
    expect("crates/sparse/src/fx.rs", src, &[]);
    // The registry module itself defines the literals.
    let registry = "pub const SUMMA_STAGES_KEY: &str = \"summa_stages\";";
    expect("crates/dist/src/extras.rs", registry, &[]);
}

#[test]
fn extras_key_must_not_fire_in_tests() {
    let src = "fn lib_ok() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               fn t(s: &CommStats) { s.bump_extra(\"tr_iterations\", 3); }\n\
               }\n";
    expect("crates/dist/src/fx.rs", src, &[]);
}

// ---------------------------------------------------------------------------
// lexer traps shared by all rules
// ---------------------------------------------------------------------------

#[test]
fn rule_text_in_comments_and_strings_never_fires() {
    let src = "//! m.iter() over a HashMap, o.unwrap(), Instant::now()\n\
               /* record_p2p(stats, 1) and s.bump_extra(\"k\", 1) in a block\n\
               /* nested */ comment */\n\
               pub fn f() -> &'static str {\n\
               \"m.keys() Instant::now() record_broadcast( .unwrap() bump_extra(\\\"k\\\"\"\n\
               }\n\
               pub fn g() -> &'static str { r#\"o.expect(\"x\") in a raw string\"# }\n";
    expect("crates/pipeline/src/fx.rs", src, &[]);
}

#[test]
fn char_literals_and_lifetimes_do_not_derail_scanning() {
    // If the lexer mistook `'a` for an unterminated char, the unwrap below
    // would be swallowed into a literal and the must-fire would be missed.
    let src = "pub fn f<'a>(v: &'a [u32]) -> u32 { let c = 'x'; drop(c); *v.first().unwrap() }";
    expect("crates/seq/src/fx.rs", src, &[(1, "unwrap")]);
}

#[test]
fn a_clean_multi_rule_file_is_clean() {
    let src = "use std::collections::BTreeMap;\n\
               pub fn f(stats: &CommStats, phase: CommPhase) -> Result<u32, String> {\n\
               let mut m: BTreeMap<u32, u32> = BTreeMap::new();\n\
               m.insert(1, 2);\n\
               let total: u32 = m.values().sum();\n\
               record_p2p(stats, phase, total as u64);\n\
               stats.bump_extra(SUMMA_STAGES_KEY, 1);\n\
               m.get(&1).copied().ok_or_else(|| \"missing\".to_string())\n\
               }\n";
    expect("crates/sparse/src/fx.rs", src, &[]);
}

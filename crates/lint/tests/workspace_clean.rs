//! The workspace itself must lint clean — the same check CI runs via
//! `cargo run -p dibella-lint -- --workspace`, kept as a test so a plain
//! `cargo test --workspace` also catches new violations.

use std::path::Path;

#[test]
fn the_workspace_has_zero_lint_violations() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = dibella_lint::find_workspace_root(here).expect("workspace root");
    let (files, violations) = dibella_lint::lint_workspace(&root).expect("scan workspace");
    assert!(files > 50, "expected the full workspace, found only {files} files");
    assert!(
        violations.is_empty(),
        "dibella-lint found {} violations:\n{}",
        violations.len(),
        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}

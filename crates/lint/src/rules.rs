//! The five rule passes.
//!
//! Every pass walks the token stream of one [`lexed`](crate::lexer::lex)
//! file plus a little per-file context ([`FileContext`]): which crate the
//! file belongs to, whether a given line is inside a `#[cfg(test)]` module,
//! and the escape-hatch annotations.  The rules and what they protect:
//!
//! | slug         | protects                                                    |
//! |--------------|-------------------------------------------------------------|
//! | `hash-iter`  | deterministic crates from unordered `HashMap`/`HashSet` iteration |
//! | `unwrap`     | pipeline-facing library code from panicking on bad input    |
//! | `wall-clock` | `CommStats`/bench JSON from wall-clock nondeterminism       |
//! | `comm-phase` | every simulated collective from unattributed accounting     |
//! | `extras-key` | the `CommStats::extras` namespace from stringly-typed drift |

use crate::lexer::{LexedFile, Token, TokenKind};

/// One rule violation, ready to print as `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule slug (`hash-iter`, `unwrap`, `wall-clock`, `comm-phase`,
    /// `extras-key`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Everything a rule pass needs to know about the file besides its tokens.
pub struct FileContext<'a> {
    /// Repo-relative path, used in violation output and path-based scoping.
    pub path: &'a str,
    /// The crate directory name under `crates/` (e.g. `sparse`), or `""` for
    /// files outside `crates/` (the root package).
    pub crate_name: &'a str,
    /// True when the whole file is test/bench/example code (under `tests/`,
    /// `benches/` or `examples/`).
    pub test_file: bool,
    /// Line spans (1-based, inclusive) of `#[cfg(test)] mod … { … }` bodies.
    pub test_spans: Vec<(u32, u32)>,
}

impl FileContext<'_> {
    fn is_test_line(&self, line: u32) -> bool {
        self.test_file || self.test_spans.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }
}

/// Crates whose output must be bit-identical: no unordered iteration.
pub const DETERMINISTIC_CRATES: &[&str] =
    &["sparse", "overlap", "sketch", "strgraph", "dist", "pipeline"];

/// Crates whose library code feeds the pipeline and must return `Err`
/// instead of panicking.
pub const PIPELINE_FACING_CRATES: &[&str] =
    &["seq", "overlap", "sketch", "strgraph", "dist", "pipeline"];

/// The one module allowed to define `CommStats::extras` key literals.
pub const EXTRAS_REGISTRY_PATH: &str = "crates/dist/src/extras.rs";

/// Run every rule pass over one lexed file.
pub fn check_file(lexed: &LexedFile, ctx: &FileContext<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    hash_iter(lexed, ctx, &mut out);
    unwrap_in_library(lexed, ctx, &mut out);
    wall_clock(lexed, ctx, &mut out);
    comm_phase(lexed, ctx, &mut out);
    extras_key(lexed, ctx, &mut out);
    out
}

fn violation(ctx: &FileContext<'_>, line: u32, rule: &'static str, message: String) -> Violation {
    Violation { path: ctx.path.to_string(), line, rule, message }
}

/// Compute the line spans of `#[cfg(test)] mod … { … }` bodies by brace
/// matching, so in-file unit-test modules are exempt from the library rules.
pub fn test_mod_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes between #[cfg(test)] and the item.
        let mut j = i + 7;
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            let mut depth = 0usize;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // The guarded item: whatever it is (mod, fn, use…), exempt its body.
        let start_line = tokens[i].line;
        let mut depth = 0usize;
        let mut end_line = start_line;
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                depth += 1;
            } else if tokens[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end_line = tokens[j].line;
                    break;
                }
            } else if tokens[j].is_punct(';') && depth == 0 {
                end_line = tokens[j].line; // e.g. `#[cfg(test)] use …;`
                break;
            }
            j += 1;
        }
        spans.push((start_line, end_line));
        i = j.max(i + 7);
    }
    spans
}

// ---------------------------------------------------------------------------
// Rule: hash-iter
// ---------------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// No `HashMap`/`HashSet` iteration in deterministic crates: a hash map's
/// iteration order depends on the hasher seed and insertion history, so any
/// fold over it that is not order-insensitive breaks bit-identical output.
fn hash_iter(lexed: &LexedFile, ctx: &FileContext<'_>, out: &mut Vec<Violation>) {
    if !DETERMINISTIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    // Pass 1: names bound to a HashMap/HashSet — via a type ascription whose
    // head type is HashMap/HashSet (possibly `std::collections::`-qualified),
    // or via an initializer calling `HashMap::…` / `HashSet::…`.
    let mut hashed: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident
            || !(toks[i].text == "HashMap" || toks[i].text == "HashSet")
        {
            continue;
        }
        // Walk back over `std :: collections ::` qualification to the marker
        // before the type/constructor: `:` (ascription) or `=` (initializer).
        let mut j = i;
        while j >= 2
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && j >= 3
            && toks[j - 3].kind == TokenKind::Ident
        {
            j -= 3;
        }
        if j == 0 {
            continue;
        }
        let name = if toks[j - 1].is_punct(':') && j >= 2 && !toks[j - 2].is_punct(':') {
            // `name: HashMap<…>` — only when this is the *head* of the type.
            toks[j - 2].clone()
        } else if toks[j - 1].is_punct('=') && j >= 2 {
            // `name = HashMap::new()` (also covers `with_capacity`, `from`).
            toks[j - 2].clone()
        } else {
            continue;
        };
        if name.kind == TokenKind::Ident {
            hashed.push(name.text);
        }
    }
    if hashed.is_empty() {
        return;
    }
    // Pass 2: iteration over a tracked name — `name.iter()`-family calls and
    // `for … in [&[mut]] name {`.
    for i in 0..toks.len() {
        let line = toks[i].line;
        if ctx.is_test_line(line) || lexed.is_allowed("hash-iter", line) {
            continue;
        }
        // name . method (
        if i + 3 < toks.len()
            && toks[i].kind == TokenKind::Ident
            && hashed.contains(&toks[i].text)
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokenKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
            && toks[i + 3].is_punct('(')
        {
            out.push(violation(
                ctx,
                toks[i + 2].line,
                "hash-iter",
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet in a deterministic crate; \
                     use BTreeMap/BTreeSet, sort the result, or annotate \
                     `// lint: allow(hash-iter)` with a justification",
                    toks[i].text, toks[i + 2].text
                ),
            ));
        }
        // for … in [&[mut]] name {
        if toks[i].is_ident("in") {
            let mut j = i + 1;
            while j < toks.len() && (toks[j].is_punct('&') || toks[j].is_ident("mut")) {
                j += 1;
            }
            if j + 1 < toks.len()
                && toks[j].kind == TokenKind::Ident
                && hashed.contains(&toks[j].text)
                && toks[j + 1].is_punct('{')
            {
                out.push(violation(
                    ctx,
                    toks[j].line,
                    "hash-iter",
                    format!(
                        "`for … in {}` iterates a HashMap/HashSet in a deterministic crate",
                        toks[j].text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: unwrap
// ---------------------------------------------------------------------------

/// No `unwrap()`/`expect()` in pipeline-facing library code: bad input must
/// surface as `Err`, not a panic mid-superstep.  `.unwrap()` directly on a
/// `lock()`/`read()`/`write()` result is exempt — mutex poisoning after
/// another thread's panic is not an input error, and propagating it would
/// infect every signature with a useless error arm.
fn unwrap_in_library(lexed: &LexedFile, ctx: &FileContext<'_>, out: &mut Vec<Violation>) {
    if !PIPELINE_FACING_CRATES.contains(&ctx.crate_name) || ctx.test_file {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let call = i + 2 < toks.len()
            && toks[i].is_punct('.')
            && toks[i + 1].kind == TokenKind::Ident
            && (toks[i + 1].text == "unwrap" || toks[i + 1].text == "expect")
            && toks[i + 2].is_punct('(');
        if !call {
            continue;
        }
        let line = toks[i + 1].line;
        if ctx.is_test_line(line) || lexed.is_allowed("unwrap", line) {
            continue;
        }
        // lock()/read()/write() carve-out: `… lock ( ) . unwrap (`.
        if i >= 3
            && toks[i - 1].is_punct(')')
            && toks[i - 2].is_punct('(')
            && toks[i - 3].kind == TokenKind::Ident
            && matches!(toks[i - 3].text.as_str(), "lock" | "read" | "write")
        {
            continue;
        }
        out.push(violation(
            ctx,
            line,
            "unwrap",
            format!(
                "`.{}()` in pipeline-facing library code; return an Err, prove the \
                 invariant with a restructure, or annotate `// lint: allow(unwrap)`",
                toks[i + 1].text
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// Rule: wall-clock
// ---------------------------------------------------------------------------

/// No wall-clock reads outside `crates/bench`: anything feeding `CommStats`
/// or committed bench JSON must be a deterministic count, and a stray
/// `Instant::now()` is how timing sneaks into "exact" accounting.
fn wall_clock(lexed: &LexedFile, ctx: &FileContext<'_>, out: &mut Vec<Violation>) {
    if ctx.crate_name == "bench" {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let is_clock_read = i + 3 < toks.len()
            && toks[i].kind == TokenKind::Ident
            && (toks[i].text == "Instant" || toks[i].text == "SystemTime")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("now");
        if !is_clock_read {
            continue;
        }
        let line = toks[i].line;
        if ctx.is_test_line(line) || lexed.is_allowed("wall-clock", line) {
            continue;
        }
        out.push(violation(
            ctx,
            line,
            "wall-clock",
            format!(
                "`{}::now()` outside crates/bench; timings belong in the bench crate or \
                 the annotated StageTimings sink",
                toks[i].text
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// Rule: comm-phase
// ---------------------------------------------------------------------------

const COLLECTIVE_CALLS: &[&str] = &["alltoallv_counted", "record_broadcast", "record_p2p"];

/// Every collective call must be lexically inside a function that takes or
/// names a `CommPhase`, so all traffic is attributed to a phase rather than
/// silently lumped.
fn comm_phase(lexed: &LexedFile, ctx: &FileContext<'_>, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    let fns = fn_spans(toks);
    for i in 0..toks.len() {
        let is_call = i + 1 < toks.len()
            && toks[i].kind == TokenKind::Ident
            && COLLECTIVE_CALLS.contains(&toks[i].text.as_str())
            && toks[i + 1].is_punct('(')
            && !(i >= 1 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct('.')));
        if !is_call {
            continue;
        }
        let line = toks[i].line;
        if ctx.is_test_line(line) || lexed.is_allowed("comm-phase", line) {
            continue;
        }
        // Innermost enclosing fn whose span (signature + body) names
        // CommPhase.
        let enclosing = fns
            .iter()
            .filter(|&&(start, end, _)| start < i && i <= end)
            .max_by_key(|&&(start, _, _)| start);
        let attributed = match enclosing {
            Some(&(_, _, names_phase)) => names_phase,
            None => false,
        };
        if !attributed {
            out.push(violation(
                ctx,
                line,
                "comm-phase",
                format!(
                    "`{}` called outside any function that takes or names a CommPhase; \
                     collective traffic must be phase-attributed",
                    toks[i].text
                ),
            ));
        }
    }
}

/// `(start_token, end_token, mentions_CommPhase)` for every `fn` item, body
/// found by brace matching from the signature.
fn fn_spans(toks: &[Token]) -> Vec<(usize, usize, bool)> {
    let mut spans: Vec<(usize, usize, bool)> = Vec::new();
    let mut stack: Vec<Option<usize>> = Vec::new();
    let mut pending_fn: Option<usize> = None;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("fn") {
            pending_fn = Some(i);
        } else if t.is_punct(';') && stack.iter().all(|s| s.is_none()) {
            pending_fn = None; // bodyless trait-method declaration
        } else if t.is_punct('{') {
            if let Some(f) = pending_fn.take() {
                spans.push((f, usize::MAX, false));
                stack.push(Some(spans.len() - 1));
            } else {
                stack.push(None);
            }
        } else if t.is_punct('}') {
            if let Some(Some(idx)) = stack.pop() {
                spans[idx].1 = i;
            }
        }
    }
    for span in &mut spans {
        if span.1 == usize::MAX {
            span.1 = toks.len().saturating_sub(1);
        }
        span.2 = toks[span.0..=span.1].iter().any(|t| t.is_ident("CommPhase"));
    }
    spans
}

// ---------------------------------------------------------------------------
// Rule: extras-key
// ---------------------------------------------------------------------------

const EXTRAS_METHODS: &[&str] = &["bump_extra", "max_extra", "set_extra", "extra"];

/// Every `CommStats::extras` key must come from the registry module
/// ([`EXTRAS_REGISTRY_PATH`]): passing a raw string literal to an extras
/// method invites two spellings of the same counter.
fn extras_key(lexed: &LexedFile, ctx: &FileContext<'_>, out: &mut Vec<Violation>) {
    if ctx.path == EXTRAS_REGISTRY_PATH || ctx.test_file {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let is_literal_key = i + 3 < toks.len()
            && toks[i].is_punct('.')
            && toks[i + 1].kind == TokenKind::Ident
            && EXTRAS_METHODS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].is_punct('(')
            && toks[i + 3].kind == TokenKind::Str;
        if !is_literal_key {
            continue;
        }
        let line = toks[i + 3].line;
        if ctx.is_test_line(line) || lexed.is_allowed("extras-key", line) {
            continue;
        }
        out.push(violation(
            ctx,
            line,
            "extras-key",
            format!(
                "extras key literal \"{}\" passed to `{}`; use a named constant from {}",
                toks[i + 3].text,
                toks[i + 1].text,
                EXTRAS_REGISTRY_PATH
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx<'a>(path: &'a str, crate_name: &'a str, src: &str) -> (LexedFile, FileContext<'a>) {
        let lexed = lex(src);
        let test_spans = test_mod_spans(&lexed.tokens);
        let test_file =
            path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/");
        (lexed, FileContext { path, crate_name, test_file, test_spans })
    }

    fn run(path: &str, crate_name: &str, src: &str) -> Vec<Violation> {
        let (lexed, c) = ctx(path, crate_name, src);
        check_file(&lexed, &c)
    }

    #[test]
    fn test_mod_spans_cover_cfg_test_bodies() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let lexed = lex(src);
        let spans = test_mod_spans(&lexed.tokens);
        assert_eq!(spans, [(2, 5)]);
    }

    #[test]
    fn fn_spans_find_the_innermost_function() {
        let src = "fn outer(p: CommPhase) { fn inner() { call(); } }";
        let lexed = lex(src);
        let spans = fn_spans(&lexed.tokens);
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.2).expect("outer names CommPhase");
        let inner = spans.iter().find(|s| !s.2).expect("inner does not");
        assert!(outer.0 < inner.0 && inner.1 < outer.1);
    }

    #[test]
    fn hash_iter_ignores_maps_nested_in_other_types() {
        // Vec<HashMap<…>> — the bound name is a Vec; iterating it is fine.
        let src = "fn f() { let inbox: Vec<HashMap<u32, u32>> = Vec::new(); \
                   for x in inbox.iter() { use_it(x); } }";
        assert!(run("crates/sparse/src/x.rs", "sparse", src).is_empty());
    }

    #[test]
    fn hash_iter_fires_on_for_loops_over_a_map() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for kv in &m { go(kv); } }";
        let v = run("crates/sparse/src/x.rs", "sparse", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "hash-iter");
    }

    #[test]
    fn unwrap_lock_carveout_and_plain_unwrap() {
        let src = "fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }\n\
                   fn g(o: Option<u32>) -> u32 { o.unwrap() }\n";
        let v = run("crates/dist/src/x.rs", "dist", src);
        assert_eq!(v.len(), 1, "only the Option unwrap fires: {v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn comm_phase_requires_an_attributed_function() {
        let good = "fn f(stats: &CommStats, phase: CommPhase) { record_p2p(stats, phase, 8); }";
        assert!(run("crates/sparse/src/x.rs", "sparse", good).is_empty());
        let bad = "fn f(stats: &CommStats) { record_p2p(stats, something(), 8); }";
        let v = run("crates/sparse/src/x.rs", "sparse", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "comm-phase");
    }

    #[test]
    fn extras_key_allows_constants_and_flags_literals() {
        let good = "fn f(s: &CommStats) { s.bump_extra(TR_ITERATIONS_KEY, 1); }";
        assert!(run("crates/strgraph/src/x.rs", "strgraph", good).is_empty());
        let bad = "fn f(s: &CommStats) { s.bump_extra(\"tr_iterations\", 1); }";
        let v = run("crates/strgraph/src/x.rs", "strgraph", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "extras-key");
        assert!(v[0].message.contains("tr_iterations"));
    }

    #[test]
    fn registry_module_itself_is_exempt() {
        let src = "pub fn flops_key(p: u32) -> String { format!(\"spgemm_flops_{p}\") }";
        assert!(run(EXTRAS_REGISTRY_PATH, "dist", src).is_empty());
    }
}

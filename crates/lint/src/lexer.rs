//! A minimal Rust lexer for the lint passes.
//!
//! The rules in this crate are token-level: they never need a parse tree,
//! but they *do* need to be immune to the classic grep traps — `unwrap` in a
//! comment, `HashMap` inside a string literal, `//` inside a string, a
//! lifetime `'a` mistaken for an unterminated char literal.  This lexer
//! strips comments and turns source text into a flat token stream carrying
//! line numbers, while separately collecting the `// lint: allow(rule)`
//! escape-hatch annotations found in line comments.
//!
//! It understands exactly as much Rust as the rules need:
//!
//! * line comments (including doc comments) and **nested** block comments;
//! * string literals: `"…"` with escapes, raw `r"…"` / `r#"…"#` with any
//!   number of `#`s, and their byte (`b"`, `br#"`) forms;
//! * char literals (`'a'`, `'\n'`, `'\''`) vs lifetimes (`'a`, `'static`);
//! * identifiers (keywords are just identifiers here), numbers, and
//!   single-character punctuation.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// A string or byte-string literal; [`Token::text`] holds the *contents*
    /// (without quotes, escapes left as written).
    Str,
    /// A numeric literal.
    Num,
    /// A char or byte literal.
    Char,
    /// A lifetime (`'a`), without the quote.
    Lifetime,
    /// A single punctuation character (`(`, `.`, `{`, `&`, …).
    Punct,
}

/// One lexeme with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokenKind,
    /// The lexeme text (see [`TokenKind`] for what each kind stores).
    pub text: String,
    /// 1-based line the lexeme starts on.
    pub line: u32,
}

impl Token {
    /// True when this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True when this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// A `// lint: allow(rule)` annotation: suppresses `rule` on the comment's
/// own line and the line after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowAnnotation {
    /// The rule slug inside the parentheses (e.g. `hash-iter`).
    pub rule: String,
    /// 1-based line of the comment.
    pub line: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// The token stream, comments stripped.
    pub tokens: Vec<Token>,
    /// Escape-hatch annotations harvested from line comments.
    pub allows: Vec<AllowAnnotation>,
}

impl LexedFile {
    /// True when `rule` is allowed on `line` (annotation on the same line or
    /// the line directly above).
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Lex `source` into tokens and allow-annotations.
pub fn lex(source: &str) -> LexedFile {
    Lexer { bytes: source.as_bytes(), pos: 0, line: 1, out: LexedFile::default() }.run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: LexedFile,
}

impl Lexer<'_> {
    fn run(mut self) -> LexedFile {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b if b.is_ascii_alphabetic() || b == b'_' => self.ident(),
                b if b.is_ascii_digit() => self.number(),
                _ => {
                    self.push(TokenKind::Punct, (b as char).to_string(), self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        // Harvest `lint: allow(rule)` (tolerating flexible spacing) from the
        // comment body; multiple allows in one comment are all recorded.
        let mut rest = text;
        while let Some(idx) = rest.find("lint:") {
            rest = &rest[idx + "lint:".len()..];
            let trimmed = rest.trim_start();
            if let Some(after) = trimmed.strip_prefix("allow(") {
                if let Some(close) = after.find(')') {
                    self.out
                        .allows
                        .push(AllowAnnotation { rule: after[..close].trim().to_string(), line: self.line });
                }
            }
        }
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match self.bytes[self.pos] {
                b'\n' => self.line += 1,
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 1;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 1;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `br"…"`.  Returns false
    /// when the `r`/`b` at the cursor is just the start of an identifier.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut ahead = 1;
        if self.bytes[self.pos] == b'b' && self.peek(1) == Some(b'r') {
            ahead = 2;
        }
        match self.peek(ahead) {
            Some(b'"') if ahead == 1 && self.bytes[self.pos] == b'b' => {
                // b"…": an escaped (non-raw) byte string.
                self.pos += 1;
                self.string();
                true
            }
            Some(b'"') | Some(b'#') if self.bytes[self.pos] == b'r' || ahead == 2 => {
                self.raw_string(ahead)
            }
            _ => false,
        }
    }

    fn raw_string(&mut self, prefix_len: usize) -> bool {
        let line = self.line;
        let mut p = self.pos + prefix_len;
        let mut hashes = 0usize;
        while self.bytes.get(p) == Some(&b'#') {
            hashes += 1;
            p += 1;
        }
        if self.bytes.get(p) != Some(&b'"') {
            return false; // e.g. the identifier `r#loop` or just `r` — not a string
        }
        p += 1;
        let content_start = p;
        let closer: Vec<u8> =
            std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
        while p < self.bytes.len() {
            if self.bytes[p] == b'\n' {
                self.line += 1;
            }
            if self.bytes[p..].starts_with(&closer) {
                let text =
                    std::str::from_utf8(&self.bytes[content_start..p]).unwrap_or("").to_string();
                self.push(TokenKind::Str, text, line);
                self.pos = p + closer.len();
                return true;
            }
            p += 1;
        }
        self.pos = p; // unterminated: consume to EOF
        true
    }

    fn string(&mut self) {
        let line = self.line;
        self.pos += 1; // opening quote
        let start = self.pos;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => break,
                _ => self.pos += 1,
            }
        }
        let end = self.pos.min(self.bytes.len());
        let text = std::str::from_utf8(&self.bytes[start..end]).unwrap_or("").to_string();
        self.push(TokenKind::Str, text, line);
        self.pos = end + 1; // closing quote
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // 'X' with X escaped, or multi-byte ('\u{…}'): scan for the closing
        // quote within a short window; a lifetime has no closing quote.
        if self.peek(1) == Some(b'\\') {
            self.pos += 2; // quote + backslash
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.pos += 1;
            }
            self.pos += 1;
            self.push(TokenKind::Char, String::new(), line);
            return;
        }
        let is_char = {
            // 'a' → char; 'a + ident-continue → lifetime ('static, 'a).
            let next_next = self.peek(2);
            self.peek(1).is_some() && next_next == Some(b'\'')
        };
        if is_char {
            self.pos += 3;
            self.push(TokenKind::Char, String::new(), line);
        } else {
            self.pos += 1;
            let start = self.pos;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
            self.push(TokenKind::Lifetime, text, line);
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
        self.push(TokenKind::Ident, text, self.line);
    }

    fn number(&mut self) {
        let start = self.pos;
        while self.peek(0).is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        // A fractional part only if the dot is followed by a digit (so `0..n`
        // lexes as `0`, `.`, `.`, `n`).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            while self.peek(0).is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("").to_string();
        self.push(TokenKind::Num, text, self.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_stripped_including_nested_blocks() {
        let src = "let a = 1; // unwrap() here is a trap\n/* outer /* unwrap() */ still comment */ let b;";
        let ids = idents(src);
        assert_eq!(ids, ["let", "a", "let", "b"]);
    }

    #[test]
    fn strings_hide_their_contents_from_ident_matching() {
        let src = r#"let s = "HashMap.iter() // not a comment"; let t = 2;"#;
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "let", "t"]);
        let strs: Vec<_> =
            lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("HashMap.iter()"));
    }

    #[test]
    fn raw_strings_with_hashes_are_one_token() {
        let src = "let s = r#\"quote \" inside, unwrap()\"#; done();";
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "done"]);
    }

    #[test]
    fn byte_and_byte_raw_strings_lex_as_strings() {
        let ids = idents("let x = b\"unwrap()\"; let y = br#\"keys()\"#; fin();");
        assert_eq!(ids, ["let", "x", "let", "y", "fin"]);
    }

    #[test]
    fn lifetimes_do_not_swallow_the_rest_of_the_file() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()) && ids.contains(&"x".to_string()));
        let lifetimes: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, ["a", "a", "a"]);
    }

    #[test]
    fn char_literals_including_escapes_and_quotes() {
        let ids = idents(r"let c = 'x'; let q = '\''; let n = '\n'; end();");
        assert_eq!(ids, ["let", "c", "let", "q", "let", "n", "end"]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\nb";
        let toks = lex(src).tokens;
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // string starts on line 2
        assert_eq!(toks[2].line, 4); // `b` after the 2-line string
    }

    #[test]
    fn allow_annotations_are_harvested_with_their_line() {
        let src = "let a = 1;\n// lint: allow(hash-iter)\nlet b = 2; // lint: allow(unwrap)\n";
        let lexed = lex(src);
        assert_eq!(
            lexed.allows,
            [
                AllowAnnotation { rule: "hash-iter".into(), line: 2 },
                AllowAnnotation { rule: "unwrap".into(), line: 3 },
            ]
        );
        assert!(lexed.is_allowed("hash-iter", 2));
        assert!(lexed.is_allowed("hash-iter", 3), "annotation covers the next line");
        assert!(!lexed.is_allowed("hash-iter", 4));
        assert!(lexed.is_allowed("unwrap", 3));
    }

    #[test]
    fn allow_inside_a_string_is_not_an_annotation() {
        let lexed = lex("let s = \"// lint: allow(unwrap)\";");
        assert!(lexed.allows.is_empty());
    }

    #[test]
    fn numeric_ranges_do_not_lex_as_floats() {
        let toks = lex("for i in 0..n {}").tokens;
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..n must keep both range dots");
    }
}

//! # dibella-lint — token-level determinism and protocol lints
//!
//! A self-contained (dependency-free) source analyzer enforcing the
//! workspace's determinism and communication-accounting conventions, run in
//! CI as `cargo run -p dibella-lint -- --workspace` before clippy.  Rustc and
//! clippy cannot see these conventions: they are *semantic* rules about which
//! crates must be bit-identical, which counters must be attributed to a
//! `CommPhase`, and where wall-clock time may be read.  See [`rules`] for
//! the rule table and `DESIGN.md` ("Static analysis and determinism
//! checking") for the rationale.
//!
//! The analyzer is deliberately token-level, not AST-level: a hand-rolled
//! [`lexer`] strips comments and strings (so `unwrap` in a doc comment is
//! not a finding), then each rule pass scans the token stream with a few
//! tokens of context.  False positives are silenced at the offending line
//! with `// lint: allow(<rule>)` plus a justification; the annotation covers
//! its own line and the next.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{check_file, FileContext, Violation};

use std::path::{Path, PathBuf};

/// Lint one in-memory source file (the fixture-test entry point).
///
/// `path` is the repo-relative path the file *would* have — rule scoping
/// (crate membership, `tests/` exemption, the extras registry) is derived
/// from it exactly as in a workspace scan.
pub fn lint_source(path: &str, source: &str) -> Vec<Violation> {
    let lexed = lexer::lex(source);
    let test_spans = rules::test_mod_spans(&lexed.tokens);
    let ctx = FileContext {
        path,
        crate_name: crate_of(path),
        test_file: is_test_path(path),
        test_spans,
    };
    rules::check_file(&lexed, &ctx)
}

/// The crate directory name a repo-relative path belongs to (`""` for the
/// root package's own sources).
fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/").and_then(|rest| rest.split('/').next()).unwrap_or("")
}

/// True for whole-file test/bench/example code.
fn is_test_path(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/")
}

/// Lint every `.rs` file under `crates/` and `src/` of the workspace rooted
/// at `root`.  Vendored shims (`vendor/`) are out of scope: they are
/// API-compatible stand-ins, not part of the reproduction's own claims.
///
/// Returns `(files_checked, violations)` sorted by path and line.
pub fn lint_workspace(root: &Path) -> std::io::Result<(usize, Vec<Violation>)> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut violations = Vec::new();
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(lint_source(&rel, &source));
    }
    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok((files.len(), violations))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root from a directory inside it (walk up until a
/// `Cargo.toml` containing `[workspace]` is found).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths_to_crate_dirs() {
        assert_eq!(crate_of("crates/sparse/src/spgemm.rs"), "sparse");
        assert_eq!(crate_of("crates/dist/src/extras.rs"), "dist");
        assert_eq!(crate_of("src/lib.rs"), "");
    }

    #[test]
    fn test_paths_are_recognised() {
        assert!(is_test_path("crates/seq/tests/ingest_peak_memory.rs"));
        assert!(is_test_path("crates/bench/benches/spgemm.rs"));
        assert!(!is_test_path("crates/seq/src/stream.rs"));
    }

    #[test]
    fn find_workspace_root_walks_up_from_here() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("this crate lives in the workspace");
        assert!(root.join("crates/lint").is_dir());
    }
}

//! CLI: `cargo run -p dibella-lint -- --workspace` (the CI gate), or pass
//! explicit file paths to lint just those files.
//!
//! Exit status 0 means no violations; 1 means violations were printed, one
//! per line as `path:line: [rule] message`; 2 means usage or I/O error.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: dibella-lint --workspace | dibella-lint <file.rs>...");
        return ExitCode::from(2);
    }

    let (checked, violations) = if args.iter().any(|a| a == "--workspace") {
        let cwd = std::env::current_dir().expect("cwd");
        let Some(root) = dibella_lint::find_workspace_root(&cwd) else {
            eprintln!("dibella-lint: no workspace root found above {}", cwd.display());
            return ExitCode::from(2);
        };
        match dibella_lint::lint_workspace(&root) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("dibella-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut violations = Vec::new();
        for path in &args {
            match std::fs::read_to_string(path) {
                Ok(source) => violations.extend(dibella_lint::lint_source(
                    &path.replace('\\', "/"),
                    &source,
                )),
                Err(e) => {
                    eprintln!("dibella-lint: {}: {e}", Path::new(path).display());
                    return ExitCode::from(2);
                }
            }
        }
        (args.len(), violations)
    };

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("dibella-lint: {checked} files checked, 0 violations");
        ExitCode::SUCCESS
    } else {
        println!("dibella-lint: {checked} files checked, {} violations", violations.len());
        ExitCode::FAILURE
    }
}

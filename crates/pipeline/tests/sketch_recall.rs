//! Recall floors for the k-min-mer candidate path (`dibella-sketch`).
//!
//! The sketch-space occurrence matrix trades nonzeros for recall: HPC plus
//! density-bound minimizers keep ~density× fewer columns than the exact
//! reliable-k-mer path, so the SUMMA sees a smaller operand but candidate
//! pairs can only be *lost*, never gained, relative to an exhaustive seed
//! index.  These tests pin how much is lost, per adversarial scenario,
//! against the simulator's [`ReadOrigin`] ground truth — and that the loss
//! does not propagate to the assembled contigs on the baseline scenario.
//!
//! "Candidate recall" here is measured at the SUMMA output (pairs whose
//! sketch rows share at least `min_shared_kmers` k-min-mers), before
//! alignment: it isolates the subsystem under test from aligner behaviour.

use dibella_dist::{CommStats, ProcessGrid};
use dibella_overlap::detect_candidates_2d_with;
use dibella_pipeline::{
    run_dibella_2d_on_reads, CandidateSource, PipelineConfig, ScenarioSpec,
};
use dibella_seq::simulate::{build_scenario, ScenarioKind, SimulatedDataset};
use dibella_sketch::build_sketch_matrix;
use dibella_strgraph::{evaluate_assembly_truth, GroundTruth};
use proptest::prelude::*;
use std::collections::HashSet;

/// A candidate pair must be recoverable when the genomic overlap spans at
/// least this many bases — a third of the fast preset's 600 bp reads.  Much
/// shorter true overlaps routinely carry no shared seed under *any* sparse
/// index (the exact path misses most of them too) and are not what the
/// string graph needs.
const MIN_TRUE_OVERLAP: usize = 200;

/// Ground-truth pairs overlapping by at least `min_overlap` genomic bases.
fn truth_pairs(ds: &SimulatedDataset, min_overlap: usize) -> HashSet<(usize, usize)> {
    let mut truth = HashSet::new();
    for i in 0..ds.num_reads() {
        for j in (i + 1)..ds.num_reads() {
            if ds.true_overlap(i, j) >= min_overlap {
                truth.insert((i, j));
            }
        }
    }
    truth
}

/// Build the scenario's dataset, run the sketch matrix + SUMMA, and return
/// the candidate recall against `MIN_TRUE_OVERLAP`-base true overlaps.
fn candidate_recall(kind: ScenarioKind, seed: u64) -> f64 {
    let mut spec = ScenarioSpec::fast(kind);
    spec.params.seed = seed;
    let ds = build_scenario(spec.kind, &spec.params);
    let config = PipelineConfig::for_small_reads(spec.k, spec.nprocs);
    let comm = CommStats::new();
    let grid = ProcessGrid::square_at_most(config.nprocs);
    let (a, _) = build_sketch_matrix(&ds.reads, &config.sketch, grid, grid.nprocs(), &comm);
    let candidates = detect_candidates_2d_with(&a, &comm, config.overlap.use_symmetric_summa);
    let found: HashSet<(usize, usize)> = candidates
        .to_triples()
        .iter()
        .filter(|(i, j, _)| i < j)
        .map(|(i, j, _)| (i, j))
        .collect();
    let truth = truth_pairs(&ds, MIN_TRUE_OVERLAP);
    assert!(!truth.is_empty(), "scenario {kind:?} produced no ground-truth overlaps");
    found.intersection(&truth).count() as f64 / truth.len() as f64
}

/// Per-scenario candidate-recall floors at the fast preset's default seed.
/// The floors are deliberately a few points under the measured values so the
/// test guards regressions (a selection or canonicalisation bug tanks recall
/// to near zero) without pinning exact sampling noise.
#[test]
fn kminmer_candidate_recall_clears_per_scenario_floors() {
    let floors = [
        (ScenarioKind::Baseline, 0.95),
        (ScenarioKind::TandemRepeat, 0.95),
        (ScenarioKind::InterspersedRepeat, 0.95),
        (ScenarioKind::ChimericReads, 0.90),
        (ScenarioKind::MetagenomeMix, 0.90),
        (ScenarioKind::CircularGenome, 0.95),
    ];
    assert_eq!(floors.len(), ScenarioKind::ALL.len(), "cover every scenario");
    for (kind, floor) in floors {
        let recall = candidate_recall(kind, ScenarioSpec::fast(kind).params.seed);
        println!("{kind:?}: candidate recall {recall:.4} (floor {floor})");
        assert!(
            recall >= floor,
            "{kind:?}: k-min-mer candidate recall {recall:.3} below floor {floor}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // The baseline floor must hold across read samplings, not just the
    // default seed: any fresh seed draws different reads, different errors
    // and therefore different minimizers.
    #[test]
    fn baseline_candidate_recall_is_robust_across_seeds(seed in 0u64..1024) {
        let recall = candidate_recall(ScenarioKind::Baseline, seed);
        prop_assert!(
            recall >= 0.93,
            "baseline candidate recall {} at seed {} below 0.93",
            recall,
            seed
        );
    }
}

/// End-to-end tolerance: switching the candidate source from the exact
/// reliable-k-mer matrix to the k-min-mer sketch must leave the *assembly*
/// intact on the baseline scenario — same floors the exact path is pinned
/// to in `tests/assembly_scenarios.rs`, plus contiguity within 10% of the
/// exact path's own result.
#[test]
fn kminmer_assembly_stays_within_tolerance_of_exact_on_baseline() {
    let spec = ScenarioSpec::fast(ScenarioKind::Baseline);
    let ds = build_scenario(spec.kind, &spec.params);
    let exact_config = PipelineConfig::for_small_reads(spec.k, spec.nprocs);
    let kmm_config =
        PipelineConfig { candidate_source: CandidateSource::KMinMer, ..exact_config };
    let truth = GroundTruth::from_dataset(&ds);

    let run = |config: &PipelineConfig| {
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, config, &comm);
        evaluate_assembly_truth(&out.contigs, &out.consensus, &truth, &config.consensus)
    };
    let exact = run(&exact_config);
    let kmm = run(&kmm_config);

    println!(
        "exact: ng50 {} identity {:.4} misjoins {}; k-min-mer: ng50 {} identity {:.4} misjoins {}",
        exact.ng50, exact.mean_identity, exact.misjoins,
        kmm.ng50, kmm.mean_identity, kmm.misjoins,
    );
    assert!(
        kmm.ng50 >= ds.genome.len() / 2,
        "k-min-mer NG50 {} below half the genome {}",
        kmm.ng50,
        ds.genome.len()
    );
    assert!(
        kmm.ng50 as f64 >= 0.9 * exact.ng50 as f64,
        "k-min-mer NG50 {} more than 10% below the exact path's {}",
        kmm.ng50,
        exact.ng50
    );
    assert!(
        kmm.mean_identity >= exact.mean_identity - 0.005,
        "k-min-mer identity {:.4} degraded past the exact path's {:.4}",
        kmm.mean_identity,
        exact.mean_identity
    );
    assert_eq!(kmm.misjoins, 0, "k-min-mer path must not introduce misjoins");
}

//! Re-pins the whole 2D pipeline's determinism claim under ≥ 50 explored
//! steal schedules, with the SPMD protocol verifier armed.
//!
//! Every stage of `run_dibella_2d_on_reads` rides the work-stealing pool
//! (per-rank SUMMA blocks, per-row SpGEMM, batched alignment, per-contig
//! POA); the repository-wide claim is bit-identical output at any thread
//! count and any chunk-claim interleaving.  This test drives the full
//! pipeline through both explorer presets — the complete 3-/4-chunk
//! permutation enumeration plus seeded large shuffles — and asserts the
//! end-to-end output (string graph, consensus, and the exact communication
//! snapshot) never moves.  Debug builds additionally record and verify the
//! per-rank collective traces inside every run, so each schedule also
//! re-checks the SPMD protocol invariant.

use dibella_dist::CommStats;
use dibella_pipeline::{run_dibella_2d_on_reads, PipelineConfig};
use dibella_seq::DatasetSpec;
use dibella_testutil::{assert_schedule_determinism, SchedulePreset};

#[test]
fn pipeline_is_bit_identical_under_fifty_plus_steal_schedules() {
    // Quarter-length Tiny genome: every stage still fans out onto the pool,
    // but 57+ full pipeline replays stay affordable.
    let ds = DatasetSpec::Tiny.generate_with_length(1_200, 55);
    let config = PipelineConfig::for_small_reads(13, 4);

    let workload = || {
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &config, &comm);
        // Everything but wall-clock timings participates in the claim; the
        // CommSnapshot pins words/messages/extras (flops, p2p, POA counters)
        // exactly, not just the assembled sequences.
        (
            out.string_matrix.to_local_csr(),
            out.overlap_matrix.to_local_csr(),
            out.contigs,
            out.consensus,
            out.overlap_stats,
            out.comm,
        )
    };

    let mut explored = 0;
    explored += assert_schedule_determinism(SchedulePreset::ExhaustiveSmall, &workload);
    explored += assert_schedule_determinism(SchedulePreset::RandomizedLarge { count: 26 }, &workload);
    assert!(explored >= 50, "acceptance floor: explored only {explored} schedules");
}

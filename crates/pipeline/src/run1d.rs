//! The diBELLA 1D baseline pipeline.
//!
//! diBELLA 1D (Ellis et al., ICPP 2019) shares the k-mer counting and
//! alignment stages with the 2D pipeline but performs overlap detection with a
//! distributed hash table (equivalently, a 1D outer-product SpGEMM with a
//! post-multiplication reduction) and exchanges at most one read per candidate
//! nonzero.  It does not implement transitive reduction, which is why the
//! Figure 9 comparison subtracts the TR time from diBELLA 2D.

use crate::config::PipelineConfig;
use crate::run2d::PipelineDims;
use crate::timings::{timed, StageTimings};
use dibella_dist::{CommSnapshot, CommStats, ProcessGrid};
use dibella_overlap::{
    account_read_exchange_1d, align_candidates_with, build_a_matrix, detect_candidates_1d,
    OverlapEdge, OverlapStats,
};
use dibella_seq::{count_kmers_distributed, ReadSet};
use dibella_sparse::DistMat2D;

/// Everything a diBELLA 1D run produces.
#[derive(Debug, Clone)]
pub struct Pipeline1dOutput {
    /// The overlap matrix `R` (no transitive reduction in the 1D pipeline).
    pub overlap_matrix: DistMat2D<OverlapEdge>,
    /// Per-stage wall-clock timings (`tr_reduction` is always zero).
    pub timings: StageTimings,
    /// Communication counters for the whole run.
    pub comm: CommSnapshot,
    /// Overlap-stage counters.
    pub overlap_stats: OverlapStats,
    /// Run dimensions.
    pub dims: PipelineDims,
    /// Number of virtual ranks used.
    pub nprocs: usize,
}

/// Run the diBELLA 1D pipeline on an already-parsed read set.
pub fn run_dibella_1d(
    reads: &ReadSet,
    config: &PipelineConfig,
    comm: &CommStats,
) -> Pipeline1dOutput {
    let nprocs = config.nprocs.max(1);
    let mut timings = StageTimings::default();

    // Debug builds verify the SPMD collective protocol at the end of the run.
    if cfg!(debug_assertions) {
        comm.enable_spmd_trace(nprocs);
    }

    let (table, t_count) = timed(|| count_kmers_distributed(reads, &config.kmer, nprocs, comm));
    timings.count_kmer = t_count;

    // The 1D pipeline's data structures are not 2D-distributed; assemble the
    // occurrence matrix locally (one block) after a block-partitioned build.
    let grid = ProcessGrid::square(1);
    let (a, t_create) =
        timed(|| build_a_matrix(reads, &table, config.overlap.k, grid, nprocs));
    timings.create_spmat = t_create;
    let a_density = if table.is_empty() { 0.0 } else { a.nnz() as f64 / table.len() as f64 };

    let a_local = a.to_local_csr();
    let (candidates_local, t_spgemm) = timed(|| detect_candidates_1d(&a_local, nprocs, comm));
    timings.spgemm = t_spgemm;

    let (_, t_exchange) =
        timed(|| account_read_exchange_1d(reads, &candidates_local, nprocs, comm));
    timings.exchange_read = t_exchange;

    let candidates = DistMat2D::from_triples(grid, &candidates_local.to_triples());
    let ((overlap_matrix, overlap_stats), t_align) =
        timed(|| align_candidates_with(reads, &candidates, &config.overlap, Some(comm)));
    timings.alignment = t_align;

    comm.assert_spmd();

    Pipeline1dOutput {
        overlap_matrix,
        timings,
        comm: comm.snapshot(),
        overlap_stats,
        dims: PipelineDims {
            reads: reads.len(),
            kmers: table.len(),
            mean_read_length: reads.mean_read_length(),
            a_density,
        },
        nprocs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run2d::run_dibella_2d_on_reads;
    use dibella_dist::CommPhase;
    use dibella_seq::DatasetSpec;

    fn tiny_config(nprocs: usize) -> PipelineConfig {
        PipelineConfig::for_small_reads(13, nprocs)
    }

    #[test]
    fn one_d_pipeline_finds_the_same_overlaps_as_2d() {
        let ds = DatasetSpec::Tiny.generate(52);
        let comm1d = CommStats::new();
        let out1d = run_dibella_1d(&ds.reads, &tiny_config(4), &comm1d);
        let comm2d = CommStats::new();
        let out2d = run_dibella_2d_on_reads(&ds.reads, &tiny_config(4), &comm2d);
        assert_eq!(
            out1d.overlap_matrix.to_local_csr().pattern(),
            out2d.overlap_matrix.to_local_csr().pattern(),
            "both pipelines must accept the same overlap set"
        );
        assert_eq!(out1d.overlap_stats.dovetail, out2d.overlap_stats.dovetail);
    }

    #[test]
    fn one_d_pipeline_has_no_tr_stage() {
        let ds = DatasetSpec::Tiny.generate(53);
        let comm = CommStats::new();
        let out = run_dibella_1d(&ds.reads, &tiny_config(4), &comm);
        assert_eq!(out.timings.tr_reduction, 0.0);
        assert_eq!(out.comm.phase(CommPhase::TransitiveReduction).words, 0);
        assert!(out.timings.total_without_tr() > 0.0);
    }

    #[test]
    fn one_d_communication_profile_differs_from_2d() {
        let ds = DatasetSpec::Tiny.generate(54);
        let p = 16;
        let comm1d = CommStats::new();
        let _ = run_dibella_1d(&ds.reads, &tiny_config(p), &comm1d);
        let comm2d = CommStats::new();
        let _ = run_dibella_2d_on_reads(&ds.reads, &tiny_config(p), &comm2d);
        // K-mer counting is the same algorithm in both pipelines.
        assert_eq!(
            comm1d.words(CommPhase::KmerCounting),
            comm2d.words(CommPhase::KmerCounting)
        );
        // Overlap-detection latency: the 1D all-to-all reduction uses more
        // messages than the 2D broadcasts (Table I: Y = P vs √P per rank).
        assert!(
            comm1d.messages(CommPhase::OverlapDetection)
                > comm2d.messages(CommPhase::OverlapDetection)
        );
        // Both record read-exchange traffic.
        assert!(comm1d.words(CommPhase::ReadExchange) > 0);
        assert!(comm2d.words(CommPhase::ReadExchange) > 0);
    }

    #[test]
    fn single_rank_run_is_communication_free() {
        let ds = DatasetSpec::Tiny.generate(55);
        let comm = CommStats::new();
        let out = run_dibella_1d(&ds.reads, &tiny_config(1), &comm);
        assert_eq!(out.comm.total_words(), 0);
        assert!(out.overlap_matrix.nnz() > 0);
    }
}

//! Per-stage wall-clock timings.
//!
//! The runtime breakdowns of Figures 5–8 stack seven components, bottom to
//! top: Alignment, ReadFastq, CountKmer, CreateSpMat, SpGEMM, ExchangeRead and
//! TrReduction.  [`StageTimings`] carries exactly those components so the
//! breakdown harness can print the same series.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Wall-clock time of every pipeline stage, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Parsing the FASTA input (the paper's `ReadFastq`).
    pub read_fastq: f64,
    /// Two-pass k-mer counting (`CountKmer`).
    pub count_kmer: f64,
    /// Building `A` and `Aᵀ` (`CreateSpMat`).
    pub create_spmat: f64,
    /// The candidate-overlap SpGEMM `C = A·Aᵀ` (`SpGEMM`).
    pub spgemm: f64,
    /// Completing the sequence exchange before alignment (`ExchangeRead`).
    pub exchange_read: f64,
    /// Seed-and-extend pairwise alignment of every candidate (`Alignment`).
    pub alignment: f64,
    /// Transitive reduction (`TrReduction`).
    pub tr_reduction: f64,
    /// Contig extraction plus POA consensus (`Consensus`) — the stage this
    /// reproduction adds beyond the paper's pipeline to close the OLC loop.
    pub consensus: f64,
}

impl StageTimings {
    /// Total runtime including alignment.
    pub fn total(&self) -> f64 {
        self.read_fastq
            + self.count_kmer
            + self.create_spmat
            + self.spgemm
            + self.exchange_read
            + self.alignment
            + self.tr_reduction
            + self.consensus
    }

    /// Total runtime excluding alignment (the right-hand plots of Figs. 5–8).
    pub fn total_without_alignment(&self) -> f64 {
        self.total() - self.alignment
    }

    /// Total runtime excluding transitive reduction (the Figure 9 comparison
    /// subtracts TR from diBELLA 2D because the 1D pipeline has no TR stage).
    pub fn total_without_tr(&self) -> f64 {
        self.total() - self.tr_reduction
    }

    /// The stage labels in the order the paper's figures stack them (the
    /// post-paper `Consensus` stage appended last).
    pub const LABELS: [&'static str; 8] = [
        "Alignment",
        "ReadFastq",
        "CountKmer",
        "CreateSpMat",
        "SpGEMM",
        "ExchangeRead",
        "TrReduction",
        "Consensus",
    ];

    /// The stage values in the same order as [`StageTimings::LABELS`].
    pub fn values(&self) -> [f64; 8] {
        [
            self.alignment,
            self.read_fastq,
            self.count_kmer,
            self.create_spmat,
            self.spgemm,
            self.exchange_read,
            self.tr_reduction,
            self.consensus,
        ]
    }

    /// Parallel efficiency of this run against a baseline run:
    /// `(t_base · p_base) / (t_this · p_this)`.
    pub fn parallel_efficiency(base_time: f64, base_procs: usize, time: f64, procs: usize) -> f64 {
        (base_time * base_procs as f64) / (time * procs as f64)
    }
}

/// Time a closure, returning its result and the elapsed seconds.
///
/// This is the one sanctioned wall-clock read feeding [`StageTimings`]; the
/// timings it produces stay out of `CommStats` and bench JSON word counts.
#[allow(clippy::disallowed_methods)]
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // lint: allow(wall-clock) — StageTimings is the designated timing sink
    let start = Instant::now();
    let out = f();
    (out, as_secs(start.elapsed()))
}

fn as_secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StageTimings {
        StageTimings {
            read_fastq: 1.0,
            count_kmer: 2.0,
            create_spmat: 0.5,
            spgemm: 4.0,
            exchange_read: 0.25,
            alignment: 10.0,
            tr_reduction: 1.25,
            consensus: 2.0,
        }
    }

    #[test]
    fn totals_add_up() {
        let t = sample();
        assert!((t.total() - 21.0).abs() < 1e-12);
        assert!((t.total_without_alignment() - 11.0).abs() < 1e-12);
        assert!((t.total_without_tr() - 19.75).abs() < 1e-12);
    }

    #[test]
    fn labels_and_values_align() {
        let t = sample();
        let values = t.values();
        assert_eq!(StageTimings::LABELS.len(), values.len());
        assert_eq!(values[0], 10.0); // Alignment first, as in the figure legends.
        assert_eq!(values[6], 1.25);
        assert_eq!(values[7], 2.0); // Consensus last (post-paper stage).
        assert!((values.iter().sum::<f64>() - t.total()).abs() < 1e-12);
    }

    #[test]
    fn parallel_efficiency_definition() {
        // Perfect scaling: 4x the processes, a quarter of the time.
        assert!((StageTimings::parallel_efficiency(100.0, 32, 25.0, 128) - 1.0).abs() < 1e-12);
        // Half-efficient scaling.
        assert!((StageTimings::parallel_efficiency(100.0, 32, 50.0, 128) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn timed_measures_elapsed_time() {
        let (value, secs) = timed(|| {
            std::thread::sleep(Duration::from_millis(20));
            42
        });
        assert_eq!(value, 42);
        assert!(secs >= 0.015, "elapsed {secs}s too small");
    }
}

//! Pipeline configuration.

use dibella_overlap::OverlapConfig;
use dibella_seq::{IngestBudget, KmerSelection};
use dibella_sketch::SketchConfig;
use dibella_strgraph::{ConsensusConfig, TransitiveReductionConfig};
use serde::{Deserialize, Serialize};

/// Which candidate-generation path feeds the `OverlapSemiring` SUMMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateSource {
    /// The paper's path: the occurrence matrix `A` has one column per
    /// reliable k-mer from the two-pass distributed counter.
    ExactKmer,
    /// The sketch-space path: one column per k-min-mer (consecutive
    /// density-selected minimizers over homopolymer-compressed reads),
    /// built by `dibella-sketch` — ~density× fewer nonzeros, no k-mer
    /// counting stage.
    KMinMer,
}

/// Configuration of one diBELLA (1D or 2D) pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Reliable k-mer selection (k, frequency bounds).
    pub kmer: KmerSelection,
    /// Overlap detection and alignment settings.
    pub overlap: OverlapConfig,
    /// Transitive reduction settings.
    pub transitive: TransitiveReductionConfig,
    /// POA consensus settings (band width, scoring).
    pub consensus: ConsensusConfig,
    /// Minimum mean Phred quality for a FASTQ read to enter the pipeline
    /// (0.0 keeps everything; FASTA input carries no qualities and is never
    /// filtered).
    pub min_mean_quality: f64,
    /// Number of virtual MPI ranks (must be a perfect square for the 2D
    /// pipeline; the largest square not exceeding it is used otherwise).
    pub nprocs: usize,
    /// Memory budget of the streaming ingest path
    /// ([`crate::run_dibella_2d_streaming`]): batch bounds for the superstep
    /// k-mer counter plus a hard cap on its estimated resident bytes.
    /// Defaults to unbounded, in which case the streaming path degenerates
    /// to one superstep over the whole input (the monolithic behaviour).
    pub ingest: IngestBudget,
    /// Which candidate path builds the occurrence matrix the SUMMA consumes
    /// (defaults to the paper's exact reliable-k-mer path).
    pub candidate_source: CandidateSource,
    /// Parameters of the k-min-mer path (used only when
    /// [`PipelineConfig::candidate_source`] is [`CandidateSource::KMinMer`]).
    pub sketch: SketchConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            kmer: KmerSelection::paper_default(),
            overlap: OverlapConfig::default(),
            transitive: TransitiveReductionConfig::default(),
            consensus: ConsensusConfig::default(),
            min_mean_quality: 0.0,
            nprocs: 4,
            ingest: IngestBudget::unbounded(),
            candidate_source: CandidateSource::ExactKmer,
            sketch: SketchConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// The paper's experimental setting (`k = 17`, max k-mer frequency 4,
    /// fuzz 1000) at a given virtual process count.
    pub fn paper_default(nprocs: usize) -> Self {
        Self { nprocs, ..Self::default() }
    }

    /// Settings scaled for the short synthetic reads used in tests and small
    /// benchmarks: shorter k-mers, smaller overlap/fuzz thresholds.
    pub fn for_small_reads(k: usize, nprocs: usize) -> Self {
        Self {
            kmer: KmerSelection { k, min_count: 2, max_count: 60 },
            overlap: OverlapConfig::for_tests(k),
            transitive: TransitiveReductionConfig::for_tests(),
            nprocs,
            sketch: SketchConfig::for_tests(k),
            ..Self::default()
        }
    }

    /// Settings for medium-scale benchmark datasets (reads of a few kb,
    /// realistic error rates): the paper's k but thresholds matched to the
    /// scaled read lengths.
    pub fn for_benchmark(k: usize, error_rate: f64, nprocs: usize) -> Self {
        let mut overlap = OverlapConfig {
            k,
            min_shared_kmers: 1,
            alignment: dibella_align::AlignmentConfig::for_error_rate(error_rate),
            ..OverlapConfig::default()
        };
        overlap.alignment.min_overlap = 300;
        overlap.alignment.classification_fuzz = 400;
        Self {
            kmer: KmerSelection::with_bella_bound(k, 20.0, error_rate),
            overlap,
            transitive: TransitiveReductionConfig { fuzz: 500, max_iterations: 16 },
            nprocs,
            sketch: SketchConfig { k, ..SketchConfig::default() },
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_vi() {
        let cfg = PipelineConfig::paper_default(338);
        assert_eq!(cfg.kmer.k, 17);
        assert_eq!(cfg.kmer.max_count, 4);
        assert_eq!(cfg.transitive.fuzz, 1000);
        assert_eq!(cfg.nprocs, 338);
    }

    #[test]
    fn small_read_config_uses_consistent_k() {
        let cfg = PipelineConfig::for_small_reads(13, 4);
        assert_eq!(cfg.kmer.k, 13);
        assert_eq!(cfg.overlap.k, 13);
        assert!(cfg.overlap.alignment.min_overlap < 200);
    }

    #[test]
    fn benchmark_config_scales_with_error_rate() {
        let clean = PipelineConfig::for_benchmark(17, 0.05, 16);
        let noisy = PipelineConfig::for_benchmark(17, 0.15, 16);
        assert!(clean.overlap.alignment.min_score_per_base > noisy.overlap.alignment.min_score_per_base);
        assert!(clean.kmer.max_count >= 4);
    }
}

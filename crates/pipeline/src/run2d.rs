//! The diBELLA 2D pipeline (Algorithm 1).

use crate::config::PipelineConfig;
use crate::timings::{timed, StageTimings};
use dibella_dist::{CommSnapshot, CommStats, ProcessGrid};
use dibella_overlap::{
    account_read_exchange_2d, align_candidates, build_a_matrix, detect_candidates_2d,
    OverlapEdge, OverlapStats,
};
use dibella_seq::{count_kmers_distributed, parse_fasta, ReadSet};
use dibella_sparse::DistMat2D;
use dibella_strgraph::{transitive_reduction, TrOutcome};
use serde::{Deserialize, Serialize};

/// Everything a diBELLA 2D run produces.
#[derive(Debug, Clone)]
pub struct Pipeline2dOutput {
    /// The string matrix `S` (transitively reduced overlap graph).
    pub string_matrix: DistMat2D<OverlapEdge>,
    /// The overlap matrix `R` (before reduction).
    pub overlap_matrix: DistMat2D<OverlapEdge>,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Communication counters for the whole run.
    pub comm: CommSnapshot,
    /// Overlap-stage counters (candidate pairs, densities, pruning reasons).
    pub overlap_stats: OverlapStats,
    /// Summary of the transitive reduction (iterations, removed edges).
    pub tr_summary: TrSummary,
    /// Process grid used.
    pub grid: ProcessGrid,
    /// Number of reads (`n`) and reliable k-mers (`m`).
    pub dims: PipelineDims,
}

/// Dimensions of the run (Table II symbols measured on the input).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineDims {
    /// Read count `n`.
    pub reads: usize,
    /// Reliable k-mer count `m`.
    pub kmers: usize,
    /// Mean read length `l`.
    pub mean_read_length: f64,
    /// Density `a` of `A` (average reads per reliable k-mer).
    pub a_density: f64,
}

/// A compact, serialisable summary of a [`TrOutcome`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrSummary {
    /// Reduction rounds executed.
    pub iterations: usize,
    /// Directed entries removed.
    pub removed_edges: usize,
    /// Entries in the string matrix `S`.
    pub string_edges: usize,
    /// `s` — average nonzeros per row of `S`.
    pub s_density: f64,
}

impl TrSummary {
    fn from_outcome(outcome: &TrOutcome, nreads: usize) -> Self {
        Self {
            iterations: outcome.iterations,
            removed_edges: outcome.removed_edges,
            string_edges: outcome.string_matrix.nnz(),
            s_density: if nreads > 0 {
                outcome.string_matrix.nnz() as f64 / nreads as f64
            } else {
                0.0
            },
        }
    }
}

/// Run the diBELLA 2D pipeline on FASTA text.
pub fn run_dibella_2d(fasta: &str, config: &PipelineConfig) -> Result<Pipeline2dOutput, String> {
    let comm = CommStats::new();
    let (reads, read_time) = timed(|| parse_fasta(fasta));
    let reads = reads?;
    let mut out = run_dibella_2d_on_reads(&reads, config, &comm);
    out.timings.read_fastq = read_time;
    out.comm = comm.snapshot();
    Ok(out)
}

/// Run the diBELLA 2D pipeline on an already-parsed read set.
///
/// The FASTA parsing time is reported as zero; callers that parse a file can
/// use [`run_dibella_2d`] to have it measured.
pub fn run_dibella_2d_on_reads(
    reads: &ReadSet,
    config: &PipelineConfig,
    comm: &CommStats,
) -> Pipeline2dOutput {
    let grid = ProcessGrid::square_at_most(config.nprocs);
    let mut timings = StageTimings::default();

    // CountKmer: two-pass distributed counting with Bloom filtering.
    let (table, t_count) =
        timed(|| count_kmers_distributed(reads, &config.kmer, grid.nprocs(), comm));
    timings.count_kmer = t_count;

    // CreateSpMat: the occurrence matrix A (Aᵀ is formed inside the SpGEMM).
    let (a, t_create) =
        timed(|| build_a_matrix(reads, &table, config.overlap.k, grid, grid.nprocs()));
    timings.create_spmat = t_create;
    let a_density = if table.is_empty() { 0.0 } else { a.nnz() as f64 / table.len() as f64 };

    // ExchangeRead: in the real system the exchange is overlapped with the
    // k-mer counting and SpGEMM; here the data is already shared, so this
    // stage only accounts for the words/messages a real run would move.
    let (_, t_exchange) = timed(|| account_read_exchange_2d(reads, grid, comm));
    timings.exchange_read = t_exchange;

    // SpGEMM: C = A·Aᵀ with the shared-k-mer semiring.
    let (candidates, t_spgemm) = timed(|| detect_candidates_2d(&a, comm));
    timings.spgemm = t_spgemm;

    // Alignment: x-drop seed-and-extend on every candidate, then pruning.
    let ((overlap_matrix, overlap_stats), t_align) =
        timed(|| align_candidates(reads, &candidates, &config.overlap));
    timings.alignment = t_align;

    // TrReduction: Algorithm 2.
    let (tr, t_tr) = timed(|| transitive_reduction(&overlap_matrix, &config.transitive, comm));
    timings.tr_reduction = t_tr;

    Pipeline2dOutput {
        tr_summary: TrSummary::from_outcome(&tr, reads.len()),
        string_matrix: tr.string_matrix,
        overlap_matrix,
        timings,
        comm: comm.snapshot(),
        overlap_stats,
        grid,
        dims: PipelineDims {
            reads: reads.len(),
            kmers: table.len(),
            mean_read_length: reads.mean_read_length(),
            a_density,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_dist::CommPhase;
    use dibella_seq::{write_fasta, DatasetSpec};
    use dibella_strgraph::transitive::remaining_transitive_edges;
    use dibella_strgraph::{extract_contigs, BidirectedGraph};

    fn tiny_config(nprocs: usize) -> PipelineConfig {
        PipelineConfig::for_small_reads(13, nprocs)
    }

    #[test]
    fn pipeline_produces_a_reduced_string_graph() {
        let ds = DatasetSpec::Tiny.generate(42);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(4), &comm);
        assert!(out.overlap_matrix.nnz() > 0, "overlaps expected on a 12x dataset");
        assert!(out.string_matrix.nnz() > 0);
        assert!(out.string_matrix.nnz() <= out.overlap_matrix.nnz());
        assert!(out.tr_summary.iterations >= 1);
        assert_eq!(
            out.tr_summary.removed_edges,
            out.overlap_matrix.nnz() - out.string_matrix.nnz()
        );
        // The string graph is a fixed point of the reduction rule.
        assert!(remaining_transitive_edges(&out.string_matrix, 60).is_empty());
    }

    #[test]
    fn timings_cover_every_stage() {
        let ds = DatasetSpec::Tiny.generate(43);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(4), &comm);
        let t = out.timings;
        assert!(t.count_kmer > 0.0);
        assert!(t.create_spmat > 0.0);
        assert!(t.spgemm > 0.0);
        assert!(t.alignment > 0.0);
        assert!(t.tr_reduction > 0.0);
        assert!(t.total() >= t.total_without_alignment());
        assert_eq!(t.read_fastq, 0.0, "read set was pre-parsed");
    }

    #[test]
    fn fasta_entry_point_parses_and_times_reading() {
        let ds = DatasetSpec::Tiny.generate(44);
        let fasta = write_fasta(&ds.reads);
        let out = run_dibella_2d(&fasta, &tiny_config(4)).unwrap();
        assert!(out.timings.read_fastq > 0.0);
        assert_eq!(out.dims.reads, ds.reads.len());
        let bad = run_dibella_2d(">x\nACGTN\n", &tiny_config(4));
        assert!(bad.is_err());
    }

    #[test]
    fn communication_is_recorded_per_phase() {
        let ds = DatasetSpec::Tiny.generate(45);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(9), &comm);
        assert!(out.comm.phase(CommPhase::KmerCounting).words > 0);
        assert!(out.comm.phase(CommPhase::OverlapDetection).words > 0);
        assert!(out.comm.phase(CommPhase::ReadExchange).words > 0);
        assert!(out.comm.phase(CommPhase::TransitiveReduction).words > 0);
        assert!(out.comm.extras.contains_key("tr_iterations"));
    }

    #[test]
    fn process_count_changes_communication_but_not_the_result() {
        let ds = DatasetSpec::Tiny.generate(46);
        let comm1 = CommStats::new();
        let out1 = run_dibella_2d_on_reads(&ds.reads, &tiny_config(1), &comm1);
        let comm9 = CommStats::new();
        let out9 = run_dibella_2d_on_reads(&ds.reads, &tiny_config(9), &comm9);
        assert_eq!(
            out1.string_matrix.to_local_csr(),
            out9.string_matrix.to_local_csr(),
            "the string graph must not depend on the virtual process count"
        );
        assert_eq!(out1.comm.total_words(), 0);
        assert!(out9.comm.total_words() > 0);
    }

    #[test]
    fn non_square_process_counts_fall_back_to_the_largest_square() {
        let ds = DatasetSpec::Tiny.generate(47);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(10), &comm);
        assert_eq!(out.grid.nprocs(), 9);
    }

    #[test]
    fn string_graph_layouts_reconstruct_long_contigs() {
        // On a low-error tiny dataset the string graph should chain most reads
        // into a few long contigs covering the genome.
        let ds = DatasetSpec::Tiny.generate(48);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(4), &comm);
        let graph = BidirectedGraph::from_dist_matrix(&out.string_matrix);
        assert_eq!(graph.num_vertices(), ds.reads.len());
        let lengths: Vec<usize> = (0..ds.reads.len()).map(|i| ds.reads.seq(i).len()).collect();
        let contigs = extract_contigs(&out.string_matrix.to_local_csr(), &lengths);
        assert!(!contigs.is_empty());
        let largest = &contigs[0];
        assert!(
            largest.reads.len() >= 5,
            "largest contig should chain several reads, got {}",
            largest.reads.len()
        );
        // Its estimated length should be in the ballpark of the genome length.
        assert!(largest.estimated_length > ds.genome.len() / 3);
        assert!(largest.estimated_length < ds.genome.len() * 2);
    }

    #[test]
    fn densities_match_matrix_contents() {
        let ds = DatasetSpec::Tiny.generate(49);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(4), &comm);
        let n = ds.reads.len() as f64;
        assert!((out.overlap_stats.r_density - out.overlap_matrix.nnz() as f64 / n).abs() < 1e-9);
        assert!((out.tr_summary.s_density - out.string_matrix.nnz() as f64 / n).abs() < 1e-9);
        assert!(out.dims.a_density > 0.0);
        assert!(out.dims.kmers > 0);
        assert_eq!(out.string_matrix.nrows(), ds.reads.len());
    }
}

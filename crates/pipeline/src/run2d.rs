//! The diBELLA 2D pipeline (Algorithm 1).

use crate::config::{CandidateSource, PipelineConfig};
use crate::timings::{timed, StageTimings};
use dibella_dist::extras::{
    CONSENSUS_LENGTH_KEY, FASTQ_DROPPED_LOW_QUALITY_KEY, POA_ALIGNED_BASES_KEY,
    POA_GRAPH_NODES_KEY,
};
use dibella_dist::{par_ranks, CommPhase, CommSnapshot, CommStats, ProcessGrid};
use dibella_overlap::{
    account_read_exchange_2d, align_candidates_with, build_a_matrix, detect_candidates_2d_with,
    OverlapEdge, OverlapStats,
};
use dibella_seq::{
    count_kmers_distributed, count_kmers_streaming, fasta_batches, parse_fasta,
    parse_fastq_filtered, read_set_batches, KmerTable, ReadSet,
};
use dibella_sketch::build_sketch_matrix;
use dibella_sparse::DistMat2D;
use dibella_strgraph::{
    consensus_contig, extract_contigs, n50, transitive_reduction, Contig, ContigConsensus,
    TrOutcome,
};
use serde::{Deserialize, Serialize};

/// Everything a diBELLA 2D run produces.
#[derive(Debug, Clone)]
pub struct Pipeline2dOutput {
    /// The string matrix `S` (transitively reduced overlap graph).
    pub string_matrix: DistMat2D<OverlapEdge>,
    /// The overlap matrix `R` (before reduction).
    pub overlap_matrix: DistMat2D<OverlapEdge>,
    /// Contig layouts extracted from `S` (maximal unbranched walks).
    pub contigs: Vec<Contig>,
    /// POA consensus per contig layout, parallel to [`Pipeline2dOutput::contigs`].
    pub consensus: Vec<ContigConsensus>,
    /// Aggregate consensus counters (contig counts, POA nodes, N50).
    pub consensus_summary: ConsensusSummary,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Communication counters for the whole run.
    pub comm: CommSnapshot,
    /// Overlap-stage counters (candidate pairs, densities, pruning reasons).
    pub overlap_stats: OverlapStats,
    /// Summary of the transitive reduction (iterations, removed edges).
    pub tr_summary: TrSummary,
    /// Process grid used.
    pub grid: ProcessGrid,
    /// Number of reads (`n`) and reliable k-mers (`m`).
    pub dims: PipelineDims,
}

/// Dimensions of the run (Table II symbols measured on the input).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineDims {
    /// Read count `n`.
    pub reads: usize,
    /// Reliable k-mer count `m`.
    pub kmers: usize,
    /// Mean read length `l`.
    pub mean_read_length: f64,
    /// Density `a` of `A` (average reads per reliable k-mer).
    pub a_density: f64,
}

/// A compact, serialisable summary of a [`TrOutcome`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrSummary {
    /// Reduction rounds executed.
    pub iterations: usize,
    /// Directed entries removed.
    pub removed_edges: usize,
    /// Entries in the string matrix `S`.
    pub string_edges: usize,
    /// `s` — average nonzeros per row of `S`.
    pub s_density: f64,
}

/// A compact, serialisable summary of the consensus stage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConsensusSummary {
    /// Number of contig layouts (consensus sequences).
    pub contigs: usize,
    /// Layouts with at least two reads.
    pub multi_read_contigs: usize,
    /// Total POA graph nodes across all contigs.
    pub poa_nodes: u64,
    /// Total read bases threaded into the POA graphs.
    pub aligned_bases: u64,
    /// Total consensus bases emitted.
    pub consensus_bases: u64,
    /// N50 over consensus lengths.
    pub n50: usize,
}

impl ConsensusSummary {
    fn new(contigs: &[Contig], consensus: &[ContigConsensus]) -> Self {
        let lengths: Vec<usize> = consensus.iter().map(|c| c.consensus.len()).collect();
        Self {
            contigs: contigs.len(),
            multi_read_contigs: contigs.iter().filter(|c| c.len() > 1).count(),
            poa_nodes: consensus.iter().map(|c| c.poa_nodes as u64).sum(),
            aligned_bases: consensus.iter().map(|c| c.aligned_bases as u64).sum(),
            consensus_bases: lengths.iter().map(|&l| l as u64).sum(),
            n50: n50(&lengths),
        }
    }
}

impl TrSummary {
    fn from_outcome(outcome: &TrOutcome, nreads: usize) -> Self {
        Self {
            iterations: outcome.iterations,
            removed_edges: outcome.removed_edges,
            string_edges: outcome.string_matrix.nnz(),
            s_density: if nreads > 0 {
                outcome.string_matrix.nnz() as f64 / nreads as f64
            } else {
                0.0
            },
        }
    }
}

/// Run the diBELLA 2D pipeline on FASTA text.
pub fn run_dibella_2d(fasta: &str, config: &PipelineConfig) -> Result<Pipeline2dOutput, String> {
    let comm = CommStats::new();
    let (reads, read_time) = timed(|| parse_fasta(fasta));
    let reads = reads?;
    let mut out = run_dibella_2d_on_reads(&reads, config, &comm);
    out.timings.read_fastq = read_time;
    out.comm = comm.snapshot();
    Ok(out)
}

/// Run the diBELLA 2D pipeline on FASTQ text, applying the configuration's
/// mean-quality read filter (`PipelineConfig::min_mean_quality`) before the
/// pipeline proper.  The dropped-read count is reported through the
/// `fastq_dropped_low_quality` extra of the communication snapshot.
pub fn run_dibella_2d_fastq(
    fastq: &str,
    config: &PipelineConfig,
) -> Result<Pipeline2dOutput, String> {
    let comm = CommStats::new();
    let (parsed, read_time) = timed(|| parse_fastq_filtered(fastq, config.min_mean_quality));
    let (reads, filter_stats) = parsed?;
    comm.bump_extra(FASTQ_DROPPED_LOW_QUALITY_KEY, filter_stats.dropped_low_quality as u64);
    let mut out = run_dibella_2d_on_reads(&reads, config, &comm);
    out.timings.read_fastq = read_time;
    out.comm = comm.snapshot();
    Ok(out)
}

/// Run the diBELLA 2D pipeline on an already-parsed read set.
///
/// The FASTA parsing time is reported as zero; callers that parse a file can
/// use [`run_dibella_2d`] to have it measured.
pub fn run_dibella_2d_on_reads(
    reads: &ReadSet,
    config: &PipelineConfig,
    comm: &CommStats,
) -> Pipeline2dOutput {
    let grid = ProcessGrid::square_at_most(config.nprocs);
    enable_spmd_trace_for_debug(comm, grid);
    // CountKmer: two-pass distributed counting with Bloom filtering.  The
    // k-min-mer path indexes sketches instead and skips counting entirely.
    let (table, t_count) = match config.candidate_source {
        CandidateSource::ExactKmer => {
            timed(|| count_kmers_distributed(reads, &config.kmer, grid.nprocs(), comm))
        }
        CandidateSource::KMinMer => (KmerTable::default(), 0.0),
    };
    pipeline_from_table(reads, table, t_count, config, grid, comm)
}

/// Run the diBELLA 2D pipeline with the **streaming superstep** k-mer counter
/// over an already-resident read set.
///
/// The counter replays the reads as bounded batches under
/// `config.ingest` (one all-to-all exchange per batch per pass, never more
/// than one in-flight batch), so its working set is capped by the budget even
/// though the reads themselves stay resident for alignment and consensus.
/// The resulting [`KmerTable`] — and therefore every downstream matrix — is
/// bit-identical to [`run_dibella_2d_on_reads`] at any batch size and thread
/// count (see [`count_kmers_streaming`]).  Fails if the estimated resident
/// bytes of any superstep exceed `config.ingest.max_resident_bytes`.
pub fn run_dibella_2d_streaming_on_reads(
    reads: &ReadSet,
    config: &PipelineConfig,
    comm: &CommStats,
) -> Result<Pipeline2dOutput, String> {
    let grid = ProcessGrid::square_at_most(config.nprocs);
    enable_spmd_trace_for_debug(comm, grid);
    let (table, t_count) = match config.candidate_source {
        CandidateSource::ExactKmer => {
            let (table, t) = timed(|| {
                count_kmers_streaming(
                    || Ok(read_set_batches(reads, config.ingest)),
                    &config.kmer,
                    grid.nprocs(),
                    &config.ingest,
                    comm,
                )
            });
            (table?, t)
        }
        CandidateSource::KMinMer => (KmerTable::default(), 0.0),
    };
    Ok(pipeline_from_table(reads, table, t_count, config, grid, comm))
}

/// Run the diBELLA 2D pipeline on FASTA text through the streaming ingest
/// path: the text is parsed in chunks (so records straddling chunk
/// boundaries exercise the same incremental reader production uses) and the
/// k-mer counter consumes the reads as supersteps under `config.ingest`.
///
/// Output is bit-identical to [`run_dibella_2d`] on the same input.
pub fn run_dibella_2d_streaming(
    fasta: &str,
    config: &PipelineConfig,
) -> Result<Pipeline2dOutput, String> {
    const STREAM_CHUNK_BYTES: usize = 64 << 10;
    let comm = CommStats::new();
    let (reads, read_time) = timed(|| {
        let mut rs = ReadSet::new();
        for batch in fasta_batches(fasta, STREAM_CHUNK_BYTES, config.ingest) {
            for rec in batch?.records {
                rs.push(rec);
            }
        }
        Ok::<ReadSet, String>(rs)
    });
    let reads = reads?;
    let mut out = run_dibella_2d_streaming_on_reads(&reads, config, &comm)?;
    out.timings.read_fastq = read_time;
    out.comm = comm.snapshot();
    Ok(out)
}

/// Everything after k-mer counting — shared verbatim by the monolithic and
/// streaming entry points, which is what makes their outputs comparable
/// stage for stage.
fn pipeline_from_table(
    reads: &ReadSet,
    table: KmerTable,
    t_count: f64,
    config: &PipelineConfig,
    grid: ProcessGrid,
    comm: &CommStats,
) -> Pipeline2dOutput {
    let mut timings = StageTimings { count_kmer: t_count, ..StageTimings::default() };

    // CreateSpMat: the occurrence matrix A (Aᵀ is formed inside the SpGEMM).
    // Exact mode: one column per reliable k-mer.  k-min-mer mode: one column
    // per surviving k-min-mer — same entry type, same CSR shape, ~density×
    // fewer nonzeros, with the ownership exchange accounted under
    // `CommPhase::SketchIndex` and the sketch_* extras.
    let (a, t_create) = timed(|| match config.candidate_source {
        CandidateSource::ExactKmer => {
            build_a_matrix(reads, &table, config.overlap.k, grid, grid.nprocs())
        }
        CandidateSource::KMinMer => {
            build_sketch_matrix(reads, &config.sketch, grid, grid.nprocs(), comm).0
        }
    });
    timings.create_spmat = t_create;
    let columns = a.ncols();
    let a_density = if columns == 0 { 0.0 } else { a.nnz() as f64 / columns as f64 };

    // ExchangeRead: in the real system the exchange is overlapped with the
    // k-mer counting and SpGEMM; here the data is already shared, so this
    // stage only accounts for the words/messages a real run would move.
    let (_, t_exchange) = timed(|| account_read_exchange_2d(reads, grid, comm));
    timings.exchange_read = t_exchange;

    // SpGEMM: C = A·Aᵀ with the shared-k-mer semiring (symmetric
    // grid-diagonal SUMMA unless the config opts out).
    let (candidates, t_spgemm) =
        timed(|| detect_candidates_2d_with(&a, comm, config.overlap.use_symmetric_summa));
    timings.spgemm = t_spgemm;

    // Alignment: x-drop seed-and-extend on every candidate, then pruning.
    let ((overlap_matrix, overlap_stats), t_align) =
        timed(|| align_candidates_with(reads, &candidates, &config.overlap, Some(comm)));
    timings.alignment = t_align;

    // TrReduction: Algorithm 2.
    let (tr, t_tr) = timed(|| transitive_reduction(&overlap_matrix, &config.transitive, comm));
    timings.tr_reduction = t_tr;

    // Consensus: extract the contig layouts from S and build one POA
    // consensus per contig on the work-stealing pool, closing the OLC loop.
    let ((contigs, consensus), t_consensus) = timed(|| {
        let s_local = tr.string_matrix.to_local_csr();
        let lengths = reads.lengths();
        let contigs = extract_contigs(&s_local, &lengths);
        let consensus = par_ranks(contigs.len(), |i| {
            consensus_contig(&contigs[i], &s_local, reads, &config.consensus)
        });
        (contigs, consensus)
    });
    timings.consensus = t_consensus;
    account_consensus(&contigs, &consensus, reads, grid, comm);

    // Every debug-build pipeline run doubles as an SPMD protocol check: the
    // collectives above appended per-rank traces, which must agree rank for
    // rank (see `dibella_dist::verify_spmd`).  No-op in release builds.
    comm.assert_spmd();

    Pipeline2dOutput {
        tr_summary: TrSummary::from_outcome(&tr, reads.len()),
        consensus_summary: ConsensusSummary::new(&contigs, &consensus),
        contigs,
        consensus,
        string_matrix: tr.string_matrix,
        overlap_matrix,
        timings,
        comm: comm.snapshot(),
        overlap_stats,
        grid,
        dims: PipelineDims {
            reads: reads.len(),
            // In k-min-mer mode `m` counts k-min-mer columns, not k-mers.
            kmers: columns,
            mean_read_length: reads.mean_read_length(),
            a_density,
        },
    }
}

/// Switch on SPMD collective tracing for debug builds, so that every
/// pipeline run (and therefore every test) verifies the collective protocol
/// invariant at no release-build cost.
fn enable_spmd_trace_for_debug(comm: &CommStats, grid: ProcessGrid) {
    if cfg!(debug_assertions) {
        comm.enable_spmd_trace(grid.nprocs());
    }
}

/// Account the communication a real distributed consensus stage would incur:
/// every multi-read contig is built on one owner rank, so the reads of the
/// layout that live on other ranks are gathered there (2-bit packed plus a
/// header word, the read-exchange wire convention).  Also folds the POA
/// counters into the `CommStats` extras (`poa_graph_nodes`,
/// `poa_aligned_bases`, `consensus_length`).
fn account_consensus(
    contigs: &[Contig],
    consensus: &[ContigConsensus],
    reads: &ReadSet,
    grid: ProcessGrid,
    comm: &CommStats,
) {
    let p = grid.nprocs();
    let n = reads.len().max(1);
    let mut words = 0u64;
    let mut messages = 0u64;
    for (index, contig) in contigs.iter().enumerate() {
        if contig.len() < 2 {
            continue;
        }
        let owner = index % p;
        for &r in &contig.reads {
            // Balanced block distribution of reads over ranks, as in the
            // read exchange; self-messages are free.
            let read_owner = r * p / n;
            if read_owner != owner {
                words += (reads.seq(r).len() as u64).div_ceil(32) + 1;
                messages += 1;
            }
        }
    }
    comm.record(CommPhase::Consensus, words, messages);
    comm.bump_extra(POA_GRAPH_NODES_KEY, consensus.iter().map(|c| c.poa_nodes as u64).sum());
    comm.bump_extra(
        POA_ALIGNED_BASES_KEY,
        consensus.iter().map(|c| c.aligned_bases as u64).sum(),
    );
    comm.bump_extra(
        CONSENSUS_LENGTH_KEY,
        consensus.iter().map(|c| c.consensus.len() as u64).sum(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_seq::{write_fasta, DatasetSpec};
    use dibella_strgraph::transitive::remaining_transitive_edges;
    use dibella_strgraph::{extract_contigs, BidirectedGraph};

    fn tiny_config(nprocs: usize) -> PipelineConfig {
        PipelineConfig::for_small_reads(13, nprocs)
    }

    #[test]
    fn pipeline_produces_a_reduced_string_graph() {
        let ds = DatasetSpec::Tiny.generate(42);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(4), &comm);
        assert!(out.overlap_matrix.nnz() > 0, "overlaps expected on a 12x dataset");
        assert!(out.string_matrix.nnz() > 0);
        assert!(out.string_matrix.nnz() <= out.overlap_matrix.nnz());
        assert!(out.tr_summary.iterations >= 1);
        assert_eq!(
            out.tr_summary.removed_edges,
            out.overlap_matrix.nnz() - out.string_matrix.nnz()
        );
        // The string graph is a fixed point of the reduction rule.
        assert!(remaining_transitive_edges(&out.string_matrix, 60).is_empty());
    }

    #[test]
    fn pipeline_collectives_satisfy_the_spmd_protocol() {
        // Debug-build runs trace every collective per virtual rank; the run
        // itself asserts the invariant, and this re-checks it explicitly on
        // the recorded traces (one per rank, none empty on a 2x2 grid).
        let ds = DatasetSpec::Tiny.generate(46);
        let comm = CommStats::new();
        let _ = run_dibella_2d_on_reads(&ds.reads, &tiny_config(4), &comm);
        let traces = comm.spmd_traces();
        assert_eq!(traces.len(), 4, "one trace per virtual rank");
        assert!(traces.iter().all(|t| !t.events.is_empty()));
        dibella_dist::verify_spmd(&traces).expect("pipeline collectives must be SPMD-consistent");

        // And the verifier is not vacuous: a seeded rank-divergent collective
        // (what a buggy rank-dependent branch would post) is rejected.
        comm.trace_event_for_rank(
            1,
            CommPhase::Other,
            dibella_dist::CollectiveKind::Broadcast,
            4,
            1,
        );
        let err = dibella_dist::verify_spmd(&comm.spmd_traces()).unwrap_err();
        assert_eq!(err.rank, 1);
        assert!(err.to_string().contains("rank 1 disagrees with rank 0"));
    }

    #[test]
    fn timings_cover_every_stage() {
        let ds = DatasetSpec::Tiny.generate(43);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(4), &comm);
        let t = out.timings;
        assert!(t.count_kmer > 0.0);
        assert!(t.create_spmat > 0.0);
        assert!(t.spgemm > 0.0);
        assert!(t.alignment > 0.0);
        assert!(t.tr_reduction > 0.0);
        assert!(t.consensus > 0.0);
        assert!(t.total() >= t.total_without_alignment());
        assert_eq!(t.read_fastq, 0.0, "read set was pre-parsed");
    }

    #[test]
    fn fasta_entry_point_parses_and_times_reading() {
        let ds = DatasetSpec::Tiny.generate(44);
        let fasta = write_fasta(&ds.reads);
        let out = run_dibella_2d(&fasta, &tiny_config(4)).unwrap();
        assert!(out.timings.read_fastq > 0.0);
        assert_eq!(out.dims.reads, ds.reads.len());
        let bad = run_dibella_2d(">x\nACGTN\n", &tiny_config(4));
        assert!(bad.is_err());
    }

    #[test]
    fn communication_is_recorded_per_phase() {
        let ds = DatasetSpec::Tiny.generate(45);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(9), &comm);
        assert!(out.comm.phase(CommPhase::KmerCounting).words > 0);
        assert!(out.comm.phase(CommPhase::OverlapDetection).words > 0);
        assert!(out.comm.phase(CommPhase::ReadExchange).words > 0);
        assert!(out.comm.phase(CommPhase::TransitiveReduction).words > 0);
        assert!(out.comm.phase(CommPhase::Consensus).words > 0);
        assert!(out.comm.extras.contains_key("tr_iterations"));
        assert!(out.comm.extras.contains_key("poa_graph_nodes"));
        assert!(out.comm.extras.contains_key("poa_aligned_bases"));
        assert!(out.comm.extras.contains_key("consensus_length"));
    }

    #[test]
    fn process_count_changes_communication_but_not_the_result() {
        let ds = DatasetSpec::Tiny.generate(46);
        let comm1 = CommStats::new();
        let out1 = run_dibella_2d_on_reads(&ds.reads, &tiny_config(1), &comm1);
        let comm9 = CommStats::new();
        let out9 = run_dibella_2d_on_reads(&ds.reads, &tiny_config(9), &comm9);
        assert_eq!(
            out1.string_matrix.to_local_csr(),
            out9.string_matrix.to_local_csr(),
            "the string graph must not depend on the virtual process count"
        );
        assert_eq!(out1.comm.total_words(), 0);
        assert!(out9.comm.total_words() > 0);
    }

    #[test]
    fn non_square_process_counts_fall_back_to_the_largest_square() {
        let ds = DatasetSpec::Tiny.generate(47);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(10), &comm);
        assert_eq!(out.grid.nprocs(), 9);
    }

    #[test]
    fn string_graph_layouts_reconstruct_long_contigs() {
        // On a low-error tiny dataset the string graph should chain most reads
        // into a few long contigs covering the genome.
        let ds = DatasetSpec::Tiny.generate(48);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(4), &comm);
        let graph = BidirectedGraph::from_dist_matrix(&out.string_matrix);
        assert_eq!(graph.num_vertices(), ds.reads.len());
        let lengths = ds.reads.lengths();
        let contigs = extract_contigs(&out.string_matrix.to_local_csr(), &lengths);
        assert!(!contigs.is_empty());
        let largest = &contigs[0];
        assert!(
            largest.reads.len() >= 5,
            "largest contig should chain several reads, got {}",
            largest.reads.len()
        );
        // Its estimated length should be in the ballpark of the genome length.
        assert!(largest.estimated_length > ds.genome.len() / 3);
        assert!(largest.estimated_length < ds.genome.len() * 2);
    }

    #[test]
    fn fastq_entry_point_filters_by_mean_quality() {
        let ds = DatasetSpec::Tiny.generate(51);
        // Build FASTQ text: high quality everywhere except every 5th read.
        let mut fastq = String::new();
        for (i, rec) in ds.reads.iter() {
            let q = if i % 5 == 0 { '%' } else { 'I' }; // Q4 vs Q40
            fastq.push_str(&format!(
                "@{}\n{}\n+\n{}\n",
                rec.name,
                rec.seq.to_ascii(),
                String::from(q).repeat(rec.seq.len())
            ));
        }
        let mut cfg = tiny_config(4);
        let unfiltered = run_dibella_2d_fastq(&fastq, &cfg).unwrap();
        assert_eq!(unfiltered.dims.reads, ds.reads.len());
        assert_eq!(unfiltered.comm.extras.get("fastq_dropped_low_quality"), Some(&0));
        // The unfiltered FASTQ run must agree with the FASTA run bit for bit.
        let comm = CommStats::new();
        let from_fasta = run_dibella_2d_on_reads(&ds.reads, &cfg, &comm);
        assert_eq!(
            unfiltered.string_matrix.to_local_csr(),
            from_fasta.string_matrix.to_local_csr()
        );

        cfg.min_mean_quality = 10.0;
        let filtered = run_dibella_2d_fastq(&fastq, &cfg).unwrap();
        let expected_dropped = ds.reads.len().div_ceil(5);
        assert_eq!(filtered.dims.reads, ds.reads.len() - expected_dropped);
        assert_eq!(
            filtered.comm.extras.get("fastq_dropped_low_quality"),
            Some(&(expected_dropped as u64))
        );
        assert!(filtered.timings.read_fastq > 0.0);
    }

    #[test]
    fn pipeline_emits_consensus_sequences_for_every_contig() {
        let ds = DatasetSpec::Tiny.generate(50);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(4), &comm);
        assert_eq!(out.contigs.len(), out.consensus.len(), "one consensus per layout");
        assert!(!out.contigs.is_empty());
        assert_eq!(out.consensus_summary.contigs, out.contigs.len());
        assert!(out.consensus_summary.multi_read_contigs >= 1);
        assert!(out.consensus_summary.consensus_bases > 0);
        assert!(out.consensus_summary.poa_nodes >= out.consensus_summary.consensus_bases);
        assert!(out.consensus_summary.n50 > 0);
        // The largest consensus should be in the ballpark of *its own*
        // layout's estimated length (the layout estimate counts genome
        // bases, the consensus counts polished bases).
        let (contig, cons) = out
            .contigs
            .iter()
            .zip(&out.consensus)
            .max_by_key(|(_, c)| c.consensus.len())
            .unwrap();
        let largest = cons.consensus.len();
        let estimated = contig.estimated_length;
        assert!(
            largest * 2 > estimated && largest < estimated * 2,
            "consensus length {largest} vs layout estimate {estimated}"
        );
        // Every read is threaded into exactly one POA graph.
        let threaded: usize = out.consensus.iter().map(|c| c.reads).sum();
        assert_eq!(threaded, ds.reads.len());
    }

    #[test]
    fn streaming_pipeline_is_bit_identical_to_monolithic() {
        use dibella_seq::IngestBudget;
        let ds = DatasetSpec::Tiny.generate(52);
        let fasta = write_fasta(&ds.reads);
        let cfg = tiny_config(4);
        let mono = run_dibella_2d(&fasta, &cfg).unwrap();
        let mono_string = mono.string_matrix.to_local_csr();
        let mono_overlap = mono.overlap_matrix.to_local_csr();
        for max_batch_reads in [1usize, 7, 64, usize::MAX] {
            for threads in [1usize, 2, 4] {
                let mut scfg = cfg;
                scfg.ingest = IngestBudget::with_batch_reads(max_batch_reads);
                let streamed = dibella_dist::with_threads(threads, || {
                    run_dibella_2d_streaming(&fasta, &scfg)
                })
                .unwrap();
                let ctx = format!("b={max_batch_reads} t={threads}");
                assert_eq!(streamed.dims.reads, mono.dims.reads, "{ctx}");
                assert_eq!(streamed.dims.kmers, mono.dims.kmers, "{ctx}");
                assert_eq!(streamed.dims.a_density, mono.dims.a_density, "{ctx}");
                assert_eq!(
                    streamed.string_matrix.to_local_csr(),
                    mono_string,
                    "string matrix differs ({ctx})"
                );
                assert_eq!(
                    streamed.overlap_matrix.to_local_csr(),
                    mono_overlap,
                    "overlap matrix differs ({ctx})"
                );
                let supersteps = streamed.comm.extras.get("ingest_supersteps").copied();
                assert_eq!(
                    supersteps,
                    Some(ds.reads.len().div_ceil(max_batch_reads.min(ds.reads.len())) as u64),
                    "{ctx}"
                );
                assert!(streamed.comm.extras.contains_key("ingest_batch_bytes_peak"), "{ctx}");
                assert!(
                    streamed.comm.extras.contains_key("ingest_resident_bytes_peak"),
                    "{ctx}"
                );
            }
        }
    }

    #[test]
    fn streaming_a_matrix_pattern_matches_monolithic() {
        use dibella_overlap::build_a_matrix;
        use dibella_seq::{
            count_kmers_distributed, count_kmers_streaming, read_set_batches, IngestBudget,
        };
        let ds = DatasetSpec::Tiny.generate(53);
        let cfg = tiny_config(4);
        let grid = ProcessGrid::square_at_most(cfg.nprocs);
        let comm = CommStats::new();
        let mono_table = count_kmers_distributed(&ds.reads, &cfg.kmer, grid.nprocs(), &comm);
        let mono_a = build_a_matrix(&ds.reads, &mono_table, cfg.overlap.k, grid, grid.nprocs());
        for max_batch_reads in [1usize, 7, 64] {
            let budget = IngestBudget::with_batch_reads(max_batch_reads);
            let stream_table = count_kmers_streaming(
                || Ok(read_set_batches(&ds.reads, budget)),
                &cfg.kmer,
                grid.nprocs(),
                &budget,
                &comm,
            )
            .unwrap();
            let stream_a =
                build_a_matrix(&ds.reads, &stream_table, cfg.overlap.k, grid, grid.nprocs());
            assert_eq!(
                stream_a.to_local_csr().pattern(),
                mono_a.to_local_csr().pattern(),
                "A nnz pattern differs at b={max_batch_reads}"
            );
        }
    }

    #[test]
    fn streaming_pipeline_surfaces_budget_violations() {
        use dibella_seq::IngestBudget;
        let ds = DatasetSpec::Tiny.generate(54);
        let fasta = write_fasta(&ds.reads);
        let mut cfg = tiny_config(4);
        cfg.ingest = IngestBudget::with_batch_reads(8);
        cfg.ingest.max_resident_bytes = 16;
        let err = run_dibella_2d_streaming(&fasta, &cfg).unwrap_err();
        assert!(err.contains("over budget"), "unexpected error: {err}");
    }

    #[test]
    fn kminmer_mode_runs_end_to_end() {
        let ds = DatasetSpec::Tiny.generate(42);
        let mut cfg = tiny_config(4);
        cfg.candidate_source = crate::CandidateSource::KMinMer;
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &cfg, &comm);
        assert!(out.overlap_matrix.nnz() > 0, "k-min-mer mode must find overlaps");
        assert!(out.string_matrix.nnz() > 0);
        // No k-mer counting happens; the sketch index is accounted instead.
        assert_eq!(out.comm.phase(CommPhase::KmerCounting).words, 0);
        assert!(out.comm.phase(CommPhase::SketchIndex).words > 0);
        assert_eq!(out.timings.count_kmer, 0.0);
        assert!(out.timings.create_spmat > 0.0);
        // dims.kmers reports k-min-mer columns; extras carry the details.
        assert_eq!(out.dims.kmers as u64, out.comm.extras["sketch_columns"]);
        assert!(out.comm.extras["sketch_nnz"] > 0);
        assert!(out.comm.extras["sketch_hpc_ratio_ppm"] > 1_000_000);

        // The sketch matrix must be far smaller than the exact-path A.
        let exact = run_dibella_2d_on_reads(&ds.reads, &tiny_config(4), &CommStats::new());
        let exact_nnz = (exact.dims.a_density * exact.dims.kmers as f64).round() as u64;
        assert!(
            out.comm.extras["sketch_nnz"] * 3 < exact_nnz,
            "sketch nnz {} vs exact nnz {exact_nnz}",
            out.comm.extras["sketch_nnz"]
        );
    }

    #[test]
    fn kminmer_mode_is_deterministic_across_workers_and_ranks() {
        let ds = DatasetSpec::Tiny.generate(55);
        let run = |threads: usize, nprocs: usize| {
            dibella_dist::with_threads(threads, || {
                let mut cfg = tiny_config(nprocs);
                cfg.candidate_source = crate::CandidateSource::KMinMer;
                let comm = CommStats::new();
                run_dibella_2d_on_reads(&ds.reads, &cfg, &comm)
            })
        };
        let base = run(1, 1);
        let base_overlap = base.overlap_matrix.to_local_csr();
        let base_string = base.string_matrix.to_local_csr();
        for threads in [2usize, 4] {
            for nprocs in [1usize, 4, 9] {
                let out = run(threads, nprocs);
                let ctx = format!("t={threads} p={nprocs}");
                assert_eq!(out.dims.kmers, base.dims.kmers, "{ctx}");
                assert_eq!(out.dims.a_density, base.dims.a_density, "{ctx}");
                assert_eq!(out.overlap_matrix.to_local_csr(), base_overlap, "{ctx}");
                assert_eq!(out.string_matrix.to_local_csr(), base_string, "{ctx}");
            }
        }
    }

    #[test]
    fn densities_match_matrix_contents() {
        let ds = DatasetSpec::Tiny.generate(49);
        let comm = CommStats::new();
        let out = run_dibella_2d_on_reads(&ds.reads, &tiny_config(4), &comm);
        let n = ds.reads.len() as f64;
        assert!((out.overlap_stats.r_density - out.overlap_matrix.nnz() as f64 / n).abs() < 1e-9);
        assert!((out.tr_summary.s_density - out.string_matrix.nnz() as f64 / n).abs() < 1e-9);
        assert!(out.dims.a_density > 0.0);
        assert!(out.dims.kmers > 0);
        assert_eq!(out.string_matrix.nrows(), ds.reads.len());
    }
}

//! Adversarial-scenario runner: build a stress dataset, run the full 2D
//! pipeline on it, and score the assembly against the simulator's ground
//! truth (see DESIGN.md "Adversarial scenario suite").
//!
//! Each [`ScenarioSpec`] names one [`ScenarioKind`] (repeat trap, chimeric
//! reads, metagenome mix, circular genome, …) plus the simulation and
//! pipeline knobs; [`run_scenario`] produces a [`ScenarioReport`] — the row
//! of the per-scenario quality matrix the `assembly_quality` bench serialises
//! into `BENCH_assembly.json` and `tests/assembly_scenarios.rs` pins floors
//! on.  Reports deliberately carry **no wall-clock fields**, so a report is
//! comparable across machines and thread counts (the determinism test
//! asserts bit-identical reports at 1, 2 and 4 worker threads).

use crate::config::PipelineConfig;
use crate::run2d::run_dibella_2d_on_reads;
use dibella_dist::CommStats;
use dibella_seq::simulate::{build_scenario, ScenarioKind, ScenarioParams};
use dibella_strgraph::{evaluate_assembly_truth, GroundTruth};
use serde::{Deserialize, Serialize};

/// One scenario to run: the dataset recipe plus the pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Which adversarial scenario to build.
    pub kind: ScenarioKind,
    /// Simulation knobs (genome length, depth, read length, error rate, seed).
    pub params: ScenarioParams,
    /// k-mer length for the pipeline.
    pub k: usize,
    /// Virtual process count for the 2D grid.
    pub nprocs: usize,
}

impl ScenarioSpec {
    /// The fast preset: ~8–9 kb genomes and 600 bp reads, sized so the whole
    /// six-scenario matrix runs in seconds (CI smoke subset, debug builds).
    pub fn fast(kind: ScenarioKind) -> Self {
        let genome_length = match kind {
            // The tandem array (3 × 1200 bp) needs flanks around it.
            ScenarioKind::TandemRepeat => 9_000,
            // Per-strain length for the mix (the reference is twice this).
            ScenarioKind::MetagenomeMix => 5_000,
            _ => 8_000,
        };
        ScenarioSpec {
            kind,
            params: ScenarioParams {
                genome_length,
                depth: 15.0,
                mean_read_length: 600,
                error_rate: 0.05,
                seed: 77,
                ..ScenarioParams::default()
            },
            k: 13,
            nprocs: 4,
        }
    }

    /// The bench preset: ~15–20 kb genomes and 1.2 kb reads, matching the
    /// golden 20 kbp dataset's scale; this is what `BENCH_assembly.json`
    /// records.
    pub fn bench(kind: ScenarioKind) -> Self {
        let genome_length = match kind {
            ScenarioKind::TandemRepeat => 18_000,
            ScenarioKind::MetagenomeMix => 10_000,
            _ => 15_000,
        };
        ScenarioSpec {
            kind,
            params: ScenarioParams {
                genome_length,
                depth: 15.0,
                mean_read_length: 1_200,
                error_rate: 0.05,
                seed: 77,
                ..ScenarioParams::default()
            },
            k: 15,
            nprocs: 4,
        }
    }

    /// All six scenarios at the fast preset, in matrix order.
    pub fn fast_suite() -> Vec<ScenarioSpec> {
        ScenarioKind::ALL.iter().map(|&k| ScenarioSpec::fast(k)).collect()
    }

    /// All six scenarios at the bench preset, in matrix order.
    pub fn bench_suite() -> Vec<ScenarioSpec> {
        ScenarioKind::ALL.iter().map(|&k| ScenarioSpec::bench(k)).collect()
    }
}

/// One row of the scenario quality matrix: dataset shape plus the assembly
/// metrics the suite tracks per scenario.  Contains no wall-clock fields so
/// that identical specs produce bit-identical reports regardless of machine
/// or thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Stable scenario label ([`ScenarioKind::label`]).
    pub scenario: String,
    /// Reference length the reads were sampled from.
    pub genome_length: usize,
    /// Number of simulated reads.
    pub reads: usize,
    /// Ground-truth chimeric reads among them.
    pub chimeric_reads: usize,
    /// Achieved depth of coverage.
    pub depth: f64,
    /// Contigs emitted (singletons included).
    pub contigs: usize,
    /// Contigs chaining at least two reads.
    pub multi_read_contigs: usize,
    /// Contigs whose layout closed into a cycle.
    pub circular_contigs: usize,
    /// Total scored consensus bases.
    pub assembled_bases: usize,
    /// Largest scored consensus length.
    pub largest_contig: usize,
    /// N50 over scored consensus lengths.
    pub n50: usize,
    /// NG50 against the reference length.
    pub ng50: usize,
    /// Length-weighted mean identity vs the reference.
    pub mean_identity: f64,
    /// Assembler misjoins (broken adjacencies at non-chimeric reads).
    pub misjoins: usize,
    /// Breaks at ground-truth chimeric reads (propagated library artefacts).
    pub chimera_breaks: usize,
}

/// Build the scenario's dataset, run the full 2D pipeline, and score it.
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioReport {
    let ds = build_scenario(spec.kind, &spec.params);
    let config = PipelineConfig::for_small_reads(spec.k, spec.nprocs);
    let comm = CommStats::new();
    let out = run_dibella_2d_on_reads(&ds.reads, &config, &comm);
    let metrics = evaluate_assembly_truth(
        &out.contigs,
        &out.consensus,
        &GroundTruth::from_dataset(&ds),
        &config.consensus,
    );
    ScenarioReport {
        scenario: ds.label.clone(),
        genome_length: ds.genome.len(),
        reads: ds.num_reads(),
        chimeric_reads: ds.num_chimeric(),
        depth: ds.achieved_depth(),
        contigs: metrics.contigs,
        multi_read_contigs: metrics.multi_read_contigs,
        circular_contigs: metrics.circular_contigs,
        assembled_bases: metrics.assembled_bases,
        largest_contig: metrics.largest_contig,
        n50: metrics.n50,
        ng50: metrics.ng50,
        mean_identity: metrics.mean_identity,
        misjoins: metrics.misjoins,
        chimera_breaks: metrics.chimera_breaks,
    }
}

/// Run a list of scenarios in order, returning one report per spec.
pub fn run_scenario_matrix(specs: &[ScenarioSpec]) -> Vec<ScenarioReport> {
    specs.iter().map(run_scenario).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_baseline_scenario_assembles_well() {
        let report = run_scenario(&ScenarioSpec::fast(ScenarioKind::Baseline));
        assert_eq!(report.scenario, "baseline");
        assert!(report.ng50 >= report.genome_length / 2, "NG50 {}", report.ng50);
        assert!(report.mean_identity >= 0.99, "identity {}", report.mean_identity);
        assert_eq!(report.misjoins, 0);
    }

    #[test]
    fn suites_cover_all_scenarios_in_matrix_order() {
        let fast = ScenarioSpec::fast_suite();
        let bench = ScenarioSpec::bench_suite();
        assert_eq!(fast.len(), 6);
        assert_eq!(bench.len(), 6);
        for (spec, kind) in fast.iter().zip(ScenarioKind::ALL) {
            assert_eq!(spec.kind, kind);
        }
        for spec in &bench {
            assert!(spec.params.mean_read_length > ScenarioSpec::fast(spec.kind).params.mean_read_length);
        }
    }
}

//! The analytic communication model of Table I.
//!
//! Section V derives per-process bandwidth (`W`) and latency (`Y`) costs for
//! the four communicating phases of diBELLA 1D and 2D:
//!
//! | Task                 | W (1D)    | W (2D)     | Y (1D)           | Y (2D) |
//! |----------------------|-----------|------------|------------------|--------|
//! | K-mer counting       | nlk/4P    | nlk/4P     | bP               | bP     |
//! | Overlap detection    | a²m/P     | am/√P      | P                | √P     |
//! | Read exchange        | cnl/P     | 2nl/√P     | min{cnl/P, P}    | √P     |
//! | Transitive reduction | —         | rn/√P      | —                | t√P    |
//!
//! This module evaluates those formulas with the *same unit conventions the
//! instrumentation uses* (8-byte words, 2-bit packed sequences, per-entry wire
//! sizes), so the Table I harness can print model and measurement side by
//! side.  The shapes (the `1/P` vs `1/√P` scaling, the crossovers) are what
//! the reproduction checks; absolute constants depend on wire-format choices.

use serde::{Deserialize, Serialize};

/// The dataset/algorithm parameters of Table II that the model needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Read count `n`.
    pub n: usize,
    /// Reliable k-mer count `m`.
    pub m: usize,
    /// Mean read length `l`.
    pub l: f64,
    /// k-mer length `k`.
    pub k: usize,
    /// `a` — average number of reads containing a reliable k-mer.
    pub a: f64,
    /// `c` — average nonzeros per row of the candidate matrix `C`.
    pub c: f64,
    /// `r` — average nonzeros per row of the overlap matrix `R`.
    pub r: f64,
    /// Number of k-mer exchange passes (`b`; this implementation uses 2).
    pub kmer_passes: usize,
    /// Transitive-reduction iterations (`t`).
    pub tr_iterations: usize,
}

impl ModelParams {
    /// Words used to ship one k-mer (2-bit packed).
    pub fn kmer_words(&self) -> u64 {
        (self.k as u64).div_ceil(32)
    }

    /// Words used to ship one read (2-bit packed plus a header word).
    pub fn read_words(&self) -> u64 {
        (self.l.ceil() as u64).div_ceil(32) + 1
    }

    /// Words used to ship one sparse-matrix entry in the overlap SpGEMM.
    pub const SPGEMM_ENTRY_WORDS: u64 = 2;
    /// Words used to ship one partial-product entry in the 1D reduction.
    pub const OUTER1D_ENTRY_WORDS: u64 = 4;
}

/// Predicted aggregate (summed over ranks) and per-process costs for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Total words moved across all ranks.
    pub aggregate_words: f64,
    /// Words moved by one (average) rank.
    pub per_process_words: f64,
    /// Total messages across all ranks.
    pub aggregate_messages: f64,
}

/// The Table I model evaluated at a process count.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CommModel {
    /// Parameters the model was evaluated with.
    pub params: ModelParams,
    /// Process count `P`.
    pub p: usize,
}

impl CommModel {
    /// Evaluate the model for `p` processes.
    pub fn new(params: ModelParams, p: usize) -> Self {
        assert!(p >= 1);
        Self { params, p }
    }

    fn sqrt_p(&self) -> f64 {
        (self.p as f64).sqrt()
    }

    /// K-mer counting (same in both pipelines): every rank keeps `1/P` of its
    /// k-mers and ships the rest, in `b` passes.
    pub fn kmer_counting(&self) -> PhaseCost {
        let pm = &self.params;
        let total_kmers = pm.n as f64 * (pm.l - pm.k as f64 + 1.0).max(0.0);
        let off_node = (self.p as f64 - 1.0) / self.p as f64;
        let aggregate =
            pm.kmer_passes as f64 * total_kmers * off_node * pm.kmer_words() as f64;
        PhaseCost {
            aggregate_words: aggregate,
            per_process_words: aggregate / self.p as f64,
            aggregate_messages: pm.kmer_passes as f64
                * self.p as f64
                * (self.p as f64 - 1.0),
        }
    }

    /// Overlap detection with 2D Sparse SUMMA: `W = a·m/√P` per process.
    pub fn overlap_2d(&self) -> PhaseCost {
        let pm = &self.params;
        let nnz_a = pm.a * pm.m as f64;
        // Both A and Aᵀ blocks are broadcast to √P - 1 peers across the stages.
        let aggregate =
            2.0 * nnz_a * ModelParams::SPGEMM_ENTRY_WORDS as f64 * (self.sqrt_p() - 1.0);
        PhaseCost {
            aggregate_words: aggregate,
            per_process_words: aggregate / self.p as f64,
            aggregate_messages: 2.0 * self.p as f64 * (self.sqrt_p() - 1.0),
        }
    }

    /// Overlap detection with the **symmetric** (grid-diagonal mirrored) 2D
    /// Sparse SUMMA, the `detect_candidates_2d` default: each block of `A` is
    /// broadcast `√P − 1` times in total (vs `2(√P − 1)` for the general
    /// path), and the strictly-upper off-diagonal blocks of `C` — about
    /// `c·n/2 · (1 − 1/√P)` entries — travel point-to-point across the grid
    /// diagonal in `(P − √P)/2` messages at the `C`-entry wire size.
    pub fn overlap_2d_sym(&self) -> PhaseCost {
        let pm = &self.params;
        let nnz_a = pm.a * pm.m as f64;
        let broadcast =
            nnz_a * ModelParams::SPGEMM_ENTRY_WORDS as f64 * (self.sqrt_p() - 1.0);
        // Strict upper triangle of C, minus the share living in the √P
        // diagonal grid blocks (those are mirrored locally, never shipped);
        // priced at the same wire size the instrumentation uses.
        let exchange_entries =
            pm.c * pm.n as f64 / 2.0 * (1.0 - 1.0 / self.sqrt_p());
        let exchange_entry_words =
            (dibella_dist::words_of::<dibella_overlap::CommonKmers>() + 1) as f64;
        let aggregate = broadcast + exchange_entries * exchange_entry_words;
        PhaseCost {
            aggregate_words: aggregate,
            per_process_words: aggregate / self.p as f64,
            aggregate_messages: self.p as f64 * (self.sqrt_p() - 1.0)
                + (self.p as f64 - self.sqrt_p()) / 2.0,
        }
    }

    /// Overlap detection with the 1D outer product: `W = a²m/P` per process.
    /// (The model ignores the local merging of duplicate partial products, so
    /// it is an upper bound at small `P`.)
    pub fn overlap_1d(&self) -> PhaseCost {
        let pm = &self.params;
        let partial_nnz = pm.a * pm.a * pm.m as f64;
        let off_node = (self.p as f64 - 1.0) / self.p as f64;
        let aggregate = partial_nnz * off_node * ModelParams::OUTER1D_ENTRY_WORDS as f64;
        PhaseCost {
            aggregate_words: aggregate,
            per_process_words: aggregate / self.p as f64,
            aggregate_messages: self.p as f64 * (self.p as f64 - 1.0),
        }
    }

    /// Read exchange for the 2D pipeline: every rank fetches its block row and
    /// block column of reads, about `2n/√P` reads per rank.
    pub fn read_exchange_2d(&self) -> PhaseCost {
        let pm = &self.params;
        if self.p == 1 {
            return PhaseCost::default();
        }
        let per_rank_reads = 2.0 * pm.n as f64 / self.sqrt_p() - pm.n as f64 / self.p as f64;
        let per_rank = per_rank_reads.max(0.0) * pm.read_words() as f64;
        PhaseCost {
            aggregate_words: per_rank * self.p as f64,
            per_process_words: per_rank,
            aggregate_messages: self.p as f64 * (self.sqrt_p() - 1.0).max(0.0) * 2.0,
        }
    }

    /// Read exchange for the 1D pipeline: at most one read per candidate
    /// nonzero, `c·n/P` reads per rank.
    pub fn read_exchange_1d(&self) -> PhaseCost {
        let pm = &self.params;
        let off_node = (self.p as f64 - 1.0) / self.p as f64;
        let per_rank_reads = (pm.c * pm.n as f64 / self.p as f64 * off_node)
            .min(pm.n as f64);
        let per_rank = per_rank_reads * pm.read_words() as f64;
        PhaseCost {
            aggregate_words: per_rank * self.p as f64,
            per_process_words: per_rank,
            aggregate_messages: self.p as f64 * ((self.p - 1) as f64).min(pm.c * pm.n as f64 / self.p as f64),
        }
    }

    /// Transitive reduction (2D only): the squaring of `R` dominates,
    /// `W = r·n/√P` per process per iteration, with geometrically shrinking
    /// iterations.
    pub fn transitive_reduction_2d(&self) -> PhaseCost {
        let pm = &self.params;
        let nnz_r = pm.r * pm.n as f64;
        let per_iter =
            2.0 * nnz_r * ModelParams::SPGEMM_ENTRY_WORDS as f64 * (self.sqrt_p() - 1.0);
        // Iterations after the first work on geometrically smaller matrices;
        // the paper treats the total as asymptotically the first iteration.
        let aggregate = per_iter * (1.0 + 0.5 * (pm.tr_iterations.saturating_sub(1)) as f64);
        PhaseCost {
            aggregate_words: aggregate,
            per_process_words: aggregate / self.p as f64,
            aggregate_messages: pm.tr_iterations as f64 * 2.0 * self.p as f64 * (self.sqrt_p() - 1.0),
        }
    }

    /// The process count above which the 1D algorithm's **read exchange**
    /// would move fewer words per process than the 2D algorithm's — the
    /// paper's "(c²/4)-way parallelism" observation (Section V-C): the 1D
    /// exchange costs `c·n·l/P` against `2·n·l/√P` for 2D, so the 1D
    /// algorithm needs `P > (c/2)²` to come out ahead.
    pub fn one_d_read_exchange_crossover(&self) -> f64 {
        (self.params.c / 2.0).powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams {
            n: 10_000,
            m: 200_000,
            l: 8_000.0,
            k: 17,
            a: 5.0,
            c: 100.0,
            r: 8.0,
            kmer_passes: 2,
            tr_iterations: 3,
        }
    }

    #[test]
    fn per_process_words_shrink_with_p() {
        let m4 = CommModel::new(params(), 4);
        let m64 = CommModel::new(params(), 64);
        assert!(m64.kmer_counting().per_process_words < m4.kmer_counting().per_process_words);
        assert!(m64.overlap_2d().per_process_words < m4.overlap_2d().per_process_words);
        assert!(m64.overlap_1d().per_process_words < m4.overlap_1d().per_process_words);
        assert!(m64.read_exchange_2d().per_process_words < m4.read_exchange_2d().per_process_words);
        assert!(
            m64.transitive_reduction_2d().per_process_words
                < m4.transitive_reduction_2d().per_process_words
        );
    }

    #[test]
    fn scaling_exponents_match_table1() {
        let p1 = 16usize;
        let p2 = 256usize;
        let m1 = CommModel::new(params(), p1);
        let m2 = CommModel::new(params(), p2);
        // 1D overlap detection scales as 1/P: 16x fewer words per process.
        let ratio_1d = m1.overlap_1d().per_process_words / m2.overlap_1d().per_process_words;
        assert!((ratio_1d - 16.0).abs() / 16.0 < 0.1, "1D ratio {ratio_1d}");
        // 2D overlap detection scales as 1/√P... modulo the (√P-1)/P form;
        // the per-process ratio should be near √(P2/P1) = 4 for large P.
        let ratio_2d = m2.overlap_2d().per_process_words / m1.overlap_2d().per_process_words;
        assert!(ratio_2d > 0.2 && ratio_2d < 0.35, "2D per-process ratio {ratio_2d}");
    }

    #[test]
    fn one_d_read_exchange_beats_2d_only_past_the_crossover() {
        let pm = params();
        let crossover = CommModel::new(pm, 4).one_d_read_exchange_crossover();
        assert!((crossover - 2500.0).abs() < 1e-9, "c=100 => crossover at (c/2)^2 = 2500");
        // Well below the crossover the 1D per-process read exchange exceeds 2D's.
        let below = CommModel::new(pm, 64);
        assert!(
            below.read_exchange_1d().per_process_words
                > below.read_exchange_2d().per_process_words,
            "below the crossover 2D should exchange fewer read words per process"
        );
        // Far above it the ordering flips (the paper: the 1D algorithm would
        // need (c²/4)-way parallelism to overcome its constant).
        let above = CommModel::new(pm, 10_000);
        assert!(
            above.read_exchange_1d().per_process_words
                < above.read_exchange_2d().per_process_words
        );
    }

    #[test]
    fn latency_orders_match_table1() {
        let m = CommModel::new(params(), 64);
        // Per-process: 1D uses P messages, 2D uses √P-ish.
        let y1d = m.overlap_1d().aggregate_messages / 64.0;
        let y2d = m.overlap_2d().aggregate_messages / 64.0;
        assert!(y1d > y2d);
        assert!((y1d - 63.0).abs() < 1e-9);
        assert!((y2d - 14.0).abs() < 1e-9); // 2(√P - 1) = 14
    }

    #[test]
    fn single_process_costs_are_zero() {
        let m = CommModel::new(params(), 1);
        assert_eq!(m.kmer_counting().aggregate_words, 0.0);
        assert_eq!(m.overlap_2d().aggregate_words, 0.0);
        assert_eq!(m.overlap_1d().aggregate_words, 0.0);
        assert_eq!(m.read_exchange_2d().per_process_words, 0.0);
        assert_eq!(m.transitive_reduction_2d().aggregate_words, 0.0);
    }

    #[test]
    fn wire_sizes_match_instrumentation_conventions() {
        let pm = params();
        assert_eq!(pm.kmer_words(), 1, "a 17-mer packs into one 8-byte word");
        assert_eq!(pm.read_words(), 8_000 / 32 + 1);
    }
}

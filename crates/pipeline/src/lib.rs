//! # dibella-pipeline — the diBELLA 2D pipeline (Algorithm 1)
//!
//! This crate assembles the substrates into the end-to-end system the paper
//! evaluates:
//!
//! ```text
//! reads    ← FastaReader()             (or FastqReader() + mean-Q filter)
//! k-mers   ← KmerCounter()
//! A        ← GenerateA(reads, k-mers)
//! C        ← A·Aᵀ                      (candidate overlaps, custom semiring)
//! C        ← Apply(C, Alignment())     (x-drop seed-and-extend)
//! R        ← Prune(C, score < t)
//! S        ← TransitiveReduction(R)    (Algorithm 2)
//! contigs  ← ExtractContigs(S)         (layout: maximal unbranched walks)
//! seq      ← PoaConsensus(contigs)     (consensus: closes the OLC loop)
//! ```
//!
//! * [`config`] — pipeline configuration (k-mer selection, alignment,
//!   transitive reduction, virtual process count).
//! * [`timings`] — per-stage wall-clock timings matching the breakdown of
//!   Figures 5–8 (Alignment, ReadFastq, CountKmer, CreateSpMat, SpGEMM,
//!   ExchangeRead, TrReduction).
//! * [`run2d`] — the diBELLA 2D pipeline.
//! * [`run1d`] — the diBELLA 1D baseline pipeline (overlap detection with the
//!   1D outer-product formulation, no transitive reduction), used for the
//!   Figure 9 comparison.
//! * [`comm_model`] — the analytic communication model of Table I, evaluated
//!   with this reproduction's word conventions so measured and modelled
//!   volumes are directly comparable.

#![warn(missing_docs)]

pub mod comm_model;
pub mod config;
pub mod run1d;
pub mod run2d;
pub mod scenario;
pub mod timings;

pub use comm_model::{CommModel, ModelParams};
pub use config::{CandidateSource, PipelineConfig};
pub use run1d::{run_dibella_1d, Pipeline1dOutput};
pub use scenario::{run_scenario, run_scenario_matrix, ScenarioReport, ScenarioSpec};
pub use run2d::{
    run_dibella_2d, run_dibella_2d_fastq, run_dibella_2d_on_reads, run_dibella_2d_streaming,
    run_dibella_2d_streaming_on_reads, ConsensusSummary, Pipeline2dOutput,
};
pub use timings::StageTimings;

//! Pins the zero-allocation steady state of the batched alignment engine.
//!
//! The shared [`PeakAlloc`] counting allocator wraps the system allocator;
//! after warm-up calls have grown every scratch buffer, further extensions
//! and full seed-pair alignments through the worker scratch must allocate
//! nothing.  This file holds a single `#[test]` on purpose: the counter is
//! global, and a sibling test allocating concurrently would make the delta
//! meaningless.

use dibella_align::{
    align_seed_pair_with, xdrop_extend_auto, AlignmentConfig, AlignScratch, ExtendEngine,
    OrientCache, ScoringScheme,
};
use dibella_seq::{DnaSeq, Strand};
use dibella_testutil::PeakAlloc;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

fn count_allocs(f: impl FnOnce()) -> u64 {
    let scope = ALLOC.scope();
    f();
    scope.allocations()
}

#[test]
fn steady_state_alignment_allocates_nothing() {
    // Deterministic pseudo-random sequences without pulling in rand (which
    // could allocate internally and pollute the counter).
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 32) as u8 % 4
    };
    let genome: Vec<u8> = (0..3000).map(|_| next()).collect();
    let v = DnaSeq::from_codes(genome[..2000].to_vec());
    let h = DnaSeq::from_codes(genome[800..2800].to_vec());
    let h_rc = h.reverse_complement();
    let config = AlignmentConfig::for_tests();

    let mut scratch = AlignScratch::new();
    let mut cache = OrientCache::new();

    // Warm-up: grows the DP buffers, equality tables, reversed-prefix
    // buffers and the orientation cache to their steady-state sizes (the
    // same work shapes the steady loop replays).
    for seed_off in [0usize, 37, 113, 271] {
        let _ = cache.reverse_complement(1, h_rc.codes());
        for engine in [ExtendEngine::Auto, ExtendEngine::Scalar] {
            let _ = align_seed_pair_with(
                v.codes(),
                h.codes(),
                1200 + seed_off,
                400 + seed_off,
                17,
                Strand::Forward,
                &config,
                engine,
                &mut scratch,
            );
        }
    }

    // Steady state: repeat alignments of the same shape (different seeds,
    // both engines, orientation-cache hit included) — zero allocations.
    let allocs = count_allocs(|| {
        for seed_off in [0usize, 37, 113, 271] {
            let oriented = cache.reverse_complement(1, h_rc.codes());
            assert_eq!(oriented.len(), h.len());
            for engine in [ExtendEngine::Auto, ExtendEngine::Scalar] {
                let aln = align_seed_pair_with(
                    v.codes(),
                    h.codes(),
                    1200 + seed_off,
                    400 + seed_off,
                    17,
                    Strand::Forward,
                    &config,
                    engine,
                    &mut scratch,
                );
                assert!(aln.end_v > aln.beg_v);
            }
        }
    });
    assert_eq!(allocs, 0, "warm batched alignment must not allocate");

    // Sanity: the raw extension entry point is allocation-free too (one warm
    // call first — the full-length extension is wider than the seeded ones).
    for engine in [ExtendEngine::Auto, ExtendEngine::Scalar] {
        let _ = xdrop_extend_auto(
            v.codes(),
            h.codes(),
            ScoringScheme::default(),
            config.xdrop,
            engine,
            &mut scratch,
        );
    }
    let allocs = count_allocs(|| {
        let _ = xdrop_extend_auto(
            v.codes(),
            h.codes(),
            ScoringScheme::default(),
            config.xdrop,
            ExtendEngine::Auto,
            &mut scratch,
        );
    });
    assert_eq!(allocs, 0, "warm xdrop_extend_auto must not allocate");
}

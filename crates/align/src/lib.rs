//! # dibella-align — seed-and-extend pairwise alignment
//!
//! diBELLA 2D follows every candidate overlap (a nonzero of `C = A·Aᵀ`) with a
//! "computationally intensive seed-and-extend pairwise alignment" using SeqAn
//! (Section IV-A/IV-D).  This crate is the SeqAn substitute: a gapped x-drop
//! extension aligner ([`xdrop`]) seeded at a shared k-mer, plus the
//! classification of the resulting alignment into the paper's overlap
//! vocabulary ([`classify`]): contained overlaps, the four bidirected
//! dovetail edge types of Figure 1, and their overhang (suffix) lengths —
//! the two quantities the transitive reduction stores in `R` (Section IV-E).

#![warn(missing_docs)]

pub mod classify;
pub mod scoring;
pub mod xdrop;

pub use classify::{classify_alignment, BidirectedDir, OverlapClass, PairAlignment};
pub use scoring::{AlignmentConfig, ScoringScheme};
pub use xdrop::{align_seed_pair, xdrop_extend, ExtendResult};

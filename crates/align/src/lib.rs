//! # dibella-align — seed-and-extend pairwise alignment
//!
//! diBELLA 2D follows every candidate overlap (a nonzero of `C = A·Aᵀ`) with a
//! "computationally intensive seed-and-extend pairwise alignment" using SeqAn
//! (Section IV-A/IV-D).  This crate is the SeqAn substitute: a gapped x-drop
//! extension aligner ([`xdrop`]) seeded at a shared k-mer, plus the
//! classification of the resulting alignment into the paper's overlap
//! vocabulary ([`classify`]): contained overlaps, the four bidirected
//! dovetail edge types of Figure 1, and their overhang (suffix) lengths —
//! the two quantities the transitive reduction stores in `R` (Section IV-E).
//!
//! Since the batched-engine rework the crate has three extension kernels:
//! the scalar two-phase oracle ([`xdrop`]), a portable SWAR kernel packing
//! four `i16` DP lanes per `u64` ([`simd`]), and on x86-64 an SSE2 kernel
//! packing eight `i16` lanes per `__m128i` ([`sse2`]).  The batched engine
//! ([`batch`]) dispatches per scoring scheme with per-worker reusable
//! scratch; all kernels are bit-identical wherever the `i16` value-range
//! guards hold.

#![warn(missing_docs)]

pub mod batch;
pub mod classify;
pub mod scoring;
pub mod simd;
#[cfg(target_arch = "x86_64")]
pub mod sse2;
pub mod xdrop;

pub use batch::{align_seed_pair_with, xdrop_extend_auto, AlignScratch, ExtendEngine, OrientCache};
pub use classify::{classify_alignment, BidirectedDir, OverlapClass, PairAlignment};
pub use scoring::{AlignmentConfig, ScoringScheme};
pub use simd::{swar_eligible, xdrop_extend_swar, SwarScratch};
#[cfg(target_arch = "x86_64")]
pub use sse2::{xdrop_extend_sse2, Sse2Scratch};
pub use xdrop::{
    align_seed_pair, xdrop_extend, xdrop_extend_baseline, xdrop_extend_with, ExtendCounters,
    ExtendResult, XdropScratch,
};

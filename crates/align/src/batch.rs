//! Batched seed-and-extend engine: per-worker scratch, oriented-read cache,
//! and vector/scalar dispatch.
//!
//! The overlap stage flattens every (candidate pair, seed) into a flat work
//! queue on the work-stealing pool; each worker owns one [`AlignScratch`]
//! that amortises every buffer an extension needs — the scalar DP double
//! buffer, the vector-kernel word buffers and equality tables, the
//! reversed-prefix buffers of the left extension, and the reverse-complement
//! cache for opposite-strand pairs.  After the first few work items warm the
//! buffers, the steady state allocates **nothing** per alignment (pinned by
//! the `alloc_steady_state` integration test of this crate).
//!
//! Dispatch: [`ExtendEngine::Auto`] runs the lane-packed vector kernel
//! whenever [`swar_eligible`] accepts the scoring scheme — the 8-lane SSE2
//! kernel ([`crate::sse2`]) on x86-64, the portable 4-lane u64 SWAR kernel
//! ([`crate::simd`]) everywhere else — else (and under
//! [`ExtendEngine::Scalar`]) the scalar oracle.  All kernels produce
//! bit-identical [`ExtendResult`]s, so engine choice never changes pipeline
//! output.

use crate::classify::PairAlignment;
use crate::scoring::{AlignmentConfig, ScoringScheme};
use crate::simd::swar_eligible;
#[cfg(not(target_arch = "x86_64"))]
use crate::simd::{xdrop_extend_swar, SwarScratch};
#[cfg(target_arch = "x86_64")]
use crate::sse2::{xdrop_extend_sse2, Sse2Scratch};
use crate::xdrop::{xdrop_extend_with, ExtendCounters, ExtendResult, XdropScratch};
use dibella_seq::Strand;

/// Scratch type of the vector kernel the current target dispatches to.
#[cfg(target_arch = "x86_64")]
type VectorScratch = Sse2Scratch;
/// Scratch type of the vector kernel the current target dispatches to.
#[cfg(not(target_arch = "x86_64"))]
type VectorScratch = SwarScratch;

/// One eligible extension through the target's vector kernel.
#[inline]
fn vector_extend(
    a: &[u8],
    b: &[u8],
    scoring: ScoringScheme,
    xdrop: i32,
    scratch: &mut VectorScratch,
    counters: &mut ExtendCounters,
) -> ExtendResult {
    #[cfg(target_arch = "x86_64")]
    return xdrop_extend_sse2(a, b, scoring, xdrop, scratch, counters);
    #[cfg(not(target_arch = "x86_64"))]
    xdrop_extend_swar(a, b, scoring, xdrop, scratch, counters)
}

/// Which extension kernel the batched engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtendEngine {
    /// Vector kernel (SSE2 or SWAR) when the scoring scheme is eligible,
    /// scalar otherwise.
    #[default]
    Auto,
    /// Always the scalar oracle (the reference / bench comparison path).
    Scalar,
}

/// Per-worker reusable state for batched alignment.
#[derive(Debug, Default)]
pub struct AlignScratch {
    xdrop: XdropScratch,
    simd: VectorScratch,
    rev_a: Vec<u8>,
    rev_b: Vec<u8>,
    /// Cell/band/termination counters accumulated over every extension this
    /// scratch ran (engine-independent: all kernels count identically).
    pub counters: ExtendCounters,
    /// Extensions dispatched to the vector kernel (SSE2 on x86-64, SWAR
    /// elsewhere).
    pub simd_calls: u64,
    /// Extensions dispatched to the scalar oracle.
    pub scalar_calls: u64,
}

impl AlignScratch {
    /// A fresh scratch with cold buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One x-drop extension through the engine dispatch, reusing `scratch`.
pub fn xdrop_extend_auto(
    a: &[u8],
    b: &[u8],
    scoring: ScoringScheme,
    xdrop: i32,
    engine: ExtendEngine,
    scratch: &mut AlignScratch,
) -> ExtendResult {
    if engine == ExtendEngine::Auto && swar_eligible(scoring, xdrop) {
        scratch.simd_calls += 1;
        vector_extend(a, b, scoring, xdrop, &mut scratch.simd, &mut scratch.counters)
    } else {
        scratch.scalar_calls += 1;
        xdrop_extend_with(a, b, scoring, xdrop, &mut scratch.xdrop, &mut scratch.counters)
    }
}

/// Batched twin of [`crate::xdrop::align_seed_pair`]: operates on raw 2-bit
/// code slices (no `DnaSeq` clones) and reuses the worker scratch for both
/// extensions and the reversed-prefix buffers.
///
/// `h_oriented` must already be oriented for `strand` (the caller caches the
/// reverse complement per (pair, strand) via [`OrientCache`]).
#[allow(clippy::too_many_arguments)]
pub fn align_seed_pair_with(
    v: &[u8],
    h_oriented: &[u8],
    seed_v: usize,
    seed_h: usize,
    k: usize,
    strand: Strand,
    config: &AlignmentConfig,
    engine: ExtendEngine,
    scratch: &mut AlignScratch,
) -> PairAlignment {
    assert!(seed_v + k <= v.len(), "seed exceeds read v");
    assert!(seed_h + k <= h_oriented.len(), "seed exceeds read h");
    let scoring = config.scoring;

    // Right extension over the suffixes beyond the seed.
    let right = xdrop_extend_auto(
        &v[seed_v + k..],
        &h_oriented[seed_h + k..],
        scoring,
        config.xdrop,
        engine,
        scratch,
    );

    // Left extension over the reversed prefixes before the seed, built into
    // the reusable buffers (cleared, not reallocated).
    let s = &mut *scratch;
    s.rev_a.clear();
    s.rev_a.extend(v[..seed_v].iter().rev().copied());
    s.rev_b.clear();
    s.rev_b.extend(h_oriented[..seed_h].iter().rev().copied());
    let left = if engine == ExtendEngine::Auto && swar_eligible(scoring, config.xdrop) {
        s.simd_calls += 1;
        vector_extend(&s.rev_a, &s.rev_b, scoring, config.xdrop, &mut s.simd, &mut s.counters)
    } else {
        s.scalar_calls += 1;
        xdrop_extend_with(&s.rev_a, &s.rev_b, scoring, config.xdrop, &mut s.xdrop, &mut s.counters)
    };

    let score = left.score + right.score + (k as i32) * scoring.match_score;
    PairAlignment {
        score,
        beg_v: seed_v - left.ext_a,
        end_v: seed_v + k + right.ext_a,
        beg_h: seed_h - left.ext_b,
        end_h: seed_h + k + right.ext_b,
        strand,
    }
}

/// Per-worker cache of the reverse-complemented codes of one read.
///
/// All seeds of a (pair, reverse-strand) work run reuse the same oriented
/// codes; because the flat work queue keeps a pair's seeds adjacent, one
/// cache entry per worker suffices to make the orientation cost per *pair*
/// rather than per *seed* (the pre-batching path recomputed
/// `h.reverse_complement()` for every seed).
#[derive(Debug, Default)]
pub struct OrientCache {
    read: Option<usize>,
    rc: Vec<u8>,
    /// Number of reverse complements actually materialised (cache misses).
    pub rc_computed: u64,
}

impl OrientCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reverse-complemented codes of read `read_id`, computed at most once
    /// per consecutive run of requests for the same read.
    pub fn reverse_complement(&mut self, read_id: usize, codes: &[u8]) -> &[u8] {
        if self.read != Some(read_id) {
            self.rc.clear();
            self.rc
                .extend(codes.iter().rev().map(|&c| dibella_seq::complement_code(c)));
            self.read = Some(read_id);
            self.rc_computed += 1;
        }
        &self.rc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibella_seq::DnaSeq;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn orient_cache_computes_once_per_read_run() {
        let s = DnaSeq::from_codes(vec![0, 1, 2, 3, 0, 1]);
        let mut cache = OrientCache::new();
        let rc1 = cache.reverse_complement(7, s.codes()).to_vec();
        assert_eq!(rc1, s.reverse_complement().codes());
        let _ = cache.reverse_complement(7, s.codes());
        let _ = cache.reverse_complement(7, s.codes());
        assert_eq!(cache.rc_computed, 1, "same read: cache hit");
        let other = DnaSeq::from_codes(vec![2, 2, 1]);
        let _ = cache.reverse_complement(8, other.codes());
        assert_eq!(cache.rc_computed, 2);
    }

    #[test]
    fn engine_dispatch_falls_back_on_ineligible_schemes() {
        let a: Vec<u8> = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let mut scratch = AlignScratch::new();
        // Default scheme: vector-eligible.
        let _ = xdrop_extend_auto(&a, &a, ScoringScheme::default(), 10, ExtendEngine::Auto, &mut scratch);
        assert_eq!((scratch.simd_calls, scratch.scalar_calls), (1, 0));
        // Zero gap penalty: outside the vector exactness box -> scalar.
        let weird = ScoringScheme { match_score: 1, mismatch: -1, gap: 0 };
        let _ = xdrop_extend_auto(&a, &a, weird, 10, ExtendEngine::Auto, &mut scratch);
        assert_eq!((scratch.simd_calls, scratch.scalar_calls), (1, 1));
        // Forced scalar.
        let _ = xdrop_extend_auto(&a, &a, ScoringScheme::default(), 10, ExtendEngine::Scalar, &mut scratch);
        assert_eq!((scratch.simd_calls, scratch.scalar_calls), (1, 2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // PairAlignments are bit-identical between engines, both strands,
        // arbitrary seeds — the end-to-end form of the kernel equivalence.
        #[test]
        fn pair_alignment_engine_equivalence(
            seed in 0u64..1_000_000,
            len in 30usize..250,
            reverse in any::<bool>(),
            xdrop in 1i32..80,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let genome: Vec<u8> = (0..len + 60).map(|_| rng.gen_range(0..4u8)).collect();
            let v = DnaSeq::from_codes(genome[..len].to_vec());
            let h_fwd = DnaSeq::from_codes(genome[30..len + 30].to_vec());
            let (h_oriented, strand) = if reverse {
                // Stored reverse-complemented; orient back for alignment.
                (h_fwd.clone(), Strand::Reverse)
            } else {
                (h_fwd.clone(), Strand::Forward)
            };
            // Seed at a shared position: v[40..52) == h_fwd[10..22).
            let k = 12usize;
            let seed_v = 40usize.min(len - k);
            let seed_h = seed_v.saturating_sub(30);
            let mut config = AlignmentConfig::for_tests();
            config.xdrop = xdrop;
            let mut scratch = AlignScratch::new();
            let auto = align_seed_pair_with(
                v.codes(), h_oriented.codes(), seed_v, seed_h, k, strand,
                &config, ExtendEngine::Auto, &mut scratch,
            );
            let scal = align_seed_pair_with(
                v.codes(), h_oriented.codes(), seed_v, seed_h, k, strand,
                &config, ExtendEngine::Scalar, &mut scratch,
            );
            prop_assert_eq!(auto, scal);
            // And the legacy DnaSeq entry point agrees.
            let legacy = crate::xdrop::align_seed_pair(
                &v, &h_oriented, seed_v, seed_h, k, strand, &config,
            );
            prop_assert_eq!(auto, legacy);
        }
    }
}

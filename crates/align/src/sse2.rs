//! SSE2 x-drop extension kernel: eight DP cells per `__m128i`.
//!
//! The hardware twin of the portable SWAR kernel in [`crate::simd`]: the same
//! two-phase x-drop semantics and the same `i16` value-range argument
//! ([`swar_eligible`]), but lanes live in 128-bit vector registers where every
//! lane-parallel add/max/compare is **one instruction** instead of the five to
//! eleven scalar ops the `u64` emulation pays.  SSE2 is part of the x86-64
//! baseline ISA, so this path needs no runtime feature detection — the batched
//! engine ([`crate::batch`]) dispatches here on every x86-64 build and falls
//! back to the SWAR kernel elsewhere.
//!
//! Lane `t` of vector `w` holds column `8·w + t`; the row buffers are indexed
//! by absolute vector, so the adaptive band just slides over them (the same
//! NEG-fence invariant as the SWAR kernel).  `_mm_add_epi16` is wrapping, and
//! the eligibility box keeps every intermediate inside `i16`, so wrapping adds
//! are exact and the results are bit-identical to the scalar oracle — pinned
//! by the proptests at the bottom of this file.

use std::arch::x86_64::*;

use crate::scoring::ScoringScheme;
use crate::simd::{swar_eligible, NEG16};
use crate::xdrop::{ExtendCounters, ExtendResult};

const LANES: usize = 8;

/// Rebase the relative scores into the `i32` base once the in-band best
/// exceeds this (mirrors `crate::simd`).
const REBASE_AT: i32 = 4096;

#[inline(always)]
fn splat(x: i16) -> __m128i {
    unsafe { _mm_set1_epi16(x) }
}

#[inline(always)]
fn add16(x: __m128i, y: __m128i) -> __m128i {
    unsafe { _mm_add_epi16(x, y) }
}

#[inline(always)]
fn sub16(x: __m128i, y: __m128i) -> __m128i {
    unsafe { _mm_sub_epi16(x, y) }
}

#[inline(always)]
fn max16(x: __m128i, y: __m128i) -> __m128i {
    unsafe { _mm_max_epi16(x, y) }
}

/// Per-lane select: `mask` lanes all-ones take `y`, zero lanes take `x`.
#[inline(always)]
fn select16(mask: __m128i, x: __m128i, y: __m128i) -> __m128i {
    unsafe { _mm_or_si128(_mm_andnot_si128(mask, x), _mm_and_si128(mask, y)) }
}

#[inline(always)]
fn from_lanes(l: [i16; LANES]) -> __m128i {
    unsafe { _mm_loadu_si128(l.as_ptr() as *const __m128i) }
}

/// Byte mask (two bits per lane) of lanes equal to `y`.
#[inline(always)]
fn eq_bytes(x: __m128i, y: __m128i) -> u32 {
    unsafe { _mm_movemask_epi8(_mm_cmpeq_epi16(x, y)) as u32 }
}

/// Reusable vector buffers for the SSE2 kernel: the two row buffers plus the
/// lazily built per-base equality tables of `b` (`eq[c * stride + w]` has
/// all-ones in lane `t` iff `b[8w + t - 1] == c`).
#[derive(Debug, Default)]
pub struct Sse2Scratch {
    prev: Vec<__m128i>,
    cur: Vec<__m128i>,
    eq: Vec<__m128i>,
    eq_stride: usize,
    eq_built: usize,
}

impl Sse2Scratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make sure equality-table vectors `0..vectors` are built for this call.
    #[inline]
    fn build_eq_to(&mut self, b: &[u8], vectors: usize) {
        while self.eq_built < vectors {
            let w = self.eq_built;
            let mut packed = [[0i16; LANES]; 4];
            // `t` picks the lane inside a data-dependent row of `packed`;
            // no iterator form expresses that more clearly.
            #[allow(clippy::needless_range_loop)]
            for t in 0..LANES {
                let j = w * LANES + t;
                // Column j consumes b[j - 1]; j == 0 and j > b.len() lanes
                // stay zero in all four tables (scored as mismatch, and those
                // cells are dead/outside the window anyway).
                if j >= 1 && j <= b.len() {
                    packed[b[j - 1] as usize][t] = -1;
                }
            }
            for (c, lanes) in packed.iter().enumerate() {
                self.eq[c * self.eq_stride + w] = from_lanes(*lanes);
            }
            self.eq_built += 1;
        }
    }
}

/// Lane keep-masks by boundary offset: `KEEP_LO[o]` keeps lanes `>= o`,
/// `KEEP_HI[o]` keeps lanes `<= o`.
const fn keep_tables() -> ([[i16; LANES]; LANES], [[i16; LANES]; LANES]) {
    let mut lo = [[0i16; LANES]; LANES];
    let mut hi = [[0i16; LANES]; LANES];
    let mut o = 0;
    while o < LANES {
        let mut t = 0;
        while t < LANES {
            lo[o][t] = if t >= o { -1 } else { 0 };
            hi[o][t] = if t <= o { -1 } else { 0 };
            t += 1;
        }
        o += 1;
    }
    (lo, hi)
}
static KEEP_LO: [[i16; LANES]; LANES] = keep_tables().0;
static KEEP_HI: [[i16; LANES]; LANES] = keep_tables().1;

/// SSE2 twin of [`crate::xdrop::xdrop_extend_with`]: same two-phase x-drop
/// semantics, bit-identical [`ExtendResult`], eight cells per vector.
///
/// The caller must check [`swar_eligible`] first (the `i16` exactness box is
/// the same for both vector kernels); the batched engine does this and falls
/// back to the scalar oracle.
pub fn xdrop_extend_sse2(
    a: &[u8],
    b: &[u8],
    scoring: ScoringScheme,
    xdrop: i32,
    scratch: &mut Sse2Scratch,
    counters: &mut ExtendCounters,
) -> ExtendResult {
    debug_assert!(swar_eligible(scoring, xdrop));
    counters.calls += 1;
    let m = b.len();
    // Vectors covering columns 0..=m, plus one guard vector at the right so
    // the row after a window ending at column m can still read a NEG vector.
    let nv = m / LANES + 2;
    let negv = splat(NEG16);
    if scratch.prev.len() < nv {
        scratch.prev.resize(nv, negv);
        scratch.cur.resize(nv, negv);
    }
    if scratch.eq_stride < nv {
        scratch.eq_stride = nv;
        scratch.eq.clear();
        scratch.eq.resize(4 * nv, unsafe { _mm_setzero_si128() });
    }
    scratch.eq_built = 0;

    let gap1 = splat(scoring.gap as i16);
    let gap2 = splat((2 * scoring.gap) as i16);
    let gap4 = splat((4 * scoring.gap) as i16);
    // Cross-vector scan carry ramp: lane t adds (t + 1) · gap to the carried
    // run value from the previous vector.
    let ramp = {
        let mut l = [0i16; LANES];
        for (t, v) in l.iter_mut().enumerate() {
            *v = ((t as i32 + 1) * scoring.gap) as i16;
        }
        from_lanes(l)
    };
    let mism16 = splat(scoring.mismatch as i16);
    // sub = (match & eq) | (mism & !eq) as two ops per vector.
    let subdiff = splat((scoring.match_score ^ scoring.mismatch) as i16);

    // Best score = base + best_rel; lanes store scores relative to `base`.
    let mut base = 0i64;
    let mut best_rel = 0i32;
    let (mut best_i, mut best_j) = (0usize, 0usize);

    // Row 0: leading gaps in `a`; fills columns 0..=r0_hi (j·gap ≥ -xdrop).
    let r0_width = ((xdrop / -scoring.gap) as usize + 1).min(m + 1);
    let row0_we = (r0_width - 1) / LANES;
    for w in 0..=row0_we {
        let mut lanes = [NEG16; LANES];
        for (t, v) in lanes.iter_mut().enumerate() {
            let j = w * LANES + t;
            if j < r0_width {
                *v = (j as i32 * scoring.gap) as i16;
            }
        }
        scratch.prev[w] = from_lanes(lanes);
    }
    scratch.prev[row0_we + 1] = negv;
    counters.cells += r0_width as u64;
    counters.band_peak = counters.band_peak.max(r0_width as u64);

    // Live window [lo, hi] (absolute columns) of the previous row.
    let mut lo = 0usize;
    let mut hi = r0_width - 1;

    for i in 1..=a.len() {
        let wlo = lo;
        let whi = (hi + 1).min(m);
        let ws = wlo / LANES;
        let we = whi / LANES;
        // best_rel ≤ REBASE_AT and xdrop ≤ 3000, so this fits an i16 lane.
        let thr = splat((best_rel - xdrop) as i16);
        let ai = a[i - 1] as usize;
        scratch.build_eq_to(b, we + 1);
        let eq_row = &scratch.eq[ai * scratch.eq_stride..(ai + 1) * scratch.eq_stride];

        // Keep masks for the boundary vectors: lanes outside [wlo, whi] must
        // stay dead (a left-gap run can spill past the window's right edge).
        let keep_lo = from_lanes(KEEP_LO[wlo - ws * LANES]);
        let keep_hi = from_lanes(KEEP_HI[whi - we * LANES]);

        // One fused pass: diag/up candidates, the left-gap prefix scan,
        // thresholding and boundary masks, with the row maximum and the live
        // vector extent folded in.  `carry` holds the pre-threshold run value
        // of the last lane of the previous vector.
        let mut carry: i16 = NEG16;
        let mut rowmax = negv;
        let mut first_w = usize::MAX;
        let mut last_w = ws;
        let mut pm1 = if ws == 0 { negv } else { scratch.prev[ws - 1] };
        // The fused pass walks prev/cur/eq_row in lockstep and needs `w` for
        // the boundary compares; an iterator zip would obscure, not help.
        #[allow(clippy::needless_range_loop)]
        for w in ws..=we {
            let p = scratch.prev[w];
            // Column 8w+t's diagonal neighbour is column 8w+t-1 of the
            // previous row: shift the band left by one lane across vectors.
            let diag_src =
                unsafe { _mm_or_si128(_mm_slli_si128::<2>(p), _mm_srli_si128::<14>(pm1)) };
            pm1 = p;
            let sub = unsafe { _mm_xor_si128(mism16, _mm_and_si128(subdiff, eq_row[w])) };
            let diag = add16(diag_src, sub);
            let up = add16(p, gap1);
            let tmp = max16(diag, up);

            // Max-plus prefix scan for run[j] = max(tmp[j], run[j-1] + gap):
            // three in-vector log-steps (shifting NEG16 into the vacated
            // lanes), then the cross-vector carry via the ramp.
            let mut v = tmp;
            let s1 = unsafe { _mm_or_si128(_mm_slli_si128::<2>(v), _mm_srli_si128::<14>(negv)) };
            v = max16(v, add16(s1, gap1));
            let s2 = unsafe { _mm_or_si128(_mm_slli_si128::<4>(v), _mm_srli_si128::<12>(negv)) };
            v = max16(v, add16(s2, gap2));
            let s4 = unsafe { _mm_or_si128(_mm_slli_si128::<8>(v), _mm_srli_si128::<8>(negv)) };
            v = max16(v, add16(s4, gap4));
            v = max16(v, add16(splat(carry), ramp));
            carry = unsafe { _mm_extract_epi16::<7>(v) as u16 as i16 };

            // Two-phase x-drop test against the previous rows' best.
            let dead = unsafe { _mm_cmplt_epi16(v, thr) };
            let mut word = select16(dead, v, negv);
            if w == ws {
                word = select16(keep_lo, negv, word);
            }
            if w == we {
                word = select16(keep_hi, negv, word);
            }
            scratch.cur[w] = word;
            rowmax = max16(rowmax, word);
            // Dead lanes hold the exact sentinel, so a vector with any live
            // lane has a hole in its NEG16 equality byte-mask.
            if eq_bytes(word, negv) != 0xFFFF {
                if first_w == usize::MAX {
                    first_w = w;
                }
                last_w = w;
            }
        }
        // NEG fence vectors the next row's reads rely on.
        scratch.cur[we + 1] = negv;
        if ws > 0 {
            scratch.cur[ws - 1] = negv;
        }
        counters.cells += (whi - wlo + 1) as u64;
        counters.band_peak = counters.band_peak.max((whi - wlo + 1) as u64);

        if first_w == usize::MAX {
            counters.terminations += 1;
            return ExtendResult {
                score: (base + i64::from(best_rel)) as i32,
                ext_a: best_i,
                ext_b: best_j,
            };
        }

        // Fold the finished row into the best (first attainment in column
        // order), only when some lane strictly improves on it.  best_rel ≥ 0
        // always, so an improving row maximum is positive and the zero lanes
        // shifted into the horizontal fold cannot win.
        let improved =
            unsafe { _mm_movemask_epi8(_mm_cmpgt_epi16(rowmax, splat(best_rel as i16))) } != 0;
        if improved {
            let fold = max16(rowmax, unsafe { _mm_srli_si128::<8>(rowmax) });
            let fold = max16(fold, unsafe { _mm_srli_si128::<4>(fold) });
            let fold = max16(fold, unsafe { _mm_srli_si128::<2>(fold) });
            let row_best = unsafe { _mm_extract_epi16::<0>(fold) as u16 as i16 as i32 };
            let bestv = splat(row_best as i16);
            for w in first_w..=last_w {
                let hits = eq_bytes(scratch.cur[w], bestv);
                if hits != 0 {
                    best_rel = row_best;
                    best_i = i;
                    best_j = w * LANES + hits.trailing_zeros() as usize / 2;
                    break;
                }
            }
        }

        // Trim: first/last live columns (lane != NEG16 ⇔ live — dead cells
        // hold the exact sentinel), confined to the tracked boundary vectors.
        let flive = !eq_bytes(scratch.cur[first_w], negv) & 0xFFFF;
        let llive = !eq_bytes(scratch.cur[last_w], negv) & 0xFFFF;
        lo = first_w * LANES + flive.trailing_zeros() as usize / 2;
        hi = last_w * LANES + (31 - llive.leading_zeros()) as usize / 2;
        std::mem::swap(&mut scratch.prev, &mut scratch.cur);

        // Rebase before the relative scores can outgrow i16.
        if best_rel > REBASE_AT {
            let delta = best_rel;
            let d16 = splat(delta as i16);
            for w in lo / LANES..=hi / LANES {
                let v = scratch.prev[w];
                let is_dead = unsafe { _mm_cmpeq_epi16(v, negv) };
                // Dead lanes must stay exactly at the sentinel.
                scratch.prev[w] = select16(is_dead, sub16(v, d16), negv);
            }
            base += i64::from(delta);
            best_rel = 0;
        }
    }
    ExtendResult {
        score: (base + i64::from(best_rel)) as i32,
        ext_a: best_i,
        ext_b: best_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xdrop::{xdrop_extend_with, XdropScratch};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sse2(a: &[u8], b: &[u8], sc: ScoringScheme, xdrop: i32) -> (ExtendResult, ExtendCounters) {
        let mut scratch = Sse2Scratch::new();
        let mut c = ExtendCounters::default();
        let r = xdrop_extend_sse2(a, b, sc, xdrop, &mut scratch, &mut c);
        (r, c)
    }

    fn scalar(a: &[u8], b: &[u8], sc: ScoringScheme, xdrop: i32) -> (ExtendResult, ExtendCounters) {
        let mut scratch = XdropScratch::new();
        let mut c = ExtendCounters::default();
        let r = xdrop_extend_with(a, b, sc, xdrop, &mut scratch, &mut c);
        (r, c)
    }

    #[test]
    fn identical_sequences_match_scalar() {
        let a: Vec<u8> = (0..100).map(|i| (i % 4) as u8).collect();
        let sc = ScoringScheme::default();
        assert_eq!(sse2(&a, &a, sc, 10).0, scalar(&a, &a, sc, 10).0);
        assert_eq!(sse2(&a, &a, sc, 10).0.score, 100);
    }

    #[test]
    fn counters_match_scalar() {
        let mut rng = SmallRng::seed_from_u64(11);
        let a: Vec<u8> = (0..300).map(|_| rng.gen_range(0..4u8)).collect();
        let mut b = a.clone();
        for idx in (0..b.len()).step_by(17) {
            b[idx] = (b[idx] + 1) % 4;
        }
        let sc = ScoringScheme::default();
        let (rs, cs) = sse2(&a, &b, sc, 30);
        let (rr, cr) = scalar(&a, &b, sc, 30);
        assert_eq!(rs, rr);
        assert_eq!(cs, cr, "both engines walk the same adaptive band");
    }

    #[test]
    fn long_perfect_match_crosses_the_i16_rebase_boundary() {
        let a: Vec<u8> = (0..20_000).map(|i| ((i * 7 + 3) % 4) as u8).collect();
        let sc = ScoringScheme { match_score: 3, mismatch: -2, gap: -2 };
        let r = sse2(&a, &a, sc, 40).0;
        assert_eq!(r, scalar(&a, &a, sc, 40).0);
        assert_eq!(r.score, 60_000);
        assert_eq!(r.ext_a, 20_000);
    }

    #[test]
    fn near_saturation_with_noise_matches_scalar() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a: Vec<u8> = (0..8000).map(|_| rng.gen_range(0..4u8)).collect();
        let mut b = a.clone();
        for idx in (0..b.len()).step_by(40) {
            b[idx] = (b[idx] + rng.gen_range(1..4u8)) % 4;
        }
        b.remove(1000);
        b.insert(3000, 2);
        let sc = ScoringScheme { match_score: 5, mismatch: -4, gap: -3 };
        assert_eq!(sse2(&a, &b, sc, 200).0, scalar(&a, &b, sc, 200).0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        // The tentpole invariant, hardware edition: the SSE2 kernel and the
        // scalar oracle are bit-identical over random sequences, scoring
        // schemes and xdrops — results AND counters.
        #[test]
        fn sse2_matches_scalar_oracle(
            seed in 0u64..1_000_000,
            len_a in 0usize..400,
            len_b in 0usize..400,
            error_pct in 0u32..50,
            match_score in 1i32..8,
            mismatch in -8i32..=0,
            gap in -8i32..=-1,
            xdrop in 0i32..120,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a: Vec<u8> = (0..len_a).map(|_| rng.gen_range(0..4u8)).collect();
            let mut b: Vec<u8> = a.iter().take(len_b).copied().collect();
            while b.len() < len_b {
                b.push(rng.gen_range(0..4u8));
            }
            for v in b.iter_mut() {
                if rng.gen_range(0..100u32) < error_pct {
                    *v = rng.gen_range(0..4u8);
                }
            }
            let sc = ScoringScheme { match_score, mismatch, gap };
            prop_assert!(swar_eligible(sc, xdrop));
            let (rs, cs) = sse2(&a, &b, sc, xdrop);
            let (rr, cr) = scalar(&a, &b, sc, xdrop);
            prop_assert_eq!(rs, rr);
            prop_assert_eq!(cs, cr);
        }

        // And against the portable SWAR kernel (three-way agreement).
        #[test]
        fn sse2_matches_swar(seed in 0u64..100_000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut scratch = Sse2Scratch::new();
            let mut swar_scratch = crate::simd::SwarScratch::new();
            let sc = ScoringScheme::default();
            for _ in 0..6 {
                let la = rng.gen_range(0..250);
                let lb = rng.gen_range(0..250);
                let a: Vec<u8> = (0..la).map(|_| rng.gen_range(0..4u8)).collect();
                let mut b: Vec<u8> = a.iter().take(lb).copied().collect();
                while b.len() < lb { b.push(rng.gen_range(0..4u8)); }
                let xdrop = rng.gen_range(0..60);
                let mut c1 = ExtendCounters::default();
                let mut c2 = ExtendCounters::default();
                let rs = xdrop_extend_sse2(&a, &b, sc, xdrop, &mut scratch, &mut c1);
                let rw = crate::simd::xdrop_extend_swar(&a, &b, sc, xdrop, &mut swar_scratch, &mut c2);
                prop_assert_eq!(rs, rw);
                prop_assert_eq!(c1, c2);
            }
        }
    }
}

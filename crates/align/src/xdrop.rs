//! Gapped x-drop seed extension (the SeqAn `extendSeed` substitute).
//!
//! Given a shared k-mer seed between two reads, the aligner extends the seed
//! to the left and to the right with a banded dynamic program that abandons
//! cells whose score falls more than `xdrop` below the best score seen — the
//! classic BLAST-style gapped x-drop extension.  The band adapts to the data:
//! with the default linear-gap scoring the live band stays within roughly
//! `2·xdrop` columns of the optimal path, so extension over a full long-read
//! overlap costs `O(overlap · xdrop)`.
//!
//! ## Two-phase thresholding
//!
//! [`xdrop_extend`] evaluates the x-drop test against the best score of the
//! *completed* rows: every cell of row `i` is thresholded against
//! `best(rows < i) − xdrop`, and the best score is folded in once the row is
//! finished.  This makes the per-row computation independent of evaluation
//! order, which is what lets the SWAR kernel ([`crate::simd`]) process four
//! cells per machine word while staying **bit-identical** to this scalar
//! oracle.  (The earlier implementation updated `best` mid-row, so cells to
//! the right of a new best were pruned slightly more aggressively; it is kept
//! verbatim as [`xdrop_extend_baseline`] — the benchmark baseline.  The
//! two-phase rule prunes a superset of the paths the row-sequential rule
//! keeps, so it can only find equal-or-better extensions.)
//!
//! The double-buffered scratch ([`XdropScratch`]) makes the steady state
//! allocation-free: the two row buffers are reused across every extension a
//! worker performs.

use crate::classify::PairAlignment;
use crate::scoring::{AlignmentConfig, ScoringScheme};
use dibella_seq::{DnaSeq, Strand};

/// Result of extending in one direction: the best score and how far the
/// extension reached into each sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtendResult {
    /// Best score reached (0 means no profitable extension).
    pub score: i32,
    /// Number of bases of the first sequence consumed at the best score.
    pub ext_a: usize,
    /// Number of bases of the second sequence consumed at the best score.
    pub ext_b: usize,
}

/// Cell-level counters of the extension kernels, accumulated across calls.
///
/// Both the scalar oracle and the SWAR kernel count identically (they visit
/// the same adaptive band), so the totals are engine- and thread-count
/// independent; the batched aligner folds them into `CommStats` extras
/// (`aligned_cells`, `band_width_peak`, `xdrop_terminations`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtendCounters {
    /// DP cells evaluated (sum of live-band widths over all rows).
    pub cells: u64,
    /// Widest live band observed in any single row.
    pub band_peak: u64,
    /// Extensions stopped by the x-drop test before consuming all of `a`.
    pub terminations: u64,
    /// Extension calls performed.
    pub calls: u64,
}

impl ExtendCounters {
    /// Fold another counter set into this one (`band_peak` takes the max).
    pub fn merge(&mut self, other: &ExtendCounters) {
        self.cells += other.cells;
        self.band_peak = self.band_peak.max(other.band_peak);
        self.terminations += other.terminations;
        self.calls += other.calls;
    }
}

/// Reusable double buffer for the scalar x-drop row DP.
///
/// One scratch per worker keeps the steady state allocation-free: the two row
/// buffers grow to the widest band ever seen and are then reused by every
/// subsequent call.
#[derive(Debug, Default)]
pub struct XdropScratch {
    prev: Vec<i32>,
    cur: Vec<i32>,
}

impl XdropScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Sentinel for a pruned (dead) cell.
const NEG: i32 = i32::MIN / 4;

/// Extend an alignment from position 0 of `a` and `b` simultaneously, with a
/// gapped x-drop dynamic program.  Returns the best-scoring end points.
///
/// Allocates a fresh scratch per call; batched callers use
/// [`xdrop_extend_with`] to reuse buffers across calls.
pub fn xdrop_extend(a: &[u8], b: &[u8], scoring: ScoringScheme, xdrop: i32) -> ExtendResult {
    let mut scratch = XdropScratch::new();
    let mut counters = ExtendCounters::default();
    xdrop_extend_with(a, b, scoring, xdrop, &mut scratch, &mut counters)
}

/// [`xdrop_extend`] with caller-provided scratch and counters — the
/// allocation-free form the batched aligner uses.  This is the **reference
/// oracle** the SWAR kernel is proptested against.
pub fn xdrop_extend_with(
    a: &[u8],
    b: &[u8],
    scoring: ScoringScheme,
    xdrop: i32,
    scratch: &mut XdropScratch,
    counters: &mut ExtendCounters,
) -> ExtendResult {
    counters.calls += 1;
    let m = b.len();
    let mut best = 0i32;
    let (mut best_i, mut best_j) = (0usize, 0usize);

    // Row 0: leading gaps in `a`.  `best` stays 0 throughout the row (all
    // scores are <= 0), so the threshold is simply -xdrop.
    scratch.prev.clear();
    {
        let mut j = 0usize;
        while j <= m {
            let sc = j as i32 * scoring.gap;
            if sc < -xdrop {
                break;
            }
            scratch.prev.push(sc);
            j += 1;
        }
    }
    counters.cells += scratch.prev.len() as u64;
    counters.band_peak = counters.band_peak.max(scratch.prev.len() as u64);
    if scratch.prev.is_empty() {
        return ExtendResult { score: 0, ext_a: 0, ext_b: 0 };
    }

    // The live column window is [lo, hi]; `prev[0]` holds column `lo`.
    let mut lo = 0usize;
    let mut hi = scratch.prev.len() - 1;

    for i in 1..=a.len() {
        let prev_lo = lo;
        let prev_hi = hi;
        // The live window can only extend one column right of the previous row.
        let new_lo = prev_lo;
        let new_hi = (prev_hi + 1).min(m);
        let thr = best - xdrop;
        let ai = a[i - 1];

        scratch.cur.clear();
        for j in new_lo..=new_hi {
            let mut sc = NEG;
            if j > prev_lo {
                // j - 1 <= prev_hi holds because j <= prev_hi + 1.
                let diag = scratch.prev[j - 1 - prev_lo];
                if diag > NEG {
                    let sub = if ai == b[j - 1] { scoring.match_score } else { scoring.mismatch };
                    sc = sc.max(diag + sub);
                }
            }
            if j <= prev_hi {
                let up = scratch.prev[j - prev_lo];
                if up > NEG {
                    sc = sc.max(up + scoring.gap);
                }
            }
            if j > new_lo {
                let left = *scratch.cur.last().unwrap();
                if left > NEG {
                    sc = sc.max(left + scoring.gap);
                }
            }
            // Two-phase x-drop test: threshold against the best of the
            // completed rows only.
            if sc < thr {
                sc = NEG;
            }
            scratch.cur.push(sc);
        }
        counters.cells += scratch.cur.len() as u64;
        counters.band_peak = counters.band_peak.max(scratch.cur.len() as u64);

        // Fold the finished row into `best` (first attainment wins ties).
        for (idx, &v) in scratch.cur.iter().enumerate() {
            if v > best {
                best = v;
                best_i = i;
                best_j = new_lo + idx;
            }
        }

        // Trim dead cells from both ends of the window; stop if nothing lives.
        match scratch.cur.iter().position(|&v| v > NEG) {
            None => {
                counters.terminations += 1;
                return ExtendResult { score: best, ext_a: best_i, ext_b: best_j };
            }
            Some(first) => {
                let last = scratch.cur.iter().rposition(|&v| v > NEG).unwrap();
                lo = new_lo + first;
                hi = new_lo + last;
                // Keep only the live range in `prev` for the next row; the
                // swap reuses the buffers without reallocating.
                std::mem::swap(&mut scratch.prev, &mut scratch.cur);
                if first > 0 || last + 1 < scratch.prev.len() {
                    scratch.prev.copy_within(first..=last, 0);
                    scratch.prev.truncate(last - first + 1);
                }
            }
        }
    }
    ExtendResult { score: best, ext_a: best_i, ext_b: best_j }
}

/// The pre-batching row-sequential x-drop extension, preserved verbatim as
/// the benchmark baseline (`BENCH_align.json` measures the batched engine
/// against it, the way `local_spgemm_baseline` anchors the SpGEMM
/// trajectory).  It allocates two fresh row `Vec`s per DP row and updates
/// `best` mid-row, so cells right of a new best are pruned against the newer
/// threshold; see the module docs for why [`xdrop_extend`] reformulated that.
pub fn xdrop_extend_baseline(
    a: &[u8],
    b: &[u8],
    scoring: ScoringScheme,
    xdrop: i32,
) -> ExtendResult {
    let neg = i32::MIN / 4;
    let m = b.len();
    let mut best = 0i32;
    let (mut best_i, mut best_j) = (0usize, 0usize);

    // The DP row for the current i, stored over the live column window
    // [lo, lo + vals.len()).
    let mut lo = 0usize;
    let mut vals: Vec<i32> = Vec::new();

    // Row 0: leading gaps in `a`.
    {
        let mut j = 0usize;
        while j <= m {
            let sc = j as i32 * scoring.gap;
            if sc < best - xdrop {
                break;
            }
            vals.push(sc);
            j += 1;
        }
    }
    if vals.is_empty() {
        return ExtendResult { score: 0, ext_a: 0, ext_b: 0 };
    }

    for i in 1..=a.len() {
        let prev_lo = lo;
        let prev = std::mem::take(&mut vals);
        let prev_hi = prev_lo + prev.len() - 1;
        let get_prev = |j: usize| -> i32 {
            if (prev_lo..=prev_hi).contains(&j) {
                prev[j - prev_lo]
            } else {
                neg
            }
        };

        // The live window can only extend one column right of the previous row.
        let new_lo = prev_lo;
        let new_hi = (prev_hi + 1).min(m);
        let mut new_vals: Vec<i32> = Vec::with_capacity(new_hi - new_lo + 1);
        for j in new_lo..=new_hi {
            let mut sc = neg;
            if j >= 1 {
                let diag = get_prev(j - 1);
                if diag > neg {
                    let sub = if a[i - 1] == b[j - 1] {
                        scoring.match_score
                    } else {
                        scoring.mismatch
                    };
                    sc = sc.max(diag + sub);
                }
            }
            let up = get_prev(j);
            if up > neg {
                sc = sc.max(up + scoring.gap);
            }
            if j > new_lo {
                let left = *new_vals.last().unwrap();
                if left > neg {
                    sc = sc.max(left + scoring.gap);
                }
            }
            if sc < best - xdrop {
                sc = neg;
            } else if sc > best {
                best = sc;
                best_i = i;
                best_j = j;
            }
            new_vals.push(sc);
        }

        // Trim dead cells from both ends of the window; stop if nothing is live.
        match new_vals.iter().position(|&v| v > neg) {
            None => return ExtendResult { score: best, ext_a: best_i, ext_b: best_j },
            Some(first) => {
                let last = new_vals.iter().rposition(|&v| v > neg).unwrap();
                lo = new_lo + first;
                vals = new_vals[first..=last].to_vec();
            }
        }
    }
    ExtendResult { score: best, ext_a: best_i, ext_b: best_j }
}

/// Align read `v` against read `h` starting from a shared-k-mer seed.
///
/// `seed_v` and `seed_h` are the k-mer start positions on `v` and on the
/// *oriented* `h` (reverse-complemented when `strand == Strand::Reverse`);
/// `k` is the seed length.  The seed region is scored as `k` matches and the
/// alignment is extended with [`xdrop_extend`] on both sides.
///
/// Allocates per call; the batched pipeline path uses
/// [`crate::batch::align_seed_pair_with`] with per-worker scratch instead.
pub fn align_seed_pair(
    v: &DnaSeq,
    h_oriented: &DnaSeq,
    seed_v: usize,
    seed_h: usize,
    k: usize,
    strand: Strand,
    config: &AlignmentConfig,
) -> PairAlignment {
    let mut scratch = crate::batch::AlignScratch::default();
    crate::batch::align_seed_pair_with(
        v.codes(),
        h_oriented.codes(),
        seed_v,
        seed_h,
        k,
        strand,
        config,
        crate::batch::ExtendEngine::Auto,
        &mut scratch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    fn default_scoring() -> ScoringScheme {
        ScoringScheme::default()
    }

    #[test]
    fn identical_sequences_extend_fully() {
        let a = seq("ACGTACGTACGTACGT");
        let r = xdrop_extend(a.codes(), a.codes(), default_scoring(), 10);
        assert_eq!(r.score, 16);
        assert_eq!(r.ext_a, 16);
        assert_eq!(r.ext_b, 16);
    }

    #[test]
    fn empty_inputs_yield_zero_extension() {
        let a = seq("ACGT");
        let empty: [u8; 0] = [];
        let r = xdrop_extend(a.codes(), &empty, default_scoring(), 10);
        assert_eq!(r, ExtendResult { score: 0, ext_a: 0, ext_b: 0 });
        let r2 = xdrop_extend(&empty, &empty, default_scoring(), 10);
        assert_eq!(r2.score, 0);
    }

    #[test]
    fn extension_stops_at_divergence() {
        // 10 matching bases then complete divergence (A vs T repeated).
        let a = seq("ACGTACGTACAAAAAAAAAAAAAAAAAAAA");
        let b = seq("ACGTACGTACTTTTTTTTTTTTTTTTTTTT");
        let r = xdrop_extend(a.codes(), b.codes(), default_scoring(), 5);
        assert_eq!(r.score, 10);
        assert_eq!(r.ext_a, 10);
        assert_eq!(r.ext_b, 10);
    }

    #[test]
    fn single_mismatch_is_absorbed() {
        let a = seq("ACGTACGTACGTACGTACGT");
        let mut codes = a.codes().to_vec();
        codes[10] = (codes[10] + 1) % 4;
        let b = DnaSeq::from_codes(codes);
        let r = xdrop_extend(a.codes(), b.codes(), default_scoring(), 20);
        assert_eq!(r.ext_a, 20);
        assert_eq!(r.ext_b, 20);
        assert_eq!(r.score, 19 - 1);
    }

    #[test]
    fn indel_is_absorbed_with_gap_penalty() {
        // b has one extra base inserted in the middle.
        let a = seq("ACGTACGTACGTACGTACGT");
        let b = seq("ACGTACGTACAGTACGTACGT");
        let r = xdrop_extend(a.codes(), b.codes(), default_scoring(), 20);
        assert_eq!(r.ext_a, 20);
        assert_eq!(r.ext_b, 21);
        assert_eq!(r.score, 20 - 1);
    }

    #[test]
    fn xdrop_limits_how_far_a_bad_region_is_crossed() {
        // 5 matches, then 10 mismatches, then 30 matches.  With xdrop = 5 the
        // extension must stop at the divergence; with a large xdrop it crosses
        // the bad region and reaps the matches on the far side.
        let good = "ACGTA";
        let bad_a = "A".repeat(10);
        let bad_b = "C".repeat(10);
        let tail = "GTACGTACGTACGTACGTACGTACGTACGT";
        let a = seq(&format!("{good}{bad_a}{tail}"));
        let b = seq(&format!("{good}{bad_b}{tail}"));
        let tight = xdrop_extend(a.codes(), b.codes(), default_scoring(), 5);
        assert_eq!(tight.score, 5);
        assert_eq!(tight.ext_a, 5);
        let loose = xdrop_extend(a.codes(), b.codes(), default_scoring(), 100);
        assert_eq!(loose.score, 5 - 10 + 30);
        assert_eq!(loose.ext_a, 45);
    }

    #[test]
    fn baseline_agrees_on_the_classic_cases() {
        // The preserved row-sequential baseline and the two-phase oracle agree
        // on well-conditioned inputs (they can differ only when a mid-row best
        // update would have pruned a cell that later recovers by ~xdrop).
        let cases = [
            ("ACGTACGTACGTACGT", "ACGTACGTACGTACGT", 10),
            ("ACGTACGTACAAAAAAAAAAAAAAAAAAAA", "ACGTACGTACTTTTTTTTTTTTTTTTTTTT", 5),
            ("ACGTACGTACGTACGTACGT", "ACGTACGTACAGTACGTACGT", 20),
        ];
        for (a, b, xdrop) in cases {
            let a = seq(a);
            let b = seq(b);
            assert_eq!(
                xdrop_extend(a.codes(), b.codes(), default_scoring(), xdrop),
                xdrop_extend_baseline(a.codes(), b.codes(), default_scoring(), xdrop),
            );
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_and_counts_cells() {
        let mut rng = SmallRng::seed_from_u64(9);
        let a = DnaSeq::from_codes((0..500).map(|_| rng.gen_range(0..4u8)).collect());
        let mut b_codes = a.codes().to_vec();
        for idx in (0..b_codes.len()).step_by(25) {
            b_codes[idx] = (b_codes[idx] + 1) % 4;
        }
        let b = DnaSeq::from_codes(b_codes);
        let mut scratch = XdropScratch::new();
        let mut counters = ExtendCounters::default();
        let r1 =
            xdrop_extend_with(a.codes(), b.codes(), default_scoring(), 30, &mut scratch, &mut counters);
        let cells_one = counters.cells;
        assert!(cells_one > 0);
        assert!(counters.band_peak >= 1);
        assert_eq!(counters.calls, 1);
        // Second call with the same (now warm) scratch: identical result,
        // identical cell count.
        let r2 =
            xdrop_extend_with(a.codes(), b.codes(), default_scoring(), 30, &mut scratch, &mut counters);
        assert_eq!(r1, r2);
        assert_eq!(counters.cells, 2 * cells_one);
        assert_eq!(r1, xdrop_extend(a.codes(), b.codes(), default_scoring(), 30));
    }

    #[test]
    fn termination_counter_fires_on_xdrop_stops_only() {
        let mut scratch = XdropScratch::new();
        let mut counters = ExtendCounters::default();
        // Full extension: no termination.
        let a = seq("ACGTACGTACGTACGT");
        let _ = xdrop_extend_with(a.codes(), a.codes(), default_scoring(), 10, &mut scratch, &mut counters);
        assert_eq!(counters.terminations, 0);
        // Divergence: the window dies before `a` is consumed.
        let c = seq("ACGTACGTACAAAAAAAAAAAAAAAAAAAA");
        let d = seq("ACGTACGTACTTTTTTTTTTTTTTTTTTTT");
        let _ = xdrop_extend_with(c.codes(), d.codes(), default_scoring(), 5, &mut scratch, &mut counters);
        assert_eq!(counters.terminations, 1);
    }

    #[test]
    fn seed_pair_alignment_on_exact_overlap() {
        // v = genome[0..60), h = genome[30..90): a 30-base overlap.
        let mut rng = SmallRng::seed_from_u64(1);
        let genome = DnaSeq::from_codes((0..90).map(|_| rng.gen_range(0..4u8)).collect());
        let v = genome.slice(0, 60);
        let h = genome.slice(30, 90);
        // Shared seed: genome[40..50) = v[40..50) = h[10..20).
        let cfg = AlignmentConfig::for_tests();
        let aln = align_seed_pair(&v, &h, 40, 10, 10, Strand::Forward, &cfg);
        assert_eq!(aln.beg_v, 30);
        assert_eq!(aln.end_v, 60);
        assert_eq!(aln.beg_h, 0);
        assert_eq!(aln.end_h, 30);
        assert_eq!(aln.score, 30);
        assert_eq!(aln.strand, Strand::Forward);
    }

    #[test]
    fn seed_pair_alignment_tolerates_errors() {
        let mut rng = SmallRng::seed_from_u64(2);
        let genome = DnaSeq::from_codes((0..600).map(|_| rng.gen_range(0..4u8)).collect());
        let v = genome.slice(0, 400);
        let h_template = genome.slice(200, 600);
        // Introduce ~5% substitution errors into h.
        let mut h_codes = h_template.codes().to_vec();
        for idx in (0..h_codes.len()).step_by(20) {
            h_codes[idx] = (h_codes[idx] + 1) % 4;
        }
        let h = DnaSeq::from_codes(h_codes);
        // Find an exact shared 12-mer to seed from: search a window of v in h.
        // (Position 241 avoids the substituted positions 240 and 260.)
        let seed_v = 241;
        let window = v.slice(seed_v, seed_v + 12).to_ascii();
        let h_ascii = h.to_ascii();
        let seed_h = h_ascii.find(&window).expect("seed window should exist in h");
        let cfg = AlignmentConfig::for_tests();
        let aln = align_seed_pair(&v, &h, seed_v, seed_h, 12, Strand::Forward, &cfg);
        // The overlap region is ~200 bases; the alignment should span most of it.
        assert!(aln.end_v - aln.beg_v > 150, "aligned span too short: {aln:?}");
        assert!(aln.score > 100, "score too low: {aln:?}");
        // And it should reach (close to) the ends of the overlapping region.
        assert!(aln.end_v >= 395, "alignment should reach the end of v: {aln:?}");
        assert!(aln.beg_h <= 5, "alignment should reach the start of h: {aln:?}");
    }

    #[test]
    fn reverse_complement_overlap_aligns_on_oriented_h() {
        let mut rng = SmallRng::seed_from_u64(3);
        let genome = DnaSeq::from_codes((0..300).map(|_| rng.gen_range(0..4u8)).collect());
        let v = genome.slice(0, 200);
        let h = genome.slice(100, 300).reverse_complement(); // stored reverse-complemented
        let h_oriented = h.reverse_complement(); // orient back for alignment
        let seed_v = 150;
        let window = v.slice(seed_v, seed_v + 10).to_ascii();
        let seed_h = h_oriented.to_ascii().find(&window).unwrap();
        let cfg = AlignmentConfig::for_tests();
        let aln = align_seed_pair(&v, &h_oriented, seed_v, seed_h, 10, Strand::Reverse, &cfg);
        assert_eq!(aln.strand, Strand::Reverse);
        assert_eq!(aln.end_v - aln.beg_v, 100, "the 100-base overlap should align fully");
    }

    #[test]
    #[should_panic(expected = "seed exceeds read v")]
    fn out_of_range_seed_panics() {
        let v = seq("ACGT");
        let h = seq("ACGTACGT");
        let _ = align_seed_pair(&v, &h, 3, 0, 5, Strand::Forward, &AlignmentConfig::for_tests());
    }
}

//! Overlap classification: from alignment endpoints to bidirected string-graph
//! edges.
//!
//! Section II of the paper defines four overlap types (Figure 1), contained
//! overlaps, and the overhang ("overlap suffix") that becomes the edge weight
//! of the string graph.  This module turns the endpoints produced by the
//! x-drop aligner into that vocabulary.
//!
//! ## Bidirected direction encoding
//!
//! An edge between reads *i* and *j* is stored twice (once per direction of
//! travel).  For the direction *i → j* we encode the traversal orientations in
//! two bits ([`BidirectedDir`]):
//!
//! * bit 1 — orientation of *i* along the walk (1 = forward, i.e. the walk
//!   leaves *i* through its end);
//! * bit 0 — orientation of *j* along the walk (1 = forward, i.e. the walk
//!   enters *j* at its beginning).
//!
//! The four values 0–3 correspond to the four bidirected edge types of
//! Figure 1.  A three-node path *i → k → j* is a **valid walk** (Figure 2) iff
//! the orientation in which the first edge traverses *k* equals the
//! orientation in which the second edge leaves *k*:
//! `dir_ik.bit0 == dir_kj.bit1` — this is the `ISDIROK` check of Algorithm 3.

use crate::scoring::AlignmentConfig;
use dibella_seq::Strand;
use serde::{Deserialize, Serialize};

/// Two-bit encoding of the traversal orientations of a bidirected edge, for
/// one direction of travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BidirectedDir(pub u8);

impl BidirectedDir {
    /// Build from the two traversal orientations (source read, destination read).
    pub fn new(source_forward: bool, dest_forward: bool) -> Self {
        Self(((source_forward as u8) << 1) | dest_forward as u8)
    }

    /// Orientation of the source read along the walk.
    pub fn source_forward(&self) -> bool {
        self.0 & 2 != 0
    }

    /// Orientation of the destination read along the walk.
    pub fn dest_forward(&self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether a walk may continue from an edge with this direction into an
    /// edge with direction `next` at the shared middle vertex (the `ISDIROK`
    /// rule of Algorithm 3).
    pub fn chains_with(&self, next: BidirectedDir) -> bool {
        self.dest_forward() == next.source_forward()
    }

    /// The direction of the implied edge of a valid two-hop path
    /// `self` (i→k) followed by `next` (k→j): source orientation from the
    /// first hop, destination orientation from the second.
    pub fn compose(&self, next: BidirectedDir) -> BidirectedDir {
        BidirectedDir((self.0 & 2) | (next.0 & 1))
    }

    /// The direction describing the same physical edge travelled the other
    /// way (j → i).
    pub fn reversed(&self) -> BidirectedDir {
        BidirectedDir::new(!self.dest_forward(), !self.source_forward())
    }

    /// Raw two-bit value.
    pub fn bits(&self) -> u8 {
        self.0
    }
}

/// A pairwise alignment between read `v` (always in its stored orientation)
/// and read `h` considered in orientation `strand`.
///
/// Coordinates are half-open `[beg, end)` on the oriented sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairAlignment {
    /// Alignment score.
    pub score: i32,
    /// Start of the aligned region on `v`.
    pub beg_v: usize,
    /// End (exclusive) of the aligned region on `v`.
    pub end_v: usize,
    /// Start of the aligned region on the oriented `h`.
    pub beg_h: usize,
    /// End (exclusive) of the aligned region on the oriented `h`.
    pub end_h: usize,
    /// Orientation in which `h` was aligned against `v`.
    pub strand: Strand,
}

impl PairAlignment {
    /// Length of the aligned region on `v`.
    pub fn aligned_len_v(&self) -> usize {
        self.end_v - self.beg_v
    }

    /// Length of the aligned region on the oriented `h`.
    pub fn aligned_len_h(&self) -> usize {
        self.end_h - self.beg_h
    }

    /// The shorter of the two aligned spans (used for score thresholds).
    pub fn aligned_len(&self) -> usize {
        self.aligned_len_v().min(self.aligned_len_h())
    }
}

/// The outcome of classifying an alignment between reads `v` and `h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapClass {
    /// `v` spans all of `h` (up to the fuzz): `h` is a contained read.
    Contains,
    /// `h` spans all of `v`: `v` is a contained read.
    ContainedBy,
    /// A proper dovetail overlap usable as a string-graph edge.
    Dovetail {
        /// Direction of the edge when walking `v → h`.
        dir_vh: BidirectedDir,
        /// Direction of the edge when walking `h → v`.
        dir_hv: BidirectedDir,
        /// Overhang (suffix length) contributed by `h` when walking `v → h`.
        suffix_vh: usize,
        /// Overhang contributed by `v` when walking `h → v`.
        suffix_hv: usize,
    },
    /// The alignment ends in the interior of both reads — not a true overlap
    /// (typically a repeat-induced local match); discarded.
    Internal,
}

/// Classify an alignment between `v` (length `len_v`) and `h` (length
/// `len_h`, oriented according to `aln.strand`).
///
/// `len_h` is the length of the *oriented* sequence, which equals the stored
/// read length (reverse complementing does not change length).
pub fn classify_alignment(
    aln: &PairAlignment,
    len_v: usize,
    len_h: usize,
    config: &AlignmentConfig,
) -> OverlapClass {
    assert!(aln.end_v <= len_v && aln.end_h <= len_h, "alignment exceeds read bounds");
    let fuzz = config.classification_fuzz;
    let left_v = aln.beg_v;
    let right_v = len_v - aln.end_v;
    let left_h = aln.beg_h;
    let right_h = len_h - aln.end_h;

    // At each end of the aligned region, at least one of the two reads must
    // terminate within the fuzz — otherwise this is a local (repeat-induced)
    // match in the interior of both reads, not an overlap.
    if left_v.min(left_h) > fuzz || right_v.min(right_h) > fuzz {
        return OverlapClass::Internal;
    }

    // Containment (Section II: contained overlaps are set aside and may be
    // reintroduced after the string graph is built).
    if left_v <= fuzz && right_v <= fuzz {
        return OverlapClass::ContainedBy;
    }
    if left_h <= fuzz && right_h <= fuzz {
        return OverlapClass::Contains;
    }

    let h_layout_forward = aln.strand == Strand::Forward;
    if left_v > left_h {
        // v comes first in the implied layout: v → h reads v forward.
        let suffix_vh = right_h.saturating_sub(right_v);
        let suffix_hv = left_v.saturating_sub(left_h);
        if suffix_vh == 0 {
            return OverlapClass::Contains;
        }
        if suffix_hv == 0 {
            return OverlapClass::ContainedBy;
        }
        let dir_vh = BidirectedDir::new(true, h_layout_forward);
        // Walking h → v traverses h against its layout orientation and v backwards.
        let dir_hv = BidirectedDir::new(!h_layout_forward, false);
        OverlapClass::Dovetail { dir_vh, dir_hv, suffix_vh, suffix_hv }
    } else {
        // h comes first: walking v → h reads v backwards and h against its
        // layout orientation; walking h → v reads h in layout orientation and
        // v forwards.
        let suffix_vh = left_h.saturating_sub(left_v);
        let suffix_hv = right_v.saturating_sub(right_h);
        if suffix_vh == 0 {
            return OverlapClass::Contains;
        }
        if suffix_hv == 0 {
            return OverlapClass::ContainedBy;
        }
        let dir_vh = BidirectedDir::new(false, !h_layout_forward);
        let dir_hv = BidirectedDir::new(h_layout_forward, true);
        OverlapClass::Dovetail { dir_vh, dir_hv, suffix_vh, suffix_hv }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(fuzz: usize) -> AlignmentConfig {
        AlignmentConfig { classification_fuzz: fuzz, ..AlignmentConfig::default() }
    }

    #[test]
    fn dir_bit_layout() {
        let d = BidirectedDir::new(true, false);
        assert_eq!(d.bits(), 0b10);
        assert!(d.source_forward());
        assert!(!d.dest_forward());
        assert_eq!(BidirectedDir::new(true, true).bits(), 3);
        assert_eq!(BidirectedDir::new(false, false).bits(), 0);
    }

    #[test]
    fn chaining_requires_consistent_middle_orientation() {
        // i -> k forward/forward chains with k -> j forward/anything.
        let ik = BidirectedDir::new(true, true);
        assert!(ik.chains_with(BidirectedDir::new(true, true)));
        assert!(ik.chains_with(BidirectedDir::new(true, false)));
        assert!(!ik.chains_with(BidirectedDir::new(false, true)));
        // i -> k entering k reversed chains only with edges leaving k reversed.
        let ik_rev = BidirectedDir::new(true, false);
        assert!(ik_rev.chains_with(BidirectedDir::new(false, true)));
        assert!(!ik_rev.chains_with(BidirectedDir::new(true, true)));
    }

    #[test]
    fn compose_takes_outer_orientations() {
        let ik = BidirectedDir::new(true, false);
        let kj = BidirectedDir::new(false, true);
        assert_eq!(ik.compose(kj).bits(), 0b11);
        let ik2 = BidirectedDir::new(false, true);
        let kj2 = BidirectedDir::new(true, false);
        assert_eq!(ik2.compose(kj2).bits(), 0b00);
    }

    #[test]
    fn reversed_flips_and_swaps() {
        // Forward-forward reversed becomes reverse-reverse (0b00).
        assert_eq!(BidirectedDir(0b11).reversed().bits(), 0b00);
        assert_eq!(BidirectedDir(0b00).reversed().bits(), 0b11);
        // Mixed orientations are self-symmetric under reversal.
        assert_eq!(BidirectedDir(0b10).reversed().bits(), 0b10);
        assert_eq!(BidirectedDir(0b01).reversed().bits(), 0b01);
    }

    #[test]
    fn forward_dovetail_v_then_h() {
        // v: [0, 1000), h: [0, 900); alignment covers v[400..1000) and h[0..600).
        let aln = PairAlignment {
            score: 500,
            beg_v: 400,
            end_v: 1000,
            beg_h: 0,
            end_h: 600,
            strand: Strand::Forward,
        };
        match classify_alignment(&aln, 1000, 900, &cfg(50)) {
            OverlapClass::Dovetail { dir_vh, dir_hv, suffix_vh, suffix_hv } => {
                assert_eq!(dir_vh.bits(), 0b11, "v forward into h forward");
                assert_eq!(dir_hv.bits(), 0b00, "reverse walk uses both reads backwards");
                assert_eq!(suffix_vh, 300, "h contributes its last 300 bases");
                assert_eq!(suffix_hv, 400, "v contributes its first 400 bases");
            }
            other => panic!("expected dovetail, got {other:?}"),
        }
    }

    #[test]
    fn forward_dovetail_h_then_v() {
        // h comes first: alignment covers v[0..600) and h[300..900).
        let aln = PairAlignment {
            score: 500,
            beg_v: 0,
            end_v: 600,
            beg_h: 300,
            end_h: 900,
            strand: Strand::Forward,
        };
        match classify_alignment(&aln, 1000, 900, &cfg(50)) {
            OverlapClass::Dovetail { dir_vh, dir_hv, suffix_vh, suffix_hv } => {
                assert_eq!(dir_vh.bits(), 0b00);
                assert_eq!(dir_hv.bits(), 0b11);
                assert_eq!(suffix_vh, 300);
                assert_eq!(suffix_hv, 400);
            }
            other => panic!("expected dovetail, got {other:?}"),
        }
    }

    #[test]
    fn reverse_strand_dovetails_have_mixed_heads() {
        // v then h, with h aligned as its reverse complement.
        let aln = PairAlignment {
            score: 500,
            beg_v: 400,
            end_v: 1000,
            beg_h: 0,
            end_h: 600,
            strand: Strand::Reverse,
        };
        match classify_alignment(&aln, 1000, 900, &cfg(50)) {
            OverlapClass::Dovetail { dir_vh, dir_hv, .. } => {
                assert_eq!(dir_vh.bits(), 0b10, "v forward into h reversed");
                assert_eq!(dir_hv.bits(), 0b10, "reverse-complement overlaps are symmetric");
            }
            other => panic!("expected dovetail, got {other:?}"),
        }
        // h then v on the reverse strand.
        let aln2 = PairAlignment {
            score: 500,
            beg_v: 0,
            end_v: 600,
            beg_h: 300,
            end_h: 900,
            strand: Strand::Reverse,
        };
        match classify_alignment(&aln2, 1000, 900, &cfg(50)) {
            OverlapClass::Dovetail { dir_vh, dir_hv, .. } => {
                assert_eq!(dir_vh.bits(), 0b01);
                assert_eq!(dir_hv.bits(), 0b01);
            }
            other => panic!("expected dovetail, got {other:?}"),
        }
    }

    #[test]
    fn dir_vh_and_dir_hv_are_consistent_reversals() {
        for (beg_v, end_v, beg_h, end_h) in [(400, 1000, 0, 600), (0, 600, 300, 900)] {
            for strand in [Strand::Forward, Strand::Reverse] {
                let aln = PairAlignment { score: 1, beg_v, end_v, beg_h, end_h, strand };
                if let OverlapClass::Dovetail { dir_vh, dir_hv, .. } =
                    classify_alignment(&aln, 1000, 900, &cfg(50))
                {
                    assert_eq!(dir_vh.reversed(), dir_hv, "directions must mirror each other");
                }
            }
        }
    }

    #[test]
    fn containment_detection() {
        // h fully inside v (h aligned end to end).
        let aln = PairAlignment {
            score: 890,
            beg_v: 50,
            end_v: 950,
            beg_h: 2,
            end_h: 898,
            strand: Strand::Forward,
        };
        assert_eq!(classify_alignment(&aln, 1000, 900, &cfg(10)), OverlapClass::Contains);
        // v fully inside h.
        let aln2 = PairAlignment {
            score: 990,
            beg_v: 3,
            end_v: 998,
            beg_h: 100,
            end_h: 870,
            strand: Strand::Forward,
        };
        assert_eq!(classify_alignment(&aln2, 1000, 900, &cfg(10)), OverlapClass::ContainedBy);
    }

    #[test]
    fn internal_matches_are_rejected() {
        // Alignment ends in the middle of both reads on both sides.
        let aln = PairAlignment {
            score: 100,
            beg_v: 300,
            end_v: 500,
            beg_h: 350,
            end_h: 550,
            strand: Strand::Forward,
        };
        assert_eq!(classify_alignment(&aln, 1000, 900, &cfg(10)), OverlapClass::Internal);
    }

    #[test]
    fn fuzz_tolerates_unaligned_ends() {
        // 30 unaligned bases at v's end and h's start would be Internal with
        // fuzz 10 but a clean dovetail with fuzz 50.
        let aln = PairAlignment {
            score: 500,
            beg_v: 400,
            end_v: 970,
            beg_h: 30,
            end_h: 600,
            strand: Strand::Forward,
        };
        assert!(matches!(classify_alignment(&aln, 1000, 900, &cfg(50)),
            OverlapClass::Dovetail { .. }));
        assert_eq!(classify_alignment(&aln, 1000, 900, &cfg(10)), OverlapClass::Internal);
    }

    #[test]
    #[should_panic(expected = "alignment exceeds read bounds")]
    fn out_of_bounds_alignment_is_rejected() {
        let aln = PairAlignment {
            score: 1,
            beg_v: 0,
            end_v: 1001,
            beg_h: 0,
            end_h: 10,
            strand: Strand::Forward,
        };
        let _ = classify_alignment(&aln, 1000, 900, &cfg(10));
    }
}

//! SWAR x-drop extension kernel: four DP cells per `u64`.
//!
//! This is the vectorised twin of the scalar oracle in [`crate::xdrop`].  DP
//! scores are packed as four lane-packed `i16`s in one `u64` word — lane `t`
//! of word `w` holds column `4·w + t` — and each DP row advances the whole
//! adaptive band a word at a time with branch-free lane-parallel max/add:
//!
//! ```text
//!          u64 word w                     word w+1
//!  ┌──────┬──────┬──────┬──────┐ ┌──────┬──────┬──────┬──────┐
//!  │ j=4w │ 4w+1 │ 4w+2 │ 4w+3 │ │ 4w+4 │ 4w+5 │ 4w+6 │ 4w+7 │   i16 lanes
//!  └──────┴──────┴──────┴──────┘ └──────┴──────┴──────┴──────┘
//!   bits 0..16   ...      48..64
//! ```
//!
//! Lane arithmetic uses the classic carry-masked SWAR add/sub (Hacker's
//! Delight §2-18): the value-range guards of [`swar_eligible`] keep every
//! intermediate inside `i16`, so wrapping lane adds are *exact* — no
//! saturation, hence bit-identical scores.  Dead cells hold the sentinel
//! [`NEG16`]; a dead lane plus any bounded addend stays far below every
//! threshold, so dead lanes may freely participate in the maxes.
//!
//! The within-row left-gap dependency `run[j] = max(tmp[j], run[j-1] + gap)`
//! is a max-plus prefix scan, computed with two in-word log-steps (shift by
//! one lane adding `gap`, shift by two lanes adding `2·gap`) plus a
//! sequential cross-word carry through a `gap`-ramp broadcast.
//!
//! Scores are kept *relative* to a running `i32` base: when the in-band best
//! exceeds `REBASE_AT` (4096), the base absorbs it and every live lane is shifted
//! down (dead lanes are re-pinned at [`NEG16`]).  That gives unbounded total
//! scores (long perfect matches) with `i16` lanes.
//!
//! The kernel implements exactly the two-phase thresholding of
//! [`crate::xdrop::xdrop_extend`] and is proptested to produce bit-identical
//! [`ExtendResult`]s; [`swar_eligible`] names the scoring ranges where the
//! exactness argument holds — outside them the batched engine falls back to
//! the scalar oracle.
//!
//! On x86-64 the batched engine prefers the hardware twin of this kernel —
//! eight `i16` lanes per `__m128i` with true SIMD instructions
//! ([`crate::sse2`], same structure, same exactness argument) — and this
//! portable kernel serves as the fallback for every other target.

use crate::scoring::ScoringScheme;
use crate::xdrop::{ExtendCounters, ExtendResult};

/// Dead-cell sentinel per lane.  `-16384` leaves headroom on both sides:
/// `NEG16 + 3·gap` cannot wrap below `i16::MIN`, and live scores stay below
/// `REBASE_AT + match` which cannot collide with it from above.
pub const NEG16: i16 = -16384;

/// Rebase the relative scores into the `i32` base once the in-band best
/// exceeds this, keeping all lane values well inside `i16`.
const REBASE_AT: i32 = 4096;

const LANES: usize = 4;
const LANE_BITS: u32 = 16;
/// Per-lane sign bits, the carry fence of the SWAR add/sub.
const SIGN: u64 = 0x8000_8000_8000_8000;
const LOW: u64 = 0x0001_0001_0001_0001;
/// All four lanes dead.
const NEG_PAT: u64 = splat(NEG16);

/// Broadcast an `i16` into all four lanes.
const fn splat(x: i16) -> u64 {
    (x as u16 as u64).wrapping_mul(LOW)
}

/// Lane-wise wrapping add without cross-lane carries.
#[inline(always)]
fn add16(x: u64, y: u64) -> u64 {
    ((x & !SIGN).wrapping_add(y & !SIGN)) ^ ((x ^ y) & SIGN)
}

/// Lane-wise wrapping subtract without cross-lane borrows.
#[inline(always)]
fn sub16(x: u64, y: u64) -> u64 {
    ((x | SIGN).wrapping_sub(y & !SIGN)) ^ ((x ^ !y) & SIGN)
}

/// Lane mask: `0xFFFF` where `x < y` (signed), `0` elsewhere.  Exact while
/// each lane difference fits in `i16`, which the eligibility ranges plus
/// rebasing guarantee.
#[inline(always)]
fn lt16_mask(x: u64, y: u64) -> u64 {
    let d = sub16(x, y);
    ((d & SIGN) >> 15).wrapping_mul(0xFFFF)
}

/// Lane-wise signed max.
#[inline(always)]
fn max16(x: u64, y: u64) -> u64 {
    let m = lt16_mask(x, y);
    (x & !m) | (y & m)
}

/// Extract lane `t` as an `i32`.
#[inline(always)]
fn lane(w: u64, t: usize) -> i32 {
    ((w >> (LANE_BITS as usize * t)) as u16 as i16) as i32
}

/// Can the SWAR kernel run this scoring scheme bit-exactly?
///
/// The bounds box every intermediate inside `i16` under wrapping lane adds
/// (see the module docs): per-step addends within ±63, relative scores within
/// `[-xdrop, REBASE_AT + 63]` with `xdrop ≤ 3000`, dead sentinel at `-16384`.
/// The default and `for_error_rate` schemes (`match 1, mismatch -1, gap -1`,
/// `xdrop ≤ ~100`) are comfortably inside; exotic schemes (zero/positive gap,
/// huge penalties, huge xdrop) take the scalar oracle instead.
pub fn swar_eligible(scoring: ScoringScheme, xdrop: i32) -> bool {
    (1..=63).contains(&scoring.match_score)
        && (-63..=0).contains(&scoring.mismatch)
        && (-63..=-1).contains(&scoring.gap)
        && (0..=3000).contains(&xdrop)
}

/// Reusable word buffers for the SWAR kernel: the two row buffers plus the
/// lazily built per-base equality tables of `b`.
///
/// Lane `t` of word `w` always refers to absolute column `4·w + t`; the row
/// buffers are indexed by absolute word, so no per-row repacking happens —
/// the live window just slides over them.
#[derive(Debug, Default)]
pub struct SwarScratch {
    prev: Vec<u64>,
    cur: Vec<u64>,
    /// `eq[c * stride + w]`: lane mask word, `0xFFFF` in lane `t` iff
    /// `b[4w + t - 1] == c`.  Built lazily as the band reaches new words, so
    /// early-terminating extensions never pay for the full length of `b`.
    eq: Vec<u64>,
    eq_stride: usize,
    eq_built: usize,
}

impl SwarScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make sure equality-table words `0..words` are built for this call.
    #[inline]
    fn build_eq_to(&mut self, b: &[u8], words: usize) {
        while self.eq_built < words {
            let w = self.eq_built;
            let mut packed = [0u64; 4];
            for t in 0..LANES {
                let j = w * LANES + t;
                // Column j consumes b[j - 1]; j == 0 and j > b.len() lanes
                // stay zero in all four tables (scored as mismatch, and those
                // cells are dead/outside the window anyway).
                if j >= 1 && j <= b.len() {
                    packed[b[j - 1] as usize] |= 0xFFFFu64 << (LANE_BITS as usize * t);
                }
            }
            for (c, &pk) in packed.iter().enumerate() {
                self.eq[c * self.eq_stride + w] = pk;
            }
            self.eq_built += 1;
        }
    }
}

/// SWAR twin of [`crate::xdrop::xdrop_extend_with`]: same two-phase x-drop
/// semantics, bit-identical [`ExtendResult`], four cells per `u64`.
///
/// The caller must check [`swar_eligible`] first; the batched engine
/// ([`crate::batch`]) does this and falls back to the scalar oracle.
pub fn xdrop_extend_swar(
    a: &[u8],
    b: &[u8],
    scoring: ScoringScheme,
    xdrop: i32,
    scratch: &mut SwarScratch,
    counters: &mut ExtendCounters,
) -> ExtendResult {
    debug_assert!(swar_eligible(scoring, xdrop));
    counters.calls += 1;
    let m = b.len();
    // Words covering columns 0..=m, plus one guard word at the right so the
    // row after a window ending at column m can still read a NEG word.
    let nw = m / LANES + 2;
    if scratch.prev.len() < nw {
        scratch.prev.resize(nw, NEG_PAT);
        scratch.cur.resize(nw, NEG_PAT);
    }
    if scratch.eq_stride < nw {
        scratch.eq_stride = nw;
        scratch.eq.clear();
        scratch.eq.resize(4 * nw, 0);
    }
    scratch.eq_built = 0;

    let gap1 = splat(scoring.gap as i16);
    let gap2 = splat((2 * scoring.gap) as i16);
    // Cross-word scan carry ramp: lane t adds (t + 1) · gap to the carried
    // run value from the previous word.
    let ramp = {
        let g = scoring.gap;
        let mut w = 0u64;
        for t in 0..LANES {
            w |= ((((t as i32 + 1) * g) as i16) as u16 as u64) << (LANE_BITS as usize * t);
        }
        w
    };
    let match16 = splat(scoring.match_score as i16);
    let mism16 = splat(scoring.mismatch as i16);
    // sub = (match & eq) | (mism & !eq) rewritten as two ops per word.
    let subdiff = match16 ^ mism16;

    // Best score = base + best_rel; lanes store scores relative to `base`.
    let mut base = 0i64;
    let mut best_rel = 0i32;
    let (mut best_i, mut best_j) = (0usize, 0usize);

    // Row 0: leading gaps in `a`; fills columns 0..=r0_hi (j·gap ≥ -xdrop).
    // gap ≤ -1 so the row-0 width is at most xdrop + 1 ≪ i16 range.
    let r0_width = ((xdrop / -scoring.gap) as usize + 1).min(m + 1);
    let row0_we = (r0_width - 1) / LANES;
    for w in 0..=row0_we {
        let mut word = NEG_PAT;
        for t in 0..LANES {
            let j = w * LANES + t;
            if j < r0_width {
                word &= !(0xFFFFu64 << (LANE_BITS as usize * t));
                word |= (((j as i32 * scoring.gap) as i16) as u16 as u64)
                    << (LANE_BITS as usize * t);
            }
        }
        scratch.prev[w] = word;
    }
    scratch.prev[row0_we + 1] = NEG_PAT;
    counters.cells += r0_width as u64;
    counters.band_peak = counters.band_peak.max(r0_width as u64);

    // Live window [lo, hi] (absolute columns) of the previous row.
    let mut lo = 0usize;
    let mut hi = r0_width - 1;

    for i in 1..=a.len() {
        let wlo = lo;
        let whi = (hi + 1).min(m);
        let ws = wlo / LANES;
        let we = whi / LANES;
        // best_rel ≤ REBASE_AT and xdrop ≤ 3000, so this fits an i16 lane.
        let thr = splat((best_rel - xdrop) as i16);
        let ai = a[i - 1] as usize;
        scratch.build_eq_to(b, we + 1);
        let eq_row = &scratch.eq[ai * scratch.eq_stride..(ai + 1) * scratch.eq_stride];

        // Keep masks for the boundary words: lanes outside [wlo, whi] must
        // stay dead (a left-gap run can spill past the window's right edge).
        let keep_lo = !0u64 << (LANE_BITS as usize * (wlo - ws * LANES));
        let off_hi = whi - we * LANES;
        let keep_hi = if off_hi < LANES - 1 {
            !0u64 >> (LANE_BITS as usize * (LANES - 1 - off_hi))
        } else {
            !0u64
        };

        // One fused pass: diag/up candidates, the left-gap prefix scan,
        // thresholding and boundary masks — with the row maximum and the
        // live word extent folded in, so the finished row never needs to be
        // re-read.  `carry` holds the pre-threshold run value of the last
        // lane of the previous word (the scan is sequential across words,
        // SWAR within).
        let mut carry: i16 = NEG16;
        let mut rowmax = NEG_PAT;
        let mut first_w = usize::MAX;
        let mut last_w = ws;
        let mut pm1 = if ws == 0 { NEG_PAT } else { scratch.prev[ws - 1] };
        // The fused pass walks prev/cur/eq_row in lockstep and needs `w` for
        // the boundary compares; an iterator zip would obscure, not help.
        #[allow(clippy::needless_range_loop)]
        for w in ws..=we {
            let p = scratch.prev[w];
            // Column 4w+t's diagonal neighbour is column 4w+t-1 of the
            // previous row: shift the band left by one lane across words.
            let diag_src = (p << LANE_BITS) | (pm1 >> (64 - LANE_BITS));
            pm1 = p;
            let sub = mism16 ^ (subdiff & eq_row[w]);
            let diag = add16(diag_src, sub);
            let up = add16(p, gap1);
            let tmp = max16(diag, up);

            // Max-plus prefix scan for run[j] = max(tmp[j], run[j-1] + gap):
            // two in-word log-steps, then the cross-word carry via the ramp.
            let mut v = tmp;
            let s1 = (v << LANE_BITS) | (NEG16 as u16 as u64);
            v = max16(v, add16(s1, gap1));
            let s2 = (v << (2 * LANE_BITS)) | (NEG_PAT >> (2 * LANE_BITS));
            v = max16(v, add16(s2, gap2));
            v = max16(v, add16(splat(carry), ramp));
            carry = (v >> (64 - LANE_BITS)) as u16 as i16;

            // Two-phase x-drop test against the previous rows' best.
            let dead = lt16_mask(v, thr);
            let mut word = (v & !dead) | (NEG_PAT & dead);
            if w == ws {
                word = (word & keep_lo) | (NEG_PAT & !keep_lo);
            }
            if w == we {
                word = (word & keep_hi) | (NEG_PAT & !keep_hi);
            }
            scratch.cur[w] = word;
            rowmax = max16(rowmax, word);
            // Dead lanes hold the exact sentinel, so a word with any live
            // lane differs from NEG_PAT as a whole u64.
            if word != NEG_PAT {
                if first_w == usize::MAX {
                    first_w = w;
                }
                last_w = w;
            }
        }
        // NEG fence words the next row's reads rely on.
        scratch.cur[we + 1] = NEG_PAT;
        if ws > 0 {
            scratch.cur[ws - 1] = NEG_PAT;
        }
        counters.cells += (whi - wlo + 1) as u64;
        counters.band_peak = counters.band_peak.max((whi - wlo + 1) as u64);

        if first_w == usize::MAX {
            counters.terminations += 1;
            return ExtendResult {
                score: (base + i64::from(best_rel)) as i32,
                ext_a: best_i,
                ext_b: best_j,
            };
        }

        // Fold the finished row into the best (first attainment in column
        // order), only when some lane strictly improves on it.  best_rel ≥ 0
        // always, so an improving row maximum is positive and the zero lanes
        // shifted into the horizontal fold cannot win.
        if lt16_mask(splat(best_rel as i16), rowmax) != 0 {
            let fold = max16(rowmax, rowmax >> (2 * LANE_BITS));
            let fold = max16(fold, fold >> LANE_BITS);
            let row_best = lane(fold, 0);
            'scan: for w in first_w..=last_w {
                let word = scratch.cur[w];
                if word == NEG_PAT {
                    continue;
                }
                for t in 0..LANES {
                    if lane(word, t) == row_best {
                        best_rel = row_best;
                        best_i = i;
                        best_j = w * LANES + t;
                        break 'scan;
                    }
                }
            }
        }

        // Trim: first/last live columns (value > NEG16 ⇔ not the sentinel —
        // live lanes are ≥ thr ≥ -xdrop > NEG16), confined to the tracked
        // boundary words.  No explicit re-pinning of the trimmed range is
        // needed: every dead cell inside [wlo, whi] already holds the exact
        // sentinel (the threshold select writes NEG_PAT lanes), and the
        // boundary masks covered the lanes outside it.
        let fword = scratch.cur[first_w];
        let mut first = first_w * LANES;
        for t in 0..LANES {
            if lane(fword, t) > i32::from(NEG16) {
                first = first_w * LANES + t;
                break;
            }
        }
        let lword = scratch.cur[last_w];
        let mut last = last_w * LANES;
        for t in (0..LANES).rev() {
            if lane(lword, t) > i32::from(NEG16) {
                last = last_w * LANES + t;
                break;
            }
        }
        lo = first;
        hi = last;
        std::mem::swap(&mut scratch.prev, &mut scratch.cur);

        // Rebase before the relative scores can outgrow i16.
        if best_rel > REBASE_AT {
            let delta = best_rel;
            let d16 = splat(delta as i16);
            let wl = lo / LANES;
            let wh = hi / LANES;
            for w in wl..=wh {
                let v = scratch.prev[w];
                let shifted = sub16(v, d16);
                // Dead lanes must stay exactly at the sentinel.
                let is_dead = !(lt16_mask(v, NEG_PAT) | lt16_mask(NEG_PAT, v));
                scratch.prev[w] = (shifted & !is_dead) | (NEG_PAT & is_dead);
            }
            base += i64::from(delta);
            best_rel = 0;
        }
    }
    ExtendResult {
        score: (base + i64::from(best_rel)) as i32,
        ext_a: best_i,
        ext_b: best_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xdrop::{xdrop_extend_with, XdropScratch};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn swar(a: &[u8], b: &[u8], scoring: ScoringScheme, xdrop: i32) -> (ExtendResult, ExtendCounters) {
        let mut scratch = SwarScratch::new();
        let mut c = ExtendCounters::default();
        let r = xdrop_extend_swar(a, b, scoring, xdrop, &mut scratch, &mut c);
        (r, c)
    }

    fn scalar(a: &[u8], b: &[u8], scoring: ScoringScheme, xdrop: i32) -> (ExtendResult, ExtendCounters) {
        let mut scratch = XdropScratch::new();
        let mut c = ExtendCounters::default();
        let r = xdrop_extend_with(a, b, scoring, xdrop, &mut scratch, &mut c);
        (r, c)
    }

    #[test]
    fn lane_arithmetic_is_exact() {
        let x = splat(-1234);
        let y = splat(700);
        assert_eq!(lane(add16(x, y), 2), -534);
        assert_eq!(lane(sub16(x, y), 0), -1934);
        assert_eq!(max16(x, y), splat(700));
        // Mixed lanes: pack (-3, 5, -16384, 4096) and add 3 everywhere.
        let mixed = ((-3i16 as u16 as u64))
            | ((5u16 as u64) << 16)
            | ((NEG16 as u16 as u64) << 32)
            | ((4096u16 as u64) << 48);
        let r = add16(mixed, splat(3));
        assert_eq!(lane(r, 0), 0);
        assert_eq!(lane(r, 1), 8);
        assert_eq!(lane(r, 2), -16381);
        assert_eq!(lane(r, 3), 4099);
    }

    #[test]
    fn identical_sequences_match_scalar() {
        let a: Vec<u8> = (0..100).map(|i| (i % 4) as u8).collect();
        let sc = ScoringScheme::default();
        assert_eq!(swar(&a, &a, sc, 10).0, scalar(&a, &a, sc, 10).0);
        assert_eq!(swar(&a, &a, sc, 10).0.score, 100);
    }

    #[test]
    fn counters_match_scalar() {
        let mut rng = SmallRng::seed_from_u64(11);
        let a: Vec<u8> = (0..300).map(|_| rng.gen_range(0..4u8)).collect();
        let mut b = a.clone();
        for idx in (0..b.len()).step_by(17) {
            b[idx] = (b[idx] + 1) % 4;
        }
        let sc = ScoringScheme::default();
        let (rs, cs) = swar(&a, &b, sc, 30);
        let (rr, cr) = scalar(&a, &b, sc, 30);
        assert_eq!(rs, rr);
        assert_eq!(cs, cr, "both engines walk the same adaptive band");
    }

    #[test]
    fn long_perfect_match_crosses_the_i16_rebase_boundary() {
        // Score grows to 20k ≫ i16::MAX/2: exercises repeated rebasing.
        let a: Vec<u8> = (0..20_000).map(|i| ((i * 7 + 3) % 4) as u8).collect();
        let sc = ScoringScheme { match_score: 3, mismatch: -2, gap: -2 };
        let r = swar(&a, &a, sc, 40).0;
        assert_eq!(r, scalar(&a, &a, sc, 40).0);
        assert_eq!(r.score, 60_000);
        assert_eq!(r.ext_a, 20_000);
    }

    #[test]
    fn near_saturation_with_noise_matches_scalar() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a: Vec<u8> = (0..8000).map(|_| rng.gen_range(0..4u8)).collect();
        let mut b = a.clone();
        for idx in (0..b.len()).step_by(40) {
            b[idx] = (b[idx] + rng.gen_range(1..4u8)) % 4;
        }
        // Occasional indels.
        b.remove(1000);
        b.insert(3000, 2);
        let sc = ScoringScheme { match_score: 5, mismatch: -4, gap: -3 };
        assert_eq!(swar(&a, &b, sc, 200).0, scalar(&a, &b, sc, 200).0);
    }

    #[test]
    fn eligibility_bounds() {
        let d = ScoringScheme::default();
        assert!(swar_eligible(d, 49));
        assert!(swar_eligible(d, 0));
        assert!(!swar_eligible(d, -1));
        assert!(!swar_eligible(d, 3001));
        assert!(!swar_eligible(ScoringScheme { match_score: 0, ..d }, 49));
        assert!(!swar_eligible(ScoringScheme { match_score: 64, ..d }, 49));
        assert!(!swar_eligible(ScoringScheme { mismatch: 1, ..d }, 49));
        assert!(!swar_eligible(ScoringScheme { gap: 0, ..d }, 49));
        assert!(!swar_eligible(ScoringScheme { gap: -64, ..d }, 49));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        // The tentpole invariant: SWAR and the scalar oracle are
        // bit-identical over random sequences, scoring schemes and xdrops.
        #[test]
        fn swar_matches_scalar_oracle(
            seed in 0u64..1_000_000,
            len_a in 0usize..400,
            len_b in 0usize..400,
            error_pct in 0u32..50,
            match_score in 1i32..8,
            mismatch in -8i32..=0,
            gap in -8i32..=-1,
            xdrop in 0i32..120,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a: Vec<u8> = (0..len_a).map(|_| rng.gen_range(0..4u8)).collect();
            // b: a mutated copy of a (prefix-correlated) so extensions go deep.
            let mut b: Vec<u8> = a.iter().take(len_b).copied().collect();
            while b.len() < len_b {
                b.push(rng.gen_range(0..4u8));
            }
            for v in b.iter_mut() {
                if rng.gen_range(0..100u32) < error_pct {
                    *v = rng.gen_range(0..4u8);
                }
            }
            let sc = ScoringScheme { match_score, mismatch, gap };
            prop_assert!(swar_eligible(sc, xdrop));
            let (rs, cs) = swar(&a, &b, sc, xdrop);
            let (rr, cr) = scalar(&a, &b, sc, xdrop);
            prop_assert_eq!(rs, rr);
            prop_assert_eq!(cs, cr);
        }

        // Scratch reuse across calls of wildly different shapes never leaks
        // state between extensions.
        #[test]
        fn scratch_reuse_is_stateless(seed in 0u64..100_000) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut scratch = SwarScratch::new();
            let sc = ScoringScheme::default();
            for _ in 0..8 {
                let la = rng.gen_range(0..200);
                let lb = rng.gen_range(0..200);
                let a: Vec<u8> = (0..la).map(|_| rng.gen_range(0..4u8)).collect();
                let mut b: Vec<u8> = a.iter().take(lb).copied().collect();
                while b.len() < lb { b.push(rng.gen_range(0..4u8)); }
                let xdrop = rng.gen_range(0..60);
                let mut c = ExtendCounters::default();
                let reused = xdrop_extend_swar(&a, &b, sc, xdrop, &mut scratch, &mut c);
                let fresh = swar(&a, &b, sc, xdrop).0;
                prop_assert_eq!(reused, fresh);
            }
        }
    }
}

//! Scoring schemes and alignment configuration.

use serde::{Deserialize, Serialize};

/// Linear-gap scoring scheme for the x-drop aligner.
///
/// The defaults (`match = +1`, `mismatch = -1`, `gap = -1`) follow BELLA's
/// setting, which the diBELLA pipelines reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoringScheme {
    /// Score added for a matching base pair.
    pub match_score: i32,
    /// Score added for a mismatching base pair (negative).
    pub mismatch: i32,
    /// Score added per gap base (negative, linear gaps).
    pub gap: i32,
}

impl Default for ScoringScheme {
    fn default() -> Self {
        Self { match_score: 1, mismatch: -1, gap: -1 }
    }
}

/// Full configuration of the pairwise-alignment stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlignmentConfig {
    /// Base-level scoring.
    pub scoring: ScoringScheme,
    /// X-drop threshold: extension stops once the running score falls more
    /// than this far below the best score seen.
    pub xdrop: i32,
    /// Minimum aligned length (on the shorter side) for an overlap to count.
    pub min_overlap: usize,
    /// Minimum score per aligned base; BELLA derives this from the error rate
    /// (an alignment of two reads with per-base error `e` has expected
    /// per-base score `(1-e)² - 2·e·(1-e) - e²·...` ≈ `1 - 2e` for this
    /// scoring scheme), minus a safety margin.
    pub min_score_per_base: f64,
    /// Tolerance (in bases) when classifying overlaps: unaligned overhangs up
    /// to this length are attributed to sequencing error rather than to a
    /// structural difference.
    pub classification_fuzz: usize,
}

impl Default for AlignmentConfig {
    fn default() -> Self {
        Self {
            scoring: ScoringScheme::default(),
            xdrop: 49,
            min_overlap: 200,
            min_score_per_base: 0.45,
            classification_fuzz: 300,
        }
    }
}

impl AlignmentConfig {
    /// Configuration matched to a dataset's error rate: the per-base score
    /// threshold is placed halfway between the expected score of a true
    /// overlap (`≈ 1 - 4e + 2e²` when both reads carry errors at rate `e`)
    /// and zero (the expectation for unrelated sequence).
    pub fn for_error_rate(error_rate: f64) -> Self {
        let e2 = 2.0 * error_rate - error_rate * error_rate; // combined pair error
        let expected = 1.0 - 2.0 * e2;
        Self { min_score_per_base: (expected / 2.0).max(0.1), ..Self::default() }
    }

    /// Threshold score for an alignment spanning `aligned_len` bases.
    pub fn score_threshold(&self, aligned_len: usize) -> i32 {
        (self.min_score_per_base * aligned_len as f64).floor() as i32
    }

    /// Smaller overlap/fuzz values suitable for the short reads used in unit
    /// and integration tests.
    pub fn for_tests() -> Self {
        Self {
            min_overlap: 30,
            classification_fuzz: 40,
            xdrop: 30,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scoring_matches_bella() {
        let s = ScoringScheme::default();
        assert_eq!((s.match_score, s.mismatch, s.gap), (1, -1, -1));
    }

    #[test]
    fn score_threshold_scales_linearly() {
        let cfg = AlignmentConfig { min_score_per_base: 0.5, ..Default::default() };
        assert_eq!(cfg.score_threshold(100), 50);
        assert_eq!(cfg.score_threshold(0), 0);
        assert_eq!(cfg.score_threshold(333), 166);
    }

    #[test]
    fn error_rate_aware_threshold_decreases_with_error() {
        let clean = AlignmentConfig::for_error_rate(0.01);
        let noisy = AlignmentConfig::for_error_rate(0.15);
        assert!(clean.min_score_per_base > noisy.min_score_per_base);
        assert!(noisy.min_score_per_base >= 0.1);
    }
}

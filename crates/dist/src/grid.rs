//! The virtual process grid and 1D block distributions.

use std::ops::Range;

/// A rectangular grid of virtual ranks, normally `√P × √P`.
///
/// CombBLAS (and therefore diBELLA 2D) distributes every sparse matrix over a
/// square process grid; rank `r` sits at grid position
/// `(r / cols, r % cols)`.  All coordinates are zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessGrid {
    rows: usize,
    cols: usize,
}

impl ProcessGrid {
    /// A general `rows × cols` grid.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "process grid dimensions must be positive");
        Self { rows, cols }
    }

    /// The square grid with exactly `nprocs` ranks.
    ///
    /// # Panics
    /// Panics if `nprocs` is not a perfect square (the paper's algorithms
    /// require `√P` to be integral; use [`ProcessGrid::square_at_most`] to
    /// round down).
    pub fn square(nprocs: usize) -> Self {
        assert!(nprocs > 0, "need at least one rank");
        let side = nprocs.isqrt();
        assert_eq!(
            side * side,
            nprocs,
            "ProcessGrid::square requires a perfect square, got {nprocs}"
        );
        Self { rows: side, cols: side }
    }

    /// The largest square grid with at most `nprocs` ranks (at least `1 × 1`).
    ///
    /// This mirrors how the pipeline maps a requested process count onto the
    /// square grid the 2D algorithms need.
    pub fn square_at_most(nprocs: usize) -> Self {
        let side = nprocs.isqrt().max(1);
        Self { rows: side, cols: side }
    }

    /// Number of grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of ranks `P`.
    pub fn nprocs(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the grid is square (`rows == cols`).
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Grid coordinates `(i, j)` of a rank.
    ///
    /// # Panics
    /// Panics if `rank >= nprocs()`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.nprocs(), "rank {rank} out of range for {self:?}");
        (rank / self.cols, rank % self.cols)
    }

    /// The rank at grid position `(i, j)` (row-major).
    ///
    /// # Panics
    /// Panics if the position lies outside the grid.
    pub fn rank_of(&self, i: usize, j: usize) -> usize {
        assert!(i < self.rows && j < self.cols, "grid position ({i},{j}) out of range for {self:?}");
        i * self.cols + j
    }

    /// Iterate over all ranks, `0..P`.
    pub fn ranks(&self) -> Range<usize> {
        0..self.nprocs()
    }
}

/// A 1D block distribution of `total` consecutive indices over `parts` owners.
///
/// The first `total % parts` owners get `⌈total / parts⌉` indices, the rest
/// `⌊total / parts⌋` — the standard balanced block distribution (owners may be
/// empty when `parts > total`).  This is how diBELLA 2D partitions matrix rows
/// and columns over grid rows/columns, and reads/k-mers over ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockDist {
    total: usize,
    parts: usize,
}

impl BlockDist {
    /// Distribute `total` indices over `parts` owners.
    ///
    /// # Panics
    /// Panics if `parts` is zero.
    pub fn new(total: usize, parts: usize) -> Self {
        assert!(parts > 0, "need at least one part");
        Self { total, parts }
    }

    /// Total number of distributed indices.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of owners.
    pub fn nparts(&self) -> usize {
        self.parts
    }

    /// Number of indices owned by `part`.
    ///
    /// # Panics
    /// Panics if `part >= nparts()`.
    pub fn size(&self, part: usize) -> usize {
        assert!(part < self.parts, "part {part} out of range ({} parts)", self.parts);
        self.total / self.parts + usize::from(part < self.total % self.parts)
    }

    /// First index owned by `part`.
    ///
    /// # Panics
    /// Panics if `part >= nparts()`.
    pub fn start(&self, part: usize) -> usize {
        assert!(part < self.parts, "part {part} out of range ({} parts)", self.parts);
        let base = self.total / self.parts;
        let rem = self.total % self.parts;
        part * base + part.min(rem)
    }

    /// The half-open index range owned by `part` (possibly empty).
    pub fn range(&self, part: usize) -> Range<usize> {
        let start = self.start(part);
        start..start + self.size(part)
    }

    /// The owner of a global index.
    ///
    /// # Panics
    /// Panics if `index >= total()`.
    pub fn owner(&self, index: usize) -> usize {
        assert!(index < self.total, "index {index} out of range ({} total)", self.total);
        let base = self.total / self.parts;
        let rem = self.total % self.parts;
        let big = rem * (base + 1);
        if index < big {
            index / (base + 1)
        } else {
            rem + (index - big) / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grids_for_paper_process_counts() {
        for (p, side) in [(1usize, 1usize), (4, 2), (9, 3), (16, 4)] {
            let grid = ProcessGrid::square(p);
            assert_eq!(grid.rows(), side);
            assert_eq!(grid.cols(), side);
            assert_eq!(grid.nprocs(), p);
            assert!(grid.is_square());
            assert_eq!(grid.ranks().count(), p);
        }
    }

    #[test]
    fn coords_and_rank_of_are_inverse_bijections() {
        for p in [1usize, 4, 9, 16] {
            let grid = ProcessGrid::square(p);
            let mut seen = std::collections::HashSet::new();
            for rank in grid.ranks() {
                let (i, j) = grid.coords(rank);
                assert!(i < grid.rows() && j < grid.cols());
                assert_eq!(grid.rank_of(i, j), rank);
                assert!(seen.insert((i, j)), "coords must be unique");
            }
            assert_eq!(seen.len(), p);
        }
    }

    #[test]
    fn rank_layout_is_row_major() {
        let grid = ProcessGrid::new(2, 3);
        assert_eq!(grid.coords(0), (0, 0));
        assert_eq!(grid.coords(2), (0, 2));
        assert_eq!(grid.coords(3), (1, 0));
        assert_eq!(grid.rank_of(1, 2), 5);
        assert!(!grid.is_square());
        assert_eq!(grid.nprocs(), 6);
    }

    #[test]
    fn square_at_most_rounds_down_to_the_largest_square() {
        assert_eq!(ProcessGrid::square_at_most(1).nprocs(), 1);
        assert_eq!(ProcessGrid::square_at_most(3).nprocs(), 1);
        assert_eq!(ProcessGrid::square_at_most(4).nprocs(), 4);
        assert_eq!(ProcessGrid::square_at_most(10).nprocs(), 9);
        assert_eq!(ProcessGrid::square_at_most(16).nprocs(), 16);
        assert_eq!(ProcessGrid::square_at_most(24).nprocs(), 16);
        assert_eq!(ProcessGrid::square_at_most(0).nprocs(), 1, "degenerate input still yields a grid");
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn square_rejects_non_squares() {
        let _ = ProcessGrid::square(6);
    }

    #[test]
    fn block_dist_partitions_exactly() {
        for total in [0usize, 1, 5, 10, 17, 100] {
            for parts in [1usize, 2, 3, 4, 7, 16] {
                let dist = BlockDist::new(total, parts);
                // Ranges tile [0, total) in order without gaps or overlap.
                let mut next = 0usize;
                for part in 0..parts {
                    let range = dist.range(part);
                    assert_eq!(range.start, next, "total={total} parts={parts} part={part}");
                    assert_eq!(range.len(), dist.size(part));
                    next = range.end;
                }
                assert_eq!(next, total);
                // Sizes differ by at most one (balanced distribution).
                let sizes: Vec<usize> = (0..parts).map(|p| dist.size(p)).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn owner_and_range_round_trip() {
        for total in [1usize, 5, 10, 17, 64, 100] {
            for parts in [1usize, 2, 3, 4, 9, 16, 150] {
                let dist = BlockDist::new(total, parts);
                for index in 0..total {
                    let owner = dist.owner(index);
                    assert!(
                        dist.range(owner).contains(&index),
                        "total={total} parts={parts}: owner({index})={owner} but range is {:?}",
                        dist.range(owner)
                    );
                }
                for part in 0..parts {
                    for index in dist.range(part) {
                        assert_eq!(dist.owner(index), part);
                    }
                }
            }
        }
    }

    #[test]
    fn more_parts_than_items_leaves_trailing_parts_empty() {
        let dist = BlockDist::new(3, 8);
        assert_eq!(dist.range(0), 0..1);
        assert_eq!(dist.range(2), 2..3);
        for part in 3..8 {
            assert!(dist.range(part).is_empty());
        }
        assert_eq!(dist.owner(2), 2);
    }

    #[test]
    fn grid_row_and_column_dists_coincide_on_square_grids() {
        // SUMMA requires A's column distribution == B's row distribution; on a
        // square grid both are BlockDist::new(inner, side) and must be equal.
        let grid = ProcessGrid::square(9);
        assert_eq!(BlockDist::new(17, grid.rows()), BlockDist::new(17, grid.cols()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_rejects_out_of_range_indices() {
        let _ = BlockDist::new(4, 2).owner(4);
    }
}

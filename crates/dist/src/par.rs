//! Parallel execution of per-rank work on scoped OS threads.
//!
//! In the real system every MPI rank computes on its own block; here the
//! virtual ranks of a [`ProcessGrid`](crate::ProcessGrid) share one address
//! space and their per-rank work is spread over OS threads.  Results are
//! returned in rank order, so the outcome is identical to a sequential loop —
//! determinism does not depend on the thread count, which
//! [`with_threads`] lets tests pin down explicitly.

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn current_threads() -> usize {
    THREAD_OVERRIDE.with(|cell| {
        cell.get().unwrap_or_else(|| {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        })
    })
}

/// Run `body` with the calling thread's worker count pinned to `threads`
/// (affecting [`par_ranks`] / [`par_ranks_mut`] calls made inside), then
/// restore the previous setting.
pub fn with_threads<T>(threads: usize, body: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_OVERRIDE.with(|cell| cell.set(prev));
        }
    }
    let prev = THREAD_OVERRIDE.with(|cell| cell.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    body()
}

/// Evaluate `f(rank)` for every rank in `0..nprocs`, in parallel, returning
/// the results in rank order.
pub fn par_ranks<T, F>(nprocs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = (0..nprocs).map(|_| None).collect();
    par_ranks_mut(&mut slots, |rank, slot| *slot = Some(f(rank)));
    slots.into_iter().map(|slot| slot.expect("worker thread filled every slot")).collect()
}

/// Apply `f(rank, &mut items[rank])` to every element, in parallel.
pub fn par_ranks_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = current_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        for (rank, item) in items.iter_mut().enumerate() {
            f(rank, item);
        }
        return;
    }
    // Propagate this thread's pin (if any) into the workers so that nested
    // par_ranks calls inside `f` honour `with_threads` as documented.
    let pin = THREAD_OVERRIDE.with(|cell| cell.get());
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, item_chunk) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                if let Some(pin) = pin {
                    THREAD_OVERRIDE.with(|cell| cell.set(Some(pin)));
                }
                for (offset, item) in item_chunk.iter_mut().enumerate() {
                    f(chunk_idx * chunk + offset, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_rank_order() {
        for threads in [1usize, 2, 3, 8] {
            let got = with_threads(threads, || par_ranks(17, |rank| rank * rank));
            let want: Vec<usize> = (0..17).map(|r| r * r).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn every_rank_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let results = with_threads(4, || {
            par_ranks(100, |rank| {
                calls.fetch_add(1, Ordering::Relaxed);
                rank
            })
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn par_ranks_mut_passes_matching_indices() {
        for threads in [1usize, 2, 5] {
            let mut items: Vec<usize> = vec![0; 23];
            with_threads(threads, || par_ranks_mut(&mut items, |rank, item| *item = rank + 1));
            for (rank, item) in items.iter().enumerate() {
                assert_eq!(*item, rank + 1, "threads={threads}");
            }
        }
    }

    #[test]
    fn zero_and_one_rank_edge_cases() {
        let empty: Vec<usize> = par_ranks(0, |r| r);
        assert!(empty.is_empty());
        assert_eq!(par_ranks(1, |r| r + 10), vec![10]);
        let mut nothing: Vec<usize> = Vec::new();
        par_ranks_mut(&mut nothing, |_, _| unreachable!("no items"));
    }

    #[test]
    fn with_threads_pin_propagates_into_nested_par_ranks() {
        // Worker threads spawned by the outer par_ranks must inherit the pin,
        // so nested calls see the same worker count as the caller.
        let observed = with_threads(2, || {
            par_ranks(4, |_| THREAD_OVERRIDE.with(|cell| cell.get()))
        });
        assert_eq!(observed, vec![Some(2); 4]);
    }

    #[test]
    fn with_threads_restores_the_previous_setting() {
        let outer = with_threads(3, || {
            let inner = with_threads(1, current_threads);
            assert_eq!(inner, 1);
            current_threads()
        });
        assert_eq!(outer, 3);
    }
}

//! Parallel execution of per-rank work on the shared work-stealing pool.
//!
//! In the real system every MPI rank computes on its own block; here the
//! virtual ranks of a [`ProcessGrid`](crate::ProcessGrid) share one address
//! space and their per-rank work is spread over OS threads by the
//! work-stealing pool in the (vendored) `rayon` crate.  Results are returned
//! in rank order, so the outcome is identical to a sequential loop —
//! determinism does not depend on the thread count, which [`with_threads`]
//! lets tests pin down explicitly.
//!
//! Because the pool's thread budget is global, the per-rank loops here and
//! the per-row loops inside the local SpGEMM kernels share one set of
//! workers: a large grid parallelises across ranks, a small grid leaves
//! budget for row-level parallelism inside each block multiply.

use rayon::pool;

/// Run `body` with the calling thread's worker count pinned to `threads`
/// (affecting [`par_ranks`] / [`par_ranks_mut`] calls and every `par_iter`
/// made inside, including from nested worker threads), then restore the
/// previous setting.
pub fn with_threads<T>(threads: usize, body: impl FnOnce() -> T) -> T {
    pool::with_thread_limit(threads, body)
}

/// Evaluate `f(rank)` for every rank in `0..nprocs`, in parallel, returning
/// the results in rank order.
pub fn par_ranks<T, F>(nprocs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    pool::map_indexed(nprocs, f)
}

/// Apply `f(rank, &mut items[rank])` to every element, in parallel.
pub fn par_ranks_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    pool::for_each_mut(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_rank_order() {
        for threads in [1usize, 2, 3, 8] {
            let got = with_threads(threads, || par_ranks(17, |rank| rank * rank));
            let want: Vec<usize> = (0..17).map(|r| r * r).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn every_rank_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let results = with_threads(4, || {
            par_ranks(100, |rank| {
                calls.fetch_add(1, Ordering::Relaxed);
                rank
            })
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn par_ranks_mut_passes_matching_indices() {
        for threads in [1usize, 2, 5] {
            let mut items: Vec<usize> = vec![0; 23];
            with_threads(threads, || par_ranks_mut(&mut items, |rank, item| *item = rank + 1));
            for (rank, item) in items.iter().enumerate() {
                assert_eq!(*item, rank + 1, "threads={threads}");
            }
        }
    }

    #[test]
    fn zero_and_one_rank_edge_cases() {
        let empty: Vec<usize> = par_ranks(0, |r| r);
        assert!(empty.is_empty());
        assert_eq!(par_ranks(1, |r| r + 10), vec![10]);
        let mut nothing: Vec<usize> = Vec::new();
        par_ranks_mut(&mut nothing, |_, _| unreachable!("no items"));
    }

    #[test]
    fn with_threads_pin_propagates_into_nested_par_ranks() {
        // Worker threads spawned by the outer par_ranks must inherit the pin,
        // so nested calls see the same worker count as the caller.
        let observed = with_threads(2, || par_ranks(4, |_| pool::current_thread_limit()));
        assert_eq!(observed, vec![2; 4]);
    }

    #[test]
    fn with_threads_restores_the_previous_setting() {
        let outer = with_threads(3, || {
            let inner = with_threads(1, pool::current_thread_limit);
            assert_eq!(inner, 1);
            pool::current_thread_limit()
        });
        assert_eq!(outer, 3);
    }
}

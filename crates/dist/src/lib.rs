//! # dibella-dist — the simulated distributed runtime
//!
//! diBELLA 2D (Guidi et al., IPDPS 2021) runs on real MPI over a
//! `√P × √P` process grid.  This reproduction executes on one host, so this
//! crate substitutes the distributed runtime with a **virtual** one — the
//! substitution is documented in the repository's `DESIGN.md`, and the
//! interconnect constants used to project distributed runtimes from the
//! recorded traffic are documented in `EXPERIMENTS.md` (see also the
//! top-level `README.md` for the crate map):
//!
//! * [`ProcessGrid`] — the `√P × √P` (or general `r × c`) grid of virtual
//!   ranks CombBLAS distributes matrices over;
//! * [`BlockDist`] — the 1D block distribution used for rows/columns of 2D
//!   matrices and for read/k-mer partitioning;
//! * [`CommStats`] / [`CommSnapshot`] — exact per-phase word and message
//!   accounting.  Because all virtual ranks share one address space, no bytes
//!   actually move; instead every collective **records** the words and
//!   messages a real MPI run would have moved.  Those volumes are the
//!   measured quantity the paper's Table I cost model is checked against;
//! * [`par_ranks`] / [`par_ranks_mut`] — run a closure for every virtual rank
//!   in parallel on scoped OS threads (the shared-memory stand-in for "every
//!   rank computes its block");
//! * [`collectives`] — simulated `MPI_Alltoallv` ([`alltoallv_counted`]) and
//!   broadcast ([`collectives::record_broadcast`]) with exact volume
//!   accounting.
//!
//! ## Phases
//!
//! Traffic is attributed to the four communicating stages of Algorithm 1
//! (matching Table I of the paper): [`CommPhase::KmerCounting`],
//! [`CommPhase::OverlapDetection`], [`CommPhase::ReadExchange`] and
//! [`CommPhase::TransitiveReduction`], plus [`CommPhase::Other`] for
//! miscellaneous traffic in tests and tools.
//!
//! ## Example
//!
//! ```
//! use dibella_dist::{alltoallv_counted, BlockDist, CommPhase, CommStats, ProcessGrid};
//!
//! let grid = ProcessGrid::square(4);
//! assert_eq!((grid.rows(), grid.cols()), (2, 2));
//!
//! // Distribute 10 rows over the 2 grid rows.
//! let dist = BlockDist::new(10, grid.rows());
//! assert_eq!(dist.range(0), 0..5);
//! assert_eq!(dist.owner(7), 1);
//!
//! // Exchange data between 2 virtual ranks and account for it.
//! let stats = CommStats::new();
//! let send = vec![
//!     vec![vec![1u64], vec![10, 11]], // rank 0 keeps [1], sends [10, 11] to rank 1
//!     vec![vec![2, 3], vec![4]],      // rank 1 sends [2, 3] to rank 0, keeps [4]
//! ];
//! let recv = alltoallv_counted(send, &stats, CommPhase::Other, 1);
//! assert_eq!(recv[0], vec![1, 2, 3]);
//! assert_eq!(stats.words(CommPhase::Other), 4); // only off-rank items count
//! assert_eq!(stats.messages(CommPhase::Other), 2);
//! ```

#![warn(missing_docs)]

pub mod collectives;
mod comm;
pub mod extras;
mod grid;
mod par;
pub mod trace;

pub use collectives::{alltoallv_counted, record_broadcast, record_p2p, words_of};
pub use comm::{CommPhase, CommSnapshot, CommStats, PhaseCounters};
pub use grid::{BlockDist, ProcessGrid};
pub use par::{par_ranks, par_ranks_mut, with_threads};
pub use trace::{verify_spmd, CollectiveEvent, CollectiveKind, CollectiveTrace, SpmdDivergence};

//! The single registry of `CommStats::extras` keys.
//!
//! Every auxiliary counter the pipeline records — flop counts, superstep
//! counts, sketch statistics, POA totals — lives in `CommStats::extras` under
//! a string key.  PR 5 fixed a broadcast-accounting bug that boiled down to a
//! typo'd key symbol: two call sites spelled the same logical counter
//! differently, so the report silently read zeros.  To make that class of bug
//! mechanically checkable, **all** extras keys are declared in this one
//! module and nowhere else:
//!
//! * fixed keys are `pub const …_KEY: &str` items;
//! * phase-suffixed families (`spgemm_flops_<Phase>`, `p2p_words_<Phase>`)
//!   are `pub fn …_key(phase) -> String` builders.
//!
//! The `dibella-lint` `extras-key` rule enforces the invariant: a
//! `bump_extra`/`max_extra`/`extra` call site anywhere in the workspace must
//! name one of these constants/builders (or quote a literal that appears in
//! this file verbatim).  Adding a counter means adding it here first, which
//! keeps the writer and every reader agreeing on the symbol.

use crate::comm::CommPhase;

// --- Transitive reduction ---------------------------------------------------

/// Reduction rounds executed by Algorithm 2.
pub const TR_ITERATIONS_KEY: &str = "tr_iterations";

// --- Sparse SUMMA -----------------------------------------------------------

/// SUMMA stages executed (one per grid dimension per multiply).
pub const SUMMA_STAGES_KEY: &str = "summa_stages";

/// The `CommStats::extras` key carrying useful SpGEMM flops for `phase`.
pub fn flops_key(phase: CommPhase) -> String {
    format!("spgemm_flops_{}", phase.name())
}

/// The `CommStats::extras` key carrying accumulator probes for `phase`.
pub fn probes_key(phase: CommPhase) -> String {
    format!("spgemm_probes_{}", phase.name())
}

/// The `CommStats::extras` key carrying the peak accumulated row width for
/// `phase` (a maximum, not a sum).
pub fn peak_row_width_key(phase: CommPhase) -> String {
    format!("spgemm_peak_row_width_{}", phase.name())
}

// --- Point-to-point traffic (symmetric SUMMA's cross-diagonal exchange) -----

/// The `CommStats::extras` key counting point-to-point words for `phase`.
pub fn p2p_words_key(phase: CommPhase) -> String {
    format!("p2p_words_{}", phase.name())
}

/// The `CommStats::extras` key counting point-to-point messages for `phase`.
pub fn p2p_messages_key(phase: CommPhase) -> String {
    format!("p2p_messages_{}", phase.name())
}

// --- Alignment engine -------------------------------------------------------

/// DP cells evaluated by the alignment stage.
pub const ALIGNED_CELLS_KEY: &str = "aligned_cells";
/// Widest adaptive band of any single x-drop extension (a maximum).
pub const BAND_WIDTH_PEAK_KEY: &str = "band_width_peak";
/// Extensions stopped early by the x-drop test.
pub const XDROP_TERMINATIONS_KEY: &str = "xdrop_terminations";

// --- Streaming superstep ingest ---------------------------------------------

/// Supersteps (batches) the streaming k-mer counter consumed per pass
/// (a maximum over the two passes).
pub const INGEST_SUPERSTEPS_KEY: &str = "ingest_supersteps";
/// Peak bytes of any single sealed ingest batch (a maximum).
pub const INGEST_BATCH_BYTES_PEAK_KEY: &str = "ingest_batch_bytes_peak";
/// Peak estimated resident bytes of any ingest superstep (a maximum).
pub const INGEST_RESIDENT_BYTES_PEAK_KEY: &str = "ingest_resident_bytes_peak";

// --- Sketch-space candidate generation ---------------------------------------

/// Nonzeros of the reads × k-min-mers occurrence matrix.
pub const SKETCH_NNZ_KEY: &str = "sketch_nnz";
/// Surviving k-min-mer columns after the occurrence filter.
pub const SKETCH_COLUMNS_KEY: &str = "sketch_columns";
/// Achieved minimizer density in parts per million.
pub const SKETCH_DENSITY_PPM_KEY: &str = "sketch_density_ppm";
/// Raw-to-HPC compression ratio in parts per million.
pub const SKETCH_HPC_RATIO_PPM_KEY: &str = "sketch_hpc_ratio_ppm";
/// K-min-mer keys dropped for occurring in too few reads.
pub const SKETCH_DROPPED_RARE_KEY: &str = "sketch_dropped_rare";
/// K-min-mer keys dropped for occurring in too many reads.
pub const SKETCH_DROPPED_REPETITIVE_KEY: &str = "sketch_dropped_repetitive";

// --- FASTQ ingest and consensus ----------------------------------------------

/// Reads dropped by the FASTQ mean-quality filter.
pub const FASTQ_DROPPED_LOW_QUALITY_KEY: &str = "fastq_dropped_low_quality";
/// Total POA graph nodes across all contigs.
pub const POA_GRAPH_NODES_KEY: &str = "poa_graph_nodes";
/// Total read bases threaded into POA graphs.
pub const POA_ALIGNED_BASES_KEY: &str = "poa_aligned_bases";
/// Total consensus bases emitted.
pub const CONSENSUS_LENGTH_KEY: &str = "consensus_length";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_keys_are_distinct() {
        let keys = [
            TR_ITERATIONS_KEY,
            SUMMA_STAGES_KEY,
            ALIGNED_CELLS_KEY,
            BAND_WIDTH_PEAK_KEY,
            XDROP_TERMINATIONS_KEY,
            INGEST_SUPERSTEPS_KEY,
            INGEST_BATCH_BYTES_PEAK_KEY,
            INGEST_RESIDENT_BYTES_PEAK_KEY,
            SKETCH_NNZ_KEY,
            SKETCH_COLUMNS_KEY,
            SKETCH_DENSITY_PPM_KEY,
            SKETCH_HPC_RATIO_PPM_KEY,
            SKETCH_DROPPED_RARE_KEY,
            SKETCH_DROPPED_REPETITIVE_KEY,
            FASTQ_DROPPED_LOW_QUALITY_KEY,
            POA_GRAPH_NODES_KEY,
            POA_ALIGNED_BASES_KEY,
            CONSENSUS_LENGTH_KEY,
        ];
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "duplicate extras keys in the registry");
    }

    #[test]
    fn phase_families_embed_the_phase_name() {
        let p = CommPhase::OverlapDetection;
        assert_eq!(flops_key(p), "spgemm_flops_OverlapDetection");
        assert_eq!(probes_key(p), "spgemm_probes_OverlapDetection");
        assert_eq!(peak_row_width_key(p), "spgemm_peak_row_width_OverlapDetection");
        assert_eq!(p2p_words_key(p), "p2p_words_OverlapDetection");
        assert_eq!(p2p_messages_key(p), "p2p_messages_OverlapDetection");
        // Families stay disjoint across phases.
        assert_ne!(flops_key(CommPhase::Other), flops_key(p));
    }
}
